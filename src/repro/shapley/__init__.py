"""Cooperative-game machinery (paper Section 3): exact Shapley values,
Monte-Carlo estimation with Hoeffding bounds (Theorem 5.6), and the
scheduling game whose coalition values are schedule utilities.
"""

from .exact import (
    check_additivity,
    check_dummy,
    check_efficiency,
    check_symmetry,
    shapley_by_permutations,
    shapley_exact,
    shapley_exact_scaled,
)
from .games import (
    SchedulingGame,
    TableGame,
    unit_coalition_value,
    unit_coalition_values,
)
from .sampling import (
    SampledPrefixes,
    hoeffding_samples,
    sample_orderings,
    shapley_sample,
)
from .vectorized import ScaledShapleySolver

__all__ = [
    "SampledPrefixes",
    "ScaledShapleySolver",
    "SchedulingGame",
    "TableGame",
    "check_additivity",
    "check_dummy",
    "check_efficiency",
    "check_symmetry",
    "hoeffding_samples",
    "sample_orderings",
    "shapley_by_permutations",
    "shapley_exact",
    "shapley_exact_scaled",
    "shapley_sample",
    "unit_coalition_value",
    "unit_coalition_values",
]
