"""Cooperative-game machinery (paper Section 3): exact Shapley values,
Monte-Carlo estimation with Hoeffding bounds (Theorem 5.6), and the
scheduling game whose coalition values are schedule utilities.
"""

from .exact import (
    check_additivity,
    check_dummy,
    check_efficiency,
    check_symmetry,
    shapley_by_permutations,
    shapley_exact,
    shapley_exact_scaled,
)
from .games import (
    SchedulingGame,
    TableGame,
    unit_coalition_value,
    unit_coalition_values,
)
from .confidence import (
    empirical_bernstein_halfwidth,
    hoeffding_halfwidth,
    interval_halfwidth,
    separates_argmax,
)
from .sampling import (
    ORDERING_SAMPLERS,
    SampledPrefixes,
    antithetic_orderings,
    hoeffding_samples,
    sample_member_orderings,
    sample_orderings,
    shapley_sample,
    stratified_orderings,
)
from .vectorized import ScaledShapleySolver

__all__ = [
    "ORDERING_SAMPLERS",
    "SampledPrefixes",
    "ScaledShapleySolver",
    "SchedulingGame",
    "TableGame",
    "antithetic_orderings",
    "check_additivity",
    "check_dummy",
    "check_efficiency",
    "check_symmetry",
    "empirical_bernstein_halfwidth",
    "hoeffding_halfwidth",
    "hoeffding_samples",
    "interval_halfwidth",
    "sample_member_orderings",
    "sample_orderings",
    "separates_argmax",
    "stratified_orderings",
    "shapley_by_permutations",
    "shapley_exact",
    "shapley_exact_scaled",
    "shapley_sample",
    "unit_coalition_value",
    "unit_coalition_values",
]
