"""Exact Shapley value computation (paper Section 3, Eqs. 1-2).

The Shapley value is the unique division of a coalition's value satisfying
the four fairness axioms (efficiency, symmetry, additivity, dummy).  Two
equivalent formulas are implemented:

* the **subset formula** (Eq. 1):
  :math:`\\phi_u = \\sum_{C' \\subseteq C \\setminus \\{u\\}}
  \\frac{|C'|!\\,(|C|-|C'|-1)!}{|C|!}\\,(v(C' \\cup \\{u\\}) - v(C'))`,
* the **permutation formula** (Eq. 2): the expected marginal contribution of
  ``u`` over a uniformly random joining order.

Both use exact :class:`~fractions.Fraction` arithmetic (or scaled integers
when the characteristic function is integer-valued), because the fair
scheduler *compares* these values -- floating-point rounding could flip a
scheduling decision.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import permutations
from math import factorial
from typing import Callable, Mapping, Sequence

from ..core.coalition import (
    iter_members,
    iter_subsets,
    popcount,
    scaled_shapley_weights,
)

__all__ = [
    "shapley_exact",
    "shapley_exact_scaled",
    "shapley_by_permutations",
    "check_efficiency",
    "check_symmetry",
    "check_dummy",
    "check_additivity",
]

#: A characteristic function: coalition bitmask -> value.
CharFn = Callable[[int], "int | float | Fraction"]


def _as_charfn(v: "CharFn | Mapping[int, object]") -> CharFn:
    if callable(v):
        return v
    table = dict(v)
    return lambda mask: table[mask]


def shapley_exact(
    v: "CharFn | Mapping[int, object]", k: int, *, grand: int | None = None
) -> list[Fraction]:
    """Shapley values of all ``k`` players by the subset formula (Eq. 1).

    Parameters
    ----------
    v:
        Characteristic function over bitmask coalitions (callable or dict).
        Must be defined on every submask of ``grand``; ``v(0)`` is the empty
        coalition (conventionally 0 -- not enforced, the Shapley formula
        handles any normalization).
    k:
        Number of players.
    grand:
        Coalition to divide (default: the grand coalition of all k players).
        Players outside ``grand`` receive 0.

    Complexity: O(2^k * k) value queries -- use only for small k (the paper's
    experiments use k <= 10); this exactness is what makes REF a *benchmark*.
    """
    vf = _as_charfn(v)
    g = (1 << k) - 1 if grand is None else grand
    n = popcount(g)
    phi = [Fraction(0)] * k
    if n == 0:
        return phi
    denom = factorial(n)
    weights = scaled_shapley_weights(n)
    # iterate subsets of g containing each player once: for every nonempty
    # subset S and every u in S, add w(|S|) * (v(S) - v(S \ {u})).
    for sub in iter_subsets(g):
        if sub == 0:
            continue
        s = popcount(sub)
        w = weights[s]
        v_sub = vf(sub)
        for u in iter_members(sub):
            phi[u] += Fraction(w) * (Fraction(v_sub) - Fraction(vf(sub ^ (1 << u))))
    return [p / denom for p in phi]


def shapley_exact_scaled(
    v: "CharFn | Mapping[int, int]", k: int, *, grand: int | None = None
) -> tuple[list[int], int]:
    """Integer-scaled Shapley values: returns ``(phi_scaled, denom)`` with
    ``phi[u] = phi_scaled[u] / denom`` and ``denom = |grand|!``.

    Requires an integer-valued characteristic function; this is the exact
    arithmetic used inside REF's ``UpdateVals``.
    """
    vf = _as_charfn(v)
    g = (1 << k) - 1 if grand is None else grand
    n = popcount(g)
    phi = [0] * k
    if n == 0:
        return phi, 1
    weights = scaled_shapley_weights(n)
    for sub in iter_subsets(g):
        if sub == 0:
            continue
        w = weights[popcount(sub)]
        v_sub = vf(sub)
        for u in iter_members(sub):
            phi[u] += w * (v_sub - vf(sub ^ (1 << u)))
    return phi, factorial(n)


def shapley_by_permutations(
    v: "CharFn | Mapping[int, object]", k: int, *, grand: int | None = None
) -> list[Fraction]:
    """Shapley values by brute-force enumeration of joining orders (Eq. 2).

    O(k! * k) -- only for tiny ``k``; exists to cross-validate the subset
    formula in tests.
    """
    vf = _as_charfn(v)
    g = (1 << k) - 1 if grand is None else grand
    players = list(iter_members(g))
    n = len(players)
    phi = [Fraction(0)] * k
    if n == 0:
        return phi
    for order in permutations(players):
        mask = 0
        for u in order:
            before = vf(mask)
            mask |= 1 << u
            phi[u] += Fraction(vf(mask)) - Fraction(before)
    n_orders = factorial(n)
    return [p / n_orders for p in phi]


# ----------------------------------------------------------------------
# Axiom verifiers (used by tests and by the shapley_playground example)
# ----------------------------------------------------------------------
def check_efficiency(
    v: "CharFn | Mapping[int, object]", phi: Sequence[Fraction], grand: int
) -> bool:
    """Axiom: the shares of the grand coalition's members sum to its value."""
    vf = _as_charfn(v)
    total = sum((phi[u] for u in iter_members(grand)), Fraction(0))
    return total == Fraction(vf(grand))


def check_symmetry(
    v: "CharFn | Mapping[int, object]",
    phi: Sequence[Fraction],
    grand: int,
    u1: int,
    u2: int,
) -> bool:
    """Axiom: players with identical marginal contributions to every
    coalition (not containing either) get equal shares.

    Returns True when the premise fails (vacuous) or shares are equal.
    """
    vf = _as_charfn(v)
    rest = grand & ~(1 << u1) & ~(1 << u2)
    for sub in iter_subsets(rest):
        if Fraction(vf(sub | (1 << u1))) != Fraction(vf(sub | (1 << u2))):
            return True  # premise violated; axiom says nothing
    return phi[u1] == phi[u2]


def check_dummy(
    v: "CharFn | Mapping[int, object]",
    phi: Sequence[Fraction],
    grand: int,
    u: int,
) -> bool:
    """Axiom: a player adding nothing to any coalition receives 0.

    Returns True when the premise fails or the share is 0.
    """
    vf = _as_charfn(v)
    rest = grand & ~(1 << u)
    for sub in iter_subsets(rest):
        if Fraction(vf(sub | (1 << u))) != Fraction(vf(sub)):
            return True
    return phi[u] == 0


def check_additivity(
    v: "CharFn | Mapping[int, object]",
    w: "CharFn | Mapping[int, object]",
    k: int,
    grand: int,
) -> bool:
    """Axiom: phi(v + w) = phi(v) + phi(w) player-wise."""
    vf, wf = _as_charfn(v), _as_charfn(w)
    combined = lambda mask: Fraction(vf(mask)) + Fraction(wf(mask))  # noqa: E731
    phi_v = shapley_exact(vf, k, grand=grand)
    phi_w = shapley_exact(wf, k, grand=grand)
    phi_vw = shapley_exact(combined, k, grand=grand)
    return all(phi_vw[u] == phi_v[u] + phi_w[u] for u in range(k))
