"""Vectorized scaled Shapley contributions (the REF ``UpdateVals`` hot path).

The paper's ``UpdateVals`` (Fig. 1) computes, for a coalition ``C`` and every
member ``u``, the Eq. 1 subset sum

.. math::

    |C|!\\,\\phi_u = \\sum_{S \\subseteq C,\\ u \\in S}
        (|S|-1)!\\,(|C|-|S|)!\\,(v(S) - v(S \\setminus \\{u\\}))

Grouping by the coalition whose value is read, the coefficient of ``v(S)``
in ``|C|! phi_u`` is ``(|S|-1)! (|C|-|S|)!`` when ``u ∈ S`` and
``-|S|! (|C|-|S|-1)!`` when ``u ∉ S`` (via ``S' = S ∪ {u}``).  So
``UpdateVals`` is one integer matrix-vector product ``phi = M @ v`` with a
coefficient matrix that depends only on the coalition mask -- it is built
once per mask and cached, turning REF's per-event ``O(k·2^k)`` Python loop
into a numpy matmul over the :class:`~repro.core.fleet.CoalitionFleet`'s
batched value vector.

Exactness: coefficients and values are int64, and each product carries a
precomputed worst-case bound (``Σ|row coefficients| · max|v|``); a query
whose bound does not fit in signed int64 returns ``None`` and the caller
falls back to the unbounded-int reference implementation
(:func:`repro.algorithms.ref.update_vals_scaled`) -- results are bit-equal
whenever both paths run (verified in tests).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..core.coalition import (
    iter_members,
    iter_subsets,
    popcount,
    scaled_shapley_weights,
)

__all__ = ["ScaledShapleySolver"]

_INT64_CAP = 1 << 62


class _Plan:
    """Cached per-mask data: members, value-row gather index, coefficient
    matrix, and the worst-case row magnitude for the overflow guard."""

    __slots__ = ("members", "rows", "coef", "row_weight")

    def __init__(self, mask: int, index: Mapping[int, int]):
        members = list(iter_members(mask))
        size = len(members)
        weights = scaled_shapley_weights(size)
        subs = [s for s in iter_subsets(mask) if s]
        self.members = members
        self.rows = np.array([index[s] for s in subs], dtype=np.intp)
        coef = np.zeros((size, len(subs)), dtype=np.int64)
        for j, sub in enumerate(subs):
            s = popcount(sub)
            w_in = weights[s]
            w_out = weights[s + 1] if s < size else 0
            for i, u in enumerate(members):
                coef[i, j] = w_in if sub & (1 << u) else -w_out
        self.coef = coef
        self.row_weight = int(np.abs(coef).sum(axis=1).max())


class ScaledShapleySolver:
    """Computes ``|C|!``-scaled Shapley contributions for any coalition from
    a dense vector of coalition values.

    Parameters
    ----------
    index:
        Mapping from coalition bitmask to its row in the value vectors that
        will be passed to :meth:`phi_scaled` -- typically the registration
        order of a :class:`~repro.core.fleet.CoalitionFleet`.  Must cover
        every nonempty submask of any mask later queried (the empty
        coalition's value is 0 by definition and needs no row).
    """

    def __init__(self, index: Mapping[int, int]):
        self._index = dict(index)
        self._plans: dict[int, _Plan] = {}
        self._batch_plans: dict[tuple[int, ...], tuple] = {}
        self._matrix_plans: dict[tuple[int, ...], tuple] = {}

    def phi_scaled(
        self, mask: int, values: np.ndarray, max_abs_value: int
    ) -> "dict[int, int] | None":
        """``{u: |mask|! * phi_u}`` from the value vector, or ``None`` when
        the int64 guard cannot certify the products (caller falls back to
        exact big-int arithmetic).

        ``max_abs_value`` must bound ``|values[i]|`` over the rows of
        ``mask``'s submasks (any global bound works).
        """
        plan = self._plans.get(mask)
        if plan is None:
            plan = self._plans[mask] = _Plan(mask, self._index)
        if max_abs_value < 0 or plan.row_weight * max_abs_value >= _INT64_CAP:
            return None
        phi = plan.coef @ values[plan.rows]
        return dict(zip(plan.members, phi.tolist()))

    def phi_scaled_batch(
        self,
        masks: "tuple[int, ...]",
        values: np.ndarray,
        max_abs_value: int,
    ) -> "dict[int, dict[int, int]] | None":
        """``UpdateVals`` for a whole family of equal-size coalitions in one
        batched matmul (REF evaluates a full size group per event time --
        paper Fig. 1's ``for s <- 1 to |C|`` loop).

        ``masks`` must share a popcount and should be a stable tuple (the
        stacked plan is cached per tuple).  Returns ``{mask: {u: phi}}`` or
        ``None`` when the int64 guard trips for *any* member of the batch.
        """
        plan = self._batch_plans.get(masks)
        if plan is None:
            sizes = {m.bit_count() for m in masks}
            if len(sizes) != 1:
                raise ValueError("batched masks must share a size")
            singles = []
            for m in masks:
                p = self._plans.get(m)
                if p is None:
                    p = self._plans[m] = _Plan(m, self._index)
                singles.append(p)
            plan = (
                np.stack([p.coef for p in singles]),  # (n, s, 2^s - 1)
                np.stack([p.rows for p in singles]),  # (n, 2^s - 1)
                [p.members for p in singles],
                max(p.row_weight for p in singles),
            )
            self._batch_plans[masks] = plan
        coef, rows, members, row_weight = plan
        if max_abs_value < 0 or row_weight * max_abs_value >= _INT64_CAP:
            return None
        phi = np.matmul(coef, values[rows][:, :, None])[:, :, 0]
        return {
            m: dict(zip(mem, row))
            for m, mem, row in zip(masks, members, phi.tolist())
        }

    def matrix_plan(
        self, masks: "tuple[int, ...]"
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, int]":
        """The cached stacked plan of one equal-size mask family:
        ``(coef (n, s, 2^s-1), value_rows (n, 2^s-1), org_cols (n, s),
        row_weight)``.  :meth:`phi_scaled_matrix` evaluates it; callers
        that fuse several size groups into one pass (the REF kernel event
        body) consume it directly."""
        plan = self._matrix_plans.get(masks)
        if plan is None:
            sizes = {m.bit_count() for m in masks}
            if len(sizes) != 1:
                raise ValueError("batched masks must share a size")
            singles = []
            for m in masks:
                p = self._plans.get(m)
                if p is None:
                    p = self._plans[m] = _Plan(m, self._index)
                singles.append(p)
            cols = np.array(
                [p.members for p in singles], dtype=np.intp
            )  # (n, s): org column of each phi slot
            plan = (
                np.stack([p.coef for p in singles]),  # (n, s, 2^s - 1)
                np.stack([p.rows for p in singles]),  # (n, 2^s - 1)
                cols,
                max(p.row_weight for p in singles),
            )
            self._matrix_plans[masks] = plan
        return plan

    def phi_scaled_matrix(
        self,
        masks: "tuple[int, ...]",
        values: np.ndarray,
        max_abs_value: int,
        n_orgs: int,
    ) -> "tuple[np.ndarray, int] | None":
        """Like :meth:`phi_scaled_batch` but returning a dense
        ``(len(masks), n_orgs)`` int64 matrix (zero for non-members) plus a
        certified bound on ``|phi|`` -- the layout the batched
        :class:`~repro.core.kernel.FleetKernel` scheduling rounds consume.
        Returns ``None`` when the int64 guard cannot certify the products
        (the caller falls back to exact big-int ``update_vals_scaled``).
        """
        coef, rows, cols, row_weight = self.matrix_plan(masks)
        if max_abs_value < 0 or row_weight * max_abs_value >= _INT64_CAP:
            return None
        phi = np.matmul(coef, values[rows][:, :, None])[:, :, 0]
        full = np.zeros((len(masks), n_orgs), dtype=np.int64)
        full[np.arange(len(masks))[:, None], cols] = phi
        return full, row_weight * max_abs_value
