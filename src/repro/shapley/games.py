"""Characteristic-function games, including the paper's scheduling game.

In the paper's game (Section 2) the players are organizations; the value of
a coalition :math:`\\mathcal{C}` at time ``t`` is the total strategy-proof
utility of the schedule the coalition runs on its pooled machines:
:math:`v(\\mathcal{C}, t) = \\sum_{u \\in \\mathcal{C}} \\psi_{sp}`.

Unlike textbook games, the value depends on the *scheduling algorithm*.
Definition 3.1 resolves this recursively: subcoalition values come from a
fair algorithm for that subcoalition.  Two backends are provided:

* ``policy="fifo"`` -- any greedy algorithm; exactly correct for unit-size
  jobs (Prop. 5.4: all greedy algorithms give equal coalition values), the
  heuristic the paper itself uses inside RAND for general sizes;
* ``policy="fair"`` -- the full recursive REF fair schedule per coalition
  (exponential; the reference semantics of Definition 3.1).

The unit-size fast path computes all coalition values with a vectorized
Lindley (queue) recursion instead of event simulation.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from ..core.coalition import iter_members, iter_subsets
from ..core.engine import ClusterEngine
from ..core.fleet import CoalitionFleet
from ..core.workload import Workload

__all__ = [
    "TableGame",
    "SchedulingGame",
    "unit_coalition_value",
    "unit_coalition_values",
]


class TableGame:
    """A characteristic function backed by an explicit table.

    Convenience wrapper for tests and the Shapley playground example;
    validates that the table covers every subset of the grand coalition.
    """

    def __init__(self, k: int, table: Mapping[int, "int | float"]):
        self.k = k
        grand = (1 << k) - 1
        missing = [m for m in iter_subsets(grand) if m not in table]
        if missing:
            raise ValueError(f"table misses {len(missing)} coalitions")
        self.table = dict(table)

    def __call__(self, mask: int) -> "int | float":
        return self.table[mask]


def _fifo_select(engine: ClusterEngine) -> int:
    """Global FIFO tie-broken by (head release, org id): 'any greedy'."""
    waiting = engine.waiting_orgs()
    return min(waiting, key=lambda u: (engine.head_release(u), u))


# the batched FleetKernel understands this selector natively, so large
# values_for() batches advance in one vectorized lockstep sweep
_fifo_select.kernel_policy = "fifo"


class SchedulingGame:
    """The scheduling cooperative game: ``v(mask) = v(C, t)``.

    Parameters
    ----------
    workload:
        The instance (organizations with machines, and their jobs).
    t:
        Evaluation time for coalition values.
    policy:
        ``"fifo"`` (any greedy; cheap) or ``"fair"`` (recursive REF;
        exponential but the exact Definition 3.1 semantics).

    Values are cached per coalition; with ``policy="fifo"`` and unit-size
    jobs the vectorized Lindley backend is used automatically, and general
    sizes are simulated on a transient
    :class:`~repro.core.fleet.CoalitionFleet` so :meth:`values_for` reads a
    whole batch of fresh coalitions from one vectorized ledger query (only
    the integer values are retained -- engines are discarded once cached).
    """

    def __init__(self, workload: Workload, t: int, policy: str = "fifo"):
        if policy not in ("fifo", "fair"):
            raise ValueError("policy must be 'fifo' or 'fair'")
        self.workload = workload
        self.t = t
        self.policy = policy
        self.k = workload.n_orgs
        self._cache: dict[int, int] = {0: 0}
        self._unit_sizes = all(j.size == 1 for j in workload.jobs)

    def __call__(self, mask: int) -> int:
        if mask not in self._cache:
            self._cache[mask] = self._compute(mask)
        return self._cache[mask]

    def _fifo_values(self, masks: "list[int]") -> dict[int, int]:
        """Engine-backed fifo values for ``masks`` via a transient fleet."""
        fleet = CoalitionFleet(
            self.workload, masks, horizon=self.t, track_events=False
        )
        return fleet.values_at(self.t, select=_fifo_select)

    def _compute(self, mask: int) -> int:
        members = list(iter_members(mask))
        if self.policy == "fifo":
            if self._unit_sizes:
                return unit_coalition_value(self.workload, members, self.t)
            return self._fifo_values([mask])[mask]
        # policy == "fair": run the recursive fair algorithm on the
        # restricted workload (lazy import to avoid a package cycle).
        from ..algorithms.ref import RefScheduler

        result = RefScheduler(horizon=self.t).run(
            self.workload.restrict(members), members=members
        )
        return sum(result.utilities(self.t))

    def values_for(self, masks: Iterable[int]) -> dict[int, int]:
        """Batch evaluation (shares the cache).

        With the engine-backed fifo policy, all uncached coalitions are
        simulated on one transient fleet and read in a single vectorized
        ledger query.
        """
        masks = list(masks)
        fresh = [m for m in masks if m not in self._cache and m != 0]
        if fresh and self.policy == "fifo" and not self._unit_sizes:
            self._cache.update(self._fifo_values(fresh))
        return {m: self(m) for m in masks}


def unit_coalition_value(
    workload: Workload, members: Iterable[int], t: int
) -> int:
    """Coalition value for unit-size jobs via the Lindley recursion.

    Prop. 5.4: with unit jobs every greedy algorithm completes the same
    number of jobs by every time moment, so ``v(C, t)`` is policy-free.  The
    backlog follows the queueing (Lindley) recursion
    ``W_tau = max(0, W_{tau-1} + R_tau - m)`` which vectorizes as a cumsum /
    running-minimum pair; a unit served in slot ``tau`` is worth ``t - tau``.
    """
    member_set = set(members)
    m = sum(workload.machines_of(u) for u in member_set)
    if m == 0 or t <= 0:
        return 0
    releases = np.zeros(t, dtype=np.int64)
    for j in workload.jobs:
        if j.org in member_set and j.release < t:
            if j.size != 1:
                raise ValueError("unit_coalition_value requires unit-size jobs")
            releases[j.release] += 1
    served = _lindley_served(releases, m)
    slots = np.arange(t, dtype=np.int64)
    return int(np.sum(served * (t - slots)))


def unit_coalition_values(
    workload: Workload, masks: Iterable[int], t: int
) -> dict[int, int]:
    """Batch :func:`unit_coalition_value` over several coalitions."""
    return {
        mask: unit_coalition_value(workload, list(iter_members(mask)), t)
        for mask in masks
    }


def _lindley_served(releases: np.ndarray, m: int) -> np.ndarray:
    """Units served per slot by an m-server unit-job queue.

    ``W_tau = P_tau - min(0, min_{j<=tau} P_j)`` with
    ``P = cumsum(releases - m)``; then
    ``served_tau = W_{tau-1} + R_tau - W_tau``.
    """
    x = releases.astype(np.int64) - m
    prefix = np.cumsum(x)
    running_min = np.minimum.accumulate(np.minimum(prefix, 0))
    backlog = prefix - running_min
    prev = np.empty_like(backlog)
    prev[0] = 0
    prev[1:] = backlog[:-1]
    return prev + releases - backlog
