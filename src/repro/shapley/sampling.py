"""Monte-Carlo Shapley estimation (paper Section 5.1, Algorithm RAND's core).

The scheduling game is **not** supermodular (Prop. 5.5), so the
Liben-Nowell et al. supermodular-game sampler does not apply directly; the
paper instead samples N uniformly random joining orders and uses Hoeffding's
inequality to bound the estimation error of the mean marginal contribution
(Theorem 5.6):

.. math::

    N \\;=\\; \\Big\\lceil \\frac{k^2}{\\epsilon^2}
             \\ln\\frac{k}{1-\\lambda} \\Big\\rceil

guarantees, with probability :math:`\\lambda`, that every player's estimate
is within :math:`\\frac{\\epsilon}{k} v^*(C)` of its Shapley value, hence the
utility vector is within :math:`\\epsilon\\,v^*` in the Manhattan norm.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Callable, Mapping, Sequence

import numpy as np

__all__ = [
    "ORDERING_SAMPLERS",
    "antithetic_orderings",
    "hoeffding_samples",
    "sample_orderings",
    "sample_member_orderings",
    "shapley_sample",
    "stratified_orderings",
    "SampledPrefixes",
]

CharFn = Callable[[int], "int | float | Fraction"]


def hoeffding_samples(k: int, epsilon: float, lam: float) -> int:
    """Sample count N of Theorem 5.6: ``ceil(k^2/eps^2 * ln(k/(1-lambda)))``.

    Parameters
    ----------
    k:
        Number of players (organizations).
    epsilon:
        Target relative Manhattan-norm error (fraction of the coalition
        value).
    lam:
        Success probability (the paper's lambda).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if not 0 < epsilon:
        raise ValueError("epsilon must be positive")
    if not 0 < lam < 1:
        raise ValueError("lambda must be in (0, 1)")
    return math.ceil(k * k / (epsilon * epsilon) * math.log(k / (1.0 - lam)))


def sample_orderings(
    k: int, n: int, rng: np.random.Generator
) -> np.ndarray:
    """``n`` independent uniform permutations of ``0..k-1`` (with
    replacement), as an ``(n, k)`` integer array."""
    if n < 1:
        raise ValueError("need at least one ordering")
    return np.array([rng.permutation(k) for _ in range(n)], dtype=np.int64)


def sample_member_orderings(
    members: np.ndarray, n: int, rng: np.random.Generator
) -> np.ndarray:
    """``n`` independent uniform permutations of ``members`` as an
    ``(n, len(members))`` int64 array.  This is the exact draw sequence
    :class:`~repro.algorithms.rand.RandRun` has always used (one
    ``rng.permutation`` call per row), factored out so the variance-reduced
    samplers below are drop-in replacements on the same RNG stream."""
    if n < 1:
        raise ValueError("need at least one ordering")
    member_arr = np.asarray(members, dtype=np.int64)
    return np.stack([rng.permutation(member_arr) for _ in range(n)])


def antithetic_orderings(
    members: np.ndarray, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Antithetic pairs: each drawn permutation is followed by its reverse
    (DESIGN.md §12.1).  A player joining early in ``pi`` joins late in
    ``reversed(pi)``, so the two marginal samples are negatively
    correlated and their average has lower variance than two independent
    draws.  Each *pair* is an unbiased two-sample estimate; an odd ``n``
    truncates the last pair (slight imbalance, still unbiased per row)."""
    if n < 1:
        raise ValueError("need at least one ordering")
    member_arr = np.asarray(members, dtype=np.int64)
    rows: list[np.ndarray] = []
    while len(rows) < n:
        pi = rng.permutation(member_arr)
        rows.append(pi)
        rows.append(pi[::-1])
    return np.stack(rows[:n])


def stratified_orderings(
    members: np.ndarray,
    n: int,
    rng: np.random.Generator,
    *,
    antithetic: bool = True,
) -> np.ndarray:
    """Position-stratified (and optionally antithetic) joining orders.

    Uniform sampling lets a player's *position* histogram drift (it may
    land "late" in most of a small batch), and position is the dominant
    variance driver of a marginal contribution.  Stratification emits the
    ``k`` cyclic rotations of each drawn permutation: across one block
    every player occupies every position exactly once, removing the
    position-count variance entirely.  With ``antithetic=True`` each
    rotation is immediately followed by its reverse (block size ``2k``),
    composing both variance-reduction devices.

    Rows remain identically distributed uniform permutations (a rotation
    or reversal of a uniform permutation is uniform), so
    :class:`SampledPrefixes` estimates stay unbiased; only the *joint*
    distribution changes.  ``n`` not divisible by the block size truncates
    the last block, trading a little balance for the exact budget.
    """
    if n < 1:
        raise ValueError("need at least one ordering")
    member_arr = np.asarray(members, dtype=np.int64)
    k = len(member_arr)
    if k == 0:
        raise ValueError("need at least one member")
    rows: list[np.ndarray] = []
    while len(rows) < n:
        pi = rng.permutation(member_arr)
        for shift in range(k):
            rot = np.roll(pi, -shift)
            rows.append(rot)
            if antithetic:
                rows.append(rot[::-1])
    return np.stack(rows[:n])


def _stratified_plain(
    members: np.ndarray, n: int, rng: np.random.Generator
) -> np.ndarray:
    return stratified_orderings(members, n, rng, antithetic=False)


#: Named ordering samplers, all sharing the signature
#: ``(members, n, rng) -> (n, k) int64 array`` -- what
#: :class:`~repro.algorithms.rand.RandRun` accepts as its ``sampler``.
ORDERING_SAMPLERS: "dict[str, Callable[[np.ndarray, int, np.random.Generator], np.ndarray]]" = {
    "uniform": sample_member_orderings,
    "antithetic": antithetic_orderings,
    "stratified": _stratified_plain,
    "stratified_antithetic": stratified_orderings,
}


class SampledPrefixes:
    """The coalition structure RAND maintains (paper Fig. 6, ``Prepare``).

    For each sampled ordering and each player ``u``, record the pair
    ``(pred_mask, pred_mask | {u})`` -- the coalitions whose value difference
    is one sample of ``u``'s marginal contribution.  ``masks`` is the
    de-duplicated set of all coalitions whose values must be tracked
    (``Subs`` and ``Subs'`` in the paper's notation).
    """

    def __init__(self, k: int, orderings: np.ndarray):
        """``k`` bounds the player ids; each row of ``orderings`` is one
        sampled joining order of the participating players (all ``k`` of
        them, or any fixed subcoalition -- players that never appear simply
        collect zero marginal samples)."""
        if orderings.ndim != 2 or orderings.shape[1] > k:
            raise ValueError("orderings must be an (n, <=k) array")
        if orderings.size and not (
            0 <= int(orderings.min()) and int(orderings.max()) < k
        ):
            raise ValueError("player ids must be in [0, k)")
        self.k = k
        self.n = int(orderings.shape[0])
        pairs: list[list[tuple[int, int]]] = [[] for _ in range(k)]
        masks: set[int] = {0}
        for row in orderings:
            mask = 0
            for u in map(int, row):
                with_u = mask | (1 << u)
                pairs[u].append((mask, with_u))
                masks.add(mask)
                masks.add(with_u)
                mask = with_u
        self.pairs: tuple[tuple[tuple[int, int], ...], ...] = tuple(
            tuple(p) for p in pairs
        )
        self.masks: frozenset[int] = frozenset(masks)
        self._coef_cache: "tuple[tuple[int, ...], np.ndarray, int] | None" = None
        self._idx_cache: "tuple[tuple[int, ...], dict[int, tuple[np.ndarray, np.ndarray]]] | None" = None

    def _coefficients(
        self, order: "tuple[int, ...]"
    ) -> "tuple[np.ndarray, int]":
        """``(k, len(order))`` int64 coefficient matrix ``M`` with
        ``M @ values == estimate_scaled`` for a value vector aligned with
        ``order``, plus the max absolute row sum (the overflow guard
        weight).  Cached per coalition order."""
        cached = self._coef_cache
        if cached is not None and cached[0] == order:
            return cached[1], cached[2]
        index = {m: i for i, m in enumerate(order)}
        coef = np.zeros((self.k, len(order)), dtype=np.int64)
        for u in range(self.k):
            for pred, with_u in self.pairs[u]:
                coef[u, index[with_u]] += 1
                if pred:
                    coef[u, index[pred]] -= 1
        weight = int(np.abs(coef).sum(axis=1).max()) if coef.size else 0
        self._coef_cache = (order, coef, weight)
        return coef, weight

    def estimate_scaled_array(
        self, order: "tuple[int, ...]", values: np.ndarray, max_abs_value: int
    ) -> "list[int] | None":
        """:meth:`estimate_scaled` as one int64 matrix-vector product over a
        dense value vector aligned with ``order`` (every mask in
        :attr:`masks` except 0 must appear).  Returns ``None`` when the
        int64 guard cannot certify the product -- fall back to the exact
        big-int :meth:`estimate_scaled`."""
        coef, weight = self._coefficients(order)
        if max_abs_value < 0 or weight * max_abs_value >= 1 << 62:
            return None
        return (coef @ values).tolist()

    def sample_indices(
        self, order: "tuple[int, ...]"
    ) -> "dict[int, tuple[np.ndarray, np.ndarray]]":
        """Per-player ``(pred_idx, with_idx)`` int64 index arrays into a
        dense value vector aligned with ``order`` (``pred_idx == -1``
        marks the empty predecessor coalition, whose value is 0).  Cached
        per coalition order; players with no sampled pairs are absent."""
        cached = self._idx_cache
        if cached is not None and cached[0] == order:
            return cached[1]
        index = {m: i for i, m in enumerate(order)}
        out: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for u in range(self.k):
            if not self.pairs[u]:
                continue
            pred_idx = np.array(
                [index[p] if p else -1 for p, _ in self.pairs[u]],
                dtype=np.int64,
            )
            with_idx = np.array(
                [index[w] for _, w in self.pairs[u]], dtype=np.int64
            )
            out[u] = (pred_idx, with_idx)
        self._idx_cache = (order, out)
        return out

    def marginal_samples(
        self, order: "tuple[int, ...]", values: np.ndarray
    ) -> "dict[int, np.ndarray]":
        """Per-player vectors of the individual sampled marginal
        contributions (one entry per ordering containing the player), from
        a dense int64 value vector aligned with ``order``.  This is the
        per-sample view the adaptive certifier needs for empirical
        variance; ``sum(marginal_samples[u]) == estimate_scaled[u]``."""
        out: dict[int, np.ndarray] = {}
        for u, (pred_idx, with_idx) in self.sample_indices(order).items():
            pred_vals = np.where(pred_idx >= 0, values[pred_idx], 0)
            out[u] = values[with_idx] - pred_vals
        return out

    def estimate_scaled(self, values: Mapping[int, int]) -> list[int]:
        """Sum of sampled marginal contributions per player (= N * phi-hat).

        With integer coalition values this is exact; divide by ``self.n``
        for the estimate itself.  RAND compares ``N*phi - N*psi`` so the
        division never happens.
        """
        out = [0] * self.k
        for u in range(self.k):
            acc = 0
            for pred, with_u in self.pairs[u]:
                acc += values[with_u] - values[pred]
            out[u] = acc
        return out

    def estimate(self, values: Mapping[int, "int | float"]) -> list[float]:
        """Mean sampled marginal contribution per player (phi-hat)."""
        return [s / self.n for s in self.estimate_scaled(values)]


def shapley_sample(
    v: "CharFn | Mapping[int, object]",
    k: int,
    n_samples: int,
    rng: np.random.Generator,
) -> list[float]:
    """Monte-Carlo Shapley estimate from ``n_samples`` random orderings.

    Standalone estimator (the in-scheduler version shares coalition engines
    across time; see :class:`repro.algorithms.rand.RandScheduler`).
    """
    vf = v if callable(v) else (lambda mask, _tbl=dict(v): _tbl[mask])
    orderings = sample_orderings(k, n_samples, rng)
    phi = [0.0] * k
    for row in orderings:
        mask = 0
        prev = float(vf(0))
        for u in map(int, row):
            mask |= 1 << u
            cur = float(vf(mask))
            phi[u] += cur - prev
            prev = cur
    return [p / n_samples for p in phi]
