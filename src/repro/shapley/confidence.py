"""Confidence intervals for sampled Shapley estimates (DESIGN.md §12.2).

The adaptive sampler (:mod:`repro.approx.adaptive`) does not need tight
contribution values -- it needs the *right winner* of the Fig. 3
``argmax(phi - psi)`` selection.  This module supplies the two interval
constructions it races against each other and the argmax-separation rule
that turns per-player intervals into a per-decision certificate:

* :func:`hoeffding_halfwidth` -- distribution-free, needs only the range
  bound ``R`` on one sampled marginal contribution (the paper's Theorem
  5.6 machinery, reshaped from an a-priori sample-size choice into an
  a-posteriori interval);
* :func:`empirical_bernstein_halfwidth` -- the Audibert-Munos-Szepesvari
  empirical-Bernstein bound: variance-adaptive, so near-deterministic
  marginals (common in lightly-loaded clusters) certify after a handful
  of samples where Hoeffding would need hundreds;
* :func:`separates_argmax` -- the stopping rule: the winner's lower
  confidence bound must clear every rival's upper bound.

All half-widths are on the *mean marginal contribution* (phi-hat); the
caller rescales psi-offsets itself because the scheduler compares
``phi - psi`` keys.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = [
    "empirical_bernstein_halfwidth",
    "hoeffding_halfwidth",
    "interval_halfwidth",
    "separates_argmax",
]


def hoeffding_halfwidth(n: int, value_range: float, delta: float) -> float:
    """Hoeffding half-width: with probability ``1 - delta`` the sample
    mean of ``n`` iid draws from ``[0, value_range]`` is within this of
    the true mean.  ``R * sqrt(ln(2/delta) / (2n))``."""
    if n < 1:
        raise ValueError("need at least one sample")
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    if value_range < 0:
        raise ValueError("value_range must be >= 0")
    return value_range * math.sqrt(math.log(2.0 / delta) / (2.0 * n))


def empirical_bernstein_halfwidth(
    n: int, sample_variance: float, value_range: float, delta: float
) -> float:
    """Empirical-Bernstein half-width (Audibert et al. 2009, Thm. 1):
    ``sqrt(2 V ln(3/delta) / n) + 3 R ln(3/delta) / n`` with ``V`` the
    (biased, /n) sample variance.  Variance-adaptive: the ``R`` term
    decays as ``1/n``, so low-variance marginals certify quickly."""
    if n < 1:
        raise ValueError("need at least one sample")
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    if sample_variance < 0 or value_range < 0:
        raise ValueError("variance and range must be >= 0")
    log_term = math.log(3.0 / delta)
    return math.sqrt(2.0 * sample_variance * log_term / n) + (
        3.0 * value_range * log_term / n
    )


def interval_halfwidth(
    n: int, sample_variance: float, value_range: float, delta: float
) -> float:
    """The tighter of the two valid half-widths at the same ``delta``
    (each holds with probability ``1 - delta``, so their minimum holds
    with probability ``1 - 2 delta``; callers budget for the factor)."""
    return min(
        hoeffding_halfwidth(n, value_range, delta),
        empirical_bernstein_halfwidth(n, sample_variance, value_range, delta),
    )


def separates_argmax(
    winner: int,
    rivals: Sequence[int],
    means: Mapping[int, float],
    halfwidths: Mapping[int, float],
) -> bool:
    """The certification rule: ``winner``'s lower confidence bound strictly
    clears every rival's upper bound, so no rival's true key can reach the
    winner's.  Exact ties are *not* certifiable by sampling (their
    intervals always overlap); degenerate cases are certified upstream by
    structural arguments, never here."""
    lo = means[winner] - halfwidths[winner]
    for u in rivals:
        if u == winner:
            continue
        if not lo > means[u] + halfwidths[u]:
            return False
    return True
