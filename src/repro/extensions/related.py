"""Related machines extension (paper Sections 2 and 8).

The paper's main model uses identical processors but notes that "most of
our results can be extended to related ... processors" -- machines with
speed factors, where a job's *processing time becomes a function of the
schedule* (Section 2).  This module implements that extension for the
polynomial schedulers (the unit-size results of Section 5.1 explicitly do
not generalize, so REF/RAND stay on identical machines, as in the paper).

Model: organization ``u`` contributes machines of speed ``f_u >= 1``
(:attr:`repro.core.organization.Organization.speed` -- integral speeds keep
the discrete-time model exact); a job with processing *requirement* ``p``
placed on a speed-``f`` machine occupies it for ``ceil(p / f)`` time units,
and that effective duration is what the strategy-proof utility counts (the
job is the pair ``(s, ceil(p/f))`` of the realized schedule).
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable

from ..core.job import Job
from ..core.workload import Workload
from ..utility.strategyproof import psi_sp

__all__ = ["RelatedEngine", "RelatedStart", "run_related", "effective_duration"]


def effective_duration(size: int, speed: float) -> int:
    """Time a size-``p`` job occupies a speed-``f`` machine: ``ceil(p/f)``."""
    if speed <= 0:
        raise ValueError("speed must be positive")
    return max(1, math.ceil(size / speed))


@dataclass(frozen=True, slots=True, order=True)
class RelatedStart:
    """One start record: job, start time, machine, realized duration."""

    start: int
    machine: int
    duration: int
    job: Job

    @property
    def end(self) -> int:
        return self.start + self.duration

    def pair(self) -> tuple[int, int]:
        """The ``(s, p')`` pair with the *effective* processing time."""
        return (self.start, self.duration)


class RelatedEngine:
    """Event-driven simulator for related (speed-scaled) machines.

    Same orchestration contract as :class:`repro.core.engine.ClusterEngine`
    (``next_event_time`` / ``advance_to`` / ``start_next`` / ``drive``);
    machine speeds come from the owning organization.  Utilities are
    :math:`\\psi_{sp}` over realized ``(start, duration)`` pairs.
    """

    def __init__(
        self,
        workload: Workload,
        members: Iterable[int] | None = None,
        *,
        horizon: int | None = None,
    ) -> None:
        self.workload = workload
        k = workload.n_orgs
        self.n_orgs = k
        self.members = (
            tuple(sorted(set(members))) if members is not None else tuple(range(k))
        )
        self.horizon = horizon
        member_set = set(self.members)
        self.machine_owner: dict[int, int] = {}
        self.machine_speed: dict[int, float] = {}
        mid = 0
        for org in workload.organizations:
            for _ in range(org.machines):
                if org.id in member_set:
                    self.machine_owner[mid] = org.id
                    self.machine_speed[mid] = org.speed
                mid += 1
        self._free: list[int] = sorted(self.machine_owner)
        heapq.heapify(self._free)
        self._stream = sorted(j for j in workload.jobs if j.org in member_set)
        self._pos = 0
        self._pending: dict[int, deque[Job]] = {u: deque() for u in self.members}
        self._n_waiting = 0
        self.t = 0
        self._busy: list[tuple[int, int]] = []
        self._running: dict[int, RelatedStart] = {}
        self.log: list[RelatedStart] = []

    # -- events ---------------------------------------------------------
    def next_event_time(self) -> int | None:
        cands = []
        if self._pos < len(self._stream):
            cands.append(self._stream[self._pos].release)
        if self._busy:
            cands.append(self._busy[0][0])
        if not cands:
            return None
        t = min(cands)
        if self.horizon is not None and t >= self.horizon:
            return None
        return t

    def advance_to(self, t: int) -> None:
        if t < self.t:
            raise ValueError("cannot advance backwards")
        while self._busy and self._busy[0][0] <= t:
            _, machine = heapq.heappop(self._busy)
            self._running.pop(machine)
            heapq.heappush(self._free, machine)
        while self._pos < len(self._stream) and self._stream[self._pos].release <= t:
            j = self._stream[self._pos]
            self._pos += 1
            self._pending[j.org].append(j)
            self._n_waiting += 1
        self.t = t

    # -- state ------------------------------------------------------------
    @property
    def free_count(self) -> int:
        return len(self._free)

    def has_waiting(self) -> bool:
        return self._n_waiting > 0

    def waiting_orgs(self) -> list[int]:
        return [u for u in self.members if self._pending[u]]

    def head_release(self, org: int) -> int:
        return self._pending[org][0].release

    def fastest_free_machine(self) -> int:
        """Free machine with the highest speed (ties: lowest id) -- the
        sensible default placement on related machines."""
        return min(self._free, key=lambda m: (-self.machine_speed[m], m))

    def psis(self, t: int | None = None) -> list[int]:
        t = self.t if t is None else t
        out = [0] * self.n_orgs
        for entry in self.log:
            out[entry.job.org] += psi_sp([entry.pair()], t)
        return out

    def value(self, t: int | None = None) -> int:
        return sum(self.psis(t))

    # -- actions ----------------------------------------------------------
    def start_next(self, org: int, machine: int | None = None) -> RelatedStart:
        if not self._pending[org]:
            raise ValueError(f"org {org} has no waiting job")
        if not self._free:
            raise ValueError("no free machine")
        if machine is None:
            machine = self.fastest_free_machine()
        if machine not in self._free:
            raise ValueError(f"machine {machine} is not free")
        self._free.remove(machine)
        heapq.heapify(self._free)
        job = self._pending[org].popleft()
        self._n_waiting -= 1
        duration = effective_duration(job.size, self.machine_speed[machine])
        entry = RelatedStart(self.t, machine, duration, job)
        self._running[machine] = entry
        heapq.heappush(self._busy, (entry.end, machine))
        self.log.append(entry)
        return entry

    def drive(self, select: Callable[["RelatedEngine"], int], until=None) -> None:
        while True:
            t = self.next_event_time()
            if t is None or (until is not None and t > until):
                return
            self.advance_to(t)
            while self._free and self._n_waiting:
                self.start_next(select(self))

    def done(self) -> bool:
        return (
            self._pos == len(self._stream)
            and not self._running
            and self._n_waiting == 0
        )


def run_related(
    workload: Workload,
    select: Callable[[RelatedEngine], int],
    t_end: int,
    members: Iterable[int] | None = None,
) -> tuple[list[int], list[RelatedStart]]:
    """Run a selection policy on related machines to ``t_end``.

    Returns the per-organization :math:`\\psi_{sp}` utilities at ``t_end``
    and the realized start log (with effective durations).
    """
    engine = RelatedEngine(workload, members, horizon=t_end)
    engine.drive(select, until=t_end)
    if engine.t < t_end:
        engine.advance_to(t_end)
    return engine.psis(t_end), list(engine.log)
