"""Model extensions the paper lists as future work (Section 8):

* :mod:`repro.extensions.related` -- related (speed-scaled) machines;
* :mod:`repro.extensions.rigid` -- rigid parallel jobs, including the
  witness that greedy utilization guarantees do not carry over.
"""

from .related import RelatedEngine, RelatedStart, effective_duration, run_related
from .rigid import (
    RigidEngine,
    RigidJob,
    parallel_loss_witness,
    rigid_fifo,
    widest_fit,
)

__all__ = [
    "RelatedEngine",
    "RelatedStart",
    "RigidEngine",
    "RigidJob",
    "effective_duration",
    "parallel_loss_witness",
    "rigid_fifo",
    "run_related",
    "widest_fit",
]
