"""Rigid parallel jobs extension (paper Section 8).

The paper schedules *sequential* jobs and notes: "our fair scheduling
algorithm is also applicable for parallel jobs (jobs requiring more than
one processor).  However, for the case of parallel jobs the loss of the
global efficiency of an arbitrary greedy algorithm can be higher" than the
25% of Theorem 6.2.  This module implements the rigid-job model (a job
needs ``width`` machines simultaneously for ``size`` time units) and
exhibits that efficiency loss.

Greedy here means: whenever some waiting job *fits* in the free machines,
one is started (pure space sharing, no backfilling reservations -- the
regime the paper's remark refers to).  The witness below shows utilization
dropping strictly below 3/4.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable

from ..utility.strategyproof import psi_sp

__all__ = [
    "RigidJob",
    "RigidEngine",
    "rigid_fifo",
    "widest_fit",
    "parallel_loss_witness",
]


@dataclass(frozen=True, slots=True, order=True)
class RigidJob:
    """A rigid parallel job: ``width`` machines for ``size`` time units."""

    release: int
    org: int
    index: int
    size: int
    width: int = 1

    def __post_init__(self) -> None:
        if self.release < 0 or self.size < 1 or self.width < 1:
            raise ValueError("invalid rigid job parameters")

    @property
    def area(self) -> int:
        """Machine-time units the job consumes (width x size)."""
        return self.width * self.size


class RigidEngine:
    """Event-driven simulator for rigid parallel jobs on ``m`` machines.

    FIFO per organization still applies to *start* order; a job may only
    start when at least ``width`` machines are free.  The greedy invariant
    is width-aware: the engine keeps starting jobs while some waiting
    organization's head job fits.
    """

    def __init__(
        self,
        n_machines: int,
        jobs: Iterable[RigidJob],
        n_orgs: int,
        *,
        horizon: int | None = None,
    ) -> None:
        if n_machines < 1:
            raise ValueError("need at least one machine")
        self.m = n_machines
        self.n_orgs = n_orgs
        self.horizon = horizon
        self._stream = sorted(jobs)
        for j in self._stream:
            if j.width > n_machines:
                raise ValueError(
                    f"job {j} is wider than the machine pool ({n_machines})"
                )
            if j.org >= n_orgs:
                raise ValueError(f"job {j} references unknown org")
        self._pos = 0
        self._pending: dict[int, deque[RigidJob]] = {
            u: deque() for u in range(n_orgs)
        }
        self.t = 0
        self.free = n_machines
        self._busy: list[tuple[int, int]] = []  # (finish, width)
        self.log: list[tuple[RigidJob, int]] = []  # (job, start)

    def next_event_time(self) -> int | None:
        cands = []
        if self._pos < len(self._stream):
            cands.append(self._stream[self._pos].release)
        if self._busy:
            cands.append(self._busy[0][0])
        if not cands:
            return None
        t = min(cands)
        if self.horizon is not None and t >= self.horizon:
            return None
        return t

    def advance_to(self, t: int) -> None:
        if t < self.t:
            raise ValueError("cannot advance backwards")
        while self._busy and self._busy[0][0] <= t:
            _, width = heapq.heappop(self._busy)
            self.free += width
        while self._pos < len(self._stream) and self._stream[self._pos].release <= t:
            j = self._stream[self._pos]
            self._pos += 1
            self._pending[j.org].append(j)
        self.t = t

    def fitting_orgs(self) -> list[int]:
        """Organizations whose FIFO-head job fits in the free machines."""
        return [
            u
            for u in range(self.n_orgs)
            if self._pending[u] and self._pending[u][0].width <= self.free
        ]

    def start_next(self, org: int) -> tuple[RigidJob, int]:
        job = self._pending[org][0]
        if job.width > self.free:
            raise ValueError("head job does not fit")
        self._pending[org].popleft()
        self.free -= job.width
        heapq.heappush(self._busy, (self.t + job.size, job.width))
        self.log.append((job, self.t))
        return job, self.t

    def drive(self, select: Callable[["RigidEngine"], int], until=None) -> None:
        while True:
            t = self.next_event_time()
            if t is None or (until is not None and t > until):
                return
            self.advance_to(t)
            while self.fitting_orgs():
                self.start_next(select(self))

    # -- metrics ------------------------------------------------------------
    def busy_area(self, t: int) -> int:
        """Machine-time units of executed work before ``t``."""
        return sum(
            j.width * min(j.size, max(0, t - s)) for j, s in self.log
        )

    def utilization(self, t: int) -> float:
        if t <= 0:
            return 0.0
        return self.busy_area(t) / (self.m * t)

    def psis(self, t: int) -> list[int]:
        """Per-org psi_sp counting each executed (machine x slot) cell as a
        unit part -- the natural rigid-job generalization of Eq. 3."""
        out = [0] * self.n_orgs
        for j, s in self.log:
            out[j.org] += j.width * psi_sp([(s, j.size)], t)
        return out


def rigid_fifo(engine: RigidEngine) -> int:
    """Start the fitting head job that was released earliest."""
    return min(
        engine.fitting_orgs(),
        key=lambda u: (engine._pending[u][0].release, u),
    )


def widest_fit(engine: RigidEngine) -> int:
    """Start the widest fitting head job (a packing-friendly greedy)."""
    return max(
        engine.fitting_orgs(),
        key=lambda u: (engine._pending[u][0].width, -u),
    )


def parallel_loss_witness() -> tuple[float, float]:
    """An instance where greedy utilization drops far below Theorem 6.2's
    3/4 -- the paper's Section 8 remark, witnessed.

    m machines; at t=0 one 1-wide, L-long job and one m-wide, L-long job.
    A FIFO greedy starts the thin job first (it fits); the m-wide job then
    cannot start before t=L, so at T=L utilization is ``L / (mL) = 1/m``,
    while starting the wide job first achieves 100%.  With m=8 the greedy
    ratio is 0.125 -- sequential-job guarantees simply do not carry over to
    rigid jobs.

    Returns (greedy-FIFO utilization, wide-first utilization) at T = L.
    """
    m, length = 8, 2
    jobs = [
        RigidJob(0, 0, 0, length, 1),
        RigidJob(0, 1, 0, length, m),
    ]
    t_end = length
    eng = RigidEngine(m, jobs, 2)
    eng.drive(rigid_fifo, until=t_end)
    greedy_util = eng.utilization(t_end)
    # the packing-aware order: start the wide job first
    opt = RigidEngine(m, jobs, 2)

    def wide_first(engine: RigidEngine) -> int:
        fits = engine.fitting_orgs()
        return 1 if 1 in fits else fits[0]

    opt.drive(wide_first, until=t_end)
    return greedy_util, opt.utilization(t_end)
