"""Adaptive-N sampled Shapley with per-decision certification (DESIGN.md §12.2).

RAND fixes its sample budget up front (N = 15/75, or Theorem 5.6's
worst-case Hoeffding choice, which is quadratic in k).  But the scheduler
does not need tight contribution *values* -- it needs the right *winner*
of ``argmax(phi - psi)``, and most decisions are easy: one org waiting, or
one org far ahead.  :class:`AdaptiveRun` therefore pre-draws its orderings
in geometric **waves** (each wave its own lazily-driven oracle
:class:`~repro.core.fleet.CoalitionFleet`) and, at each decision, activates
waves only until the confidence intervals separate the winner from every
rival -- or the budget runs dry, in which case the decision is taken on
the best estimate and honestly flagged uncertified.

Every job start emits a :class:`DecisionCertificate`.  Three certificate
kinds are sound by construction:

* ``singleton`` -- one org waiting: no sampling can change the winner;
* ``degenerate`` -- no released work could have executed by ``t`` (the
  FIFO-driven full-member coalition, always in the sample, has value 0),
  so every true key is 0 and the tie-break (lowest org id) is exact;
* ``separated`` -- the winner's lower confidence bound strictly clears
  every rival's upper bound, where half-widths are the tighter of
  Hoeffding and empirical-Bernstein at a union-bounded ``delta`` (split
  over members, waves, and the two interval families).  The marginal
  range feeding both bounds is per-member: org ``u``'s marginal
  contribution at time ``t`` is within ``t * (2*W_u(t) + m_u*t)`` of 0,
  where ``W_u(t)`` is ``u``'s released work and ``m_u`` its machines --
  ``u``'s jobs add at most ``W_u(t)`` executed units and its machines at
  most ``m_u*t``, each worth at most ``t`` under psi_sp, and ``u``'s jobs
  can displace at most the machine-time they consume (exact for unit
  jobs, where greedy schedules are optimal and the game is monotone; for
  general sizes a greedy-anomaly caveat applies, which the agreement
  suite checks empirically).  This is ~k times tighter than the naive
  ``2 * max |coalition value|`` bound, which is also applied as a
  fallback cap.

A fourth kind, ``exact``, is the ladder's bottom rung: when the sample
budget covers *every* joining order (``k! <= n_max``), Monte-Carlo
estimation is pointless -- the deduplicated sampled prefixes would
approach the full ``2^k - 1`` lattice anyway -- so the run builds the
lattice outright and takes the subset-formula Shapley value
(:func:`~repro.shapley.exact.shapley_exact_scaled`) over the FIFO-driven
coalition values.  Every contested decision is then exact (ties broken
canonically), which also covers the case CI separation structurally
cannot: exact key ties, common whenever the game is locally additive.
At larger ``k`` a persistent tie among rivals keeps the decision
*uncertified* -- a tie observed in the sample is not a proof of a tie.

Exact integer key comparisons are preserved: the decision itself uses
``sum-of-sampled-marginals - n*psi`` exactly like RAND; floats only decide
*when to stop sampling* and whether to stamp the certificate.  Runs are
deterministic given a seed, so the online service replays them
bit-identically through snapshot/restore.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from ..algorithms.base import (
    Scheduler,
    SchedulerResult,
    fair_select,
    members_mask,
)
from bisect import bisect_left, bisect_right
from math import factorial

from ..algorithms.greedy import fifo_select
from ..core.coalition import iter_subsets
from ..core.fleet import CoalitionFleet
from ..core.workload import Workload
from ..shapley.confidence import interval_halfwidth, separates_argmax
from ..shapley.exact import shapley_exact_scaled
from ..shapley.sampling import ORDERING_SAMPLERS, SampledPrefixes, hoeffding_samples

__all__ = [
    "AdaptiveRun",
    "AdaptiveScheduler",
    "CertificateSummary",
    "DecisionCertificate",
    "summarize_certificates",
]


@dataclass(frozen=True)
class DecisionCertificate:
    """One job-start decision's audit record.

    ``kind`` is ``"singleton"`` / ``"degenerate"`` / ``"separated"`` /
    ``"exact"`` (certified) or ``"budget_exhausted"`` (uncertified).  ``n_used`` is
    the orderings consumed for this decision's estimate (0 when no
    sampling was needed), ``budget`` the total available.  ``halfwidth``
    is the winner's confidence half-width on the mean-key scale and
    ``margin`` the worst-case separation  ``min_rivals(lo_winner -
    hi_rival)`` (``inf`` for structural certificates).  ``waiting`` and
    ``psis`` (aligned with ``members``) freeze the decision state so the
    exact-oracle comparator can re-score it independently.
    """

    t: int
    winner: int
    certified: bool
    kind: str
    n_used: int
    budget: int
    halfwidth: float
    margin: float
    waiting: tuple[int, ...]
    members: tuple[int, ...]
    psis: tuple[int, ...]


@dataclass(frozen=True)
class CertificateSummary:
    """Aggregate view of a run's certificates."""

    decisions: int
    certified: int
    uncertified: int
    samples_mean: float
    samples_max: int

    @property
    def certified_rate(self) -> float:
        return self.certified / self.decisions if self.decisions else 1.0


def summarize_certificates(
    certificates: "Iterable[DecisionCertificate]",
) -> CertificateSummary:
    certs = list(certificates)
    n = len(certs)
    good = sum(1 for c in certs if c.certified)
    used = [c.n_used for c in certs]
    return CertificateSummary(
        decisions=n,
        certified=good,
        uncertified=n - good,
        samples_mean=(sum(used) / n) if n else 0.0,
        samples_max=max(used, default=0),
    )


def wave_sizes(n_min: int, n_max: int) -> list[int]:
    """Geometric wave plan: cumulative budgets n_min, 2*n_min, 4*n_min,
    ... capped at n_max (the final wave is truncated to land exactly on
    the budget)."""
    if n_min < 1 or n_max < n_min:
        raise ValueError("need 1 <= n_min <= n_max")
    sizes = [n_min]
    total = n_min
    while total < n_max:
        step = min(total, n_max - total)
        sizes.append(step)
        total += step
    return sizes


class _Wave:
    """One wave's orderings, sampled-prefix structure, and oracle fleet.

    The prefix walk and the oracle fleet are built on first use: a wave
    that no decision ever escalates to costs only its (pre-drawn)
    ordering array.  Accessing :attr:`oracle` (as the online adapter
    does, to mirror submissions) forces construction.
    """

    def __init__(
        self,
        k: int,
        orderings: np.ndarray,
        oracle_factory: "Callable[[list[int]], CoalitionFleet]",
    ):
        self._k = k
        self._orderings = orderings
        self._factory = oracle_factory
        self.n = int(orderings.shape[0])
        self._built = False

    def _ensure(self) -> None:
        if self._built:
            return
        self.prefixes = SampledPrefixes(self._k, self._orderings)
        self.sampled = sorted(m for m in self.prefixes.masks if m)
        self.order_t = tuple(self.sampled)
        self._oracle = self._factory(self.sampled)
        self._built = True

    @property
    def oracle(self) -> CoalitionFleet:
        self._ensure()
        return self._oracle

    def stats(
        self, t: int
    ) -> "tuple[list[int], dict[int, np.ndarray], int]":
        """``(exact scaled sums, per-member float marginal samples, max
        absolute sampled value)`` at time ``t``.  Sums reuse RAND's
        guarded int64 matvec with exact big-int fallback; the per-sample
        view (variance only) is float."""
        self._ensure()
        arr = self.oracle.values_array(t, select=fifo_select)
        sums = None
        if arr is not None and len(arr) and self.oracle.masks == self.order_t:
            max_abs = int(np.abs(arr).max())
            sums = self.prefixes.estimate_scaled_array(
                self.order_t, arr, max_abs
            )
            arr_f = arr.astype(np.float64)
        if sums is None:
            values = self.oracle.values_at(t, select=fifo_select)
            sums = self.prefixes.estimate_scaled(values)
            max_abs = max(
                (abs(values[m]) for m in self.order_t), default=0
            )
            arr_f = np.array(
                [float(values[m]) for m in self.order_t], dtype=np.float64
            )
        marginals = {
            u: s.astype(np.float64) if s.dtype != np.float64 else s
            for u, s in self.prefixes.marginal_samples(
                self.order_t, arr_f
            ).items()
        }
        return list(map(int, sums)), marginals, int(max_abs)


class AdaptiveRun:
    """One adaptive run's state plus its per-event body.

    Mirrors :class:`~repro.algorithms.rand.RandRun`'s interface (``drive``
    for batch, ``step`` for the online service, ``oracle_factory`` /
    ``fleet`` injection for dynamic cluster state) so the same adapters
    carry it.  All waves are drawn at construction from the seeded RNG --
    adaptivity controls which waves are *valued*, never which exist, which
    is what keeps replays and snapshot/restore bit-identical.
    """

    def __init__(
        self,
        workload: Workload,
        members_t: tuple[int, ...],
        grand_mask: int,
        rng: np.random.Generator,
        horizon: "int | None",
        *,
        epsilon: float = 0.1,
        delta: float = 0.05,
        n_min: int = 8,
        n_max: int = 1024,
        sampler: "str | Callable" = "antithetic",
        oracle_factory: "Callable[[list[int]], CoalitionFleet] | None" = None,
        fleet: "CoalitionFleet | None" = None,
    ) -> None:
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        self.members_t = members_t
        self.grand_mask = grand_mask
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        k_members = len(members_t)
        if n_max <= 0:
            # auto budget: the Theorem 5.6 worst-case choice
            n_max = hoeffding_samples(k_members, epsilon, 1.0 - delta)
        self.n_min = int(min(n_min, n_max))
        self.n_max = int(n_max)
        member_arr = np.array(members_t, dtype=np.int64)
        draw = (
            ORDERING_SAMPLERS[sampler] if isinstance(sampler, str) else sampler
        )
        factory = oracle_factory or (
            lambda sampled: CoalitionFleet(
                workload, sampled, horizon=horizon, track_events=False
            )
        )
        k = workload.n_orgs
        self._n_orgs = k
        # bottom rung: when the budget covers every joining order, the
        # deduplicated sampled prefixes would approach the full lattice
        # anyway -- build it outright and be exact (every contested
        # decision certified, kind="exact").  The mode depends only on
        # (k_members, n_max), so replays pick the same rung every time.
        self.exact_mode = (
            k_members > 0 and factorial(k_members) <= self.n_max
        )
        if self.exact_mode:
            self.waves: list[_Wave] = []
            self._exact_oracle = factory(
                [sub for sub in iter_subsets(grand_mask) if sub]
            )
        else:
            self._exact_oracle = None
            self.waves = [
                _Wave(k, draw(member_arr, size, rng), factory)
                for size in wave_sizes(self.n_min, self.n_max)
            ]
        # delta budget: union bound over members, waves, and the two
        # interval families raced inside interval_halfwidth
        self._delta_each = self.delta / (
            2.0 * max(1, k_members) * max(1, len(self.waves))
        )
        self.fleet = (
            fleet
            if fleet is not None
            else CoalitionFleet(workload, (grand_mask,), horizon=horizon)
        )
        self.grand = self.fleet.engine(grand_mask)
        self.certificates: list[DecisionCertificate] = []
        # per-member marginal-range ingredients: sorted release times with
        # work prefix sums, and machine counts
        self._releases: dict[int, list[int]] = {}
        self._work_cum: dict[int, list[int]] = {}
        for u in members_t:
            jobs = sorted(
                (j.release, j.size) for j in workload.jobs if j.org == u
            )
            rel, cum = [], [0]
            for r, p in jobs:
                rel.append(r)
                cum.append(cum[-1] + p)
            self._releases[u] = rel
            self._work_cum[u] = cum
        self._machines = {
            u: workload.organizations[u].machines for u in members_t
        }

    # ------------------------------------------------------------------
    @property
    def oracles(self) -> "tuple[CoalitionFleet, ...]":
        """Every oracle fleet (the online adapter feeds them all)."""
        if self.exact_mode:
            return (self._exact_oracle,)
        return tuple(w.oracle for w in self.waves)

    def drive(self) -> int:
        from ..algorithms.base import drive_fleet

        return drive_fleet(self.fleet, self._on_event)

    def step(self, t: int) -> None:
        self._on_event(self.fleet, t)

    def summary(self) -> CertificateSummary:
        return summarize_certificates(self.certificates)

    # ------------------------------------------------------------------
    def _on_event(self, fleet: CoalitionFleet, t: int) -> None:
        fleet.advance_all(t)
        grand = self.grand
        if grand.free_count == 0 or not grand.has_waiting():
            return
        psis = grand.psis(t)
        psis_t = tuple(psis[u] for u in self.members_t)
        # per-event estimate state, escalated lazily at the first
        # contested pick and frozen for the rest of the event (keys are
        # fixed within an event, exactly like REF/RAND)
        est: "dict | None" = None
        while grand.free_count > 0 and grand.has_waiting():
            waiting = tuple(grand.waiting_orgs())
            if len(waiting) == 1:
                winner = waiting[0]
                self.certificates.append(
                    DecisionCertificate(
                        t=t, winner=winner, certified=True,
                        kind="singleton",
                        n_used=0 if est is None else est["n"],
                        budget=self.n_max, halfwidth=0.0,
                        margin=float("inf"), waiting=waiting,
                        members=self.members_t, psis=psis_t,
                    )
                )
                fleet.start_next(self.grand_mask, winner)
                continue
            if est is None:
                est = self._estimate(t, waiting, psis)
            winner = fair_select(waiting, est["keys"])
            cert = self._certify(t, waiting, winner, psis, est)
            self.certificates.append(cert)
            fleet.start_next(self.grand_mask, winner)

    def _estimate(self, t: int, waiting, psis) -> dict:
        """Activate waves until the argmax separates (or budget is dry);
        return the frozen per-event estimate state."""
        if self.exact_mode:
            return self._estimate_exact(t, psis)
        sums = {u: 0 for u in self.members_t}
        samples = {u: [] for u in self.members_t}
        n = 0
        max_abs = 0
        done = 0
        separated = False
        for wave in self.waves:
            wave_sums, wave_marg, wave_max = wave.stats(t)
            n += wave.n
            done += 1
            max_abs = max(max_abs, wave_max)
            for u in self.members_t:
                sums[u] += wave_sums[u]
                if u in wave_marg:
                    samples[u].append(wave_marg[u])
            state = self._interval_state(t, sums, samples, psis, n, max_abs)
            keys = state["keys"]
            winner = fair_select(waiting, keys)
            if max_abs == 0 and all(psis[u] == 0 for u in waiting):
                # degenerate: the FIFO-driven full-member coalition (always
                # sampled) did zero work, so no coalition could have -- all
                # true keys are exactly 0 and the tie-break is exact
                separated = True
                state["degenerate"] = True
                break
            if separates_argmax(
                winner, waiting, state["means"], state["halfwidths"]
            ):
                separated = True
                break
        state["n"] = n
        state["waves_used"] = done
        state["separated"] = separated
        state.setdefault("degenerate", False)
        return state

    def _estimate_exact(self, t: int, psis) -> dict:
        """Bottom-rung state: exact subset-formula keys from the full
        FIFO-driven lattice (no sampling, nothing to separate)."""
        values = self._exact_oracle.values_at(t, select=fifo_select)
        vf = lambda m: 0 if m == 0 else values[m]  # noqa: E731
        phi_scaled, denom = shapley_exact_scaled(
            vf, self._n_orgs, grand=self.grand_mask
        )
        keys = {
            u: phi_scaled[u] - denom * psis[u] for u in self.members_t
        }
        return {
            "keys": keys,
            "n": 0,
            "waves_used": 0,
            "separated": True,
            "degenerate": False,
            "exact": True,
        }

    def note_job(self, job) -> None:
        """Online ingest: fold one submitted job into the per-member
        marginal-range ledger.  Construction only sees ``workload.jobs``,
        and the service builds runs over jobless workloads -- without
        this hook the range bound would undercount released work and the
        certificates would be unsound."""
        rel = self._releases.get(job.org)
        if rel is None:
            return
        cum = self._work_cum[job.org]
        i = bisect_right(rel, job.release)
        rel.insert(i, job.release)
        cum.insert(i + 1, cum[i] + job.size)
        for j in range(i + 2, len(cum)):
            cum[j] += job.size

    def note_machines(self, machines: "dict[int, int]") -> None:
        """Online ingest: refresh members' live machine counts (range
        bound ingredient; ids absent from ``machines`` keep their
        count, non-members are ignored)."""
        for u, m in machines.items():
            if u in self._machines:
                self._machines[u] = int(m)

    def _marginal_range(self, u: int, t: int) -> float:
        """Sound width of org ``u``'s marginal-contribution range at
        ``t``: its jobs add at most ``W_u(t)`` executed units, its
        machines at most ``m_u * t``, each worth at most ``t`` under
        psi_sp, and its jobs displace at most the ``W_u(t)`` machine-time
        they consume."""
        released = self._work_cum[u][bisect_left(self._releases[u], t)]
        return float(t) * (2.0 * released + self._machines[u] * t)

    def _interval_state(self, t, sums, samples, psis, n, max_abs) -> dict:
        """Float means/half-widths on the mean-key scale plus the exact
        integer decision keys."""
        keys = {u: sums[u] - n * psis[u] for u in self.members_t}
        means: dict[int, float] = {}
        halfwidths: dict[int, float] = {}
        # fallback range: sampled values are nonnegative (psi_sp is a sum
        # of nonnegative utilities) and every with-u coalition is itself
        # sampled, so each marginal lies in [-M, M] with M the largest
        # sampled value; the per-member bound is usually ~k times tighter
        global_range = 2.0 * float(max_abs)
        for u in self.members_t:
            parts = samples[u]
            if parts:
                x = np.concatenate(parts)
                mean_phi = float(x.mean())
                var = float(x.var())
                count = len(x)
            else:
                mean_phi, var, count = 0.0, 0.0, max(1, n)
            means[u] = mean_phi - float(psis[u])
            value_range = min(global_range, self._marginal_range(u, t))
            halfwidths[u] = (
                interval_halfwidth(count, var, value_range, self._delta_each)
                if value_range > 0
                else 0.0
            )
        return {
            "keys": keys,
            "means": means,
            "halfwidths": halfwidths,
            "max_abs": max_abs,
        }

    def _certify(
        self, t: int, waiting, winner: int, psis, est: dict
    ) -> DecisionCertificate:
        """Stamp one pick against the frozen per-event estimate (the
        waiting set shrinks as the event's capacity fills; separation is
        re-checked against the current rivals)."""
        if est.get("exact"):
            return DecisionCertificate(
                t=t, winner=winner, certified=True, kind="exact",
                n_used=0, budget=self.n_max, halfwidth=0.0,
                margin=float("inf"), waiting=tuple(waiting),
                members=self.members_t,
                psis=tuple(psis[u] for u in self.members_t),
            )
        if est["degenerate"] and all(psis[u] == 0 for u in waiting):
            return DecisionCertificate(
                t=t, winner=winner, certified=True, kind="degenerate",
                n_used=est["n"], budget=self.n_max, halfwidth=0.0,
                margin=float("inf"), waiting=tuple(waiting),
                members=self.members_t,
                psis=tuple(psis[u] for u in self.members_t),
            )
        means, halfwidths = est["means"], est["halfwidths"]
        lo = means[winner] - halfwidths[winner]
        margin = min(
            (lo - (means[u] + halfwidths[u]) for u in waiting if u != winner),
            default=float("inf"),
        )
        ok = separates_argmax(winner, waiting, means, halfwidths)
        return DecisionCertificate(
            t=t, winner=winner, certified=ok,
            kind="separated" if ok else "budget_exhausted",
            n_used=est["n"], budget=self.n_max,
            halfwidth=halfwidths[winner], margin=margin,
            waiting=tuple(waiting), members=self.members_t,
            psis=tuple(psis[u] for u in self.members_t),
        )


class AdaptiveScheduler(Scheduler):
    """``ref_adaptive``: certified adaptive-N sampled Shapley scheduling.

    Parameters mirror :class:`AdaptiveRun`; ``n_max=0`` selects the
    Theorem 5.6 worst-case budget automatically from ``epsilon`` /
    ``delta`` (honest but quadratic in k -- the explicit default keeps
    the oracle fleet bounded).
    """

    name = "RefAdaptive"

    def __init__(
        self,
        seed: "int | np.random.Generator | None" = 0,
        horizon: "int | None" = None,
        *,
        epsilon: float = 0.1,
        delta: float = 0.05,
        n_min: int = 8,
        n_max: int = 1024,
        sampler: str = "antithetic",
    ):
        self.horizon = horizon
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.n_min = int(n_min)
        self.n_max = int(n_max)
        self.sampler = sampler
        self._seed = seed
        self.name = f"RefAdaptive(delta={self.delta:g},n_max={self.n_max})"

    def run(
        self, workload: Workload, members: Iterable[int] | None = None
    ) -> SchedulerResult:
        members_t, grand_mask = members_mask(workload, members)
        rng = (
            self._seed
            if isinstance(self._seed, np.random.Generator)
            else np.random.default_rng(self._seed)
        )
        run = AdaptiveRun(
            workload,
            members_t,
            grand_mask,
            rng,
            self.horizon,
            epsilon=self.epsilon,
            delta=self.delta,
            n_min=self.n_min,
            n_max=self.n_max,
            sampler=self.sampler,
        )
        run.drive()
        summary = run.summary()
        return SchedulerResult(
            algorithm=self.name,
            workload=workload,
            members=members_t,
            schedule=run.grand.schedule(),
            horizon=self.horizon,
            meta={
                "certificates": tuple(run.certificates),
                "decisions": summary.decisions,
                "certified": summary.certified,
                "certified_rate": summary.certified_rate,
                "samples_mean": summary.samples_mean,
                "samples_max": summary.samples_max,
                "budget": run.n_max,
            },
        )
