"""Certified approximation ladder: past the exact k<=10 ceiling (DESIGN.md §12).

Exact REF keeps one simulation per nonempty subcoalition -- 2^k engines --
so every exact path in the repo is hard-capped at ``max_orgs=10``.  This
package is the escape hatch the paper's own Theorems 5.6-5.7 point to,
packaged as three registered policies:

* ``ref_stratified`` (:class:`StratifiedScheduler`) -- RAND's fixed-N
  estimator on variance-reduced joining orders: position-stratified
  cyclic-rotation blocks, antithetic reverse pairing, or both
  (:data:`repro.shapley.sampling.ORDERING_SAMPLERS`);
* ``ref_adaptive`` (:class:`AdaptiveScheduler`) -- adaptive-N with
  decision certification: the sample grows in pre-drawn waves until
  Hoeffding / empirical-Bernstein confidence intervals *separate the
  argmax* of the Fig. 3 fair-select decision, emitting a
  :class:`DecisionCertificate` per job start (budget spent, CI width,
  certified/uncertified);
* ``ref_hier`` (:class:`HierScheduler`) -- hierarchical block mode:
  exact Shapley inside <=10-org blocks, exact or sampled Shapley across
  blocks, lifting the ceiling to k = 50-200.

:mod:`repro.approx.validate` holds the exact-oracle comparator the
agreement tests (and ``repro gap --policy``) score these policies with.
"""

from .adaptive import (
    AdaptiveRun,
    AdaptiveScheduler,
    CertificateSummary,
    DecisionCertificate,
    summarize_certificates,
)
from .hier import HierRun, HierScheduler, org_blocks
from .stratified import StratifiedScheduler
from .validate import agreement_report, exact_oracle_keys

__all__ = [
    "AdaptiveRun",
    "AdaptiveScheduler",
    "CertificateSummary",
    "DecisionCertificate",
    "HierRun",
    "HierScheduler",
    "StratifiedScheduler",
    "agreement_report",
    "exact_oracle_keys",
    "org_blocks",
    "summarize_certificates",
]
