"""``ref_hier``: hierarchical block-decomposed Shapley fair scheduling.

Exact REF needs one engine per nonempty subcoalition (``2^k``), which caps
``k`` at 10.  The hierarchical mode partitions the ``k`` organizations into
consecutive blocks of at most ``block_size`` members and plays *two* exact
(or near-exact) games instead of one exponential game:

* a **within-block game** per block ``B``: the characteristic function
  restricted to subsets of ``B`` (``2^|B|`` engines per block);
* an **across-block game** whose players are the blocks themselves and
  whose coalitions are unions of whole blocks (``2^(#blocks)`` engines when
  ``#blocks <= max_exact_blocks``, else ``N`` sampled block-joining orders
  a la RAND).

The per-organization contribution is the standard two-level decomposition

``phi_u = Sh_u(w_B)  +  (Phi_B - w_B(B)) / |B|``,

i.e. the exact Shapley share of ``u`` inside its own block plus an equal
split of the block's *synergy* -- the across-block Shapley value of block
``B`` minus the block's stand-alone value.  When the across-block game is
exact this preserves efficiency (``sum_u phi_u = v(grand)``) because both
levels' Shapley values are efficient; it is *not* the true ``k``-player
Shapley value (cross-block asymmetries inside a block are averaged), which
is why ``ref_hier`` registers with ``exact=False``.  All key comparisons
use :class:`fractions.Fraction` -- no floating point can flip a decision.

Engine budget: ``#blocks * 2^block_size + 2^(#blocks)`` coalitions, e.g.
k=100 with block_size=10 is ~11k engines versus REF's 2^100.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

import numpy as np

from ..algorithms.base import (
    Scheduler,
    SchedulerResult,
    drive_fleet,
    fill_capacity,
    members_mask,
)
from ..algorithms.greedy import fifo_select
from ..core.coalition import iter_subsets
from ..core.fleet import CoalitionFleet
from ..core.workload import Workload
from ..shapley.exact import shapley_exact_scaled
from ..shapley.sampling import SampledPrefixes, sample_member_orderings

__all__ = ["HierRun", "HierScheduler", "org_blocks"]


def org_blocks(
    members: "tuple[int, ...]", block_size: int
) -> "tuple[tuple[int, ...], ...]":
    """Partition ``members`` into consecutive blocks of ``<= block_size``.

    Deterministic (id order), so the decomposition -- and therefore every
    scheduling decision -- is reproducible from the member set alone.
    """
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    return tuple(
        tuple(members[i : i + block_size])
        for i in range(0, len(members), block_size)
    )


class HierRun:
    """One hierarchical run: block decomposition, oracle fleet, event body.

    Mirrors :class:`~repro.algorithms.rand.RandRun`: construction draws
    nothing but sets up the coalition oracle (within-block subsets plus
    across-block unions); :meth:`drive` runs the carrier's decision loop.
    Batch-only -- the across-block coalition set is fixed at construction,
    so there is no online join/leave story (``step=False`` in the
    registry).
    """

    def __init__(
        self,
        workload: Workload,
        members_t: "tuple[int, ...]",
        grand_mask: int,
        rng: "np.random.Generator",
        horizon: "int | None",
        *,
        block_size: int = 10,
        n_orderings: int = 15,
        max_exact_blocks: int = 10,
    ) -> None:
        if n_orderings < 1:
            raise ValueError("need at least one sampled block ordering")
        self.members_t = members_t
        self.grand_mask = grand_mask
        self.blocks = org_blocks(members_t, block_size)
        self.block_of = {
            u: b for b, block in enumerate(self.blocks) for u in block
        }
        self.block_masks = tuple(
            sum(1 << u for u in block) for block in self.blocks
        )
        n_blocks = len(self.blocks)
        self.n_blocks = n_blocks
        self.exact_across = n_blocks <= max_exact_blocks
        coalitions: set[int] = set()
        for bmask in self.block_masks:
            for sub in iter_subsets(bmask):
                if sub:
                    coalitions.add(sub)
        # map across-game coalitions (bitmasks over *block indices*) to
        # org-level union masks
        self._union: dict[int, int] = {0: 0}
        if self.exact_across:
            self.block_prefixes = None
            self.n_orderings = 1
            for bsub in iter_subsets((1 << n_blocks) - 1):
                if bsub:
                    self._union[bsub] = self._union_of(bsub)
        else:
            orderings = sample_member_orderings(
                np.arange(n_blocks, dtype=np.int64), n_orderings, rng
            )
            self.block_prefixes = SampledPrefixes(n_blocks, orderings)
            self.n_orderings = n_orderings
            for bsub in self.block_prefixes.masks:
                if bsub:
                    self._union[bsub] = self._union_of(bsub)
        coalitions.update(m for m in self._union.values() if m)
        self.sampled = sorted(coalitions)
        self.oracle = CoalitionFleet(
            workload, self.sampled, horizon=horizon, track_events=False
        )
        self.fleet = CoalitionFleet(workload, (grand_mask,), horizon=horizon)
        self.grand = self.fleet.engine(grand_mask)
        self._n_orgs = workload.n_orgs

    def _union_of(self, block_subset: int) -> int:
        mask = 0
        b = 0
        while block_subset >> b:
            if (block_subset >> b) & 1:
                mask |= self.block_masks[b]
            b += 1
        return mask

    def drive(self) -> int:
        """Run the carrier's decision loop to exhaustion / the horizon."""
        return drive_fleet(self.fleet, self._on_event)

    def keys_at(self, t: int) -> "dict[int, Fraction]":
        """The exact-rational ``phi_u - psi_u`` keys at decision time ``t``
        under the two-level decomposition (the quantity Fig. 3's
        SelectAndSchedule maximizes)."""
        values = self.oracle.values_at(t, select=fifo_select)
        psis = self.grand.psis(t)
        vf = lambda m: 0 if m == 0 else values[m]  # noqa: E731

        # across-block game: Phi_B as (numerator, denominator)
        if self.exact_across:
            shA, denomA = shapley_exact_scaled(
                lambda bm: vf(self._union[bm]), self.n_blocks
            )
        else:
            valsA = {bm: vf(self._union[bm]) for bm in self.block_prefixes.masks}
            shA = self.block_prefixes.estimate_scaled(valsA)
            denomA = self.block_prefixes.n

        keys: dict[int, Fraction] = {}
        for b, (block, bmask) in enumerate(zip(self.blocks, self.block_masks)):
            shW, denomW = shapley_exact_scaled(
                vf, self._n_orgs, grand=bmask
            )
            synergy = Fraction(shA[b], denomA) - vf(bmask)
            share = synergy / len(block)
            for u in block:
                keys[u] = Fraction(shW[u], denomW) + share - psis[u]
        return keys

    def _on_event(self, fleet: CoalitionFleet, t: int) -> None:
        fleet.advance_all(t)
        grand = self.grand
        if grand.free_count == 0 or not grand.has_waiting():
            return
        fill_capacity(fleet, self.grand_mask, self.keys_at(t))


class HierScheduler(Scheduler):
    """Hierarchical block-decomposed fair scheduler (``ref_hier``).

    Parameters
    ----------
    block_size:
        Maximum organizations per exact block (``<= 10``; each block costs
        ``2^block_size`` engines).
    n_orderings:
        Sampled block-joining orders used only when the number of blocks
        exceeds ``max_exact_blocks``.
    seed:
        Seed for the block-ordering draws; unused (but still accepted) in
        the fully exact regime, so results there are seed-independent.
    max_exact_blocks:
        Block-count threshold below which the across-block game is exact.
    """

    name = "RefHier"

    def __init__(
        self,
        block_size: int = 10,
        n_orderings: int = 15,
        seed: "int | np.random.Generator | None" = 0,
        horizon: "int | None" = None,
        *,
        max_exact_blocks: int = 10,
    ):
        if not 1 <= block_size <= 10:
            raise ValueError("block_size must be in [1, 10]")
        self.block_size = int(block_size)
        self.n_orderings = int(n_orderings)
        self.horizon = horizon
        self.max_exact_blocks = int(max_exact_blocks)
        self._seed = seed
        self.name = f"RefHier(b={block_size})"

    def run(
        self, workload: Workload, members: "Iterable[int] | None" = None
    ) -> SchedulerResult:
        """Build the hierarchical fair schedule for ``members``."""
        members_t, grand_mask = members_mask(workload, members)
        rng = (
            self._seed
            if isinstance(self._seed, np.random.Generator)
            else np.random.default_rng(self._seed)
        )
        run = HierRun(
            workload,
            members_t,
            grand_mask,
            rng,
            self.horizon,
            block_size=self.block_size,
            n_orderings=self.n_orderings,
            max_exact_blocks=self.max_exact_blocks,
        )
        run.drive()
        return SchedulerResult(
            algorithm=self.name,
            workload=workload,
            members=members_t,
            schedule=run.grand.schedule(),
            horizon=self.horizon,
            meta={
                "block_size": self.block_size,
                "n_blocks": run.n_blocks,
                "exact_across": run.exact_across,
                "n_coalitions": len(run.sampled),
            },
        )
