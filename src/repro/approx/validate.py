"""Exact-oracle comparator for the certified approximation ladder.

The adaptive certifier estimates, per decision time ``t``, the Shapley
value of the *FIFO-driven* scheduling game: each sampled prefix coalition
is tracked by its own greedy FIFO schedule (exactly RAND's oracle, exact
for unit jobs by Prop. 5.4).  The estimand is therefore reproducible
without sampling at ``k <= 10``: build the full ``2^k - 1`` coalition
lattice, FIFO-drive it to ``t``, and take the exact subset-formula Shapley
value (Eq. 1).  A *certified* adaptive decision claims its winner equals
the argmax of ``phi - psi`` under that exact value -- this module checks
the claim, decision by decision, from the frozen state each
:class:`~repro.approx.adaptive.DecisionCertificate` carries.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..algorithms.base import fair_select, members_mask
from ..algorithms.greedy import fifo_select
from ..core.coalition import iter_subsets
from ..core.fleet import CoalitionFleet
from ..core.workload import Workload
from ..shapley.exact import shapley_exact_scaled

__all__ = ["ExactDecisionOracle", "agreement_report", "exact_oracle_keys"]

#: Largest member count the full-lattice oracle will build (2^k engines).
ORACLE_MAX_ORGS = 12


class ExactDecisionOracle:
    """Full-lattice FIFO-driven exact Shapley keys, advanced incrementally.

    One fleet serves a whole transcript of decisions as long as the query
    times are non-decreasing (certificates from one run always are).
    """

    def __init__(
        self,
        workload: Workload,
        members: "Iterable[int] | None" = None,
        horizon: "int | None" = None,
    ) -> None:
        self.members_t, self.grand_mask = members_mask(workload, members)
        if len(self.members_t) > ORACLE_MAX_ORGS:
            raise ValueError(
                f"exact oracle caps at {ORACLE_MAX_ORGS} orgs "
                f"(got {len(self.members_t)}); it builds 2^k engines"
            )
        masks = [sub for sub in iter_subsets(self.grand_mask) if sub]
        self.fleet = CoalitionFleet(
            workload, masks, horizon=horizon, track_events=False
        )
        self._n_orgs = workload.n_orgs

    def keys(
        self, t: int, psis: "dict[int, int]"
    ) -> "dict[int, int]":
        """Exact integer keys ``k! * (phi_u - psi_u)`` at decision time
        ``t``; ``psis`` is the carrier's executed-parts vector frozen in
        the certificate."""
        values = self.fleet.values_at(t, select=fifo_select)
        vf = lambda m: 0 if m == 0 else values[m]  # noqa: E731
        phi_scaled, denom = shapley_exact_scaled(
            vf, self._n_orgs, grand=self.grand_mask
        )
        return {
            u: phi_scaled[u] - denom * psis[u] for u in self.members_t
        }

    def winner(
        self, t: int, waiting: Sequence[int], psis: "dict[int, int]"
    ) -> int:
        """The exact fair-select winner among ``waiting`` at ``t``."""
        return fair_select(waiting, self.keys(t, psis))


def exact_oracle_keys(
    workload: Workload,
    t: int,
    psis: "dict[int, int]",
    members: "Iterable[int] | None" = None,
    *,
    horizon: "int | None" = None,
) -> "dict[int, int]":
    """One-shot :meth:`ExactDecisionOracle.keys` (builds a fresh lattice;
    use the class directly to score a whole transcript)."""
    return ExactDecisionOracle(workload, members, horizon).keys(t, psis)


def agreement_report(
    workload: Workload,
    certificates: Sequence,
    *,
    horizon: "int | None" = None,
) -> dict:
    """Score a run's :class:`DecisionCertificate` transcript against the
    exact oracle.

    Returns ``{"decisions", "certified", "checked", "agreed",
    "mismatches", "agreement"}`` where ``mismatches`` lists
    ``(t, certified_winner, exact_winner, kind)`` for every *certified*
    decision whose winner differs from the exact argmax (the acceptance
    criterion demands this list be empty) and ``agreement`` is the
    certified-agreement flag.  Uncertified decisions are never counted
    against the policy -- they are exactly the ones the certifier
    declined to vouch for.
    """
    oracle: "ExactDecisionOracle | None" = None
    members_key: "tuple[int, ...] | None" = None
    checked = agreed = certified = 0
    mismatches: list[tuple[int, int, int, str]] = []
    for cert in certificates:
        if not cert.certified:
            continue
        certified += 1
        if len(cert.waiting) <= 1:
            # singleton decisions are trivially exact; skip the lattice
            checked += 1
            agreed += 1
            continue
        if oracle is None or members_key != cert.members:
            oracle = ExactDecisionOracle(workload, cert.members, horizon)
            members_key = cert.members
        psis = dict(zip(cert.members, cert.psis))
        exact_winner = oracle.winner(cert.t, cert.waiting, psis)
        checked += 1
        if exact_winner == cert.winner:
            agreed += 1
        else:
            mismatches.append((cert.t, cert.winner, exact_winner, cert.kind))
    return {
        "decisions": len(certificates),
        "certified": certified,
        "checked": checked,
        "agreed": agreed,
        "mismatches": mismatches,
        "agreement": not mismatches,
    }
