"""``ref_stratified``: RAND on variance-reduced joining orders.

Same Fig. 6 estimator, same exact integer key comparisons -- only the
``Prepare`` draw changes.  Position stratification emits every cyclic
rotation of each drawn permutation, so within one block of ``k``
orderings each member occupies each join position exactly once (the
position-marginal is derandomized); antithetic pairing follows each
ordering with its reverse, cancelling odd symmetric variance components.
Both transforms map uniform permutations to uniform permutations, so the
estimator stays unbiased and Theorem 5.6's Hoeffding budget still
applies -- the variance reduction is pure profit (``repro bench approx``
measures the realized ratio).
"""

from __future__ import annotations

from ..algorithms.rand import RandScheduler

__all__ = ["StratifiedScheduler"]


class StratifiedScheduler(RandScheduler):
    """RAND with position-stratified (and optionally antithetic) draws.

    Parameters mirror :class:`~repro.algorithms.rand.RandScheduler`
    (including the ``epsilon``/``delta``/``n_samples`` budget controls);
    ``antithetic=True`` (the default) pairs every rotation with its
    reverse, ``antithetic=False`` keeps plain rotation blocks.
    """

    def __init__(
        self,
        n_orderings: int = 15,
        seed=0,
        horizon: "int | None" = None,
        *,
        epsilon: float = 0.0,
        delta: float = 0.05,
        n_samples: int = 0,
        antithetic: bool = True,
    ):
        sampler = "stratified_antithetic" if antithetic else "stratified"
        super().__init__(
            n_orderings,
            seed,
            horizon,
            epsilon=epsilon,
            delta=delta,
            n_samples=n_samples,
            sampler=sampler,
        )
        self.antithetic = bool(antithetic)
        if self.n_samples:
            self.name = f"RefStrat(N={self.n_samples})"
        elif self.epsilon:
            self.name = f"RefStrat(eps={self.epsilon:g},delta={self.delta:g})"
        else:
            self.name = f"RefStrat(N={n_orderings})"
