"""Online adapter for the certified adaptive policy (``ref_adaptive``).

Mirrors the online RAND adapter: the physical cluster is the grand
engine of a carrier fleet, the wave oracles are coalition fleets fed
every submission, and a membership change redraws the waves over the new
member set (continuing the policy's RNG stream) with epoch engines that
start at the change clock.  Two adaptive-specific obligations on top:

* the run's waves are built lazily in batch mode, but an oracle fleet
  constructed *after* jobs were submitted would silently miss them --
  the adapter therefore forces every wave at construction / redraw and
  fans each submission out to all of them;
* the certificate soundness bound needs released work and live machine
  counts per member, which the service's jobless/machineless epoch
  workloads cannot provide -- the adapter replays the submission ledger
  into :meth:`AdaptiveRun.note_job` and pushes census machine counts
  through :meth:`AdaptiveRun.note_machines` at every epoch.

Certificates survive membership epochs: ``certificates`` concatenates
every epoch's transcript, so a service-long certified rate is one
:func:`~repro.approx.adaptive.summarize_certificates` call away.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from ..core.fleet import CoalitionFleet
from ..core.job import Job
from ..service.service import _FleetPolicy
from .adaptive import AdaptiveRun, summarize_certificates

__all__ = ["_AdaptivePolicy"]


class _AdaptivePolicy(_FleetPolicy):
    """Online certified adaptive sampling, stepped per event."""

    def __init__(
        self,
        service,
        *,
        epsilon: float = 0.1,
        delta: float = 0.05,
        n_min: int = 8,
        n_max: int = 1024,
        sampler: str = "antithetic",
    ):
        super().__init__(service)
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.n_min = int(n_min)
        self.n_max = int(n_max)
        self.sampler = str(sampler)
        self.name = f"RefAdaptive(delta={self.delta:g},n_max={self.n_max})"
        self.rng = np.random.default_rng(service.seed)
        self.grand_mask = service.census.members_mask
        genesis = service.genesis_workload()
        carrier = CoalitionFleet(
            genesis, (self.grand_mask,), horizon=service.horizon
        )
        self.fleet = carrier
        self._jobs: list[Job] = []
        self.certificates: list = []  # closed epochs' transcripts
        self.run = self._make_run(genesis, carrier, self._genesis_oracle)
        self._oracles = self.run.oracles  # force lazy waves pre-ingest

    # ------------------------------------------------------------------
    def _make_run(self, workload, carrier, factory) -> AdaptiveRun:
        service = self.service
        run = AdaptiveRun(
            workload,
            service.census.members,
            self.grand_mask,
            self.rng,
            service.horizon,
            epsilon=self.epsilon,
            delta=self.delta,
            n_min=self.n_min,
            n_max=self.n_max,
            sampler=self.sampler,
            oracle_factory=factory,
            fleet=carrier,
        )
        run.note_machines(
            Counter(
                owner
                for _, owner in service.census.live_machines(
                    service.census.members
                )
            )
        )
        for job in self._jobs:
            run.note_job(job)
        return run

    def _genesis_oracle(self, sampled: "list[int]") -> CoalitionFleet:
        return CoalitionFleet(
            self.service.genesis_workload(),
            sampled,
            horizon=self.service.horizon,
            track_events=False,
        )

    def _epoch_oracle(self, sampled: "list[int]") -> CoalitionFleet:
        fleet = CoalitionFleet(
            self.service.zero_workload(),
            (),
            horizon=self.service.horizon,
            track_events=False,
        )
        for mask in sampled:
            fleet.add_mask(mask, self.service.build_engine(mask))
        return fleet

    # ------------------------------------------------------------------
    def _round(self, t: int) -> None:
        self.run.step(t)

    def submit(self, job: Job) -> None:
        self.fleet.submit(job)
        for oracle in self._oracles:
            oracle.submit(job)
        self.run.note_job(job)
        self._jobs.append(job)

    def submit_many(self, jobs: "list[Job]") -> None:
        self.fleet.submit_many(jobs)
        for oracle in self._oracles:
            oracle.submit_many(jobs)
        for job in jobs:
            self.run.note_job(job)
        self._jobs.extend(jobs)

    def _fleets(self) -> "tuple[CoalitionFleet, ...]":
        return (self.fleet, *self._oracles)

    def machines_added(self, org: int, machine_ids: "list[int]") -> None:
        super().machines_added(org, machine_ids)
        self._note_census_machines()

    def machines_removed(self, org: int, machine_ids: "list[int]") -> None:
        super().machines_removed(org, machine_ids)
        self._note_census_machines()

    def _note_census_machines(self) -> None:
        census = self.service.census
        counts = Counter(
            owner for _, owner in census.live_machines(census.members)
        )
        self.run.note_machines(
            {u: counts.get(u, 0) for u in census.members}
        )

    # ------------------------------------------------------------------
    def join(self, org: int) -> None:
        self._grow_grand(org)
        self._redraw()

    def leave(self, org: int, machine_ids: "list[int]") -> None:
        self._shrink_grand(org, machine_ids)
        self._redraw()

    def _redraw(self) -> None:
        self.certificates.extend(self.run.certificates)
        self.run = self._make_run(
            self.service.zero_workload(), self.fleet, self._epoch_oracle
        )
        self._oracles = self.run.oracles

    # ------------------------------------------------------------------
    def all_certificates(self) -> list:
        """Every decision certificate across all membership epochs."""
        return [*self.certificates, *self.run.certificates]

    def summary(self):
        """Service-long certificate tallies (all epochs)."""
        return summarize_certificates(self.all_certificates())
