"""Fairness and efficiency metrics (paper Section 7.2).

The paper's headline unfairness measure compares an algorithm's utility
vector :math:`\\vec\\psi` at the experiment end time against the reference
fair vector :math:`\\vec\\psi^*` produced by REF:

.. math::

    \\Delta\\psi / p_{tot}, \\qquad
    \\Delta\\psi = \\lVert \\vec\\psi - \\vec\\psi^* \\rVert_M, \\quad
    p_{tot} = \\sum_{(s,p) \\in \\sigma^*: s \\le t_{end}}
              \\min(p,\\, t_{end} - s)

where :math:`p_{tot}` counts unit-size job parts completed in the fair
schedule.  Delaying one unit part by one time moment costs its owner exactly
one utility point, so :math:`\\Delta\\psi / p_{tot}` reads as the **average
unjustified delay (or speed-up) per job unit** caused by unfairness.

(The paper's text writes :math:`\\Delta\\psi` without absolute values; we use
the Manhattan norm -- consistent with Definition 3.1 -- and also expose the
signed sum.  See DESIGN.md §5.)
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..algorithms.base import SchedulerResult

__all__ = [
    "manhattan",
    "signed_gap",
    "unfairness",
    "avg_delay",
    "utilization_ratio",
    "makespan",
]


def manhattan(a: Sequence[float], b: Sequence[float]) -> float:
    """Manhattan distance between two utility vectors (Definition 3.1)."""
    if len(a) != len(b):
        raise ValueError("vectors must have equal length")
    return float(np.abs(np.asarray(a, dtype=float) - np.asarray(b, dtype=float)).sum())


def signed_gap(a: Sequence[float], b: Sequence[float]) -> float:
    """Signed sum ``sum(a_u - b_u)`` (the paper's literal Delta-psi text)."""
    if len(a) != len(b):
        raise ValueError("vectors must have equal length")
    return float(np.asarray(a, dtype=float).sum() - np.asarray(b, dtype=float).sum())


def unfairness(
    result: SchedulerResult, reference: SchedulerResult, t: int
) -> float:
    """:math:`\\Delta\\psi = \\lVert \\vec\\psi - \\vec\\psi^* \\rVert_M` at ``t``."""
    return manhattan(result.utilities(t), reference.utilities(t))


def avg_delay(
    result: SchedulerResult, reference: SchedulerResult, t: int
) -> float:
    """The paper's :math:`\\Delta\\psi / p_{tot}`: average unjustified delay
    (in time units) per unit of completed work, relative to the fair
    reference schedule at time ``t``.
    """
    ptot = reference.completed_units(t)
    if ptot == 0:
        return 0.0
    return unfairness(result, reference, t) / ptot


def makespan(
    result: SchedulerResult, reference: SchedulerResult, t: int
) -> float:
    """Completion time of the last job the algorithm started before ``t``.

    A pure efficiency score (the reference plays no role); with the
    greedy invariant every algorithm is near-optimal on makespan, so this
    mostly reads as a sanity check next to the fairness metrics -- a
    large gap against the portfolio signals a degenerate schedule, not an
    unfair one.
    """
    return float(
        max(
            (e.end for e in result.schedule if e.start < t),
            default=0,
        )
    )


def utilization_ratio(
    result: SchedulerResult, reference: SchedulerResult, t: int
) -> float:
    """Completed-work ratio result/reference at ``t`` (Section 6's
    competitive-utilization comparison; >= 3/4 for greedy vs optimal)."""
    ref_units = reference.completed_units(t)
    if ref_units == 0:
        return 1.0
    return result.completed_units(t) / ref_units
