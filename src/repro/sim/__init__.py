"""Simulation runners, fairness metrics and the per-tick reference simulator."""

from .metrics import (
    avg_delay,
    manhattan,
    signed_gap,
    unfairness,
    utilization_ratio,
)
from .runner import AlgorithmOutcome, Comparison, compare_algorithms, run_schedule
from .tick_reference import TickSimulator, simulate_ticks

__all__ = [
    "AlgorithmOutcome",
    "Comparison",
    "TickSimulator",
    "avg_delay",
    "compare_algorithms",
    "manhattan",
    "run_schedule",
    "signed_gap",
    "simulate_ticks",
    "unfairness",
    "utilization_ratio",
]
