"""Convenience runners: execute one or many schedulers on one workload.

These wrap the :class:`~repro.algorithms.base.Scheduler` API for the common
experiment shapes: run an algorithm portfolio against the REF reference and
compute the paper's fairness metric for each.

Portfolios and references are *policy-like*: every entry may be a
constructed :class:`~repro.algorithms.base.Scheduler`, a
:class:`~repro.policies.PolicySpec`, or a registered policy name /
CLI string (``"rand:n_orderings=30"``) — names resolve through
:data:`repro.policies.POLICY_REGISTRY` with ``horizon=t_end`` and the
``seed`` keyword.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..algorithms.base import Scheduler, SchedulerResult
from ..core.workload import Workload
from ..policies import PolicySpec, build_scheduler
from .metrics import avg_delay, makespan, unfairness, utilization_ratio

__all__ = [
    "run_schedule",
    "compare_algorithms",
    "Comparison",
    "AlgorithmOutcome",
    "METRICS",
    "PolicyLike",
    "as_scheduler",
    "evaluate_portfolio",
]

#: Anything the runners resolve to a scheduler: a built instance, a
#: :class:`PolicySpec`, or a registered name / ``name:k=v`` string.
PolicyLike = "Scheduler | PolicySpec | str"


def as_scheduler(
    policy: PolicyLike, *, seed: int = 0, horizon: "int | None" = None
) -> Scheduler:
    """Resolve a policy-like value to a constructed scheduler.

    Built :class:`Scheduler` instances pass through untouched (their
    seed/horizon were fixed at construction); specs and names go through
    :func:`repro.policies.build_scheduler`.
    """
    if isinstance(policy, Scheduler):
        return policy
    return build_scheduler(policy, seed=seed, horizon=horizon)

#: Named scoring functions ``f(result, reference, t_end) -> float`` usable
#: in a :class:`~repro.experiments.spec.ScenarioSpec` ``metrics`` tuple.
#: Names (not callables) keep scenario specs hashable and picklable.
METRICS: dict[str, Callable[[SchedulerResult, SchedulerResult, int], float]] = {
    "avg_delay": avg_delay,
    "unfairness": unfairness,
    "utilization_ratio": utilization_ratio,
    "makespan": makespan,
}


def evaluate_portfolio(
    workload: Workload,
    t_end: int,
    algorithms: Sequence[PolicyLike],
    reference: PolicyLike = "ref",
    metrics: Sequence[str] = ("avg_delay",),
    members: Iterable[int] | None = None,
    *,
    seed: int = 0,
    reference_result: "SchedulerResult | None" = None,
) -> dict[str, dict[str, float]]:
    """Score every algorithm against ``reference`` under every named metric.

    This is the pipeline's per-instance evaluation kernel (steps 5-6 of the
    Section 7.2 protocol, generalized to a metric set): the reference runs
    once, each algorithm runs once, and the result is
    ``{metric: {algorithm: value}}``.  Policy-like entries resolve with
    ``horizon=t_end`` and ``seed``.

    ``reference_result`` short-circuits the reference run with an
    already-computed result (the batched pipeline computes many REF
    references in one fused kernel and scores each instance through this
    same float path, keeping batched == serial bit-identical).
    """
    unknown = [m for m in metrics if m not in METRICS]
    if unknown:
        raise KeyError(f"unknown metrics {unknown}; available: {sorted(METRICS)}")
    ref_result = reference_result
    if ref_result is None:
        ref_result = as_scheduler(reference, seed=seed, horizon=t_end).run(
            workload, members
        )
    out: dict[str, dict[str, float]] = {m: {} for m in metrics}
    for alg in algorithms:
        result = as_scheduler(alg, seed=seed, horizon=t_end).run(
            workload, members
        )
        for m in metrics:
            out[m][result.algorithm] = float(
                METRICS[m](result, ref_result, t_end)
            )
    return out


def run_schedule(
    scheduler: PolicyLike,
    workload: Workload,
    members: Iterable[int] | None = None,
    *,
    seed: int = 0,
    horizon: "int | None" = None,
) -> SchedulerResult:
    """Run one scheduler (policy-like values resolve through the registry)."""
    return as_scheduler(scheduler, seed=seed, horizon=horizon).run(
        workload, members
    )


@dataclass(frozen=True)
class AlgorithmOutcome:
    """One algorithm's result within a comparison."""

    algorithm: str
    result: SchedulerResult
    delta_psi: float
    avg_delay: float
    wall_time_s: float


@dataclass(frozen=True)
class Comparison:
    """A portfolio of algorithms evaluated against a fair reference."""

    workload: Workload
    t_end: int
    reference: SchedulerResult
    outcomes: tuple[AlgorithmOutcome, ...]

    def by_name(self, name: str) -> AlgorithmOutcome:
        for o in self.outcomes:
            if o.algorithm == name:
                return o
        raise KeyError(name)

    def ranking(self) -> list[str]:
        """Algorithm names sorted from most to least fair."""
        return [
            o.algorithm
            for o in sorted(self.outcomes, key=lambda o: o.avg_delay)
        ]


def compare_algorithms(
    algorithms: Sequence[PolicyLike],
    reference: PolicyLike,
    workload: Workload,
    t_end: int,
    members: Iterable[int] | None = None,
    *,
    seed: int = 0,
) -> Comparison:
    """Run ``algorithms`` and ``reference`` on ``workload``; score fairness.

    This is one cell of the paper's Tables 1-2: every algorithm's
    :math:`\\Delta\\psi / p_{tot}` against the REF schedule at ``t_end``.
    Policy-like entries (specs / names) resolve through
    :data:`repro.policies.POLICY_REGISTRY` with ``horizon=t_end``.
    """
    ref_result = as_scheduler(reference, seed=seed, horizon=t_end).run(
        workload, members
    )
    outcomes = []
    for alg in algorithms:
        scheduler = as_scheduler(alg, seed=seed, horizon=t_end)
        started = time.perf_counter()
        result = scheduler.run(workload, members)
        elapsed = time.perf_counter() - started
        outcomes.append(
            AlgorithmOutcome(
                algorithm=result.algorithm,
                result=result,
                delta_psi=unfairness(result, ref_result, t_end),
                avg_delay=avg_delay(result, ref_result, t_end),
                wall_time_s=elapsed,
            )
        )
    return Comparison(
        workload=workload,
        t_end=t_end,
        reference=ref_result,
        outcomes=tuple(outcomes),
    )
