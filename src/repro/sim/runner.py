"""Convenience runners: execute one or many schedulers on one workload.

These wrap the :class:`~repro.algorithms.base.Scheduler` API for the common
experiment shapes: run an algorithm portfolio against the REF reference and
compute the paper's fairness metric for each.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..algorithms.base import Scheduler, SchedulerResult
from ..core.workload import Workload
from .metrics import avg_delay, makespan, unfairness, utilization_ratio

__all__ = [
    "run_schedule",
    "compare_algorithms",
    "Comparison",
    "AlgorithmOutcome",
    "METRICS",
    "evaluate_portfolio",
]

#: Named scoring functions ``f(result, reference, t_end) -> float`` usable
#: in a :class:`~repro.experiments.spec.ScenarioSpec` ``metrics`` tuple.
#: Names (not callables) keep scenario specs hashable and picklable.
METRICS: dict[str, Callable[[SchedulerResult, SchedulerResult, int], float]] = {
    "avg_delay": avg_delay,
    "unfairness": unfairness,
    "utilization_ratio": utilization_ratio,
    "makespan": makespan,
}


def evaluate_portfolio(
    workload: Workload,
    t_end: int,
    algorithms: Sequence[Scheduler],
    reference: Scheduler,
    metrics: Sequence[str] = ("avg_delay",),
    members: Iterable[int] | None = None,
) -> dict[str, dict[str, float]]:
    """Score every algorithm against ``reference`` under every named metric.

    This is the pipeline's per-instance evaluation kernel (steps 5-6 of the
    Section 7.2 protocol, generalized to a metric set): the reference runs
    once, each algorithm runs once, and the result is
    ``{metric: {algorithm: value}}``.
    """
    unknown = [m for m in metrics if m not in METRICS]
    if unknown:
        raise KeyError(f"unknown metrics {unknown}; available: {sorted(METRICS)}")
    ref_result = reference.run(workload, members)
    out: dict[str, dict[str, float]] = {m: {} for m in metrics}
    for alg in algorithms:
        result = alg.run(workload, members)
        for m in metrics:
            out[m][alg.name] = float(METRICS[m](result, ref_result, t_end))
    return out


def run_schedule(
    scheduler: Scheduler,
    workload: Workload,
    members: Iterable[int] | None = None,
) -> SchedulerResult:
    """Run one scheduler (alias for ``scheduler.run`` with a stable name)."""
    return scheduler.run(workload, members)


@dataclass(frozen=True)
class AlgorithmOutcome:
    """One algorithm's result within a comparison."""

    algorithm: str
    result: SchedulerResult
    delta_psi: float
    avg_delay: float
    wall_time_s: float


@dataclass(frozen=True)
class Comparison:
    """A portfolio of algorithms evaluated against a fair reference."""

    workload: Workload
    t_end: int
    reference: SchedulerResult
    outcomes: tuple[AlgorithmOutcome, ...]

    def by_name(self, name: str) -> AlgorithmOutcome:
        for o in self.outcomes:
            if o.algorithm == name:
                return o
        raise KeyError(name)

    def ranking(self) -> list[str]:
        """Algorithm names sorted from most to least fair."""
        return [
            o.algorithm
            for o in sorted(self.outcomes, key=lambda o: o.avg_delay)
        ]


def compare_algorithms(
    algorithms: Sequence[Scheduler],
    reference: Scheduler,
    workload: Workload,
    t_end: int,
    members: Iterable[int] | None = None,
) -> Comparison:
    """Run ``algorithms`` and ``reference`` on ``workload``; score fairness.

    This is one cell of the paper's Tables 1-2: every algorithm's
    :math:`\\Delta\\psi / p_{tot}` against the REF schedule at ``t_end``.
    """
    ref_result = reference.run(workload, members)
    outcomes = []
    for alg in algorithms:
        started = time.perf_counter()
        result = alg.run(workload, members)
        elapsed = time.perf_counter() - started
        outcomes.append(
            AlgorithmOutcome(
                algorithm=alg.name,
                result=result,
                delta_psi=unfairness(result, ref_result, t_end),
                avg_delay=avg_delay(result, ref_result, t_end),
                wall_time_s=elapsed,
            )
        )
    return Comparison(
        workload=workload,
        t_end=t_end,
        reference=ref_result,
        outcomes=tuple(outcomes),
    )
