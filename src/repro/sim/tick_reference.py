"""Per-time-tick reference simulator (literal paper pseudo-code semantics).

The production engine (:class:`repro.core.engine.ClusterEngine`) is
event-driven: it only acts at release/completion times.  The paper's
pseudo-code (Figs. 1, 6) instead iterates ``foreach time moment t``.  The
two are equivalent for greedy schedules -- between events nothing can start
-- but that equivalence is an *implementation theorem* we prove by testing
against this deliberately naive transcription: a tick-by-tick simulator that
walks every integer time step.

Only suitable for tiny instances; used by the test-suite and the engine
ablation benchmark.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable

from ..core.job import Job
from ..core.schedule import Schedule, ScheduledJob
from ..core.workload import Workload
from ..utility.strategyproof import psi_sp

__all__ = ["TickSimulator", "simulate_ticks"]


class TickSimulator:
    """A tick-by-tick greedy cluster simulation.

    The selection callback receives the simulator and must return the
    organization whose FIFO-head job starts; it is invoked exactly when a
    machine is free and a job waits (the greedy rule).
    """

    def __init__(
        self, workload: Workload, members: Iterable[int] | None = None
    ):
        self.workload = workload
        self.members = (
            tuple(sorted(set(members)))
            if members is not None
            else tuple(range(workload.n_orgs))
        )
        member_set = set(self.members)
        owners: list[int] = []
        for org in workload.organizations:
            owners.extend([org.id] * org.machines)
        self.machines = [m for m, o in enumerate(owners) if o in member_set]
        self.machine_owner = {m: owners[m] for m in self.machines}
        self._jobs = sorted(
            j for j in workload.jobs if j.org in member_set
        )
        self.t = 0
        self._next_job = 0
        self.pending: dict[int, deque[Job]] = {
            u: deque() for u in self.members
        }
        # machine -> (job, start) or None
        self.running: dict[int, tuple[Job, int] | None] = {
            m: None for m in self.machines
        }
        self.log: list[ScheduledJob] = []

    # -- queries usable by selection callbacks -------------------------
    def waiting_orgs(self) -> list[int]:
        return [u for u in self.members if self.pending[u]]

    def has_waiting(self) -> bool:
        return any(self.pending[u] for u in self.members)

    def free_machines(self) -> list[int]:
        return [m for m in self.machines if self.running[m] is None]

    def org_pairs(self, org: int) -> list[tuple[int, int]]:
        return [e.pair() for e in self.log if e.job.org == org]

    def psi(self, org: int, t: int | None = None) -> int:
        return psi_sp(self.org_pairs(org), self.t if t is None else t)

    def psis(self, t: int | None = None) -> list[int]:
        return [self.psi(u, t) for u in range(self.workload.n_orgs)]

    def head_release(self, org: int) -> int:
        return self.pending[org][0].release

    def done(self) -> bool:
        return (
            self._next_job == len(self._jobs)
            and not self.has_waiting()
            and all(r is None for r in self.running.values())
        )

    # -- the tick loop ---------------------------------------------------
    def step(self, select: Callable[["TickSimulator"], int]) -> None:
        """Advance one time tick: completions, releases, then greedy starts."""
        t = self.t
        for m in self.machines:
            slot = self.running[m]
            if slot is not None:
                job, start = slot
                if start + job.size <= t:
                    self.running[m] = None
        while (
            self._next_job < len(self._jobs)
            and self._jobs[self._next_job].release <= t
        ):
            j = self._jobs[self._next_job]
            self.pending[j.org].append(j)
            self._next_job += 1
        for m in self.machines:
            if not self.has_waiting():
                break
            if self.running[m] is None:
                u = select(self)
                job = self.pending[u].popleft()
                self.running[m] = (job, t)
                self.log.append(ScheduledJob(t, m, job))
        self.t = t + 1

    def run(
        self,
        select: Callable[["TickSimulator"], int],
        until: int,
    ) -> Schedule:
        """Tick through ``t = current .. until-1`` and return the schedule."""
        while self.t < until and not self.done():
            self.step(select)
        return Schedule(self.log)


def simulate_ticks(
    workload: Workload,
    select: Callable[[TickSimulator], int],
    until: int,
    members: Iterable[int] | None = None,
) -> Schedule:
    """One-shot helper: run a fresh :class:`TickSimulator` to ``until``."""
    return TickSimulator(workload, members).run(select, until)
