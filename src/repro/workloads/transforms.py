"""The paper's workload preprocessing (Section 7.2).

Three steps turn an archive-style trace into a fair-scheduling instance:

1. **parallel to sequential** -- "We replaced parallel jobs that required
   q > 1 processors with q copies of a sequential job having the same
   duration";
2. **users to organizations** -- "we uniformly distributed the user
   identifiers between the organizations; the job sent by the given user
   was assigned to the corresponding organization";
3. **machines to organizations** -- "the processors were assigned to
   organizations so that the counts follow Zipf and (in different runs)
   uniform distributions".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.job import Job
from ..core.organization import Organization
from ..core.workload import Workload
from .swf import SwfJob, SwfTrace

__all__ = [
    "parallel_to_sequential",
    "assign_users_to_orgs",
    "zipf_machine_split",
    "uniform_machine_split",
    "build_workload",
    "machine_split",
    "build_swf_instance",
]


def parallel_to_sequential(jobs: Sequence[SwfJob]) -> list[SwfJob]:
    """Replace each q-processor job with q sequential copies (same runtime)."""
    out: list[SwfJob] = []
    next_id = 1
    for j in jobs:
        q = max(1, j.cpus)
        for _ in range(q):
            out.append(
                SwfJob(
                    job_id=next_id,
                    submit=j.submit,
                    run=j.run,
                    cpus=1,
                    req_cpus=1,
                    user=j.user,
                )
            )
            next_id += 1
    return out


def assign_users_to_orgs(
    users: Sequence[int], n_orgs: int, rng: np.random.Generator
) -> dict[int, int]:
    """Uniformly distribute user identifiers among organizations.

    Users are shuffled and dealt round-robin so organization job counts are
    balanced in expectation while whole users (and hence their submission
    bursts) stay together -- the paper's assignment.
    """
    if n_orgs < 1:
        raise ValueError("n_orgs must be >= 1")
    distinct = sorted(set(users))
    perm = rng.permutation(len(distinct))
    return {distinct[int(p)]: i % n_orgs for i, p in enumerate(perm)}


def zipf_machine_split(
    n_machines: int, n_orgs: int, exponent: float = 1.0
) -> list[int]:
    """Split machines so per-organization counts follow a Zipf law.

    Weights ``1/r^exponent`` for rank r = 1..n_orgs; every organization gets
    at least one machine when capacity allows (an organization with zero
    machines would trivialize its contribution).  Remainders go to the
    largest fractional parts (deterministic).
    """
    if n_orgs < 1 or n_machines < 0:
        raise ValueError("need n_orgs >= 1 and n_machines >= 0")
    weights = np.array([1.0 / (r**exponent) for r in range(1, n_orgs + 1)])
    weights /= weights.sum()
    raw = weights * n_machines
    counts = np.floor(raw).astype(int)
    if n_machines >= n_orgs:
        counts = np.maximum(counts, 1)
    # distribute the remaining machines by largest fractional part
    while counts.sum() > n_machines:
        counts[int(np.argmax(counts))] -= 1
    frac = raw - np.floor(raw)
    order = np.argsort(-frac)
    i = 0
    while counts.sum() < n_machines:
        counts[int(order[i % n_orgs])] += 1
        i += 1
    # remainder distribution can locally break monotonicity; a Zipf
    # endowment is by definition rank-ordered, so sort descending
    return sorted((int(c) for c in counts), reverse=True)


def uniform_machine_split(n_machines: int, n_orgs: int) -> list[int]:
    """Split machines as evenly as possible (the paper's uniform variant)."""
    if n_orgs < 1 or n_machines < 0:
        raise ValueError("need n_orgs >= 1 and n_machines >= 0")
    base, extra = divmod(n_machines, n_orgs)
    return [base + (1 if i < extra else 0) for i in range(n_orgs)]


def machine_split(
    n_machines: int,
    n_orgs: int,
    machine_dist: str = "zipf",
    zipf_exponent: float = 1.0,
) -> list[int]:
    """Dispatch on the paper's two machine-assignment variants."""
    if machine_dist == "zipf":
        return zipf_machine_split(n_machines, n_orgs, zipf_exponent)
    if machine_dist == "uniform":
        return uniform_machine_split(n_machines, n_orgs)
    raise ValueError("machine_dist must be 'zipf' or 'uniform'")


def build_swf_instance(
    trace: SwfTrace,
    duration: int,
    n_orgs: int,
    rng: np.random.Generator,
    *,
    machine_dist: str = "zipf",
    zipf_exponent: float = 1.0,
    scale: "float | None" = None,
) -> Workload:
    """The full Section 7.2 protocol over a *real* parsed SWF trace.

    This closes the DESIGN.md §1.5 gap: drop an archive file in, and it
    flows end-to-end into :class:`~repro.core.workload.Workload`
    construction.  Steps:

    1. keep completed records with known users and positive run times
       (mirrors the paper's use of *cleaned* traces);
    2. pick a random window ``[t_start, t_start + duration)`` inside the
       trace's submit span;
    3. deal user identifiers uniformly among ``n_orgs`` organizations;
    4. split ``MaxProcs`` (optionally shrunk by ``scale``) machines among
       organizations by Zipf or uniform counts;
    5. assemble (parallel jobs become q sequential copies) and re-base the
       window so time 0 = ``t_start``.

    RNG consumption order (window position, then user assignment) is part
    of the reproducibility contract — see DESIGN.md §3.
    """
    jobs = [j for j in trace.jobs if j.run > 0 and j.user >= 0 and j.status != 0]
    if not jobs:
        raise ValueError("SWF trace has no usable records")
    n_machines = trace.max_procs
    if scale is not None:
        n_machines = int(round(n_machines * scale))
    n_machines = max(n_orgs, n_machines)
    lo = min(j.submit for j in jobs)
    hi = max(j.submit for j in jobs)
    t_start = lo + int(rng.integers(0, max(1, hi - lo - duration + 1)))
    user_map = assign_users_to_orgs([j.user for j in jobs], n_orgs, rng)
    machines = machine_split(n_machines, n_orgs, machine_dist, zipf_exponent)
    full = build_workload(jobs, machines, user_map)
    return full.window(t_start, t_start + duration)


def build_workload(
    jobs: Sequence[SwfJob],
    machine_counts: Sequence[int],
    user_to_org: dict[int, int],
    *,
    sequentialize: bool = True,
) -> Workload:
    """Assemble a :class:`~repro.core.workload.Workload` from trace records.

    Parameters
    ----------
    jobs:
        SWF records (submit, run, cpus, user).
    machine_counts:
        Per-organization machine endowments (index = organization id).
    user_to_org:
        The user-identifier assignment; records with users missing from the
        map are dropped (mirrors trace cleaning).
    sequentialize:
        Apply :func:`parallel_to_sequential` first (the paper's step 1).
    """
    records = parallel_to_sequential(jobs) if sequentialize else list(jobs)
    n_orgs = len(machine_counts)
    orgs = [Organization(i, int(machine_counts[i])) for i in range(n_orgs)]
    counters = [0] * n_orgs
    out: list[Job] = []
    for rec in sorted(records, key=lambda r: (r.submit, r.job_id)):
        if rec.user not in user_to_org:
            continue
        org = user_to_org[rec.user]
        out.append(
            Job(
                release=max(0, rec.submit),
                org=org,
                index=counters[org],
                size=max(1, rec.run),
                id=-1,
            )
        )
        counters[org] += 1
    return Workload(orgs, out)
