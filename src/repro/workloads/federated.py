"""Federated-cloud offload workloads: correlated per-provider bursts.

Pacholczyk & Rzadca (*Fair non-monetary scheduling in federated clouds*,
2018) study the regime this scenario family models: several providers
(organizations) federate their clusters; each provider's demand is bursty
and **internally correlated** (its users peak together — think a regional
cloud following its time zone's working hours), but the providers' peaks
are **staggered**, so at any moment the bursting provider can offload onto
the others' idle machines.  This is precisely where contribution-tracking
fairness matters: a provider that lends its idle capacity at night must be
credited when its own peak arrives, and static fair-share targets
mis-measure that by construction.

The generator composes :mod:`repro.workloads.synthetic` per provider:

* every provider gets its own user population and its own diurnal demand
  cycle with a large amplitude (the *burst*);
* provider ``o``'s cycle is phase-shifted by ``o / k`` of the day length,
  staggering the peaks around the clock;
* submit times wrap modulo the horizon, so every window position sees the
  same stationary stagger pattern.

The result is plain SWF records plus the user->organization map, ready for
:func:`repro.workloads.transforms.build_workload` — federated scenarios
flow through the exact same pipeline as every other scenario family.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .swf import SwfJob
from .synthetic import SyntheticSpec, generate_jobs

__all__ = ["FederatedSpec", "federated_records"]

#: Per-provider user-id stride (provider o's users are o*_USER_STRIDE + u).
_USER_STRIDE = 100_000


@dataclass(frozen=True)
class FederatedSpec:
    """Parameters of one federated-offload instance.

    Attributes
    ----------
    n_orgs:
        Number of federated providers.
    machines_per_org:
        Identical machine endowment per provider (the symmetric-federation
        baseline; asymmetric endowments come from the scenario's machine
        split instead).
    users_per_org:
        Distinct submitting users inside each provider.
    horizon:
        Length of the generated submission window.
    load:
        Per-provider target utilization of its *own* machines; the
        federation-wide load factor is the same value.
    peak_amplitude:
        Diurnal amplitude of each provider's demand cycle (0 = flat,
        1 = full on/off bursts).  High values make offloading valuable.
    day_length:
        Period of the demand cycle; provider ``o`` is phase-shifted by
        ``o * day_length / n_orgs``.
    size_mu, size_sigma, max_size:
        Lognormal job-size parameters (cloud-style short tasks by default).
    session_jobs_mean, session_gap_mean:
        Burst shape of one user session (see
        :class:`repro.workloads.synthetic.SyntheticSpec`).
    """

    n_orgs: int
    horizon: int
    machines_per_org: int = 5
    users_per_org: int = 8
    load: float = 0.8
    peak_amplitude: float = 0.9
    day_length: int = 4_000
    size_mu: float = 3.2
    size_sigma: float = 1.1
    max_size: int = 400
    session_jobs_mean: float = 12.0
    session_gap_mean: float = 4.0

    def __post_init__(self) -> None:
        if self.n_orgs < 2:
            raise ValueError("a federation needs at least 2 providers")
        if self.machines_per_org < 1 or self.users_per_org < 1:
            raise ValueError("machines_per_org and users_per_org must be >= 1")
        if self.day_length < self.n_orgs:
            raise ValueError("day_length must be >= n_orgs")


def federated_records(
    spec: FederatedSpec, rng: np.random.Generator
) -> tuple[list[SwfJob], dict[int, int]]:
    """Generate the federation's SWF records and the user->provider map.

    Providers are generated in id order from the single ``rng`` stream, so
    one seed reproduces the whole federation.  Returned records are sorted
    and renumbered in submit order (SWF convention).
    """
    records: list[SwfJob] = []
    user_map: dict[int, int] = {}
    for org in range(spec.n_orgs):
        sub = SyntheticSpec(
            n_machines=spec.machines_per_org,
            n_users=spec.users_per_org,
            horizon=spec.horizon,
            load=spec.load,
            size_mu=spec.size_mu,
            size_sigma=spec.size_sigma,
            max_size=spec.max_size,
            session_jobs_mean=spec.session_jobs_mean,
            session_gap_mean=spec.session_gap_mean,
            diurnal_amplitude=spec.peak_amplitude,
            day_length=spec.day_length,
            parallel_prob=0.0,
        )
        phase = org * spec.day_length // spec.n_orgs
        for j in generate_jobs(sub, rng):
            uid = org * _USER_STRIDE + j.user
            user_map[uid] = org
            records.append(
                SwfJob(
                    job_id=0,  # renumbered below in submit order
                    submit=(j.submit + phase) % spec.horizon,
                    run=j.run,
                    cpus=1,
                    req_cpus=1,
                    user=uid,
                )
            )
    records.sort(key=lambda r: (r.submit, r.user))
    return [
        SwfJob(
            job_id=i + 1,
            submit=r.submit,
            run=r.run,
            cpus=r.cpus,
            req_cpus=r.req_cpus,
            user=r.user,
        )
        for i, r in enumerate(records)
    ], user_map
