"""Synthetic stand-ins for the paper's four Parallel Workloads Archive traces.

Section 7.2 evaluates on LPC-EGEE (cleaned), PIK-IPLEX, RICC and
SHARCNET-Whale.  The archive files cannot ship with this repository, so each
trace gets a :class:`TraceProfile` capturing the published characteristics
that matter for the paper's comparisons:

===============  ========  ======  ===========================
trace            procs     users    character
===============  ========  ======  ===========================
LPC-EGEE             70        56  small cluster, bursty bag-of-tasks load
PIK-IPLEX          2560       225  large, lightly loaded (tiny unfairness)
RICC               8192       176  large, heavily loaded, long jobs
SHARCNET-Whale     3072       154  large, moderate load
===============  ========  ======  ===========================

The **relative** results the paper reports (RICC exhibiting the largest
unfairness, PIK-IPLEX the smallest, the algorithm ranking itself) are driven
by load factor, job-length scale and per-user burstiness, which the profiles
reproduce.  Absolute delays differ from the paper's -- see EXPERIMENTS.md.

``scale`` shrinks machine counts, user counts and job sizes proportionally
for laptop-size benchmark runs (the experiment harness additionally shortens
horizons); ``scale=1.0`` generates full-size traces.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .swf import SwfJob
from .synthetic import SyntheticSpec, generate_jobs

__all__ = [
    "TraceProfile",
    "TRACE_PROFILES",
    "PAPER_TRACES",
    "make_trace",
    "lpc_egee",
    "pik_iplex",
    "ricc",
    "sharcnet_whale",
]


@dataclass(frozen=True)
class TraceProfile:
    """Generation profile of one archive-trace stand-in."""

    name: str
    n_machines: int
    n_users: int
    load: float
    size_mu: float
    size_sigma: float
    max_size: int
    session_jobs_mean: float
    session_gap_mean: float
    diurnal_amplitude: float = 0.5
    parallel_prob: float = 0.05
    parallel_max: int = 4

    def spec(self, horizon: int, scale: float = 1.0) -> SyntheticSpec:
        """Concrete generator parameters at a given horizon and scale.

        Scaling keeps the *load factor* (the fairness-relevant quantity)
        fixed while shrinking machines, users and job sizes, so scaled runs
        reproduce the full-size qualitative behaviour.
        """
        if not 0 < scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        machines = max(3, int(round(self.n_machines * scale)))
        users = max(4, int(round(self.n_users * scale)))
        # Shrink job sizes faster than machine counts (scale^0.7) so scaled
        # traces keep enough jobs for the arrival process to stay mixed --
        # otherwise a handful of giant jobs makes tiny instances degenerate.
        shrink = float(scale**0.7)
        # Parallel widths must shrink with the pool: a job as wide as the
        # whole scaled cluster would be a single-instant capacity spike the
        # full-size trace never exhibits.
        parallel_cap = max(2, min(self.parallel_max, machines // 6))
        return SyntheticSpec(
            n_machines=machines,
            n_users=users,
            horizon=horizon,
            load=self.load,
            size_mu=self.size_mu + np.log(shrink),
            size_sigma=self.size_sigma,
            max_size=max(4, int(self.max_size * shrink)),
            session_jobs_mean=self.session_jobs_mean,
            session_gap_mean=self.session_gap_mean,
            diurnal_amplitude=self.diurnal_amplitude,
            day_length=max(64, int(86_400 * scale)),
            parallel_prob=self.parallel_prob if parallel_cap > 2 else 0.0,
            parallel_max=parallel_cap,
        )


#: Profiles mimicking the published summary statistics of the four traces.
#: Loads are set at the high-contention end of what the archive traces show
#: during busy periods -- batch systems run with standing queues, which is
#: precisely the regime where scheduling *choices* exist and fairness
#: differences are measurable (at low load every greedy schedule coincides).
TRACE_PROFILES: dict[str, TraceProfile] = {
    "LPC-EGEE": TraceProfile(
        name="LPC-EGEE",
        n_machines=70,
        n_users=56,
        load=0.85,
        size_mu=5.3,  # short bag-of-tasks grid jobs (~minutes-hours)
        size_sigma=1.4,
        max_size=20_000,
        session_jobs_mean=25.0,  # large bag-of-task campaigns
        session_gap_mean=5.0,
        diurnal_amplitude=0.7,
        parallel_prob=0.0,  # LPC-EGEE is almost purely sequential
    ),
    "PIK-IPLEX": TraceProfile(
        name="PIK-IPLEX",
        n_machines=2560,
        n_users=225,
        load=0.35,  # lightly loaded -> rare queueing -> tiny unfairness
        size_mu=6.0,
        size_sigma=1.8,
        max_size=50_000,
        session_jobs_mean=6.0,
        session_gap_mean=60.0,
        diurnal_amplitude=0.4,
        parallel_prob=0.25,
        parallel_max=64,
    ),
    "RICC": TraceProfile(
        name="RICC",
        n_machines=8192,
        n_users=176,
        load=1.05,  # oversubscribed batch queues -> largest unfairness
        size_mu=7.2,
        size_sigma=1.8,
        max_size=100_000,
        session_jobs_mean=40.0,
        session_gap_mean=10.0,
        diurnal_amplitude=0.5,
        parallel_prob=0.30,
        parallel_max=128,
    ),
    "SHARCNET-Whale": TraceProfile(
        name="SHARCNET-Whale",
        n_machines=3072,
        n_users=154,
        load=0.75,
        size_mu=6.4,
        size_sigma=1.6,
        max_size=80_000,
        session_jobs_mean=15.0,
        session_gap_mean=20.0,
        diurnal_amplitude=0.5,
        parallel_prob=0.20,
        parallel_max=48,
    ),
}

#: The paper's trace ordering (column order of Tables 1-2).
PAPER_TRACES: tuple[str, ...] = (
    "LPC-EGEE",
    "PIK-IPLEX",
    "SHARCNET-Whale",
    "RICC",
)


def make_trace(
    name: str,
    horizon: int,
    seed: "int | np.random.Generator" = 0,
    scale: float = 1.0,
) -> tuple[list[SwfJob], SyntheticSpec]:
    """Generate the stand-in trace ``name`` over ``horizon`` time units.

    Returns the SWF-style job records and the concrete generator spec (the
    spec's ``n_machines`` is what experiments should provision).
    """
    if name not in TRACE_PROFILES:
        raise KeyError(
            f"unknown trace {name!r}; available: {sorted(TRACE_PROFILES)}"
        )
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    spec = TRACE_PROFILES[name].spec(horizon, scale)
    return generate_jobs(spec, rng), spec


def lpc_egee(horizon: int, seed=0, scale: float = 1.0):
    """Shorthand for ``make_trace("LPC-EGEE", ...)``."""
    return make_trace("LPC-EGEE", horizon, seed, scale)


def pik_iplex(horizon: int, seed=0, scale: float = 1.0):
    """Shorthand for ``make_trace("PIK-IPLEX", ...)``."""
    return make_trace("PIK-IPLEX", horizon, seed, scale)


def ricc(horizon: int, seed=0, scale: float = 1.0):
    """Shorthand for ``make_trace("RICC", ...)``."""
    return make_trace("RICC", horizon, seed, scale)


def sharcnet_whale(horizon: int, seed=0, scale: float = 1.0):
    """Shorthand for ``make_trace("SHARCNET-Whale", ...)``."""
    return make_trace("SHARCNET-Whale", horizon, seed, scale)
