"""Workload substrate: SWF parsing, synthetic trace generation, the four
paper-trace stand-ins, federated-cloud burst workloads, and the paper's
preprocessing transforms."""

from .federated import FederatedSpec, federated_records
from .swf import SwfJob, SwfTrace, load_swf, parse_swf, write_swf
from .synthetic import SyntheticSpec, generate_jobs
from .traces import (
    PAPER_TRACES,
    TRACE_PROFILES,
    TraceProfile,
    lpc_egee,
    make_trace,
    pik_iplex,
    ricc,
    sharcnet_whale,
)
from .transforms import (
    assign_users_to_orgs,
    build_swf_instance,
    build_workload,
    machine_split,
    parallel_to_sequential,
    uniform_machine_split,
    zipf_machine_split,
)

__all__ = [
    "FederatedSpec",
    "PAPER_TRACES",
    "SwfJob",
    "SwfTrace",
    "SyntheticSpec",
    "TraceProfile",
    "TRACE_PROFILES",
    "assign_users_to_orgs",
    "build_swf_instance",
    "build_workload",
    "federated_records",
    "generate_jobs",
    "load_swf",
    "lpc_egee",
    "machine_split",
    "make_trace",
    "parallel_to_sequential",
    "parse_swf",
    "pik_iplex",
    "ricc",
    "sharcnet_whale",
    "uniform_machine_split",
    "write_swf",
    "zipf_machine_split",
]
