"""Seeded synthetic supercomputer-trace generation.

The paper's evaluation uses four Parallel Workloads Archive traces; this
module generates statistically similar stand-ins (DESIGN.md §1.5 documents
the substitution).  The generator reproduces the trace features that drive
the paper's fairness results:

* **per-user sessions** -- "users usually send their jobs in consecutive
  blocks" (Section 7.2): each user submits bursts of jobs close together,
  so assigning users to organizations produces *clumped* per-organization
  demand -- exactly the dynamic-arrival pattern under which static fair
  share shares mis-measure contributions;
* **heavy-tailed job sizes** -- bounded lognormal run times;
* **diurnal arrival modulation** -- day/night intensity cycle;
* **load factor** -- total work relative to capacity over the horizon,
  the main lever separating the four traces' unfairness magnitudes;
* **occasional parallel jobs** -- emitted with small probability so the
  paper's parallel-to-sequential preprocessing path is exercised.

Everything is driven by an explicit :class:`numpy.random.Generator`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .swf import SwfJob

__all__ = ["SyntheticSpec", "generate_jobs"]


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of one synthetic trace.

    Attributes
    ----------
    n_machines:
        Capacity of the simulated system (the SWF MaxProcs).
    n_users:
        Distinct submitting users (the unit later mapped to organizations).
    horizon:
        Length of the generated submission window (time units).
    load:
        Target utilization: total work ~= load * n_machines * horizon.
    size_mu, size_sigma:
        Lognormal run-time parameters (of the underlying normal).
    max_size:
        Run-time clip (archive traces have wall-clock limits).
    session_jobs_mean:
        Mean burst length of one user session (geometric).
    session_gap_mean:
        Mean gap between consecutive submissions inside a session.
    diurnal_amplitude:
        0 = flat arrivals; 1 = full day/night swing.
    day_length:
        Period of the diurnal cycle in time units.
    parallel_prob, parallel_max:
        Probability and width cap for multi-processor jobs.
    """

    n_machines: int
    n_users: int
    horizon: int
    load: float
    size_mu: float = 5.0
    size_sigma: float = 1.5
    max_size: int = 50_000
    session_jobs_mean: float = 4.0
    session_gap_mean: float = 30.0
    diurnal_amplitude: float = 0.5
    day_length: int = 86_400
    parallel_prob: float = 0.0
    parallel_max: int = 4

    def __post_init__(self) -> None:
        if self.n_machines < 1:
            raise ValueError("n_machines must be >= 1")
        if self.n_users < 1:
            raise ValueError("n_users must be >= 1")
        if self.horizon < 1:
            raise ValueError("horizon must be >= 1")
        if not 0 < self.load:
            raise ValueError("load must be positive")
        if not 0 <= self.diurnal_amplitude <= 1:
            raise ValueError("diurnal_amplitude must be in [0, 1]")
        if not 0 <= self.parallel_prob < 1:
            raise ValueError("parallel_prob must be in [0, 1)")


def _sample_sizes(
    spec: SyntheticSpec, n: int, rng: np.random.Generator
) -> np.ndarray:
    sizes = rng.lognormal(spec.size_mu, spec.size_sigma, size=n)
    return np.clip(np.rint(sizes), 1, spec.max_size).astype(np.int64)


def _diurnal_times(
    spec: SyntheticSpec, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``n`` session start times with day/night modulation.

    Rejection sampling against the intensity
    ``1 + A * sin(2 pi t / day)`` normalized by its maximum ``1 + A``.
    """
    amp = spec.diurnal_amplitude
    if amp == 0.0:
        return rng.integers(0, spec.horizon, size=n).astype(np.int64)
    out = np.empty(n, dtype=np.int64)
    filled = 0
    while filled < n:
        want = (n - filled) * 2 + 8
        cand = rng.uniform(0, spec.horizon, size=want)
        intensity = 1.0 + amp * np.sin(2.0 * np.pi * cand / spec.day_length)
        keep = cand[rng.uniform(0, 1 + amp, size=want) < intensity]
        take = min(len(keep), n - filled)
        out[filled : filled + take] = keep[:take].astype(np.int64)
        filled += take
    return out


def generate_jobs(
    spec: SyntheticSpec, rng: np.random.Generator
) -> list[SwfJob]:
    """Generate a submission-ordered SWF job list for ``spec``.

    The number of jobs is calibrated so that expected total work (run time
    times processor width) is ``load * n_machines * horizon``.
    """
    # expected per-job work, accounting for the size clip and width
    probe = _sample_sizes(spec, 4096, rng)
    mean_size = float(probe.mean())
    mean_width = 1.0
    if spec.parallel_prob > 0:
        cap = max(2, min(spec.parallel_max, spec.n_machines))
        # mean of the log-uniform width distribution on [2, cap+1)
        mean_w = (cap + 1.0 - 2.0) / np.log((cap + 1.0) / 2.0)
        mean_width = 1.0 + spec.parallel_prob * (mean_w - 1.0)
    target_work = spec.load * spec.n_machines * spec.horizon
    n_jobs = max(1, int(round(target_work / (mean_size * mean_width))))

    sizes = _sample_sizes(spec, n_jobs, rng)
    widths = np.ones(n_jobs, dtype=np.int64)
    if spec.parallel_prob > 0:
        cap = max(2, min(spec.parallel_max, spec.n_machines))
        parallel = rng.uniform(size=n_jobs) < spec.parallel_prob
        # log-uniform widths: many small, few near the cap (archive-like)
        n_par = int(parallel.sum())
        widths[parallel] = np.exp(
            rng.uniform(np.log(2), np.log(cap + 1), size=n_par)
        ).astype(np.int64)

    # sessions: split jobs into bursts, assign each burst a user and a
    # diurnal start time, space jobs inside the burst by exponential gaps
    jobs: list[SwfJob] = []
    i = 0
    session_id = 0
    while i < n_jobs:
        burst = 1 + rng.geometric(1.0 / spec.session_jobs_mean)
        burst = min(burst, n_jobs - i)
        user = int(rng.integers(0, spec.n_users))
        start = int(_diurnal_times(spec, 1, rng)[0])
        t = start
        for b in range(burst):
            jobs.append(
                SwfJob(
                    job_id=i + b + 1,
                    submit=min(t, spec.horizon - 1),
                    run=int(sizes[i + b]),
                    cpus=int(widths[i + b]),
                    req_cpus=int(widths[i + b]),
                    user=user,
                )
            )
            t += 1 + int(rng.exponential(spec.session_gap_mean))
        i += burst
        session_id += 1

    jobs.sort(key=lambda j: (j.submit, j.job_id))
    # renumber in submit order (SWF convention)
    return [
        SwfJob(
            job_id=n + 1,
            submit=j.submit,
            run=j.run,
            cpus=j.cpus,
            req_cpus=j.req_cpus,
            user=j.user,
        )
        for n, j in enumerate(jobs)
    ]
