"""Standard Workload Format (SWF) parser and writer.

The paper's experiments (Section 7.2) run on four traces from the Parallel
Workloads Archive (Feitelson): LPC-EGEE, PIK-IPLEX, RICC and
SHARCNET-Whale, all distributed in SWF.  This module implements SWF v2.2 so
the *real* traces can be dropped in when available; the repository's
default experiments use statistical stand-ins
(:mod:`repro.workloads.traces`) because the archive files are not
redistributable here (see DESIGN.md §1.5).

SWF is line-oriented: comment/header lines start with ``;``, data lines have
18 whitespace-separated fields.  We parse the fields the model needs and
preserve the rest for round-tripping:

==  =======================================
 1  job number
 2  submit time (s)
 3  wait time (s)
 4  run time (s)
 5  number of allocated processors
 8  requested number of processors
11  status
12  user id
==  =======================================
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = ["SwfJob", "SwfTrace", "parse_swf", "load_swf", "write_swf"]

_N_FIELDS = 18


@dataclass(frozen=True, slots=True)
class SwfJob:
    """One SWF record (unused fields default to the SWF 'unknown' -1)."""

    job_id: int
    submit: int
    wait: int = -1
    run: int = 1
    cpus: int = 1
    avg_cpu_time: int = -1
    used_memory: int = -1
    req_cpus: int = -1
    req_time: int = -1
    req_memory: int = -1
    status: int = 1
    user: int = -1
    group: int = -1
    executable: int = -1
    queue: int = -1
    partition: int = -1
    preceding_job: int = -1
    think_time: int = -1

    def fields(self) -> tuple[int, ...]:
        """The 18 SWF columns in order."""
        return (
            self.job_id,
            self.submit,
            self.wait,
            self.run,
            self.cpus,
            self.avg_cpu_time,
            self.used_memory,
            self.req_cpus,
            self.req_time,
            self.req_memory,
            self.status,
            self.user,
            self.group,
            self.executable,
            self.queue,
            self.partition,
            self.preceding_job,
            self.think_time,
        )


@dataclass(frozen=True)
class SwfTrace:
    """A parsed SWF file: header comments plus job records."""

    jobs: tuple[SwfJob, ...]
    header: tuple[str, ...] = field(default_factory=tuple)

    @property
    def n_users(self) -> int:
        return len({j.user for j in self.jobs if j.user >= 0})

    @property
    def max_procs(self) -> int:
        """MaxProcs from the header if present, else max allocated CPUs."""
        for line in self.header:
            stripped = line.lstrip("; \t")
            if stripped.lower().startswith("maxprocs:"):
                try:
                    return int(stripped.split(":", 1)[1].strip())
                except ValueError:  # malformed header value
                    break
        return max((j.cpus for j in self.jobs), default=0)

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[SwfJob]:
        return iter(self.jobs)


def parse_swf(text: "str | Iterable[str]") -> SwfTrace:
    """Parse SWF content from a string or an iterable of lines.

    Malformed data lines raise ``ValueError`` with the line number; short
    lines are padded with the SWF 'unknown' value (-1) because several
    archive traces omit trailing fields.
    """
    if isinstance(text, str):
        lines: Iterable[str] = io.StringIO(text)
    else:
        lines = text
    header: list[str] = []
    jobs: list[SwfJob] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.rstrip("\n")
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith(";"):
            header.append(line)
            continue
        parts = stripped.split()
        if len(parts) > _N_FIELDS:
            raise ValueError(
                f"line {lineno}: {len(parts)} fields (SWF has {_N_FIELDS})"
            )
        try:
            values = [int(float(p)) for p in parts]
        except ValueError as exc:
            raise ValueError(f"line {lineno}: non-numeric field: {exc}") from exc
        values += [-1] * (_N_FIELDS - len(values))
        jobs.append(SwfJob(*values))
    return SwfTrace(jobs=tuple(jobs), header=tuple(header))


def load_swf(path: "str | Path") -> SwfTrace:
    """Parse an SWF file from disk."""
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        return parse_swf(fh)


def write_swf(
    trace: "SwfTrace | Sequence[SwfJob]", path: "str | Path | None" = None
) -> str:
    """Serialize a trace to SWF text (and optionally write it to ``path``)."""
    if isinstance(trace, SwfTrace):
        header, jobs = trace.header, trace.jobs
    else:
        header, jobs = (), tuple(trace)
    out = []
    out.extend(header)
    for j in jobs:
        out.append(" ".join(str(v) for v in j.fields()))
    text = "\n".join(out) + "\n"
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text
