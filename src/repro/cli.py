"""Command-line interface: regenerate the paper's artifacts from a shell.

Usage (after ``pip install -e .``, as ``repro`` or ``python -m repro``)::

    repro figure2           # Fig. 2 worked example (exact)
    repro figure7           # Fig. 7 utilization example (exact)
    repro gap               # Theorem 5.3 inapproximability gap
    repro gadget 1,2 2      # Theorem 5.1 SUBSETSUM decoding
    repro demo              # quick consortium comparison
    repro table1 [--duration D --repeats R --workers N]
    repro table2 [...]
    repro figure10 [--orgs 2,3,4,5]
    repro scenarios         # list the scenario registry
    repro policies          # list the policy registry (capability table)
    repro run NAME [--workers N --cache-dir DIR ...]   # any scenario
    repro replay NAME [--policy P --snapshot-every N]  # online service proof
    repro serve --orgs 2,1 [--policy P]                # JSONL scheduler daemon
    repro bench [fleet|pipeline|service|all]           # BENCH_*.json recorders

``run`` executes any registered scenario (``repro scenarios`` lists them)
through the experiment pipeline: instances fan out over ``--workers``
processes, checkpoint to ``--cache-dir``, and a re-run resumes instead of
recomputing.  ``replay`` streams one scenario instance through the online
:class:`~repro.service.ClusterService` as timed events, optionally
kill/restoring from snapshots along the way, and verifies the result is
bit-identical to the batch scheduler (exit code 1 if not).  ``serve``
runs the service as a line-oriented JSONL daemon on stdin/stdout.
``bench`` records the benchmark trajectory files (``BENCH_fleet.json``,
``BENCH_pipeline.json``, ``BENCH_service.json``) from one registry-driven
recorder (:mod:`repro.bench`); ``bench fleet --quick --check-against
BENCH_fleet.json`` is the CI perf-gate -- it fails when the batched
kernel's speedup *ratios* regress below the committed record.  Every
command prints the paper-layout output used in EXPERIMENTS.md.

Every ``--policy`` flag accepts a registered policy name or a
parameterized ``name:key=value[,key=value...]`` string (e.g.
``rand:n_orderings=30``); names, help text and the ``policies`` table
all derive from :data:`repro.policies.POLICY_REGISTRY`, so the CLI can
never drift from the registry.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def _add_pipeline_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--workers", type=int, default=1,
        help="instance fan-out over worker processes (results identical)",
    )
    p.add_argument(
        "--cache-dir", default=None,
        help="JSONL instance checkpoint directory (enables resume)",
    )
    p.add_argument(
        "--no-resume", action="store_true",
        help="recompute even when the checkpoint already has instances",
    )
    p.add_argument(
        "--no-batch", action="store_true",
        help="disable the cross-instance batched kernel (per-instance "
        "simulation; results are bit-identical, only slower)",
    )
    p.add_argument(
        "--store-dir", default=None,
        help="content-addressed result store directory shared across "
        "specs: dedupes identical (workload, policy, seed) rows",
    )


def _add_resilience_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--heartbeat-timeout", type=float, default=None,
        dest="heartbeat_timeout", metavar="SECONDS",
        help="supervisor response deadline: a worker whose oldest pending "
             "command is older than this is declared failed and respawned "
             "(default 60)",
    )
    p.add_argument(
        "--max-restarts", type=int, default=None,
        dest="max_restarts", metavar="N",
        help="per-worker crash budget before quarantine (default 3; the "
             "budget refills after sustained healthy operation)",
    )
    p.add_argument(
        "--chaos", default=None, metavar="PLAN",
        help="deterministic fault injection: 'seed=S,rate=R[,stall=SEC,"
             "max_incarnations=N,tear_wal_rate=F,"
             "script=W.INC.KIND.AT_OP+...]' -- the same plan always "
             "injects the same faults (see repro.gateway.faults)",
    )


def _resilience_kwargs(args: argparse.Namespace) -> "dict":
    """``supervisor=`` / ``fault_plan=`` Gateway kwargs from CLI flags."""
    from .gateway import FaultPlan, SupervisorPolicy

    overrides: dict = {}
    if args.heartbeat_timeout is not None:
        overrides["heartbeat_timeout_s"] = args.heartbeat_timeout
        # keep idle pings comfortably inside the deadline
        overrides["ping_interval_s"] = min(5.0, args.heartbeat_timeout / 4)
    if args.max_restarts is not None:
        overrides["max_restarts"] = args.max_restarts
    return {
        "supervisor": SupervisorPolicy(**overrides) if overrides else None,
        "fault_plan": FaultPlan.parse(args.chaos) if args.chaos else None,
    }


def _policy_flag_help(intro: str) -> str:
    """Registry-derived ``--policy`` help (cannot drift from the table)."""
    from .policies import policy_names

    return (
        f"{intro}: {', '.join(policy_names('step'))}; parameters via "
        f"NAME:key=value,... (see `repro policies`)"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Non-monetary fair scheduling (SPAA'13) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figure2", help="Fig. 2 worked utility example")
    sub.add_parser("figure7", help="Fig. 7 greedy utilization example")

    gap = sub.add_parser("gap", help="Theorem 5.3 order/reverse gap")
    gap.add_argument("--max-orgs", type=int, default=256)
    gap.add_argument(
        "--policy", default=None, metavar="NAME[:k=v,...]",
        help="also *run* this registered policy on the gadget at each m "
        "(sampled policies go past the exact max_orgs=10 ceiling; "
        "exact ones are refused there)",
    )
    gap.add_argument("--job-size", type=int, default=3)
    gap.add_argument("--seed", type=int, default=0)

    gadget = sub.add_parser("gadget", help="Theorem 5.1 SUBSETSUM gadget")
    gadget.add_argument("values", help="comma-separated positive ints, e.g. 1,2")
    gadget.add_argument("x", type=int, help="target sum")

    demo = sub.add_parser("demo", help="consortium comparison on a trace window")
    demo.add_argument("--trace", default="LPC-EGEE")
    demo.add_argument("--duration", type=int, default=3000)
    demo.add_argument("--orgs", type=int, default=5)
    demo.add_argument("--seed", type=int, default=7)

    for name, dur, reps in (("table1", 5_000, 3), ("table2", 20_000, 2)):
        t = sub.add_parser(name, help=f"regenerate {name} (scaled)")
        t.add_argument("--duration", type=int, default=dur)
        t.add_argument("--repeats", type=int, default=reps)
        t.add_argument("--seed", type=int, default=0)
        _add_pipeline_flags(t)

    f10 = sub.add_parser("figure10", help="unfairness vs #organizations")
    f10.add_argument("--orgs", default="2,3,4,5")
    f10.add_argument("--duration", type=int, default=3000)
    f10.add_argument("--repeats", type=int, default=2)
    _add_pipeline_flags(f10)

    sub.add_parser("scenarios", help="list the scenario registry")

    pol = sub.add_parser(
        "policies",
        help="list the policy registry (name, params, capabilities, paper §)",
    )
    pol.add_argument(
        "--capability", default=None,
        help="only policies with this truthy capability (e.g. step, batch)",
    )

    run = sub.add_parser(
        "run", help="run any registered scenario through the pipeline"
    )
    run.add_argument("scenario", help="a name from `repro scenarios`")
    run.add_argument("--traces", default=None,
                     help="comma-separated trace list override")
    run.add_argument("--orgs", type=int, default=None, dest="n_orgs",
                     help="fixed organization count (clears any org-count "
                          "sweep axis the scenario declares)")
    run.add_argument("--org-counts", default=None, dest="org_counts",
                     help="comma-separated org-count sweep axis, e.g. 2,4,8")
    run.add_argument("--duration", type=int, default=None)
    run.add_argument("--repeats", type=int, default=None, dest="n_repeats")
    run.add_argument("--scale", type=float, default=None)
    run.add_argument("--seed", type=int, default=None)
    run.add_argument("--machine-dist", default=None,
                     choices=("zipf", "uniform"), dest="machine_dist")
    run.add_argument("--portfolio", default=None,
                     help="algorithm portfolio name (default from scenario)")
    run.add_argument("--metrics", default=None,
                     help="comma-separated metric names")
    run.add_argument("--swf", default=None, dest="swf_path",
                     help="SWF file path (swf-family scenarios)")
    run.add_argument("--quiet", action="store_true",
                     help="suppress per-instance progress lines")
    _add_pipeline_flags(run)

    rp = sub.add_parser(
        "replay",
        help="stream a scenario instance through the online service and "
             "verify bit-identical equivalence with the batch scheduler",
    )
    rp.add_argument("scenario", help="a name from `repro scenarios`")
    rp.add_argument("--policy", default="directcontr",
                    help=_policy_flag_help("service policy"))
    rp.add_argument("--instance", type=int, default=0,
                    help="which enumerated instance of the scenario to replay")
    rp.add_argument("--snapshot-every", type=int, default=None,
                    dest="snapshot_every", metavar="N",
                    help="kill the service and restore it from a snapshot "
                         "after every N release groups")
    rp.add_argument("--metrics", default=None,
                    help="comma-separated metric names to score against the "
                         "exact REF reference")
    rp.add_argument("--no-verify", action="store_true",
                    help="skip the batch-equivalence check (pure throughput)")
    rp.add_argument("--duration", type=int, default=None)
    rp.add_argument("--orgs", type=int, default=None, dest="n_orgs")
    rp.add_argument("--repeats", type=int, default=None, dest="n_repeats")
    rp.add_argument("--scale", type=float, default=None)
    rp.add_argument("--seed", type=int, default=None)
    rp.add_argument("--swf", default=None, dest="swf_path",
                    help="SWF file path (swf-family scenarios)")

    srv = sub.add_parser(
        "serve", help="run the online scheduler as a JSONL stdin/stdout daemon"
    )
    srv.add_argument("--orgs", default="2,1",
                     help="genesis machine counts per organization, e.g. 3,2,2")
    srv.add_argument("--policy", default="directcontr",
                     help=_policy_flag_help("service policy"))
    srv.add_argument("--seed", type=int, default=0)
    srv.add_argument("--horizon", type=int, default=None)
    srv.add_argument("--restore", default=None, metavar="SNAPSHOT",
                     help="resume from a snapshot file instead of genesis "
                          "(--orgs/--policy/--seed are then taken from it)")
    srv.add_argument("--snapshot-to", default=None, dest="snapshot_to",
                     metavar="FILE",
                     help="write a final snapshot when the loop ends")
    srv.add_argument("--batch-max", type=int, default=1, dest="batch_max",
                     metavar="N",
                     help="micro-batch ingest: buffer up to N submitted jobs "
                          "before feeding the policy as one grouped kernel "
                          "update (default 1 = feed each submit immediately; "
                          "0 = unbounded, flush on time advance/observation). "
                          "Never changes the schedule, only throughput")
    srv.add_argument("--batch-linger-ms", type=float, default=None,
                     dest="batch_linger_ms", metavar="MS",
                     help="force-flush the ingest buffer once its oldest job "
                          "is older than MS milliseconds (checked after each "
                          "command; default: no time bound)")

    gwp = sub.add_parser(
        "gateway",
        help="run the sharded multi-tenant gateway: one JSONL daemon "
             "fronting a fleet of ClusterService shards across worker "
             "processes",
    )
    gwp.add_argument("--workers", type=int, default=2,
                     help="worker processes (process-per-core; default 2)")
    gwp.add_argument("--shards", type=int, default=4,
                     help="shard count (>= workers; default 4)")
    gwp.add_argument("--tenants", type=int, default=8,
                     help="uniform tenant roster size t0..tN-1 (default 8)")
    gwp.add_argument("--machines", type=int, default=1,
                     help="machines contributed per tenant (default 1)")
    gwp.add_argument("--policy", default="fifo",
                     help=_policy_flag_help("per-shard policy"))
    gwp.add_argument("--seed", type=int, default=0,
                     help="base seed (shard s runs seed+s)")
    gwp.add_argument("--horizon", type=int, default=None)
    gwp.add_argument("--rate", type=float, default=None,
                     help="per-tenant token-bucket rate (jobs per time unit "
                          "of the gateway clock; default: unlimited)")
    gwp.add_argument("--burst", type=float, default=None,
                     help="token-bucket capacity (default: max(rate, 1))")
    gwp.add_argument("--credits", type=int, default=None,
                     help="per-tenant work budget in size units "
                          "(default: unlimited)")
    gwp.add_argument("--batch-max", type=int, default=None, dest="batch_max",
                     help="per-shard micro-batch ingest bound (see serve)")
    gwp.add_argument("--batch-linger-ms", type=float, default=None,
                     dest="batch_linger_ms",
                     help="per-shard ingest linger bound (see serve)")
    gwp.add_argument("--snapshot-dir", default=None, dest="snapshot_dir",
                     metavar="DIR",
                     help="fleet checkpoint directory (enables the snapshot "
                          "op, crash recovery, and shutdown checkpoints)")
    gwp.add_argument("--stats-every", type=float, default=None,
                     dest="stats_every", metavar="SECONDS",
                     help="emit a periodic fleet stats line to stderr")
    _add_resilience_flags(gwp)

    lg = sub.add_parser(
        "loadgen",
        help="drive a deterministic multi-tenant event storm through a "
             "gateway fleet and verify fleet == batch per shard",
    )
    lg.add_argument("--events", type=int, default=100_000,
                    help="submit events to offer (default 100000)")
    lg.add_argument("--tenants", type=int, default=64,
                    help="tenant roster size (default 64)")
    lg.add_argument("--releases", type=int, default=250,
                    help="distinct release times (default 250)")
    lg.add_argument("--max-size", type=int, default=6, dest="max_size",
                    help="job sizes drawn uniformly from 1..N (default 6)")
    lg.add_argument("--workers", type=int, default=2)
    lg.add_argument("--shards", type=int, default=8)
    lg.add_argument("--machines", type=int, default=1)
    lg.add_argument("--policy", default="fifo",
                    help=_policy_flag_help("per-shard policy"))
    lg.add_argument("--seed", type=int, default=0,
                    help="stream and policy seed")
    lg.add_argument("--horizon", type=int, default=None)
    lg.add_argument("--rate", type=float, default=None,
                    help="per-tenant admission rate limit")
    lg.add_argument("--burst", type=float, default=None)
    lg.add_argument("--credits", type=int, default=None,
                    help="per-tenant work budget")
    lg.add_argument("--snapshot-at", type=int, default=None,
                    dest="snapshot_at", metavar="RELEASE",
                    help="checkpoint the fleet mid-stream at this release "
                         "(records the snapshot-under-load cost)")
    lg.add_argument("--kill-at", type=int, default=None, dest="kill_at",
                    metavar="RELEASE",
                    help="SIGKILL worker 0 mid-stream at this release and "
                         "restore it (requires --snapshot-at earlier, or "
                         "recovery replays the whole WAL)")
    lg.add_argument("--no-verify", action="store_true",
                    help="skip the per-shard batch-equivalence check")
    lg.add_argument("--progress", action="store_true",
                    help="print a stats line per release group to stderr")
    _add_resilience_flags(lg)
    lg.add_argument("--require-recoveries", type=int, default=None,
                    dest="require_recoveries", metavar="N",
                    help="exit 1 unless the run auto-recovered at least N "
                         "worker crashes (CI chaos gate)")
    lg.add_argument("--require-quarantines", type=int, default=None,
                    dest="require_quarantines", metavar="N",
                    help="exit 1 unless at least N workers were quarantined "
                         "(CI chaos gate)")

    bench = sub.add_parser(
        "bench",
        help="record the BENCH_*.json benchmark trajectories "
             "(fleet kernel speedups, pipeline fan-out, service throughput)",
    )
    bench.add_argument(
        "bench",
        choices=("fleet", "pipeline", "service", "gateway", "approx", "all"),
        help="which trajectory to record (all: every registered bench)",
    )
    bench.add_argument("--output", default=None,
                       help="output JSON path (default: the bench's "
                            "canonical BENCH_*.json; ignored with 'all')")
    bench.add_argument("--quick", action="store_true",
                       help="fleet: fewer timing rounds and no k=10 tier; "
                            "pipeline: fewer repeats "
                            "(the perf-gate configuration)")
    bench.add_argument("--check-against", default=None, metavar="FILE",
                       dest="check_against",
                       help="fleet/pipeline/service: exit 1 when a gated "
                            "same-machine ratio regresses past this "
                            "committed record by more than --tolerance")
    bench.add_argument("--tolerance", type=float, default=0.35,
                       help="relative ratio tolerance for --check-against "
                            "(default 0.35)")
    bench.add_argument("--workers", type=int, default=4,
                       help="pipeline: parallel worker count")
    bench.add_argument("--repeats", type=int, default=12,
                       help="pipeline: experiment repeat axis size")
    bench.add_argument("--jobs", type=int, default=600,
                       help="service: streamed job count")
    return parser


def _cmd_figure2() -> None:
    from .experiments.figures import figure2_numbers, figure2_schedule, figure2_workload
    from .viz import gantt

    n = figure2_numbers()
    print("Figure 2 -- worked psi_sp example (paper values in parens)")
    print(f"  psi_sp(O1, t=13) = {n.psi_o1_t13}  (262)")
    print(f"  psi_sp(O1, t=14) = {n.psi_o1_t14}  (297)")
    print(f"  flow time (O1)   = {n.flow_time_o1}  (70)")
    print(f"  without J(2)1    : {n.gain_without_j2:+d}  (+4)")
    print(f"  J6 one unit late : {n.loss_j6_late:+d}  (-6)")
    print(f"  J9 dropped       : {n.loss_drop_j9:+d}  (-10)")
    print()
    print(gantt(figure2_schedule(), 3, 14))


def _cmd_figure7() -> None:
    from .analysis.utilization import figure7_ratios

    best, worst = figure7_ratios()
    print("Figure 7 -- greedy utilization at T=6 (paper: 100% / 75%)")
    print(f"  O(2)-first greedy: {best:.0%}")
    print(f"  O(1)-first greedy: {worst:.0%}")


def _cmd_gap(
    max_orgs: int,
    policy: "str | None" = None,
    job_size: int = 3,
    seed: int = 0,
) -> None:
    from .analysis.inapprox import order_reverse_gap, policy_order_gap
    from .policies import CapabilityError

    print("Theorem 5.3 -- relative distance between sigma_ord and sigma_rev")
    m = 2
    while m <= max_orgs:
        g = order_reverse_gap(m, job_size)
        line = f"  m={m:>5}: {g.ratio:.4f}"
        if policy:
            try:
                r = policy_order_gap(policy, m, job_size, seed=seed)
                line += (
                    f"   {policy}: d(ord)={r['ratio_ord']:.4f}"
                    f" d(rev)={r['ratio_rev']:.4f}"
                )
            except CapabilityError as exc:
                line += f"   {policy}: refused ({exc})"
        print(line)
        m *= 2
    print("  -> tends to 1: no (1/2 - eps)-approximation can separate them")


def _cmd_gadget(values_csv: str, x: int) -> None:
    from .algorithms.ref import RefScheduler
    from .analysis.hardness import (
        ORG_A,
        count_orderings_below,
        decode_contribution,
        gadget_eval_time,
        gadget_workload,
    )

    values = [int(v) for v in values_csv.split(",")]
    a = ORG_A(values)

    def decoded(target: int) -> int:
        wl = gadget_workload(values, target)
        phi = RefScheduler().contributions_at(wl, gadget_eval_time(values, target))
        return decode_contribution(phi[a], values)

    d_x, d_x1 = decoded(x), decoded(x + 1)
    print(f"Theorem 5.1 gadget for S={values}, x={x}")
    print(f"  decoded n_<{x}(S)   = {d_x}  (oracle {count_orderings_below(values, x)})")
    print(f"  decoded n_<{x+1}(S) = {d_x1}  (oracle {count_orderings_below(values, x + 1)})")
    print(f"  subset summing to exactly {x} exists: {d_x1 > d_x}")


def _cmd_demo(trace: str, duration: int, orgs: int, seed: int) -> None:
    from .experiments.harness import ExperimentConfig, sample_instance
    from .experiments.registry import PORTFOLIO_SPECS
    from .sim.runner import compare_algorithms
    from .viz import fairness_report

    config = ExperimentConfig(
        traces=(trace,), n_orgs=orgs, duration=duration, seed=seed
    )
    rng = np.random.default_rng(seed)
    workload = sample_instance(trace, config, rng)
    print(f"{trace} window: {workload.stats()}")
    comparison = compare_algorithms(
        PORTFOLIO_SPECS["paper"], "ref", workload, duration, seed=seed
    )
    print(fairness_report(comparison))


def _cmd_table(which: str, args: argparse.Namespace) -> None:
    from .experiments.reporting import render_table
    from .experiments.tables import table1, table2

    fn = table1 if which == "table1" else table2
    result = fn(
        duration=args.duration,
        n_repeats=args.repeats,
        seed=args.seed,
        workers=args.workers,
        cache_dir=args.cache_dir,
        resume=not args.no_resume,
    )
    print(render_table(result, title=f"{which} (scaled reproduction)"))


def _cmd_figure10(args: argparse.Namespace) -> None:
    from .experiments.figures import figure10
    from .experiments.reporting import render_series
    from .viz import sparkline

    org_counts = tuple(int(v) for v in args.orgs.split(","))
    xs, series = figure10(
        org_counts,
        duration=args.duration,
        n_repeats=args.repeats,
        workers=args.workers,
        cache_dir=args.cache_dir,
        resume=not args.no_resume,
    )
    print(render_series(xs, series, "organizations", "Figure 10 (scaled)"))
    print()
    for name, ys in series.items():
        print(f"  {name:<16} {sparkline(ys)}")


def _cmd_scenarios() -> None:
    from .experiments.registry import list_scenarios

    print("registered scenarios (repro run NAME):")
    for sc in list_scenarios():
        spec = sc.spec
        print(f"  {sc.name:<12} {sc.description}")
        print(
            f"  {'':<12}   family={spec.family} traces={','.join(spec.traces)}"
            f" duration={spec.duration} repeats={spec.n_repeats}"
            f" portfolio={spec.portfolio}"
        )


def _cmd_policies(capability: "str | None") -> None:
    from .policies import ENTRY_POINT_GROUP, PolicyCapabilities, list_policies

    if capability is not None and capability not in vars(
        PolicyCapabilities()
    ):
        fields = ", ".join(vars(PolicyCapabilities()))
        raise SystemExit(
            f"unknown capability {capability!r}; one of: {fields}"
        )
    entries = [
        e
        for e in list_policies()
        if capability is None or getattr(e.capabilities, capability)
    ]
    print("registered policies (--policy NAME[:param=value,...]):")
    header = f"  {'name':<14} {'capabilities':<42} {'paper':<14} params"
    print(header)
    print("  " + "-" * (len(header) - 2))
    for e in entries:
        params = (
            "; ".join(
                f"{p.name}:{p.type.__name__}={p.default}" for p in e.params
            )
            or "-"
        )
        print(
            f"  {e.name:<14} {e.capabilities.summary():<42} "
            f"{e.paper_section:<14} {params}"
        )
        print(f"  {'':<14} {e.summary}")
    print(
        f"\nthird-party policies register through the "
        f"{ENTRY_POINT_GROUP!r} entry-point group (see DESIGN.md §7)"
    )


def _cmd_run(args: argparse.Namespace) -> None:
    from .experiments.pipeline import run_pipeline
    from .experiments.registry import scenario_spec
    from .experiments.reporting import render_pipeline

    traces = (
        tuple(args.traces.split(",")) if args.traces is not None else None
    )
    metrics = (
        tuple(args.metrics.split(",")) if args.metrics is not None else None
    )
    org_counts = (
        tuple(int(v) for v in args.org_counts.split(","))
        if args.org_counts is not None
        # --orgs means "exactly N": clear a scenario's sweep axis, which
        # would otherwise override n_orgs per variant
        else (() if args.n_orgs is not None else None)
    )
    spec = scenario_spec(
        args.scenario,
        traces=traces,
        n_orgs=args.n_orgs,
        org_counts=org_counts,
        duration=args.duration,
        n_repeats=args.n_repeats,
        scale=args.scale,
        seed=args.seed,
        machine_dist=args.machine_dist,
        portfolio=args.portfolio,
        metrics=metrics,
        swf_path=args.swf_path,
    )
    result = run_pipeline(
        spec,
        workers=args.workers,
        cache_dir=args.cache_dir,
        resume=not args.no_resume,
        batch=not args.no_batch,
        store_dir=args.store_dir,
        progress=None if args.quiet else lambda line: print(line, flush=True),
    )
    print(render_pipeline(result, title=f"{args.scenario} ({spec.family})"))
    print(
        f"\n{result.computed} computed + {result.cached} cached instances "
        f"in {result.wall_time_s:.1f}s"
        + (f"; checkpoint: {result.cache_path}" if result.cache_path else "")
    )


def _cmd_replay(args: argparse.Namespace) -> int:
    from .service import replay_scenario

    overrides = {
        k: getattr(args, k)
        for k in ("duration", "n_orgs", "n_repeats", "scale", "seed", "swf_path")
        if getattr(args, k) is not None
    }
    metrics = (
        tuple(args.metrics.split(",")) if args.metrics is not None else None
    )
    report = replay_scenario(
        args.scenario,
        instance_index=args.instance,
        policy=args.policy,
        snapshot_every=args.snapshot_every,
        check_batch=not args.no_verify,
        metrics=metrics,
        **overrides,
    )
    print(f"replay: {args.scenario}[{args.instance}] through the online service")
    print(report.summary())
    return 0 if report.equivalent in (True, None) else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import ClusterService
    from .service.daemon import (
        ShutdownRequested,
        install_shutdown_handlers,
        serve_loop,
    )
    from .service.snapshot import load_snapshot

    if args.batch_max < 0:
        print("--batch-max must be >= 0", file=sys.stderr)
        return 2
    batch_max = None if args.batch_max == 0 else args.batch_max
    if args.restore is not None:
        service = ClusterService.restore(
            load_snapshot(args.restore), batch_max=batch_max
        )
    else:
        counts = tuple(int(v) for v in args.orgs.split(","))
        service = ClusterService(
            counts,
            args.policy,
            seed=args.seed,
            horizon=args.horizon,
            batch_max=batch_max,
        )
    status = service.status()
    print(
        f"serving policy={status['policy']} members={status['members']} "
        f"clock={status['clock']} (one JSON command per line; "
        '{"op": "stop"} or EOF ends)',
        file=sys.stderr,
        flush=True,
    )
    install_shutdown_handlers()
    try:
        serve_loop(
            service,
            sys.stdin,
            sys.stdout,
            snapshot_to=args.snapshot_to,
            batch_linger_ms=args.batch_linger_ms,
        )
    except ShutdownRequested as sd:
        # supervisor kill: serve_loop's finally already wrote the
        # --snapshot-to checkpoint, so this exit is fully recoverable
        print(f"graceful shutdown ({sd})", file=sys.stderr, flush=True)
    return 0


def _gateway_config(args: argparse.Namespace) -> "object":
    from .gateway import GatewayConfig

    return GatewayConfig.uniform(
        args.tenants,
        machines=args.machines,
        rate=args.rate,
        burst=args.burst,
        credits=args.credits,
        n_workers=args.workers,
        n_shards=args.shards,
        policy=args.policy,
        seed=args.seed,
        horizon=args.horizon,
        batch_max=getattr(args, "batch_max", None),
        batch_linger_ms=getattr(args, "batch_linger_ms", None),
    )


def _cmd_gateway(args: argparse.Namespace) -> int:
    from .gateway import Gateway, gateway_serve_loop
    from .service.daemon import install_shutdown_handlers

    if args.shards < args.workers:
        print("--shards must be >= --workers", file=sys.stderr)
        return 2
    config = _gateway_config(args)
    install_shutdown_handlers()
    with Gateway(
        config, snapshot_dir=args.snapshot_dir, **_resilience_kwargs(args)
    ) as gw:
        print(
            f"gateway {config.content_hash()}: "
            f"{gw.pool.n_live_workers} workers / "
            f"{len(config.shard_ids())} shards / "
            f"{len(config.tenants)} tenants, policy={config.policy} "
            '(one JSON command per line; {"op": "stop"} or EOF ends)',
            file=sys.stderr,
            flush=True,
        )
        gateway_serve_loop(
            gw,
            sys.stdin,
            sys.stdout,
            stats_every_s=args.stats_every,
            stats_out=sys.stderr,
        )
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .gateway import Gateway, LoadSpec, run_loadgen

    if args.shards < args.workers:
        print("--shards must be >= --workers", file=sys.stderr)
        return 2
    config = _gateway_config(args)
    spec = LoadSpec(
        n_events=args.events,
        n_releases=args.releases,
        max_size=args.max_size,
        seed=args.seed,
    )
    progress = (
        (lambda line: print(line, file=sys.stderr, flush=True))
        if args.progress
        else None
    )
    snapshot_dir = None
    if (
        args.snapshot_at is not None
        or args.kill_at is not None
        or args.chaos is not None
    ):
        import tempfile

        # chaos runs get a durable WAL + checkpoint dir so recovery
        # exercises the full restore path, not just in-memory replay
        snapshot_dir = tempfile.mkdtemp(prefix="repro-gateway-")
    with Gateway(
        config, snapshot_dir=snapshot_dir, **_resilience_kwargs(args)
    ) as gw:
        report = run_loadgen(
            gw,
            spec,
            snapshot_at_release=args.snapshot_at,
            kill_worker_at_release=args.kill_at,
            verify=not args.no_verify,
            progress=progress,
        )
    print(report.summary())
    failures = []
    chaos = report.chaos or {}
    if args.require_recoveries is not None:
        got = chaos.get("auto_recoveries", 0)
        if got < args.require_recoveries:
            failures.append(
                f"required >= {args.require_recoveries} auto recoveries, "
                f"got {got}"
            )
    if args.require_quarantines is not None:
        got = chaos.get("quarantines", 0)
        if got < args.require_quarantines:
            failures.append(
                f"required >= {args.require_quarantines} quarantines, "
                f"got {got}"
            )
    if report.verified not in (True, None):
        failures.append("fleet != batch (digest divergence)")
    for reason in failures:
        print(f"loadgen gate: {reason}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "figure2":
        _cmd_figure2()
    elif args.command == "figure7":
        _cmd_figure7()
    elif args.command == "gap":
        _cmd_gap(args.max_orgs, args.policy, args.job_size, args.seed)
    elif args.command == "gadget":
        _cmd_gadget(args.values, args.x)
    elif args.command == "demo":
        _cmd_demo(args.trace, args.duration, args.orgs, args.seed)
    elif args.command in ("table1", "table2"):
        _cmd_table(args.command, args)
    elif args.command == "figure10":
        _cmd_figure10(args)
    elif args.command == "scenarios":
        _cmd_scenarios()
    elif args.command == "policies":
        _cmd_policies(args.capability)
    elif args.command == "run":
        _cmd_run(args)
    elif args.command == "replay":
        return _cmd_replay(args)
    elif args.command == "serve":
        return _cmd_serve(args)
    elif args.command == "gateway":
        return _cmd_gateway(args)
    elif args.command == "loadgen":
        return _cmd_loadgen(args)
    elif args.command == "bench":
        from .bench import main as bench_main

        return bench_main(args)
    else:  # pragma: no cover - argparse enforces the choices
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
