"""The stable public API facade: the blessed surface to build on.

Everything the repository's three consumer layers expose is re-exported
here under one import::

    from repro import api

    spec = api.PolicySpec.parse("rand:n_orderings=30")
    scheduler = api.build_scheduler(spec, seed=7, horizon=5_000)
    comparison = api.compare_algorithms(
        ["roundrobin", spec, "directcontr"], "ref", workload, t_end=5_000
    )

The surface is **versioned by snapshot**: ``API_SURFACE.txt`` at the
repository root records every exported name and callable signature, and
CI fails on unreviewed changes (``python tools/api_surface.py --check``).
Deprecated aliases (``repro.service.service.POLICIES``,
``batch_counterpart``) are *not* part of this surface — they emit
``DeprecationWarning`` and forward here.

Layers (see DESIGN.md §7 for the policy registry / capability model):

* **policy registry** — :class:`PolicySpec`, :class:`PolicyEntry`,
  :class:`PolicyCapabilities`, :data:`POLICY_REGISTRY`,
  :func:`register_policy`, :func:`build_scheduler`,
  :func:`build_online_policy`, entry-point discovery
  (:func:`discover_policies`), typed errors;
* **model** — :class:`Workload`, :class:`Job`, :class:`Organization`,
  :class:`Schedule`, :class:`ScheduledJob`, :class:`ClusterEngine`,
  :class:`CoalitionFleet`;
* **batch running** — :class:`Scheduler`, :class:`SchedulerResult`,
  :func:`compare_algorithms`, :func:`evaluate_portfolio`,
  :func:`run_schedule`, :data:`METRICS`;
* **experiments** — :class:`ScenarioSpec`, :func:`run_pipeline`, the
  scenario/portfolio/family registries;
* **online serving** — :class:`ClusterService`, :class:`OnlinePolicy`,
  :class:`ReplayDriver`, :func:`replay_scenario`, snapshot I/O;
* **gateway fleet** — :class:`Gateway`, :class:`GatewayConfig`,
  :class:`TenantSpec`, :class:`AdmissionController`,
  :class:`AdmissionError`, :class:`LoadSpec`, :func:`run_loadgen`
  (DESIGN.md §11: the sharded multi-tenant front door);
* **self-healing** — :class:`SupervisorPolicy`, :class:`FaultPlan`,
  :class:`ShardUnavailable` (DESIGN.md §13: supervision, deterministic
  fault injection, graceful degradation).
"""

from __future__ import annotations

from .algorithms.base import PolicyScheduler, Scheduler, SchedulerResult
from .approx import (
    AdaptiveScheduler,
    CertificateSummary,
    DecisionCertificate,
    HierScheduler,
    StratifiedScheduler,
    agreement_report,
)
from .core import (
    ClusterEngine,
    CoalitionFleet,
    FleetKernel,
    Job,
    Organization,
    Schedule,
    ScheduledJob,
    Workload,
    kernel_certified,
)
from .experiments.pipeline import PipelineResult, run_pipeline
from .gateway import (
    AdmissionController,
    AdmissionError,
    FaultPlan,
    Gateway,
    GatewayConfig,
    LoadReport,
    LoadSpec,
    ShardUnavailable,
    SupervisorPolicy,
    TenantSpec,
    run_loadgen,
)
from .experiments.registry import (
    PORTFOLIO_SPECS,
    Scenario,
    list_scenarios,
    register_family,
    register_portfolio,
    register_portfolio_specs,
    register_scenario,
    scenario_spec,
)
from .experiments.spec import InstanceSpec, ScenarioSpec
from .policies import (
    ENTRY_POINT_GROUP,
    POLICY_REGISTRY,
    CapabilityError,
    ParamSpec,
    PolicyCapabilities,
    PolicyEntry,
    PolicyParamError,
    PolicySpec,
    UnknownPolicyError,
    build_online_policy,
    build_scheduler,
    discover_policies,
    get_policy,
    list_policies,
    policy_names,
    register_policy,
    resolve_policy,
)
from .service import (
    ClusterService,
    OnlinePolicy,
    ReplayDriver,
    ReplayReport,
    load_snapshot,
    replay_scenario,
    save_snapshot,
)
from .sim.runner import (
    METRICS,
    as_scheduler,
    compare_algorithms,
    evaluate_portfolio,
    run_schedule,
)

__all__ = [
    "AdaptiveScheduler",
    "AdmissionController",
    "AdmissionError",
    "CapabilityError",
    "CertificateSummary",
    "ClusterEngine",
    "ClusterService",
    "CoalitionFleet",
    "DecisionCertificate",
    "ENTRY_POINT_GROUP",
    "FaultPlan",
    "FleetKernel",
    "Gateway",
    "GatewayConfig",
    "HierScheduler",
    "InstanceSpec",
    "Job",
    "LoadReport",
    "LoadSpec",
    "METRICS",
    "OnlinePolicy",
    "Organization",
    "POLICY_REGISTRY",
    "PORTFOLIO_SPECS",
    "ParamSpec",
    "PipelineResult",
    "PolicyCapabilities",
    "PolicyEntry",
    "PolicyParamError",
    "PolicyScheduler",
    "PolicySpec",
    "ReplayDriver",
    "ReplayReport",
    "Scenario",
    "ScenarioSpec",
    "Schedule",
    "ScheduledJob",
    "Scheduler",
    "SchedulerResult",
    "ShardUnavailable",
    "StratifiedScheduler",
    "SupervisorPolicy",
    "TenantSpec",
    "UnknownPolicyError",
    "Workload",
    "agreement_report",
    "as_scheduler",
    "build_online_policy",
    "build_scheduler",
    "compare_algorithms",
    "discover_policies",
    "evaluate_portfolio",
    "get_policy",
    "kernel_certified",
    "list_policies",
    "list_scenarios",
    "load_snapshot",
    "policy_names",
    "register_family",
    "register_policy",
    "register_portfolio",
    "register_portfolio_specs",
    "register_scenario",
    "replay_scenario",
    "resolve_policy",
    "run_loadgen",
    "run_pipeline",
    "run_schedule",
    "save_snapshot",
    "scenario_spec",
]
