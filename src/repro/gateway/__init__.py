"""Sharded multi-tenant gateway: one daemon fronting a ClusterService fleet.

The PR 8 subsystem (ISSUE 8, DESIGN.md §11).  One :class:`Gateway`
process multiplexes many independent :class:`~repro.service.
ClusterService` shards across process-per-core workers:

* :mod:`~repro.gateway.routing` -- deterministic ``tenant -> shard ->
  worker`` placement (stable SHA-256 hash, round-robin), derivable by any
  config holder.
* :mod:`~repro.gateway.config` -- the content-hashed
  :class:`GatewayConfig` / :class:`TenantSpec` roster.
* :mod:`~repro.gateway.admission` -- per-tenant token-bucket rate limits
  and credit budgets at the ingest door, with typed in-band errors.
* :mod:`~repro.gateway.worker` -- the shard host process (the single
  daemon's JSONL loop multiplexed over its shards, command handling
  verbatim).
* :mod:`~repro.gateway.gateway` -- :class:`ShardPool` (pipes, pipelining,
  WAL, checkpoint, kill/restore) and the tenant-facing :class:`Gateway`.
* :mod:`~repro.gateway.loadgen` -- the deterministic event storm and the
  per-shard fleet == batch digest verification.
"""

from .admission import AdmissionController, AdmissionError, TokenBucket
from .config import GatewayConfig, TenantSpec
from .gateway import (
    Gateway,
    GatewayError,
    ShardPool,
    WorkerDied,
    gateway_serve_loop,
)
from .loadgen import (
    LoadReport,
    LoadSpec,
    generate_stream,
    run_loadgen,
    verify_against_batch,
)
from .routing import shard_of, stable_hash, worker_of

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "TokenBucket",
    "GatewayConfig",
    "TenantSpec",
    "Gateway",
    "GatewayError",
    "ShardPool",
    "WorkerDied",
    "gateway_serve_loop",
    "LoadReport",
    "LoadSpec",
    "generate_stream",
    "run_loadgen",
    "verify_against_batch",
    "shard_of",
    "stable_hash",
    "worker_of",
]
