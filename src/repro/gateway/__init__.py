"""Sharded multi-tenant gateway: one daemon fronting a ClusterService fleet.

The PR 8 subsystem (ISSUE 8, DESIGN.md §11).  One :class:`Gateway`
process multiplexes many independent :class:`~repro.service.
ClusterService` shards across process-per-core workers:

* :mod:`~repro.gateway.routing` -- deterministic ``tenant -> shard ->
  worker`` placement (stable SHA-256 hash, round-robin), derivable by any
  config holder.
* :mod:`~repro.gateway.config` -- the content-hashed
  :class:`GatewayConfig` / :class:`TenantSpec` roster.
* :mod:`~repro.gateway.admission` -- per-tenant token-bucket rate limits
  and credit budgets at the ingest door, with typed in-band errors.
* :mod:`~repro.gateway.worker` -- the shard host process (the single
  daemon's JSONL loop multiplexed over its shards, command handling
  verbatim).
* :mod:`~repro.gateway.gateway` -- :class:`ShardPool` (pipes, pipelining,
  WAL, checkpoint, kill/restore) and the tenant-facing :class:`Gateway`.
* :mod:`~repro.gateway.loadgen` -- the deterministic event storm and the
  per-shard fleet == batch digest verification.
* :mod:`~repro.gateway.supervisor` -- the per-worker liveness state
  machine (detection, capped-backoff respawn, crash-loop quarantine).
* :mod:`~repro.gateway.faults` -- the seeded deterministic fault plan
  (``--chaos``) and the worker-side injector.
* :mod:`~repro.gateway.wal` -- the append-only durable per-shard WAL
  with fsynced checkpoint markers and torn-tail tolerance.
"""

from .admission import AdmissionController, AdmissionError, TokenBucket
from .config import GatewayConfig, TenantSpec
from .faults import FaultInjector, FaultPlan
from .gateway import (
    Gateway,
    GatewayError,
    ShardPool,
    ShardUnavailable,
    WorkerDied,
    gateway_serve_loop,
)
from .loadgen import (
    LoadReport,
    LoadSpec,
    generate_stream,
    run_loadgen,
    verify_against_batch,
)
from .routing import shard_of, stable_hash, worker_of
from .supervisor import Supervisor, SupervisorPolicy
from .wal import ShardWal, load_wal, wal_path

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "TokenBucket",
    "GatewayConfig",
    "TenantSpec",
    "FaultInjector",
    "FaultPlan",
    "Gateway",
    "GatewayError",
    "ShardPool",
    "ShardUnavailable",
    "WorkerDied",
    "gateway_serve_loop",
    "LoadReport",
    "LoadSpec",
    "generate_stream",
    "run_loadgen",
    "verify_against_batch",
    "shard_of",
    "stable_hash",
    "worker_of",
    "Supervisor",
    "SupervisorPolicy",
    "ShardWal",
    "load_wal",
    "wal_path",
]
