"""Admission control: per-tenant token-bucket rate and credit accounting.

The gateway is the *only* ingest door, so this is where multi-tenant
isolation lives: a tenant that floods the fleet is refused **before** its
traffic reaches a shard, with a typed in-band error -- admission failures
never crash (or even touch) a worker.

Two independent limits per tenant, both optional:

* **rate** -- a token bucket refilled in *gateway-clock* time (the
  simulation clock carried by ``advance``, not wall time), so admission
  decisions are deterministic and replayable: ``rate`` jobs per time
  unit, up to ``burst`` banked.  One submitted job costs one token.
* **credits** -- a work budget in size units: a submitted job of size
  ``p`` costs ``p`` credits; an exhausted tenant is refused until topped
  up (:meth:`AdmissionController.add_credits`).

Rejections are accounted per tenant and per error code
(:attr:`AdmissionError.code`), surfaced through
:meth:`AdmissionController.status` and the gateway's aggregate ``status``
op.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import GatewayConfig, TenantSpec

__all__ = ["AdmissionError", "TokenBucket", "AdmissionController"]

#: Typed error codes an admission refusal may carry.
#: ``shard_unavailable`` is raised by the *gateway* (the tenant's shard
#: is down or quarantined) but accounted here so per-tenant rejection
#: counters cover every refusal path -- and, like every refusal, it
#: never charges tokens or credits.
ERROR_CODES = (
    "unknown_tenant",
    "bad_request",
    "rate_limited",
    "insufficient_credits",
    "shard_unavailable",
)


class AdmissionError(ValueError):
    """A typed ingest refusal (reported in-band, never a crash)."""

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown admission error code {code!r}")
        super().__init__(message)
        self.code = code


@dataclass
class TokenBucket:
    """A deterministic token bucket refilled by the gateway clock."""

    rate: float
    burst: float
    tokens: float = field(default=0.0)
    clock: int = 0

    def __post_init__(self) -> None:
        self.tokens = float(self.burst)

    def refill(self, now: int) -> None:
        if now > self.clock:
            self.tokens = min(
                self.burst, self.tokens + self.rate * (now - self.clock)
            )
            self.clock = now

    def peek(self, now: int, cost: float = 1.0) -> bool:
        self.refill(now)
        return self.tokens + 1e-9 >= cost

    def take(self, now: int, cost: float = 1.0) -> bool:
        """Consume ``cost`` tokens if available; False when limited."""
        if not self.peek(now, cost):
            return False
        self.tokens -= cost
        return True


@dataclass
class _TenantAccount:
    spec: TenantSpec
    bucket: "TokenBucket | None"
    credits: "float | None"
    accepted: int = 0
    accepted_work: int = 0
    rejected: "dict[str, int]" = field(default_factory=dict)

    def reject(self, code: str, message: str) -> AdmissionError:
        self.rejected[code] = self.rejected.get(code, 0) + 1
        return AdmissionError(code, message)


class AdmissionController:
    """Per-tenant ingest accounting for one gateway.

    All checks happen against the gateway clock passed in by the caller
    (deterministic under replay); a submit is charged only if **every**
    limit passes, so a rejection leaves tokens and credits untouched.
    """

    def __init__(self, config: GatewayConfig) -> None:
        self.config = config
        self.clock = 0
        self._accounts: "dict[str, _TenantAccount]" = {
            t.name: _TenantAccount(
                spec=t,
                bucket=(
                    TokenBucket(rate=t.rate, burst=t.burst or max(t.rate, 1.0))
                    if t.rate is not None
                    else None
                ),
                credits=(
                    float(t.credits) if t.credits is not None else None
                ),
            )
            for t in config.tenants
        }

    def account(self, tenant: str) -> _TenantAccount:
        try:
            return self._accounts[tenant]
        except KeyError:
            raise AdmissionError(
                "unknown_tenant", f"unknown tenant {tenant!r}"
            ) from None

    def observe_clock(self, now: int) -> None:
        """Note a gateway time advance (token buckets refill lazily)."""
        if now > self.clock:
            self.clock = now

    def admit_submit(self, tenant: str, size: int, now: "int | None" = None):
        """Charge one job of ``size`` work units; raises
        :class:`AdmissionError` (typed, in-band) on refusal."""
        acct = self.account(tenant)
        now = self.clock if now is None else max(now, self.clock)
        if size < 1:
            raise acct.reject(
                "bad_request", f"size must be >= 1, got {size}"
            )
        if acct.bucket is not None and not acct.bucket.peek(now):
            raise acct.reject(
                "rate_limited",
                f"tenant {tenant!r} exceeded {acct.bucket.rate} jobs per "
                f"time unit (burst {acct.bucket.burst})",
            )
        if acct.credits is not None and acct.credits < size:
            raise acct.reject(
                "insufficient_credits",
                f"tenant {tenant!r} has {acct.credits:g} credits, job "
                f"costs {size}",
            )
        if acct.bucket is not None:
            acct.bucket.take(now)
        if acct.credits is not None:
            acct.credits -= size
        acct.accepted += 1
        acct.accepted_work += size

    def refuse(self, tenant: str, code: str, message: str) -> AdmissionError:
        """Account a gateway-side refusal (e.g. ``shard_unavailable``)
        against the tenant without touching tokens or credits."""
        return self.account(tenant).reject(code, message)

    def refund_submit(self, tenant: str, size: int) -> None:
        """Undo one :meth:`admit_submit` charge (the shard went
        unavailable between the health check and the send): refusals
        must never cost the tenant anything."""
        acct = self.account(tenant)
        if acct.bucket is not None:
            acct.bucket.tokens = min(
                acct.bucket.burst, acct.bucket.tokens + 1.0
            )
        if acct.credits is not None:
            acct.credits += size
        acct.accepted -= 1
        acct.accepted_work -= size

    def add_credits(self, tenant: str, amount: float) -> "float | None":
        """Top up a tenant's work budget; returns the new balance
        (``None`` when the tenant is uncapped)."""
        if amount < 0:
            raise AdmissionError(
                "bad_request", f"credit top-up must be >= 0, got {amount}"
            )
        acct = self.account(tenant)
        if acct.credits is None:
            return None
        acct.credits += amount
        return acct.credits

    def status(self) -> dict:
        """Per-tenant admission counters for the aggregate status op."""
        out = {}
        for name, acct in self._accounts.items():
            row = {
                "accepted": acct.accepted,
                "accepted_work": acct.accepted_work,
                "rejected": sum(acct.rejected.values()),
            }
            if acct.rejected:
                row["rejected_by_code"] = dict(sorted(acct.rejected.items()))
            if acct.credits is not None:
                row["credits_remaining"] = acct.credits
            if acct.bucket is not None:
                acct.bucket.refill(self.clock)
                row["tokens"] = round(acct.bucket.tokens, 6)
            out[name] = row
        return out
