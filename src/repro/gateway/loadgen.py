"""Load generator: a deterministic multi-tenant event storm.

``repro loadgen`` drives a synthetic stream -- 100k+ submit events across
64+ tenants by default -- through a :class:`~repro.gateway.gateway.
Gateway` and reports aggregate throughput and ingest latency.  The stream
is a pure function of the seed, so every run (and every benchmark record)
is replayable.

Correctness ride-along: because each shard is an ordinary
:class:`~repro.service.ClusterService`, the whole fleet's output can be
verified against the single-machine batch scheduler **per shard**.  The
stream is emitted in ``(release, tenant-declaration-order)`` order with
per-tenant FIFO indices assigned in stream order.  Restricted to one
shard, that order is exactly the canonical :class:`~repro.core.workload.
Workload` job order ``(release, org, index)`` -- tenant declaration order
fixes org ids within the shard -- so the shard service's sequentially
assigned job ids coincide with the batch workload's auto-assigned ids,
and :func:`repro.service.snapshot.schedule_digest` comparison is exact.
:func:`verify_against_batch` does this for every shard; only *admitted*
events participate (admission-rejected submits never reached a shard,
and the batch workload excludes them identically).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import groupby

from ..core.job import Job
from ..core.organization import Organization
from ..core.workload import Workload
from ..policies import build_scheduler
from ..service.snapshot import schedule_digest
from .config import GatewayConfig
from .gateway import Gateway, GatewayError

__all__ = ["LoadSpec", "LoadReport", "generate_stream", "run_loadgen",
           "verify_against_batch"]


@dataclass(frozen=True)
class LoadSpec:
    """The deterministic shape of one synthetic event storm."""

    n_events: int = 100_000
    n_releases: int = 250
    max_size: int = 6
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_events < 1:
            raise ValueError("n_events must be >= 1")
        if self.n_releases < 1:
            raise ValueError("n_releases must be >= 1")
        if self.max_size < 1:
            raise ValueError("max_size must be >= 1")


@dataclass
class LoadReport:
    """Outcome of one loadgen run."""

    config_hash: str
    policy: str
    n_tenants: int
    n_workers: int
    n_shards: int
    n_events: int
    n_accepted: int
    n_rejected: int
    rejected_by_code: "dict[str, int]"
    wall_time_s: float
    p50_ms: float
    p99_ms: float
    snapshot_under_load_s: "float | None" = None
    verified: "bool | None" = None
    shard_digests: "dict[int, str]" = field(default_factory=dict)
    #: Self-healing stats (present when the gateway ran with a fault
    #: plan): faults armed, auto recoveries, quarantines, MTTR, parking.
    chaos: "dict | None" = None

    @property
    def events_per_sec(self) -> float:
        if self.wall_time_s <= 0:
            return 0.0
        return self.n_events / self.wall_time_s

    def summary(self) -> str:
        verdict = (
            "not checked"
            if self.verified is None
            else ("OK (bit-identical per shard)" if self.verified else
                  "FAILED")
        )
        lines = [
            f"config            {self.config_hash} ({self.policy})",
            f"topology          {self.n_workers} workers / "
            f"{self.n_shards} shards / {self.n_tenants} tenants",
            f"events offered    {self.n_events}",
            f"admitted          {self.n_accepted}",
            f"rejected          {self.n_rejected}"
            + (f" {self.rejected_by_code}" if self.rejected_by_code else ""),
            f"wall time         {self.wall_time_s:.3f}s",
            f"events/sec        {self.events_per_sec:,.0f}",
            f"ingest p50        {self.p50_ms:.3f}ms",
            f"ingest p99        {self.p99_ms:.3f}ms",
        ]
        if self.snapshot_under_load_s is not None:
            lines.append(
                f"snapshot cost     {self.snapshot_under_load_s:.3f}s "
                f"(under load)"
            )
        if self.chaos is not None:
            c = self.chaos
            mttr = c.get("mttr_seconds")
            lines += [
                f"chaos plan        {c.get('plan')}",
                f"faults armed      {c.get('faults_armed')}",
                f"auto recoveries   {c.get('auto_recoveries')}"
                + (f" (mttr {mttr:.3f}s)" if mttr is not None else ""),
                f"quarantines       {c.get('quarantines')}",
                f"parked submits    {c.get('parked_total')} "
                f"(lost in-flight {c.get('lost_responses')}, "
                f"wal tears {c.get('wal_tears')})",
            ]
        lines.append(f"fleet == batch    {verdict}")
        return "\n".join(lines)


def generate_stream(
    config: GatewayConfig, spec: LoadSpec
) -> "list[tuple[int, str, int]]":
    """The deterministic event stream: ``(release, tenant, size)`` rows.

    Emitted sorted by ``(release, tenant declaration index)`` -- the order
    whose per-shard restriction matches canonical batch job order (see
    module docstring).  Pure function of ``(config, spec)``.
    """
    import random

    rng = random.Random(spec.seed)
    n_tenants = len(config.tenants)
    events = [
        (
            rng.randrange(spec.n_releases),
            rng.randrange(n_tenants),
            rng.randint(1, spec.max_size),
        )
        for _ in range(spec.n_events)
    ]
    events.sort(key=lambda e: (e[0], e[1]))
    return [
        (release, config.tenants[t].name, size)
        for release, t, size in events
    ]


def run_loadgen(
    gateway: Gateway,
    spec: "LoadSpec | None" = None,
    *,
    stream: "list[tuple[int, str, int]] | None" = None,
    snapshot_at_release: "int | None" = None,
    kill_worker_at_release: "int | None" = None,
    verify: bool = True,
    progress=None,
) -> LoadReport:
    """Drive the stream through a started gateway; optionally verify.

    ``snapshot_at_release`` checkpoints the whole fleet mid-stream (the
    snapshot-under-load cost lands in the report);
    ``kill_worker_at_release`` SIGKILLs worker 0 mid-stream and restores
    it before continuing -- the verification at the end then proves the
    crash was invisible in the output.  ``progress`` is an optional
    callable invoked with a stats line after each release group.

    Chaos mode needs no extra wiring here: when the gateway was built
    with a :class:`~repro.gateway.faults.FaultPlan`, injected crashes
    are detected and healed by the pool's supervisor mid-stream, parked
    submits ack ``ok`` and replay on heal, and ``shard_unavailable``
    refusals are excluded from the accepted set -- so the final
    per-shard digests are verified against the batch scheduler over
    exactly the applied events, with zero manual ``restore_worker``
    calls.  The healing stats land in ``report.chaos``.
    """
    config = gateway.config
    if stream is None:
        stream = generate_stream(config, spec or LoadSpec())
    accepted: "list[tuple[int, str, int]]" = []
    rejected: "dict[str, int]" = {}
    snapshot_cost: "float | None" = None
    started = time.perf_counter()
    for release, group in groupby(stream, key=lambda e: e[0]):
        for _, tenant, size in group:
            resp = gateway.submit(tenant, size, release)
            if resp.get("ok"):
                accepted.append((release, tenant, size))
            else:
                code = resp.get("code", "unknown")
                rejected[code] = rejected.get(code, 0) + 1
        gateway.advance(release)
        if snapshot_at_release is not None and release >= snapshot_at_release:
            t0 = time.perf_counter()
            gateway.snapshot_all()
            snapshot_cost = time.perf_counter() - t0
            snapshot_at_release = None
        if (
            kill_worker_at_release is not None
            and release >= kill_worker_at_release
        ):
            gateway.kill_worker(0)
            gateway.restore_worker(0)
            kill_worker_at_release = None
        if progress is not None:
            progress(gateway.stats_line())
    gateway.drain()
    wall = time.perf_counter() - started

    if gateway.forward_errors:
        raise GatewayError(
            f"{len(gateway.forward_errors)} admitted submits failed "
            f"shard-side; first: {gateway.forward_errors[0]}"
        )
    lat = gateway.latency_percentiles()
    report = LoadReport(
        config_hash=config.content_hash(),
        policy=config.policy,
        n_tenants=len(config.tenants),
        n_workers=config.n_workers,
        n_shards=len(config.shard_ids()),
        n_events=len(stream),
        n_accepted=len(accepted),
        n_rejected=len(stream) - len(accepted),
        rejected_by_code=dict(sorted(rejected.items())),
        wall_time_s=wall,
        p50_ms=lat["p50_ms"],
        p99_ms=lat["p99_ms"],
        snapshot_under_load_s=snapshot_cost,
    )
    pool = gateway.pool
    if pool.fault_plan is not None:
        # heal any still-down worker before digesting, and report the
        # self-healing totals alongside the throughput numbers
        pool.ensure_all_up()
        sup = pool.supervisor
        report.chaos = {
            "plan": pool.fault_plan.spec(),
            "faults_armed": pool.faults_armed,
            "auto_recoveries": len(sup.recoveries),
            "quarantines": sup.n_quarantines,
            "mttr_seconds": sup.mttr_seconds,
            "parked_total": pool.parked_total,
            "lost_responses": pool.lost_responses,
            "wal_tears": pool.wal_tears,
            "recoveries": list(sup.recoveries),
        }
    if verify:
        report.shard_digests = gateway.shard_digests()
        expected = verify_against_batch(config, accepted)
        report.verified = report.shard_digests == expected
    return report


def shard_workloads(
    config: GatewayConfig,
    accepted: "list[tuple[int, str, int]]",
) -> "dict[int, Workload]":
    """Rebuild each shard's batch :class:`Workload` from admitted events.

    Events must be in stream (submission) order; FIFO indices are
    assigned per tenant in that order, exactly as the shard service did.
    """
    routes = config.routes
    next_index: "dict[str, int]" = {}
    per_shard: "dict[int, list[Job]]" = {s: [] for s in config.shard_ids()}
    for release, tenant, size in accepted:
        shard, org = routes[tenant]
        idx = next_index.get(tenant, 0)
        next_index[tenant] = idx + 1
        per_shard[shard].append(Job(release, org, idx, size, id=-1))
    out = {}
    for shard, jobs in per_shard.items():
        orgs = [
            Organization(id=i, machines=t.machines)
            for i, t in enumerate(config.shard_map[shard])
        ]
        out[shard] = Workload(orgs, jobs)
    return out


def verify_against_batch(
    config: GatewayConfig,
    accepted: "list[tuple[int, str, int]]",
) -> "dict[int, str]":
    """Expected per-shard schedule digests from the batch scheduler."""
    expected = {}
    for shard, workload in shard_workloads(config, accepted).items():
        scheduler = build_scheduler(
            config.policy,
            seed=config.shard_seed(shard),
            horizon=config.horizon,
        )
        result = scheduler.run(workload)
        expected[shard] = schedule_digest(result.schedule)
    return expected
