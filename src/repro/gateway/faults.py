"""Deterministic fault injection: the gateway's chaos harness.

The supervisor's recovery contract ("any crash is invisible in the final
per-shard schedule digest") is only worth something if it survives faults
nobody hand-scripted.  This module makes that a *replayable* property: a
:class:`FaultPlan` is a frozen, seeded value -- two runs with the same
plan inject the same faults at the same per-worker operation counts -- so
``repro loadgen --chaos seed=S,rate=R`` is as deterministic as the clean
path, and a CI failure reproduces locally from the seed alone.

Fault kinds (drawn per *worker incarnation*; every respawned worker is a
fresh incarnation with its own independent draw):

* ``crash``        -- hard ``os._exit`` after ``at_op`` shard commands,
  before the response is written (applied-but-unacked: the nastiest
  ordering, recovered by checkpoint + WAL replay).
* ``crash_late``   -- same, but after the response is flushed.
* ``stall``        -- sleep ``stall_seconds`` before applying the
  ``at_op``-th command: the worker is alive but unresponsive, which only
  the supervisor's response deadline can detect.
* ``drop_response``-- apply the command but never answer: a positional
  protocol desync the pool must detect and treat as a worker failure.
* ``torn_checkpoint`` -- the next ``snapshot_shards`` writes a torn temp
  file for one shard and reports failure: with atomic rename writes the
  previous checkpoint survives, and recovery replays a longer WAL tail.

A plan may also direct the *pool* to tear the final record of a shard's
durable WAL when it observes the crash (``tear_wal``), proving the
torn-tail tolerance of :mod:`repro.gateway.wal` in the live path.

Plans are threaded to workers through the spawn manifest (the pool holds
the plan; each worker receives only its own incarnation's draw), so the
injection layer costs nothing when no plan is set.
"""

from __future__ import annotations

import os
import random
import sys
import time
from dataclasses import dataclass, field

from .routing import stable_hash

__all__ = ["FaultPlan", "FaultInjector", "WORKER_FAULT_KINDS"]

#: Worker-side fault kinds a seeded draw may select, with draw weights.
WORKER_FAULT_KINDS = (
    ("crash", 0.35),
    ("crash_late", 0.15),
    ("stall", 0.15),
    ("drop_response", 0.15),
    ("torn_checkpoint", 0.20),
)

#: Exit status used by injected hard crashes (mirrors SIGKILL's 128+9 so
#: logs read like a real kill, distinguishable from clean exits).
CRASH_EXIT_STATUS = 137


@dataclass(frozen=True)
class FaultPlan:
    """A frozen, seeded schedule of injected faults.

    ``rate`` is the per-operation fault probability used to draw the
    geometric ``at_op`` trigger; incarnations at or beyond
    ``max_fault_incarnations`` draw no faults, so every crash loop
    terminates and the fleet provably heals.  ``script`` overrides the
    seeded draw for specific ``(worker, incarnation)`` pairs -- tests use
    it to force exact failure sequences (e.g. a quarantine) without
    seed-hunting.
    """

    seed: int = 0
    rate: float = 0.01
    max_fault_incarnations: int = 3
    stall_seconds: float = 0.5
    tear_wal_rate: float = 0.5
    script: "tuple[tuple[int, int, tuple[tuple[str, object], ...]], ...]" = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.stall_seconds < 0:
            raise ValueError("stall_seconds must be >= 0")
        if self.max_fault_incarnations < 0:
            raise ValueError("max_fault_incarnations must be >= 0")

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the CLI form ``seed=S,rate=R[,stall=SECONDS,...]``.

        ``script=W.INC.KIND.AT_OP`` entries (joined with ``+``) force
        exact faults on specific worker incarnations -- how CI drives a
        guaranteed quarantine without seed-hunting::

            --chaos rate=0,script=0.0.crash.20+0.1.crash.1+0.2.crash.1
        """
        fields = {
            "seed": int,
            "rate": float,
            "stall": float,
            "max_incarnations": int,
            "tear_wal_rate": float,
            "script": str,
        }
        rename = {"stall": "stall_seconds",
                  "max_incarnations": "max_fault_incarnations"}
        kwargs: dict = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad --chaos component {part!r} (expected key=value)"
                )
            key, _, value = part.partition("=")
            key = key.strip()
            if key not in fields:
                raise ValueError(
                    f"unknown --chaos key {key!r} "
                    f"(known: {', '.join(sorted(fields))})"
                )
            kwargs[rename.get(key, key)] = fields[key](value.strip())
        script_text = kwargs.pop("script", None)
        if script_text:
            entries = {}
            for item in script_text.split("+"):
                try:
                    w, inc, kind, at_op = item.split(".")
                    entries[(int(w), int(inc))] = {
                        "kind": kind,
                        "at_op": int(at_op),
                    }
                except ValueError:
                    raise ValueError(
                        f"bad script entry {item!r} (expected "
                        f"WORKER.INCARNATION.KIND.AT_OP)"
                    ) from None
            kwargs["script"] = tuple(
                (w, inc, tuple(sorted(fault.items())))
                for (w, inc), fault in sorted(entries.items())
            )
        return cls(**kwargs)

    @classmethod
    def scripted(
        cls, entries: "dict[tuple[int, int], dict]", **kwargs
    ) -> "FaultPlan":
        """A plan firing exactly ``entries[(worker, incarnation)]``."""
        script = tuple(
            (w, inc, tuple(sorted(fault.items())))
            for (w, inc), fault in sorted(entries.items())
        )
        kwargs.setdefault("rate", 0.0)
        return cls(script=script, **kwargs)

    def spec(self) -> str:
        """The canonical CLI form (round-trips through :meth:`parse` for
        plans expressible there; extra scripted fields are elided)."""
        text = (
            f"seed={self.seed},rate={self.rate:g},"
            f"stall={self.stall_seconds:g},"
            f"max_incarnations={self.max_fault_incarnations}"
        )
        if self.script:
            entries = []
            for w, inc, items in self.script:
                fault = dict(items)
                entries.append(
                    f"{w}.{inc}.{fault.get('kind')}.{fault.get('at_op', 1)}"
                )
            text += ",script=" + "+".join(entries)
        return text

    # ------------------------------------------------------------------
    # the deterministic draw
    # ------------------------------------------------------------------
    def _rng(self, worker: int, incarnation: int) -> random.Random:
        return random.Random(
            stable_hash(f"faultplan:{self.seed}:{worker}:{incarnation}")
        )

    def fault_for(self, worker: int, incarnation: int) -> "dict | None":
        """The (at most one) fault this worker incarnation will suffer.

        Pure function of ``(plan, worker, incarnation)``: the pool and a
        test can both predict every injection.
        """
        for w, inc, items in self.script:
            if w == worker and inc == incarnation:
                return dict(items)
        if self.rate <= 0.0 or incarnation >= self.max_fault_incarnations:
            return None
        rng = self._rng(worker, incarnation)
        # geometric trigger: P(fault at op n) = rate * (1-rate)^(n-1);
        # a draw past the cap means this incarnation runs clean
        at_op = 1
        while rng.random() >= self.rate:
            at_op += 1
            if at_op > 10_000:
                return None
        kinds = [k for k, _ in WORKER_FAULT_KINDS]
        weights = [p for _, p in WORKER_FAULT_KINDS]
        kind = rng.choices(kinds, weights=weights, k=1)[0]
        fault: dict = {"kind": kind, "at_op": at_op}
        if kind == "stall":
            fault["seconds"] = self.stall_seconds
        if kind in ("crash", "crash_late"):
            fault["tear_wal"] = rng.random() < self.tear_wal_rate
        return fault

    def manifest_entry(
        self, worker: int, incarnation: int
    ) -> "dict | None":
        """What the spawn manifest carries to this worker incarnation."""
        fault = self.fault_for(worker, incarnation)
        if fault is None:
            return None
        return {"worker": worker, "incarnation": incarnation, **fault}

    def tears_wal(self, worker: int, incarnation: int) -> bool:
        """Whether the pool should tear the durable WAL tail when it
        detects this incarnation's death (pool-side companion fault)."""
        fault = self.fault_for(worker, incarnation)
        return bool(fault and fault.get("tear_wal"))


@dataclass
class FaultInjector:
    """The worker-side runtime for one incarnation's fault.

    Counts *shard* commands (worker-level ops and pings are free: faults
    model scheduling work, and pings must stay reliable so liveness
    detection itself is never the thing injected against).
    """

    fault: "dict | None"
    op_count: int = 0
    fired: bool = False
    _out: "object | None" = field(default=None, repr=False)

    @classmethod
    def from_manifest(cls, entry: "dict | None") -> "FaultInjector | None":
        if not entry:
            return None
        return cls(fault=dict(entry))

    def bind_output(self, out) -> None:
        """The response stream to flush before a hard exit."""
        self._out = out

    def _armed(self, *kinds: str) -> bool:
        return (
            not self.fired
            and self.fault is not None
            and self.fault.get("kind") in kinds
        )

    def before_apply(self) -> None:
        """Called before each shard command is handled; may not return."""
        self.op_count += 1
        if not self._armed("crash", "stall"):
            return
        if self.op_count < int(self.fault.get("at_op", 1)):
            return
        if self.fault["kind"] == "stall":
            self.fired = True
            time.sleep(float(self.fault.get("seconds", 0.5)))
            return
        self._hard_exit()

    def suppress_response(self) -> bool:
        """True when this command's response must be dropped (applied,
        never answered -- the positional-desync fault)."""
        if not self._armed("drop_response"):
            return False
        if self.op_count < int(self.fault.get("at_op", 1)):
            return False
        self.fired = True
        return True

    def after_reply(self) -> None:
        """Called after a response is written and flushed."""
        if not self._armed("crash_late"):
            return
        if self.op_count < int(self.fault.get("at_op", 1)):
            return
        self._hard_exit()

    def take_torn_checkpoint(self) -> bool:
        """True exactly once when the next checkpoint write must tear."""
        if not self._armed("torn_checkpoint"):
            return False
        self.fired = True
        return True

    def _hard_exit(self) -> None:  # pragma: no cover - exits the process
        self.fired = True
        try:
            if self._out is not None:
                self._out.flush()
            sys.stderr.flush()
        except Exception:
            pass
        os._exit(CRASH_EXIT_STATUS)


def tear_file_tail(path, garbage: bytes = b'{"op": "subm') -> None:
    """Append a torn (newline-less) partial record to ``path`` -- the
    byte pattern a mid-append crash leaves behind.  Used by the pool's
    ``tear_wal`` companion fault and by regression tests."""
    with open(path, "ab") as f:
        f.write(garbage)
        f.flush()
        os.fsync(f.fileno())
