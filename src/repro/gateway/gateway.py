"""The gateway front door: one daemon multiplexing a fleet of shards.

Two layers (ISSUE 8 tentpole):

* :class:`ShardPool` -- the transport: spawns ``python -m
  repro.gateway.worker`` processes (process-per-core), routes shard-tagged
  JSONL commands over binary pipes with bounded pipelining (responses are
  matched positionally per worker -- workers answer strictly in order),
  keeps a per-shard write-ahead log of every forwarded mutation since the
  last acknowledged checkpoint, and implements snapshot-under-load, kill
  and bit-identical restore (checkpoint + WAL replay through the very same
  command path).
* :class:`Gateway` -- the tenant-facing policy layer on top: deterministic
  ``tenant -> shard -> org`` routing from the content-hashed
  :class:`~repro.gateway.config.GatewayConfig`, admission control and
  per-org token-bucket rate/credit accounting at ingest
  (:mod:`repro.gateway.admission`; typed in-band errors, never a crash),
  aggregate status/observability, and ingest-latency accounting.

Recovery contract: after ``kill_worker(w)`` (SIGKILL, no warning), the
sequence *respawn from the last checkpoint* + *replay the per-shard WAL*
reconstructs every shard bit-identically -- checkpoints restore through
the event-sourced journal (verified digests), and the WAL replays the
exact forwarded commands in their original per-shard order through the
same deterministic ingest path.  Commands the dead worker had already
applied after the checkpoint are *not* double-applied: the respawned
worker starts from the checkpoint state, which predates them.

Self-healing (ISSUE 10 tentpole): the pool embeds a
:class:`~repro.gateway.supervisor.Supervisor`.  Worker failures --
pipe errors, EOF, response deadlines, protocol desyncs -- are *detected*
at the next I/O instead of raised at the caller; the failed worker is
marked ``down``, its shards' mutating commands **park** (append to the
WAL without being forwarded, acked ``{"ok": true, "parked": true}``) up
to a bounded buffer, and :meth:`ShardPool.tick` respawns it after a
capped-exponential backoff, replaying checkpoint + WAL so the heal is
invisible in the digests.  Crash-looping workers are quarantined:
submits to their shards are refused in-band with ``shard_unavailable``
(never charged by admission) until the cooldown expires.  Explicit
:meth:`ShardPool.kill_worker` is an *operator* action (``admin_down``):
never auto-respawned, exactly the pre-supervisor semantics.  DESIGN.md
§13 specifies the fault model and state machine.
"""

from __future__ import annotations

import json
import os
import select
import subprocess
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..service.snapshot import load_snapshot
from .admission import AdmissionController, AdmissionError
from .config import GatewayConfig
from .faults import FaultPlan
from .supervisor import (
    ADMIN_DOWN,
    DOWN,
    QUARANTINED,
    UP,
    ShardUnavailable,
    Supervisor,
    SupervisorPolicy,
)
from .wal import ShardWal, load_wal, wal_path
from .worker import shard_snapshot_path

__all__ = [
    "Gateway",
    "ShardPool",
    "GatewayError",
    "WorkerDied",
    "ShardUnavailable",
    "gateway_serve_loop",
]

#: Ops the WAL must capture: everything that mutates shard state.  Pure
#: observations (status, inline snapshot) replay to nothing and are not
#: logged.
MUTATING_OPS = frozenset(
    {
        "submit",
        "advance",
        "drain",
        "join",
        "leave",
        "add_machines",
        "remove_machines",
    }
)


class GatewayError(RuntimeError):
    """A transport-level gateway failure (not an in-band command error)."""


class WorkerDied(GatewayError):
    """A worker process exited while responses were still expected."""


@dataclass
class _Pending:
    """One in-flight request awaiting its (positional) response."""

    req_id: int
    shard: "int | None"
    op: str
    sent_at: float
    track_latency: bool = False
    callback: "Callable[[dict], None] | None" = None


class _WorkerHandle:
    """One spawned worker: binary pipes, tx batching, rx line splitting."""

    HANDSHAKE_TIMEOUT_S = 60.0

    def __init__(
        self,
        worker_id: int,
        manifest: dict,
        env: "dict[str, str]",
    ) -> None:
        self.worker_id = worker_id
        self.on_settle: "Callable[[], None] | None" = None
        # -c instead of -m: the latter warns when repro.gateway is already
        # imported as a package before runpy executes the submodule
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "from repro.gateway.worker import worker_main; "
                "raise SystemExit(worker_main())",
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=None,  # inherit: worker tracebacks stay visible
            env=env,
        )
        self.pending: "deque[_Pending]" = deque()
        self.dead = False
        self._rx = bytearray()
        self._rx_lines: "deque[str]" = deque()
        self._tx: "list[bytes]" = []
        self.hello = self._handshake(manifest)

    # -- low-level I/O --------------------------------------------------
    def _handshake(self, manifest: dict) -> dict:
        self.write_line(manifest)
        self.flush()
        resp = self._read_response(timeout=self.HANDSHAKE_TIMEOUT_S)
        if resp is None or not resp.get("ok"):
            raise WorkerDied(
                f"worker {self.worker_id} failed to start: {resp!r}"
            )
        return resp

    def write_line(self, payload: dict) -> None:
        self._tx.append(json.dumps(payload).encode("utf-8") + b"\n")

    def flush(self) -> None:
        if not self._tx or self.dead:
            self._tx.clear()
            return
        data = b"".join(self._tx)
        self._tx.clear()
        try:
            self.proc.stdin.write(data)
            self.proc.stdin.flush()
        except (BrokenPipeError, OSError) as exc:
            self.dead = True
            raise WorkerDied(
                f"worker {self.worker_id} pipe closed: {exc}"
            ) from exc

    def _fill_rx(self, timeout: "float | None") -> bool:
        """Read once from the worker's stdout; False on timeout/EOF."""
        fd = self.proc.stdout.fileno()
        ready, _, _ = select.select([fd], [], [], timeout)
        if not ready:
            return False
        chunk = os.read(fd, 1 << 16)
        if not chunk:
            self.dead = True
            return False
        self._rx.extend(chunk)
        while True:
            nl = self._rx.find(b"\n")
            if nl < 0:
                break
            self._rx_lines.append(
                self._rx[:nl].decode("utf-8", errors="replace")
            )
            del self._rx[: nl + 1]
        return True

    def _read_response(self, timeout: "float | None") -> "dict | None":
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._rx_lines:
            if self.dead:
                return None
            left = (
                None
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            # False == timeout elapsed or EOF; either way nothing more to
            # wait for within this call's budget
            if not self._fill_rx(left):
                return None
        return json.loads(self._rx_lines.popleft())

    # -- response accounting --------------------------------------------
    def settle_one(self, timeout: "float | None" = None) -> "dict | None":
        """Match the oldest pending request with the next response."""
        if not self.pending:
            return None
        self.flush()
        resp = self._read_response(timeout)
        if resp is None:
            if self.dead:
                raise WorkerDied(
                    f"worker {self.worker_id} died with "
                    f"{len(self.pending)} responses outstanding"
                )
            return None
        p = self.pending.popleft()
        got = resp.get("id")
        if got is not None and got != p.req_id:
            raise GatewayError(
                f"worker {self.worker_id}: response id {got} does not "
                f"match pending request {p.req_id} (protocol desync)"
            )
        if p.callback is not None:
            p.callback(resp)
        if self.on_settle is not None:
            self.on_settle()
        return resp

    def settle_available(self) -> int:
        """Opportunistically consume already-arrived responses."""
        n = 0
        if self.pending:
            # the tx buffer may still hold the very commands we are
            # waiting on (pipelining batches writes): a worker can only
            # answer what it has received, so an unflushed buffer would
            # otherwise read as a stalled worker
            self.flush()
        while self.pending and (self._rx_lines or self._peek_readable()):
            if self.settle_one(timeout=0) is None:
                break
            n += 1
        return n

    def _peek_readable(self) -> bool:
        if self.dead:
            return False
        fd = self.proc.stdout.fileno()
        ready, _, _ = select.select([fd], [], [], 0)
        return bool(ready)

    def drain(self) -> None:
        while self.pending:
            self.settle_one(timeout=None)

    # -- lifecycle -------------------------------------------------------
    def kill(self) -> int:
        """SIGKILL the process; returns the number of lost responses."""
        lost = len(self.pending)
        self.pending.clear()
        self._tx.clear()
        self._rx.clear()
        self._rx_lines.clear()
        self.dead = True
        if self.proc.poll() is None:
            self.proc.kill()
        self.proc.wait()
        return lost

    def close(self) -> None:
        if self.proc.poll() is None:
            try:
                self.proc.stdin.close()
            except OSError:
                pass
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - safety
                self.proc.kill()
                self.proc.wait()
        self.dead = True


class ShardPool:
    """Process-per-core workers, each owning the shards routed to it.

    The pool is the deterministic transport under :class:`Gateway`; it
    knows nothing about tenants.  Shard commands pipeline (bounded by
    ``max_inflight`` per worker); mutating commands are write-ahead
    logged per shard until the next acknowledged checkpoint, which is
    what makes :meth:`restore_worker` exact.
    """

    def __init__(
        self,
        config: GatewayConfig,
        *,
        snapshot_dir: "str | Path | None" = None,
        max_inflight: int = 64,
        supervisor: "SupervisorPolicy | None" = None,
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.config = config
        self.snapshot_dir = (
            None if snapshot_dir is None else Path(snapshot_dir)
        )
        self.max_inflight = max_inflight
        self.workers: "dict[int, _WorkerHandle]" = {}
        self.wal: "dict[int, list[dict]]" = {
            s: [] for s in config.shard_ids()
        }
        self.checkpointed: "set[int]" = set()
        self.latencies_s: "list[float]" = []
        self.lost_responses = 0
        self.restores = 0
        self._next_id = 0
        # -- self-healing state (ISSUE 10) ------------------------------
        self.supervisor = Supervisor(supervisor)
        self.fault_plan = fault_plan
        #: Virtual gateway clock, fed by Gateway.advance/drain; the
        #: deterministic leg of the supervisor's backoff deadlines.
        self.vclock = 0
        self.parked: "dict[int, int]" = {}  # shard -> parked submits
        self.parked_total = 0
        self.lost_inflight: "dict[int, list[dict]]" = {}
        self.checkpoint_meta: "dict[int, dict]" = {}
        self.dwal: "dict[int, ShardWal]" = {}
        self.faults_armed = 0
        self.wal_tears = 0
        self.wal_torn_repairs = 0
        self.pings_sent = 0
        self._degraded = False
        self._tick_at = 0.0

    # -- spawn -----------------------------------------------------------
    @staticmethod
    def _worker_env() -> "dict[str, str]":
        import repro

        pkg_root = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            pkg_root if not existing else pkg_root + os.pathsep + existing
        )
        return env

    def _manifest(
        self,
        worker: int,
        restore: "dict[str, str]",
        incarnation: int = 0,
    ) -> dict:
        cfg = self.config
        fault = None
        if self.fault_plan is not None:
            fault = self.fault_plan.manifest_entry(worker, incarnation)
            if fault is not None:
                self.faults_armed += 1
        return {
            "worker": worker,
            "shards": {
                str(s): {
                    "machine_counts": list(cfg.shard_machine_counts(s)),
                    "policy": cfg.policy,
                    "seed": cfg.shard_seed(s),
                    "horizon": cfg.horizon,
                    "batch_max": cfg.batch_max,
                }
                for s in cfg.worker_shards(worker)
            },
            "restore": restore,
            "snapshot_dir": (
                None if self.snapshot_dir is None else str(self.snapshot_dir)
            ),
            "linger_ms": cfg.batch_linger_ms,
            "fault": fault,
        }

    def _spawn(self, worker: int, incarnation: int) -> None:
        """(Re)create one worker process, restoring checkpointed shards."""
        restore = {}
        if self.snapshot_dir is not None:
            for s in self.config.worker_shards(worker):
                if s in self.checkpointed:
                    path = shard_snapshot_path(self.snapshot_dir, s)
                    if path.exists():
                        restore[str(s)] = str(path)
        handle = _WorkerHandle(
            worker,
            self._manifest(worker, restore, incarnation),
            self._worker_env(),
        )
        handle.on_settle = lambda w=worker: self.supervisor.on_settled(w)
        self.workers[worker] = handle

    def start(self) -> "ShardPool":
        if self.snapshot_dir is not None:
            for s in self.config.shard_ids():
                # a fresh fleet starts a fresh durable history (resume
                # goes through resume_from_disk instead)
                self.dwal[s] = ShardWal.create(
                    self.snapshot_dir, s, truncate=True
                )
        for w in range(self.config.n_workers):
            if not self.config.worker_shards(w):
                continue  # fewer populated shards than workers
            self.supervisor.register(w)
            self._spawn(w, 0)
        return self

    def resume_from_disk(self) -> "dict[int, int]":
        """Rebuild the whole fleet from durable state (checkpoints plus
        WAL replay) after the *gateway process itself* died.

        Per shard: decode the durable WAL (torn tails tolerated), trust
        the on-disk checkpoint only when a fsynced WAL marker matches its
        content hash (otherwise replay in full from genesis), and replay
        the suffix through the normal spawn path.  Returns
        ``shard -> replayed command count``.
        """
        if self.snapshot_dir is None:
            raise GatewayError("resume_from_disk needs a snapshot_dir")
        if self.workers:
            raise GatewayError("resume_from_disk replaces start()")
        replayed = {}
        for s in self.config.shard_ids():
            image = load_wal(wal_path(self.snapshot_dir, s))
            ckpt_hash = None
            path = shard_snapshot_path(self.snapshot_dir, s)
            if path.exists():
                try:
                    ckpt_hash = load_snapshot(path).get("content_hash")
                except (ValueError, OSError):
                    ckpt_hash = None  # unreadable: fall back to genesis
            matched = ckpt_hash is not None and any(
                h == ckpt_hash for h, _ in image.markers
            )
            floor = image.replay_floor(ckpt_hash) if matched else 0
            if matched:
                self.checkpointed.add(s)
                self.checkpoint_meta[s] = {
                    "path": str(path),
                    "content_hash": ckpt_hash,
                }
            self.wal[s] = [dict(c) for c in image.commands[floor:]]
            replayed[s] = len(self.wal[s])
            if image.torn:
                self.wal_torn_repairs += 1
            self.dwal[s] = ShardWal.attach(
                self.snapshot_dir, s, next_seq=len(image.commands)
            )
        for w in range(self.config.n_workers):
            if not self.config.worker_shards(w):
                continue
            self.supervisor.register(w)
            self._spawn(w, 0)
            self._replay(w)
        return replayed

    @property
    def n_live_workers(self) -> int:
        return sum(1 for h in self.workers.values() if not h.dead)

    def _handle_for_shard(self, shard: int) -> _WorkerHandle:
        from .routing import worker_of

        w = worker_of(shard, self.config.n_workers)
        try:
            handle = self.workers[w]
        except KeyError:
            raise GatewayError(f"no worker owns shard {shard}") from None
        if handle.dead:
            raise WorkerDied(
                f"worker {w} (shard {shard}) is dead; restore_worker({w}) "
                f"first"
            )
        return handle

    # -- failure detection / healing (the woven-in supervisor loop) ------
    def _capture_lost(self, worker: int, handle: _WorkerHandle) -> None:
        """Record in-flight requests about to be lost (status surfacing)."""
        if handle.pending:
            self.lost_inflight.setdefault(worker, []).extend(
                {"shard": p.shard, "op": p.op, "id": p.req_id}
                for p in handle.pending
            )

    def _maybe_tear_wal(self, worker: int, incarnation: int) -> None:
        """Pool-side companion fault: leave a torn tail on the first
        owned shard's durable WAL, as a crash mid-append would."""
        if self.fault_plan is None or not self.fault_plan.tears_wal(
            worker, incarnation
        ):
            return
        for s in self.config.worker_shards(worker):
            dw = self.dwal.get(s)
            if dw is not None:
                dw.tear_tail()
                self.wal_tears += 1
            break

    def _worker_failed(self, worker: int, reason: str) -> str:
        """Detection sink: kill the handle, account lost in-flight, hand
        the failure to the supervisor.  Returns the new state."""
        if self.supervisor.state(worker) != UP:
            return self.supervisor.state(worker)  # already being handled
        incarnation = self.supervisor.meta[worker].incarnation
        handle = self.workers.get(worker)
        if handle is not None:
            self._capture_lost(worker, handle)
            self.lost_responses += handle.kill()
        state = self.supervisor.on_failure(worker, reason, self.vclock)
        self._maybe_tear_wal(worker, incarnation)
        self._degraded = True
        return state

    def _replay(self, worker: int) -> "dict[int, int]":
        """Replay the per-shard WAL into a freshly spawned worker, raw
        (bypasses park checks -- the worker is mid-heal).  Raises
        :class:`WorkerDied` if it dies or stalls during replay."""
        handle = self.workers[worker]
        hb = self.supervisor.policy.heartbeat_timeout_s
        replayed = {}
        for s in self.config.worker_shards(worker):
            for cmd in self.wal[s]:
                self._next_id += 1
                handle.pending.append(
                    _Pending(
                        req_id=self._next_id,
                        shard=s,
                        op=cmd.get("op", "?"),
                        sent_at=time.perf_counter(),
                    )
                )
                handle.write_line({"id": self._next_id, "shard": s, **cmd})
                if len(handle.pending) >= self.max_inflight:
                    if handle.settle_one(timeout=hb) is None:
                        raise WorkerDied(
                            f"worker {worker} unresponsive during WAL replay"
                        )
            replayed[s] = len(self.wal[s])
        while handle.pending:
            if handle.settle_one(timeout=hb) is None:
                raise WorkerDied(
                    f"worker {worker} unresponsive during WAL replay"
                )
        return replayed

    def _respawn(self, worker: int) -> bool:
        """One automatic recovery attempt: spawn a new incarnation from
        the last checkpoint and replay the WAL.  On failure (including a
        fault injected into the replay itself) the supervisor schedules
        the next attempt; True only when the worker healed."""
        incarnation = self.supervisor.on_respawn_attempt(worker)
        try:
            self._spawn(worker, incarnation)
            self._replay(worker)
        except (GatewayError, OSError) as exc:
            handle = self.workers.get(worker)
            if handle is not None:
                self._capture_lost(worker, handle)
                self.lost_responses += handle.kill()
            self.supervisor.on_failure(
                worker, f"recovery attempt failed: {exc}", self.vclock
            )
            self._maybe_tear_wal(worker, incarnation)
            return False
        self.supervisor.on_healed(worker)
        for s in self.config.worker_shards(worker):
            self.parked[s] = 0
        return True

    def tick(self) -> None:
        """One supervisor pass: deadline checks, idle pings, due respawns.

        Called from every command path (and the serve loop's idle path);
        throttled to a few-ms cadence when the fleet is healthy so the
        hot ingest path pays ~nothing.
        """
        now = time.monotonic()
        if not self._degraded and now < self._tick_at:
            return
        self._tick_at = now + 0.005
        degraded = False
        for w in list(self.workers):
            meta = self.supervisor.meta.get(w)
            if meta is None:
                continue
            if meta.state == UP:
                handle = self.workers[w]
                if handle.pending:
                    # settle everything already readable BEFORE judging
                    # the deadline: while the gateway was busy elsewhere
                    # (e.g. replaying another worker's WAL) this worker
                    # may have answered long ago -- aging unread
                    # responses must not read as a stall
                    try:
                        handle.settle_available()
                    except (WorkerDied, GatewayError) as exc:
                        self._worker_failed(w, str(exc))
                        degraded = True
                        continue
                if handle.pending:
                    age = time.perf_counter() - handle.pending[0].sent_at
                    hb = self.supervisor.policy.heartbeat_timeout_s
                    if age >= hb:
                        self._worker_failed(
                            w,
                            f"response deadline exceeded ({age:.2f}s > "
                            f"heartbeat {hb:g}s)",
                        )
                        degraded = True
                elif self.supervisor.needs_ping(w):
                    self._enqueue_ping(w)
            elif meta.state == ADMIN_DOWN:
                continue  # operator kill: manual restore only
            elif self.supervisor.due_for_respawn(w, self.vclock):
                if not self._respawn(w):
                    degraded = True
            else:
                degraded = True
        self._degraded = degraded

    def _enqueue_ping(self, worker: int) -> None:
        """Probe an idle worker so silent death is noticed without
        traffic; the pong settles with normal positional matching."""
        handle = self.workers[worker]
        self._next_id += 1
        handle.pending.append(
            _Pending(
                req_id=self._next_id,
                shard=None,
                op="ping",
                sent_at=time.perf_counter(),
            )
        )
        handle.write_line({"id": self._next_id, "op": "ping"})
        try:
            handle.flush()
        except WorkerDied as exc:
            self._worker_failed(worker, str(exc))
            return
        self.pings_sent += 1
        # don't re-ping while this probe is outstanding
        self.supervisor.meta[worker].last_activity = time.monotonic()

    def _drain_handle(self, worker: int) -> bool:
        """Settle everything pending on one worker under the heartbeat
        deadline; False (never an exception) when the worker failed."""
        handle = self.workers[worker]
        hb = self.supervisor.policy.heartbeat_timeout_s
        try:
            while handle.pending:
                if handle.settle_one(timeout=hb) is None:
                    self._worker_failed(
                        worker,
                        f"heartbeat timeout ({hb:g}s) with "
                        f"{len(handle.pending)} pending",
                    )
                    return False
        except (WorkerDied, GatewayError) as exc:
            self._worker_failed(worker, str(exc))
            return False
        return True

    def heal_shard(self, shard: int, timeout_s: float = 30.0) -> None:
        """Block (bounded) until the worker owning ``shard`` is up,
        driving due respawns; used by drain-style barriers that must not
        proceed over a hole in the fleet."""
        from .routing import worker_of

        w = worker_of(shard, self.config.n_workers)
        deadline = time.monotonic() + timeout_s
        while True:
            state = self.supervisor.state(w)
            if state == UP:
                return
            if state == ADMIN_DOWN:
                raise WorkerDied(
                    f"worker {w} (shard {shard}) was killed by the "
                    f"operator; restore_worker({w}) first"
                )
            self.tick()
            if self.supervisor.state(w) == UP:
                return
            if time.monotonic() >= deadline:
                raise GatewayError(
                    f"shard {shard} (worker {w}) failed to heal within "
                    f"{timeout_s:g}s (state {self.supervisor.state(w)})"
                )
            time.sleep(0.005)

    def ensure_all_up(self, timeout_s: float = 60.0) -> None:
        """Heal every auto-downed worker (bounded wait); admin-downed
        workers are the operator's business and are left alone."""
        deadline = time.monotonic() + timeout_s
        while True:
            self.tick()
            bad = [
                w
                for w, m in self.supervisor.meta.items()
                if m.state in (DOWN, QUARANTINED)
            ]
            if not bad:
                return
            if time.monotonic() >= deadline:
                raise GatewayError(
                    f"workers {bad} failed to heal within {timeout_s:g}s"
                )
            time.sleep(0.005)

    def shard_state(self, shard: int) -> str:
        from .routing import worker_of

        return self.supervisor.state(
            worker_of(shard, self.config.n_workers)
        )

    def submit_refusal(self, shard: int) -> "str | None":
        """Why a submit to ``shard`` would be refused right now (None
        when it would be forwarded or parked).  Ticks first, so the
        answer reflects any respawn that just became due -- and so the
        gateway can check health *before* charging admission."""
        self.tick()
        state = self.shard_state(shard)
        if state == QUARANTINED:
            return (
                f"shard {shard} unavailable: its worker crash-looped and "
                f"is quarantined"
            )
        limit = self.supervisor.policy.park_limit
        if state == DOWN and self.parked.get(shard, 0) >= limit:
            return (
                f"shard {shard} unavailable: park buffer full "
                f"({limit} submits) while its worker is down"
            )
        return None

    def _log_cmd(self, shard: int, cmd: dict) -> None:
        """Write-ahead: in-memory WAL always, durable WAL when enabled --
        both *before* the command is forwarded (or parked)."""
        self.wal[shard].append(dict(cmd))
        dw = self.dwal.get(shard)
        if dw is not None:
            dw.append(cmd)

    def _park(
        self,
        shard: int,
        worker: int,
        cmd: dict,
        state: str,
        callback: "Callable[[dict], None] | None",
        log: bool,
    ) -> dict:
        """Graceful degradation for a down shard: mutating commands park
        (WAL-only; replayed in order on heal), observations and
        over-budget submits are refused with a typed error."""
        op = cmd.get("op", "?")
        if op not in MUTATING_OPS:
            raise ShardUnavailable(
                shard,
                state,
                f"shard {shard} (worker {worker}) is {state}",
            )
        if op == "submit":
            refusal = self.submit_refusal(shard)
            if refusal is not None:
                raise ShardUnavailable(shard, state, refusal)
            self.parked[shard] = self.parked.get(shard, 0) + 1
            self.parked_total += 1
        if log:
            self._log_cmd(shard, cmd)
        resp = {"ok": True, "shard": shard, "op": op, "parked": True}
        if callback is not None:
            callback(resp)
        return resp

    # -- command dispatch ------------------------------------------------
    def shard_cmd(
        self,
        shard: int,
        cmd: dict,
        *,
        wait: bool = False,
        track_latency: bool = False,
        callback: "Callable[[dict], None] | None" = None,
        log: bool = True,
    ) -> "dict | None":
        """Send one shard-tagged command; pipeline unless ``wait``.

        A command to a shard whose worker is auto-down parks or is
        refused (:meth:`_park`); a worker failure detected mid-send
        parks the command too (it is already in the WAL) instead of
        surfacing a transport error to the tenant.
        """
        from .routing import worker_of

        self.tick()
        w = worker_of(shard, self.config.n_workers)
        op = cmd.get("op", "?")
        mutating = op in MUTATING_OPS
        state = self.supervisor.state(w)
        if state in (DOWN, QUARANTINED):
            # returned for non-wait callers too: a parked ack is useful
            # ("parked": true) where the normal pipeline path has nothing
            return self._park(shard, w, cmd, state, callback, log)
        handle = self._handle_for_shard(shard)  # admin_down raises here
        self._next_id += 1
        payload = {"id": self._next_id, "shard": shard, **cmd}
        if log and mutating:
            self._log_cmd(shard, cmd)
        cb = self._wrap_latency(callback) if track_latency else callback
        captured: "list[dict]" = []
        if wait:
            inner = cb

            def cb(resp: dict, _inner=inner) -> None:
                captured.append(resp)
                if _inner is not None:
                    _inner(resp)

        handle.pending.append(
            _Pending(
                req_id=self._next_id,
                shard=shard,
                op=op,
                sent_at=time.perf_counter(),
                track_latency=track_latency,
                callback=cb,
            )
        )
        handle.write_line(payload)
        if wait:
            drained = self._drain_handle(w)
            if captured:
                return captured[0]
            if drained:
                raise GatewayError("response stream ended unexpectedly")
            # the worker failed before our response arrived
            if mutating and log:
                return {"ok": True, "shard": shard, "op": op, "parked": True}
            raise ShardUnavailable(
                shard,
                self.supervisor.state(w),
                f"worker {w} failed mid-command ({op})",
            )
        hb = self.supervisor.policy.heartbeat_timeout_s
        try:
            if len(handle.pending) >= self.max_inflight:
                if handle.settle_one(timeout=hb) is None:
                    raise WorkerDied(
                        f"worker {w} heartbeat timeout ({hb:g}s) under "
                        f"backpressure"
                    )
            else:
                handle.settle_available()
        except (WorkerDied, GatewayError) as exc:
            self._worker_failed(w, str(exc))
            if not (mutating and log):
                raise ShardUnavailable(
                    shard, self.supervisor.state(w), str(exc)
                ) from exc
        return None

    def _wrap_latency(
        self, callback: "Callable[[dict], None] | None"
    ) -> "Callable[[dict], None]":
        sent = time.perf_counter()

        def cb(resp: dict) -> None:
            self.latencies_s.append(time.perf_counter() - sent)
            if callback is not None:
                callback(resp)

        return cb

    def worker_cmd(self, worker: int, cmd: dict) -> dict:
        """A synchronous worker-level op (status / snapshot / shutdown).

        Bounded by the heartbeat deadline; raises :class:`WorkerDied` on
        death or stall (callers on the supervised path catch and report
        through :meth:`_worker_failed`).
        """
        handle = self.workers[worker]
        if handle.dead:
            raise WorkerDied(f"worker {worker} is dead")
        hb = self.supervisor.policy.heartbeat_timeout_s
        while handle.pending:  # worker-level ops are barriers on that worker
            if handle.settle_one(timeout=hb) is None:
                raise WorkerDied(
                    f"worker {worker} unresponsive (heartbeat {hb:g}s)"
                )
        self._next_id += 1
        payload = {"id": self._next_id, **cmd}
        handle.write_line(payload)
        handle.pending.append(
            _Pending(
                req_id=self._next_id,
                shard=None,
                op=cmd.get("op", "?"),
                sent_at=time.perf_counter(),
            )
        )
        resp = handle.settle_one(timeout=hb)
        if resp is None:
            raise WorkerDied(
                f"worker {worker} gave no response (heartbeat {hb:g}s)"
            )
        return resp

    def call(self, shard: int, cmd: dict, **kwargs) -> dict:
        resp = self.shard_cmd(shard, cmd, wait=True, **kwargs)
        assert resp is not None
        return resp

    def barrier(self) -> None:
        """Flush and settle every in-flight request on every up worker.

        A worker that fails during the barrier is marked down (its
        commands are in the WAL) instead of failing the fleet.
        """
        self.tick()
        for w, handle in self.workers.items():
            if not handle.dead and self.supervisor.state(w) == UP:
                self._drain_handle(w)

    # -- observation -----------------------------------------------------
    def statuses(self) -> "dict[int, dict]":
        """Shard id -> ``ClusterService.status()`` dict, fleet-wide.

        Shards whose worker is down are simply absent -- status is an
        observation and must not block on a heal.
        """
        self.barrier()
        out: "dict[int, dict]" = {}
        for w, handle in sorted(self.workers.items()):
            if handle.dead or self.supervisor.state(w) != UP:
                continue
            try:
                resp = self.worker_cmd(w, {"op": "worker_status"})
            except (WorkerDied, GatewayError) as exc:
                self._worker_failed(w, str(exc))
                continue
            for sid, status in resp["shards"].items():
                out[int(sid)] = status
        return out

    def shard_digests(self) -> "dict[int, str]":
        """Schedule digest per shard (inline snapshot; not a checkpoint).

        Heals any auto-downed worker first: a digest over a hole in the
        fleet would silently exclude that shard's schedule.
        """
        self.ensure_all_up()
        self.barrier()
        out = {}
        for s in self.config.shard_ids():
            resp = self.call(s, {"op": "snapshot"}, log=False)
            if not resp.get("ok"):
                raise GatewayError(f"shard {s} snapshot failed: {resp}")
            out[s] = resp["snapshot"]["schedule_digest"]
        return out

    # -- checkpoint / crash / restore ------------------------------------
    def snapshot_all(self) -> "dict[int, dict]":
        """Checkpoint every shard to ``snapshot_dir`` (snapshot-under-load:
        callable at any point of the stream); acknowledges the WAL.

        Degradation-aware: auto-downed workers are skipped (their shards
        keep their WAL and checkpoint on heal), and a shard whose
        checkpoint write failed (e.g. an injected torn write) keeps its
        previous checkpoint and full WAL -- the entry comes back with an
        ``"error"`` key instead of checkpoint metadata.  An explicitly
        killed (admin-down) worker is still a hard error.
        """
        if self.snapshot_dir is None:
            raise GatewayError("snapshot_all needs a snapshot_dir")
        self.barrier()
        out: "dict[int, dict]" = {}
        acked: "list[int]" = []
        for w, handle in sorted(self.workers.items()):
            state = self.supervisor.state(w)
            if state == ADMIN_DOWN or (handle.dead and state == UP):
                raise WorkerDied(
                    f"worker {w} is dead; restore it before checkpointing"
                )
            if state != UP:
                continue  # parked shards checkpoint after they heal
            try:
                resp = self.worker_cmd(
                    w,
                    {"op": "snapshot_shards", "dir": str(self.snapshot_dir)},
                )
            except (WorkerDied, GatewayError) as exc:
                self._worker_failed(w, str(exc))
                continue
            if not resp.get("ok"):
                raise GatewayError(f"worker {w} snapshot failed: {resp}")
            for sid, info in resp["snapshots"].items():
                out[int(sid)] = info
                if "error" not in info:
                    acked.append(int(sid))
        # every command up to the barrier is inside the acked
        # checkpoints; those shards' WALs restart empty from here --
        # failed/skipped shards keep checkpoint and WAL unchanged
        for s in acked:
            self.wal[s] = []
            self.checkpointed.add(s)
            self.checkpoint_meta[s] = out[s]
            dw = self.dwal.get(s)
            if dw is not None:
                dw.mark_checkpoint(out[s]["content_hash"])
        return out

    def kill_worker(self, worker: int) -> int:
        """SIGKILL a worker mid-stream (an *operator* action: the
        supervisor marks it ``admin_down`` and will not auto-respawn it);
        returns lost in-flight responses."""
        handle = self.workers[worker]
        self._capture_lost(worker, handle)
        lost = handle.kill()
        self.lost_responses += lost
        if worker in self.supervisor.meta:
            self.supervisor.on_failure(
                worker,
                "killed by operator (kill_worker)",
                self.vclock,
                admin=True,
            )
        return lost

    def restore_worker(self, worker: int) -> "dict[int, int]":
        """Manually respawn a dead worker and rebuild its shards
        bit-identically: restore each from its last checkpoint (genesis
        when none exists), then replay the per-shard WAL in original
        order.  Returns ``shard -> replayed command count``."""
        old = self.workers.get(worker)
        if old is not None and not old.dead:
            raise GatewayError(f"worker {worker} is still alive")
        incarnation = (
            self.supervisor.on_respawn_attempt(worker)
            if worker in self.supervisor.meta
            else 0
        )
        self._spawn(worker, incarnation)
        replayed = self._replay(worker)
        if worker in self.supervisor.meta:
            self.supervisor.on_healed(worker, manual=True)
        for s in self.config.worker_shards(worker):
            self.parked[s] = 0
        self.restores += 1
        return replayed

    def supervision_status(self) -> dict:
        """The self-healing block of the aggregate status op."""
        st = self.supervisor.status()
        st["parked"] = {
            str(s): n for s, n in sorted(self.parked.items()) if n
        }
        st["parked_total"] = self.parked_total
        st["lost_inflight"] = {
            str(w): {"count": len(rows), "recent": rows[-3:]}
            for w, rows in sorted(self.lost_inflight.items())
        }
        st["faults_armed"] = self.faults_armed
        st["wal_tears"] = self.wal_tears
        st["pings_sent"] = self.pings_sent
        return st

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        for w, handle in sorted(self.workers.items()):
            if handle.dead:
                continue
            try:
                self.worker_cmd(w, {"op": "shutdown"})
            except (GatewayError, OSError):
                pass
            handle.close()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Gateway:
    """The tenant-facing front door over a :class:`ShardPool`.

    Ingest ops route by tenant (``tenant -> shard -> org``), pass
    admission control first, and pipeline to the owning worker; time ops
    broadcast to every shard.  All errors -- admission refusals, unknown
    tenants, shard-side validation -- come back as in-band
    ``{"ok": false, "error": ..., "code": ...}`` responses.
    """

    def __init__(
        self,
        config: GatewayConfig,
        *,
        snapshot_dir: "str | Path | None" = None,
        max_inflight: int = 64,
        supervisor: "SupervisorPolicy | None" = None,
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        self.config = config
        self.pool = ShardPool(
            config,
            snapshot_dir=snapshot_dir,
            max_inflight=max_inflight,
            supervisor=supervisor,
            fault_plan=fault_plan,
        )
        self.admission = AdmissionController(config)
        self.clock = 0
        self.n_submitted = 0
        self.n_rejected = 0
        self.forward_errors: "list[dict]" = []
        self._started = time.perf_counter()

    def start(self) -> "Gateway":
        self.pool.start()
        return self

    def __enter__(self) -> "Gateway":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        self.pool.close()

    # -- ingest ----------------------------------------------------------
    def submit(
        self,
        tenant: str,
        size: int,
        release: "int | None" = None,
        *,
        wait: bool = False,
    ) -> dict:
        """Submit one job for ``tenant``; admission-checked at the door.

        Pipelined by default (the returned dict only acknowledges
        forwarding; shard-side errors surface in :attr:`forward_errors`
        and the next barrier).  ``wait=True`` returns the shard's full
        response.

        Degradation contract: shard health is checked **before**
        admission charges, so a ``shard_unavailable`` refusal (worker
        quarantined, or down with a full park buffer) never costs the
        tenant tokens or credits, exactly like ``rate_limited``.  A
        submit to a down-but-parkable shard is charged (it *will* apply
        on heal) and acknowledged with ``"parked": true``.
        """
        now = self.clock if release is None else max(release, self.clock)
        if tenant not in self.config.routes:
            try:
                # routes admission's unknown_tenant accounting + error
                self.admission.admit_submit(tenant, size, now)
            except AdmissionError as exc:
                self.n_rejected += 1
                return {
                    "ok": False,
                    "tenant": tenant,
                    "error": str(exc),
                    "code": exc.code,
                }
        shard, org = self.config.routes[tenant]
        refusal = self.pool.submit_refusal(shard)
        if refusal is not None:
            self.n_rejected += 1
            self.admission.refuse(tenant, "shard_unavailable", refusal)
            return {
                "ok": False,
                "tenant": tenant,
                "shard": shard,
                "error": refusal,
                "code": "shard_unavailable",
            }
        try:
            self.admission.admit_submit(tenant, size, now)
        except AdmissionError as exc:
            self.n_rejected += 1
            return {
                "ok": False,
                "tenant": tenant,
                "error": str(exc),
                "code": exc.code,
            }
        cmd: dict = {"op": "submit", "org": org, "size": int(size)}
        if release is not None:
            cmd["release"] = int(release)
        self.n_submitted += 1

        def check(resp: dict) -> None:
            if not resp.get("ok"):
                self.forward_errors.append(
                    {"tenant": tenant, "shard": shard, **resp}
                )

        try:
            resp = self.pool.shard_cmd(
                shard, cmd, wait=wait, track_latency=True, callback=check
            )
        except ShardUnavailable as exc:
            # raced: the shard went unavailable between the health check
            # and the send, and parking wasn't possible -- undo the
            # charge so the refusal stays free, like every other refusal
            self.admission.refund_submit(tenant, size)
            self.n_submitted -= 1
            self.n_rejected += 1
            self.admission.refuse(tenant, "shard_unavailable", str(exc))
            return {
                "ok": False,
                "tenant": tenant,
                "shard": shard,
                "error": str(exc),
                "code": "shard_unavailable",
            }
        if wait:
            return {"tenant": tenant, **resp}
        if resp is not None and resp.get("parked"):
            return {
                "ok": True,
                "tenant": tenant,
                "shard": shard,
                "parked": True,
            }
        return {"ok": True, "tenant": tenant, "shard": shard, "queued": True}

    def add_credits(self, tenant: str, amount: float) -> dict:
        try:
            balance = self.admission.add_credits(tenant, amount)
        except AdmissionError as exc:
            return {
                "ok": False,
                "tenant": tenant,
                "error": str(exc),
                "code": exc.code,
            }
        return {"ok": True, "tenant": tenant, "credits_remaining": balance}

    # -- time ------------------------------------------------------------
    def advance(self, t: int, *, wait: bool = False) -> dict:
        """Advance every shard's clock to ``t`` (broadcast, pipelined).

        Down shards park the advance (replayed in order on heal); the
        broadcast never stalls on a hole in the fleet.
        """
        t = int(t)
        self.clock = max(self.clock, t)
        self.pool.vclock = self.clock
        self.admission.observe_clock(self.clock)
        for s in self.config.shard_ids():
            self.pool.shard_cmd(s, {"op": "advance", "t": t})
        if wait:
            self.pool.barrier()
        return {"ok": True, "clock": self.clock}

    def drain(self) -> dict:
        """Process every remaining decision event on every shard.

        Self-healing barrier: a shard whose worker is down (or fails
        mid-drain) is healed -- respawn, checkpoint restore, WAL replay
        -- and the drain retried; ``drain`` is idempotent on a drained
        shard, so the bounded retry loop is safe.
        """
        self.pool.vclock = self.clock
        clocks = []
        for s in self.config.shard_ids():
            resp: "dict | None" = None
            for _ in range(10):
                try:
                    resp = self.pool.call(s, {"op": "drain"})
                except ShardUnavailable:
                    self.pool.heal_shard(s)
                    continue
                if resp.get("parked"):
                    # parked: the WAL holds the drain; heal applies it,
                    # then one more (idempotent) drain reads the clock
                    self.pool.heal_shard(s)
                    continue
                break
            else:
                raise GatewayError(f"shard {s} would not drain (gave up)")
            if not resp.get("ok"):
                return resp
            clocks.append(resp["clock"])
        self.clock = max([self.clock, *clocks])
        self.pool.vclock = self.clock
        self.admission.observe_clock(self.clock)
        return {"ok": True, "clock": self.clock}

    # -- observation -----------------------------------------------------
    def status(self) -> dict:
        """Aggregate fleet status: totals, per-shard, per-tenant.

        Per-tenant rows join the gateway-side admission counters
        (accepted/rejected/credits) with the owning shard's per-org
        ingest and queue counters -- the satellite observability
        contract.
        """
        shard_statuses = self.pool.statuses()
        admission = self.admission.status()
        tenants = {}
        for t in self.config.tenants:
            shard, org = self.config.routes[t.name]
            row = dict(admission[t.name])
            row["shard"] = shard
            row["org"] = org
            per_org = shard_statuses.get(shard, {}).get("per_org", {})
            row.update(per_org.get(str(org), {}))
            tenants[t.name] = row
        totals = {
            "events_processed": sum(
                s["events_processed"] for s in shard_statuses.values()
            ),
            "jobs_submitted": sum(
                s["jobs_submitted"] for s in shard_statuses.values()
            ),
            "jobs_started": sum(
                s["jobs_started"] for s in shard_statuses.values()
            ),
            "waiting": sum(s["waiting"] for s in shard_statuses.values()),
            "running": sum(s["running"] for s in shard_statuses.values()),
            "ingest_flushes": sum(
                s["ingest"]["flushes"] for s in shard_statuses.values()
            ),
            "jobs_flushed": sum(
                s["ingest"]["jobs_flushed"] for s in shard_statuses.values()
            ),
            "rejected": self.n_rejected,
            "forward_errors": len(self.forward_errors),
            "lost_responses": self.pool.lost_responses,
            "worker_restores": self.pool.restores,
        }
        supervision = self.pool.supervision_status()
        degraded = any(
            row["state"] != "up"
            for row in supervision["workers"].values()
        )
        return {
            "ok": True,
            "config_hash": self.config.content_hash(),
            "policy": self.config.policy,
            "clock": self.clock,
            "workers": self.pool.n_live_workers,
            "shards": len(self.config.shard_ids()),
            "tenants": len(self.config.tenants),
            **totals,
            "degraded": degraded,
            "supervisor": supervision,
            "per_shard": {str(s): v for s, v in shard_statuses.items()},
            "per_tenant": tenants,
        }

    def latency_percentiles(self) -> "dict[str, float]":
        """Ingest round-trip latency percentiles (milliseconds)."""
        lat = sorted(self.pool.latencies_s)
        if not lat:
            return {"p50_ms": 0.0, "p99_ms": 0.0}

        def pct(q: float) -> float:
            idx = min(len(lat) - 1, int(q * (len(lat) - 1) + 0.5))
            return lat[idx] * 1000.0

        return {"p50_ms": round(pct(0.50), 4), "p99_ms": round(pct(0.99), 4)}

    def stats_line(self) -> str:
        """One compact periodic-stats line (``repro gateway`` heartbeat)."""
        lat = self.latency_percentiles()
        elapsed = time.perf_counter() - self._started
        return (
            f"[gateway] clock={self.clock} workers={self.pool.n_live_workers}"
            f" shards={len(self.config.shard_ids())}"
            f" submitted={self.n_submitted} rejected={self.n_rejected}"
            f" p50={lat['p50_ms']:.2f}ms p99={lat['p99_ms']:.2f}ms"
            f" uptime={elapsed:.1f}s"
        )

    # -- checkpoint / recovery (delegated) -------------------------------
    def snapshot_all(self) -> "dict[int, dict]":
        return self.pool.snapshot_all()

    def shard_digests(self) -> "dict[int, str]":
        return self.pool.shard_digests()

    def kill_worker(self, worker: int) -> int:
        return self.pool.kill_worker(worker)

    def restore_worker(self, worker: int) -> "dict[int, int]":
        return self.pool.restore_worker(worker)


def gateway_serve_loop(
    gateway: Gateway,
    lines,
    out,
    *,
    stats_every_s: "float | None" = None,
    stats_out=None,
) -> None:
    """The ``repro gateway`` daemon loop: tenant-facing JSONL commands.

    The protocol mirrors ``repro serve`` but addresses **tenants**, not
    org ids -- routing, admission and sharding are the gateway's job::

        {"id": 1, "op": "submit", "tenant": "t3", "size": 2}
        {"id": 2, "op": "advance", "t": 5}
        {"id": 3, "op": "status"}
        {"id": 4, "op": "add_credits", "tenant": "t3", "amount": 50}
        {"id": 5, "op": "snapshot"}          # checkpoint the whole fleet
        {"id": 6, "op": "digests"}           # per-shard schedule digests
        {"id": 7, "op": "stop"}

    Every error -- admission refusal, unknown tenant, malformed JSON --
    is an in-band ``{"ok": false, ...}`` response.  ``stats_every_s``
    emits a periodic one-line fleet heartbeat to ``stats_out``
    (observability satellite).  The loop ticks the pool's supervisor
    while idle (bounded waits on real streams), so a crashed worker is
    detected and respawned even with no tenant traffic.  On
    :class:`~repro.service.daemon.ShutdownRequested` (SIGTERM/SIGINT)
    the fleet is checkpointed to the pool's ``snapshot_dir`` before the
    loop returns, so a supervisor kill of the *gateway* is as
    recoverable as a worker crash.
    """
    from ..service.daemon import timed_lines

    last_stats = time.monotonic()

    def maybe_stats() -> None:
        nonlocal last_stats
        if stats_every_s is None or stats_out is None:
            return
        now = time.monotonic()
        if now - last_stats >= stats_every_s:
            stats_out.write(gateway.stats_line() + "\n")
            stats_out.flush()
            last_stats = now

    try:
        for line in timed_lines(lines, lambda: 0.25):
            if line is None:
                # idle: run the supervisor pass (deadline checks, pings,
                # due respawns) so healing doesn't wait for traffic
                gateway.pool.tick()
                maybe_stats()
                continue
            line = line.strip()
            if not line:
                continue
            keep = True
            req_id = None
            try:
                cmd = json.loads(line)
                if not isinstance(cmd, dict):
                    raise ValueError(
                        f"expected a JSON object, got {type(cmd).__name__}"
                    )
                req_id = cmd.get("id")
                op = cmd.get("op")
                if op == "submit":
                    resp = gateway.submit(
                        cmd["tenant"],
                        int(cmd.get("size", 1)),
                        release=(
                            int(cmd["release"]) if "release" in cmd else None
                        ),
                        wait=bool(cmd.get("wait", False)),
                    )
                elif op == "advance":
                    resp = gateway.advance(int(cmd["t"]))
                elif op == "drain":
                    resp = gateway.drain()
                elif op == "status":
                    resp = gateway.status()
                elif op == "add_credits":
                    resp = gateway.add_credits(
                        cmd["tenant"], float(cmd["amount"])
                    )
                elif op == "snapshot":
                    resp = {
                        "ok": True,
                        "snapshots": {
                            str(s): info
                            for s, info in gateway.snapshot_all().items()
                        },
                    }
                elif op == "digests":
                    resp = {
                        "ok": True,
                        "digests": {
                            str(s): d
                            for s, d in gateway.shard_digests().items()
                        },
                    }
                elif op == "stop":
                    resp = {"ok": True, "stopped": True}
                    keep = False
                else:
                    raise ValueError(f"unknown gateway op {op!r}")
            except (ValueError, KeyError, TypeError) as exc:
                resp = {"ok": False, "error": str(exc)}
            if req_id is not None:
                resp["id"] = req_id
            out.write(json.dumps(resp) + "\n")
            out.flush()
            maybe_stats()
            if not keep:
                return
    except BaseException as exc:
        # graceful SIGTERM/SIGINT (ShutdownRequested) -- and any crash --
        # leaves a restorable fleet checkpoint behind when possible
        if gateway.pool.snapshot_dir is not None:
            try:
                gateway.snapshot_all()
            except GatewayError:
                pass
        from ..service.daemon import ShutdownRequested

        if isinstance(exc, ShutdownRequested):
            return
        raise
