"""The gateway front door: one daemon multiplexing a fleet of shards.

Two layers (ISSUE 8 tentpole):

* :class:`ShardPool` -- the transport: spawns ``python -m
  repro.gateway.worker`` processes (process-per-core), routes shard-tagged
  JSONL commands over binary pipes with bounded pipelining (responses are
  matched positionally per worker -- workers answer strictly in order),
  keeps a per-shard write-ahead log of every forwarded mutation since the
  last acknowledged checkpoint, and implements snapshot-under-load, kill
  and bit-identical restore (checkpoint + WAL replay through the very same
  command path).
* :class:`Gateway` -- the tenant-facing policy layer on top: deterministic
  ``tenant -> shard -> org`` routing from the content-hashed
  :class:`~repro.gateway.config.GatewayConfig`, admission control and
  per-org token-bucket rate/credit accounting at ingest
  (:mod:`repro.gateway.admission`; typed in-band errors, never a crash),
  aggregate status/observability, and ingest-latency accounting.

Recovery contract: after ``kill_worker(w)`` (SIGKILL, no warning), the
sequence *respawn from the last checkpoint* + *replay the per-shard WAL*
reconstructs every shard bit-identically -- checkpoints restore through
the event-sourced journal (verified digests), and the WAL replays the
exact forwarded commands in their original per-shard order through the
same deterministic ingest path.  Commands the dead worker had already
applied after the checkpoint are *not* double-applied: the respawned
worker starts from the checkpoint state, which predates them.
"""

from __future__ import annotations

import json
import os
import select
import subprocess
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from .admission import AdmissionController, AdmissionError
from .config import GatewayConfig
from .worker import shard_snapshot_path

__all__ = [
    "Gateway",
    "ShardPool",
    "GatewayError",
    "WorkerDied",
    "gateway_serve_loop",
]

#: Ops the WAL must capture: everything that mutates shard state.  Pure
#: observations (status, inline snapshot) replay to nothing and are not
#: logged.
MUTATING_OPS = frozenset(
    {
        "submit",
        "advance",
        "drain",
        "join",
        "leave",
        "add_machines",
        "remove_machines",
    }
)


class GatewayError(RuntimeError):
    """A transport-level gateway failure (not an in-band command error)."""


class WorkerDied(GatewayError):
    """A worker process exited while responses were still expected."""


@dataclass
class _Pending:
    """One in-flight request awaiting its (positional) response."""

    req_id: int
    shard: "int | None"
    op: str
    sent_at: float
    track_latency: bool = False
    callback: "Callable[[dict], None] | None" = None


class _WorkerHandle:
    """One spawned worker: binary pipes, tx batching, rx line splitting."""

    HANDSHAKE_TIMEOUT_S = 60.0

    def __init__(
        self,
        worker_id: int,
        manifest: dict,
        env: "dict[str, str]",
    ) -> None:
        self.worker_id = worker_id
        # -c instead of -m: the latter warns when repro.gateway is already
        # imported as a package before runpy executes the submodule
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "from repro.gateway.worker import worker_main; "
                "raise SystemExit(worker_main())",
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=None,  # inherit: worker tracebacks stay visible
            env=env,
        )
        self.pending: "deque[_Pending]" = deque()
        self.dead = False
        self._rx = bytearray()
        self._rx_lines: "deque[str]" = deque()
        self._tx: "list[bytes]" = []
        self.hello = self._handshake(manifest)

    # -- low-level I/O --------------------------------------------------
    def _handshake(self, manifest: dict) -> dict:
        self.write_line(manifest)
        self.flush()
        resp = self._read_response(timeout=self.HANDSHAKE_TIMEOUT_S)
        if resp is None or not resp.get("ok"):
            raise WorkerDied(
                f"worker {self.worker_id} failed to start: {resp!r}"
            )
        return resp

    def write_line(self, payload: dict) -> None:
        self._tx.append(json.dumps(payload).encode("utf-8") + b"\n")

    def flush(self) -> None:
        if not self._tx or self.dead:
            self._tx.clear()
            return
        data = b"".join(self._tx)
        self._tx.clear()
        try:
            self.proc.stdin.write(data)
            self.proc.stdin.flush()
        except (BrokenPipeError, OSError) as exc:
            self.dead = True
            raise WorkerDied(
                f"worker {self.worker_id} pipe closed: {exc}"
            ) from exc

    def _fill_rx(self, timeout: "float | None") -> bool:
        """Read once from the worker's stdout; False on timeout/EOF."""
        fd = self.proc.stdout.fileno()
        ready, _, _ = select.select([fd], [], [], timeout)
        if not ready:
            return False
        chunk = os.read(fd, 1 << 16)
        if not chunk:
            self.dead = True
            return False
        self._rx.extend(chunk)
        while True:
            nl = self._rx.find(b"\n")
            if nl < 0:
                break
            self._rx_lines.append(
                self._rx[:nl].decode("utf-8", errors="replace")
            )
            del self._rx[: nl + 1]
        return True

    def _read_response(self, timeout: "float | None") -> "dict | None":
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._rx_lines:
            if self.dead:
                return None
            left = (
                None
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            # False == timeout elapsed or EOF; either way nothing more to
            # wait for within this call's budget
            if not self._fill_rx(left):
                return None
        return json.loads(self._rx_lines.popleft())

    # -- response accounting --------------------------------------------
    def settle_one(self, timeout: "float | None" = None) -> "dict | None":
        """Match the oldest pending request with the next response."""
        if not self.pending:
            return None
        self.flush()
        resp = self._read_response(timeout)
        if resp is None:
            if self.dead:
                raise WorkerDied(
                    f"worker {self.worker_id} died with "
                    f"{len(self.pending)} responses outstanding"
                )
            return None
        p = self.pending.popleft()
        got = resp.get("id")
        if got is not None and got != p.req_id:
            raise GatewayError(
                f"worker {self.worker_id}: response id {got} does not "
                f"match pending request {p.req_id} (protocol desync)"
            )
        if p.callback is not None:
            p.callback(resp)
        return resp

    def settle_available(self) -> int:
        """Opportunistically consume already-arrived responses."""
        n = 0
        while self.pending and (self._rx_lines or self._peek_readable()):
            if self.settle_one(timeout=0) is None:
                break
            n += 1
        return n

    def _peek_readable(self) -> bool:
        if self.dead:
            return False
        fd = self.proc.stdout.fileno()
        ready, _, _ = select.select([fd], [], [], 0)
        return bool(ready)

    def drain(self) -> None:
        while self.pending:
            self.settle_one(timeout=None)

    # -- lifecycle -------------------------------------------------------
    def kill(self) -> int:
        """SIGKILL the process; returns the number of lost responses."""
        lost = len(self.pending)
        self.pending.clear()
        self._tx.clear()
        self._rx.clear()
        self._rx_lines.clear()
        self.dead = True
        if self.proc.poll() is None:
            self.proc.kill()
        self.proc.wait()
        return lost

    def close(self) -> None:
        if self.proc.poll() is None:
            try:
                self.proc.stdin.close()
            except OSError:
                pass
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - safety
                self.proc.kill()
                self.proc.wait()
        self.dead = True


class ShardPool:
    """Process-per-core workers, each owning the shards routed to it.

    The pool is the deterministic transport under :class:`Gateway`; it
    knows nothing about tenants.  Shard commands pipeline (bounded by
    ``max_inflight`` per worker); mutating commands are write-ahead
    logged per shard until the next acknowledged checkpoint, which is
    what makes :meth:`restore_worker` exact.
    """

    def __init__(
        self,
        config: GatewayConfig,
        *,
        snapshot_dir: "str | Path | None" = None,
        max_inflight: int = 64,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.config = config
        self.snapshot_dir = (
            None if snapshot_dir is None else Path(snapshot_dir)
        )
        self.max_inflight = max_inflight
        self.workers: "dict[int, _WorkerHandle]" = {}
        self.wal: "dict[int, list[dict]]" = {
            s: [] for s in config.shard_ids()
        }
        self.checkpointed: "set[int]" = set()
        self.latencies_s: "list[float]" = []
        self.lost_responses = 0
        self.restores = 0
        self._next_id = 0

    # -- spawn -----------------------------------------------------------
    @staticmethod
    def _worker_env() -> "dict[str, str]":
        import repro

        pkg_root = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            pkg_root if not existing else pkg_root + os.pathsep + existing
        )
        return env

    def _manifest(self, worker: int, restore: "dict[str, str]") -> dict:
        cfg = self.config
        return {
            "worker": worker,
            "shards": {
                str(s): {
                    "machine_counts": list(cfg.shard_machine_counts(s)),
                    "policy": cfg.policy,
                    "seed": cfg.shard_seed(s),
                    "horizon": cfg.horizon,
                    "batch_max": cfg.batch_max,
                }
                for s in cfg.worker_shards(worker)
            },
            "restore": restore,
            "snapshot_dir": (
                None if self.snapshot_dir is None else str(self.snapshot_dir)
            ),
            "linger_ms": cfg.batch_linger_ms,
        }

    def start(self) -> "ShardPool":
        env = self._worker_env()
        for w in range(self.config.n_workers):
            if not self.config.worker_shards(w):
                continue  # fewer populated shards than workers
            self.workers[w] = _WorkerHandle(w, self._manifest(w, {}), env)
        return self

    @property
    def n_live_workers(self) -> int:
        return sum(1 for h in self.workers.values() if not h.dead)

    def _handle_for_shard(self, shard: int) -> _WorkerHandle:
        from .routing import worker_of

        w = worker_of(shard, self.config.n_workers)
        try:
            handle = self.workers[w]
        except KeyError:
            raise GatewayError(f"no worker owns shard {shard}") from None
        if handle.dead:
            raise WorkerDied(
                f"worker {w} (shard {shard}) is dead; restore_worker({w}) "
                f"first"
            )
        return handle

    # -- command dispatch ------------------------------------------------
    def shard_cmd(
        self,
        shard: int,
        cmd: dict,
        *,
        wait: bool = False,
        track_latency: bool = False,
        callback: "Callable[[dict], None] | None" = None,
        log: bool = True,
    ) -> "dict | None":
        """Send one shard-tagged command; pipeline unless ``wait``."""
        handle = self._handle_for_shard(shard)
        self._next_id += 1
        payload = {"id": self._next_id, "shard": shard, **cmd}
        if log and cmd.get("op") in MUTATING_OPS:
            self.wal[shard].append(dict(cmd))
        cb = self._wrap_latency(callback) if track_latency else callback
        captured: "list[dict]" = []
        if wait:
            inner = cb

            def cb(resp: dict, _inner=inner) -> None:
                captured.append(resp)
                if _inner is not None:
                    _inner(resp)

        handle.pending.append(
            _Pending(
                req_id=self._next_id,
                shard=shard,
                op=cmd.get("op", "?"),
                sent_at=time.perf_counter(),
                track_latency=track_latency,
                callback=cb,
            )
        )
        handle.write_line(payload)
        if wait:
            handle.drain()
            if not captured:
                raise GatewayError("response stream ended unexpectedly")
            return captured[0]
        if len(handle.pending) >= self.max_inflight:
            handle.settle_one(timeout=None)
        else:
            handle.settle_available()
        return None

    def _wrap_latency(
        self, callback: "Callable[[dict], None] | None"
    ) -> "Callable[[dict], None]":
        sent = time.perf_counter()

        def cb(resp: dict) -> None:
            self.latencies_s.append(time.perf_counter() - sent)
            if callback is not None:
                callback(resp)

        return cb

    def worker_cmd(self, worker: int, cmd: dict) -> dict:
        """A synchronous worker-level op (status / snapshot / shutdown)."""
        handle = self.workers[worker]
        if handle.dead:
            raise WorkerDied(f"worker {worker} is dead")
        handle.drain()  # worker-level ops are barriers on that worker
        self._next_id += 1
        payload = {"id": self._next_id, **cmd}
        handle.write_line(payload)
        handle.pending.append(
            _Pending(
                req_id=self._next_id,
                shard=None,
                op=cmd.get("op", "?"),
                sent_at=time.perf_counter(),
            )
        )
        resp = handle.settle_one(timeout=None)
        if resp is None:
            raise WorkerDied(f"worker {worker} gave no response")
        return resp

    def call(self, shard: int, cmd: dict, **kwargs) -> dict:
        resp = self.shard_cmd(shard, cmd, wait=True, **kwargs)
        assert resp is not None
        return resp

    def barrier(self) -> None:
        """Flush and settle every in-flight request on every live worker."""
        for handle in self.workers.values():
            if not handle.dead:
                handle.drain()

    # -- observation -----------------------------------------------------
    def statuses(self) -> "dict[int, dict]":
        """Shard id -> ``ClusterService.status()`` dict, fleet-wide."""
        self.barrier()
        out: "dict[int, dict]" = {}
        for w, handle in sorted(self.workers.items()):
            if handle.dead:
                continue
            resp = self.worker_cmd(w, {"op": "worker_status"})
            for sid, status in resp["shards"].items():
                out[int(sid)] = status
        return out

    def shard_digests(self) -> "dict[int, str]":
        """Schedule digest per shard (inline snapshot; not a checkpoint)."""
        self.barrier()
        out = {}
        for s in self.config.shard_ids():
            resp = self.call(s, {"op": "snapshot"}, log=False)
            if not resp.get("ok"):
                raise GatewayError(f"shard {s} snapshot failed: {resp}")
            out[s] = resp["snapshot"]["schedule_digest"]
        return out

    # -- checkpoint / crash / restore ------------------------------------
    def snapshot_all(self) -> "dict[int, dict]":
        """Checkpoint every shard to ``snapshot_dir`` (snapshot-under-load:
        callable at any point of the stream); acknowledges the WAL."""
        if self.snapshot_dir is None:
            raise GatewayError("snapshot_all needs a snapshot_dir")
        self.barrier()
        out: "dict[int, dict]" = {}
        for w, handle in sorted(self.workers.items()):
            if handle.dead:
                raise WorkerDied(
                    f"worker {w} is dead; restore it before checkpointing"
                )
            resp = self.worker_cmd(
                w, {"op": "snapshot_shards", "dir": str(self.snapshot_dir)}
            )
            if not resp.get("ok"):
                raise GatewayError(f"worker {w} snapshot failed: {resp}")
            for sid, info in resp["snapshots"].items():
                out[int(sid)] = info
        # every command up to the barrier is inside the checkpoints; the
        # WAL restarts empty from here
        for s in out:
            self.wal[s] = []
            self.checkpointed.add(s)
        return out

    def kill_worker(self, worker: int) -> int:
        """SIGKILL a worker mid-stream; returns lost in-flight responses."""
        handle = self.workers[worker]
        lost = handle.kill()
        self.lost_responses += lost
        return lost

    def restore_worker(self, worker: int) -> "dict[int, int]":
        """Respawn a dead worker and rebuild its shards bit-identically:
        restore each from its last checkpoint (genesis when none exists),
        then replay the per-shard WAL in original order.  Returns
        ``shard -> replayed command count``."""
        old = self.workers.get(worker)
        if old is not None and not old.dead:
            raise GatewayError(f"worker {worker} is still alive")
        restore = {}
        if self.snapshot_dir is not None:
            for s in self.config.worker_shards(worker):
                if s in self.checkpointed:
                    path = shard_snapshot_path(self.snapshot_dir, s)
                    if path.exists():
                        restore[str(s)] = str(path)
        self.workers[worker] = _WorkerHandle(
            worker, self._manifest(worker, restore), self._worker_env()
        )
        replayed = {}
        for s in self.config.worker_shards(worker):
            for cmd in self.wal[s]:
                # log=False: the WAL already holds these commands
                self.shard_cmd(s, cmd, log=False)
            replayed[s] = len(self.wal[s])
        self.workers[worker].drain()
        self.restores += 1
        return replayed

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        for w, handle in sorted(self.workers.items()):
            if handle.dead:
                continue
            try:
                handle.drain()
                self.worker_cmd(w, {"op": "shutdown"})
            except (GatewayError, OSError):
                pass
            handle.close()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Gateway:
    """The tenant-facing front door over a :class:`ShardPool`.

    Ingest ops route by tenant (``tenant -> shard -> org``), pass
    admission control first, and pipeline to the owning worker; time ops
    broadcast to every shard.  All errors -- admission refusals, unknown
    tenants, shard-side validation -- come back as in-band
    ``{"ok": false, "error": ..., "code": ...}`` responses.
    """

    def __init__(
        self,
        config: GatewayConfig,
        *,
        snapshot_dir: "str | Path | None" = None,
        max_inflight: int = 64,
    ) -> None:
        self.config = config
        self.pool = ShardPool(
            config, snapshot_dir=snapshot_dir, max_inflight=max_inflight
        )
        self.admission = AdmissionController(config)
        self.clock = 0
        self.n_submitted = 0
        self.n_rejected = 0
        self.forward_errors: "list[dict]" = []
        self._started = time.perf_counter()

    def start(self) -> "Gateway":
        self.pool.start()
        return self

    def __enter__(self) -> "Gateway":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        self.pool.close()

    # -- ingest ----------------------------------------------------------
    def submit(
        self,
        tenant: str,
        size: int,
        release: "int | None" = None,
        *,
        wait: bool = False,
    ) -> dict:
        """Submit one job for ``tenant``; admission-checked at the door.

        Pipelined by default (the returned dict only acknowledges
        forwarding; shard-side errors surface in :attr:`forward_errors`
        and the next barrier).  ``wait=True`` returns the shard's full
        response.
        """
        now = self.clock if release is None else max(release, self.clock)
        try:
            # raises unknown_tenant before the route lookup can fail
            self.admission.admit_submit(tenant, size, now)
        except AdmissionError as exc:
            self.n_rejected += 1
            return {
                "ok": False,
                "tenant": tenant,
                "error": str(exc),
                "code": exc.code,
            }
        shard, org = self.config.routes[tenant]
        cmd: dict = {"op": "submit", "org": org, "size": int(size)}
        if release is not None:
            cmd["release"] = int(release)
        self.n_submitted += 1

        def check(resp: dict) -> None:
            if not resp.get("ok"):
                self.forward_errors.append(
                    {"tenant": tenant, "shard": shard, **resp}
                )

        resp = self.pool.shard_cmd(
            shard, cmd, wait=wait, track_latency=True, callback=check
        )
        if wait:
            return {"tenant": tenant, **resp}
        return {"ok": True, "tenant": tenant, "shard": shard, "queued": True}

    def add_credits(self, tenant: str, amount: float) -> dict:
        try:
            balance = self.admission.add_credits(tenant, amount)
        except AdmissionError as exc:
            return {
                "ok": False,
                "tenant": tenant,
                "error": str(exc),
                "code": exc.code,
            }
        return {"ok": True, "tenant": tenant, "credits_remaining": balance}

    # -- time ------------------------------------------------------------
    def advance(self, t: int, *, wait: bool = False) -> dict:
        """Advance every shard's clock to ``t`` (broadcast, pipelined)."""
        t = int(t)
        self.clock = max(self.clock, t)
        self.admission.observe_clock(self.clock)
        for s in self.config.shard_ids():
            self.pool.shard_cmd(s, {"op": "advance", "t": t})
        if wait:
            self.pool.barrier()
        return {"ok": True, "clock": self.clock}

    def drain(self) -> dict:
        """Process every remaining decision event on every shard."""
        clocks = []
        for s in self.config.shard_ids():
            resp = self.pool.call(s, {"op": "drain"})
            if not resp.get("ok"):
                return resp
            clocks.append(resp["clock"])
        self.clock = max([self.clock, *clocks])
        self.admission.observe_clock(self.clock)
        return {"ok": True, "clock": self.clock}

    # -- observation -----------------------------------------------------
    def status(self) -> dict:
        """Aggregate fleet status: totals, per-shard, per-tenant.

        Per-tenant rows join the gateway-side admission counters
        (accepted/rejected/credits) with the owning shard's per-org
        ingest and queue counters -- the satellite observability
        contract.
        """
        shard_statuses = self.pool.statuses()
        admission = self.admission.status()
        tenants = {}
        for t in self.config.tenants:
            shard, org = self.config.routes[t.name]
            row = dict(admission[t.name])
            row["shard"] = shard
            row["org"] = org
            per_org = shard_statuses.get(shard, {}).get("per_org", {})
            row.update(per_org.get(str(org), {}))
            tenants[t.name] = row
        totals = {
            "events_processed": sum(
                s["events_processed"] for s in shard_statuses.values()
            ),
            "jobs_submitted": sum(
                s["jobs_submitted"] for s in shard_statuses.values()
            ),
            "jobs_started": sum(
                s["jobs_started"] for s in shard_statuses.values()
            ),
            "waiting": sum(s["waiting"] for s in shard_statuses.values()),
            "running": sum(s["running"] for s in shard_statuses.values()),
            "ingest_flushes": sum(
                s["ingest"]["flushes"] for s in shard_statuses.values()
            ),
            "jobs_flushed": sum(
                s["ingest"]["jobs_flushed"] for s in shard_statuses.values()
            ),
            "rejected": self.n_rejected,
            "forward_errors": len(self.forward_errors),
            "lost_responses": self.pool.lost_responses,
            "worker_restores": self.pool.restores,
        }
        return {
            "ok": True,
            "config_hash": self.config.content_hash(),
            "policy": self.config.policy,
            "clock": self.clock,
            "workers": self.pool.n_live_workers,
            "shards": len(self.config.shard_ids()),
            "tenants": len(self.config.tenants),
            **totals,
            "per_shard": {str(s): v for s, v in shard_statuses.items()},
            "per_tenant": tenants,
        }

    def latency_percentiles(self) -> "dict[str, float]":
        """Ingest round-trip latency percentiles (milliseconds)."""
        lat = sorted(self.pool.latencies_s)
        if not lat:
            return {"p50_ms": 0.0, "p99_ms": 0.0}

        def pct(q: float) -> float:
            idx = min(len(lat) - 1, int(q * (len(lat) - 1) + 0.5))
            return lat[idx] * 1000.0

        return {"p50_ms": round(pct(0.50), 4), "p99_ms": round(pct(0.99), 4)}

    def stats_line(self) -> str:
        """One compact periodic-stats line (``repro gateway`` heartbeat)."""
        lat = self.latency_percentiles()
        elapsed = time.perf_counter() - self._started
        return (
            f"[gateway] clock={self.clock} workers={self.pool.n_live_workers}"
            f" shards={len(self.config.shard_ids())}"
            f" submitted={self.n_submitted} rejected={self.n_rejected}"
            f" p50={lat['p50_ms']:.2f}ms p99={lat['p99_ms']:.2f}ms"
            f" uptime={elapsed:.1f}s"
        )

    # -- checkpoint / recovery (delegated) -------------------------------
    def snapshot_all(self) -> "dict[int, dict]":
        return self.pool.snapshot_all()

    def shard_digests(self) -> "dict[int, str]":
        return self.pool.shard_digests()

    def kill_worker(self, worker: int) -> int:
        return self.pool.kill_worker(worker)

    def restore_worker(self, worker: int) -> "dict[int, int]":
        return self.pool.restore_worker(worker)


def gateway_serve_loop(
    gateway: Gateway,
    lines,
    out,
    *,
    stats_every_s: "float | None" = None,
    stats_out=None,
) -> None:
    """The ``repro gateway`` daemon loop: tenant-facing JSONL commands.

    The protocol mirrors ``repro serve`` but addresses **tenants**, not
    org ids -- routing, admission and sharding are the gateway's job::

        {"id": 1, "op": "submit", "tenant": "t3", "size": 2}
        {"id": 2, "op": "advance", "t": 5}
        {"id": 3, "op": "status"}
        {"id": 4, "op": "add_credits", "tenant": "t3", "amount": 50}
        {"id": 5, "op": "snapshot"}          # checkpoint the whole fleet
        {"id": 6, "op": "digests"}           # per-shard schedule digests
        {"id": 7, "op": "stop"}

    Every error -- admission refusal, unknown tenant, malformed JSON --
    is an in-band ``{"ok": false, ...}`` response.  ``stats_every_s``
    emits a periodic one-line fleet heartbeat to ``stats_out``
    (observability satellite).  On :class:`~repro.service.daemon.
    ShutdownRequested` (SIGTERM/SIGINT) the fleet is checkpointed to the
    pool's ``snapshot_dir`` before the loop returns, so a supervisor
    kill of the *gateway* is as recoverable as a worker crash.
    """
    last_stats = time.monotonic()

    def maybe_stats() -> None:
        nonlocal last_stats
        if stats_every_s is None or stats_out is None:
            return
        now = time.monotonic()
        if now - last_stats >= stats_every_s:
            stats_out.write(gateway.stats_line() + "\n")
            stats_out.flush()
            last_stats = now

    try:
        for line in lines:
            line = line.strip()
            if not line:
                continue
            keep = True
            req_id = None
            try:
                cmd = json.loads(line)
                if not isinstance(cmd, dict):
                    raise ValueError(
                        f"expected a JSON object, got {type(cmd).__name__}"
                    )
                req_id = cmd.get("id")
                op = cmd.get("op")
                if op == "submit":
                    resp = gateway.submit(
                        cmd["tenant"],
                        int(cmd.get("size", 1)),
                        release=(
                            int(cmd["release"]) if "release" in cmd else None
                        ),
                        wait=bool(cmd.get("wait", False)),
                    )
                elif op == "advance":
                    resp = gateway.advance(int(cmd["t"]))
                elif op == "drain":
                    resp = gateway.drain()
                elif op == "status":
                    resp = gateway.status()
                elif op == "add_credits":
                    resp = gateway.add_credits(
                        cmd["tenant"], float(cmd["amount"])
                    )
                elif op == "snapshot":
                    resp = {
                        "ok": True,
                        "snapshots": {
                            str(s): info
                            for s, info in gateway.snapshot_all().items()
                        },
                    }
                elif op == "digests":
                    resp = {
                        "ok": True,
                        "digests": {
                            str(s): d
                            for s, d in gateway.shard_digests().items()
                        },
                    }
                elif op == "stop":
                    resp = {"ok": True, "stopped": True}
                    keep = False
                else:
                    raise ValueError(f"unknown gateway op {op!r}")
            except (ValueError, KeyError, TypeError) as exc:
                resp = {"ok": False, "error": str(exc)}
            if req_id is not None:
                resp["id"] = req_id
            out.write(json.dumps(resp) + "\n")
            out.flush()
            maybe_stats()
            if not keep:
                return
    except BaseException as exc:
        # graceful SIGTERM/SIGINT (ShutdownRequested) -- and any crash --
        # leaves a restorable fleet checkpoint behind when possible
        if gateway.pool.snapshot_dir is not None:
            try:
                gateway.snapshot_all()
            except GatewayError:
                pass
        from ..service.daemon import ShutdownRequested

        if isinstance(exc, ShutdownRequested):
            return
        raise
