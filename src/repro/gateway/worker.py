"""Gateway worker: one process owning N ClusterService shards.

A worker is deliberately dumb: it is the existing ``repro serve`` JSONL
loop multiplexed over the shards it owns.  The first stdin line is a JSON
manifest (which shards to build or restore, policy knobs, the crash
snapshot directory); every following line is a shard-tagged command::

    {"id": 17, "shard": 3, "op": "submit", "org": 0, "size": 2}

dispatched through :func:`repro.service.daemon._handle` **verbatim** --
per-shard semantics, journaling and snapshot/restore are exactly the
single-daemon ones, which is what makes each shard's online == batch
bit-identity carry over unchanged.  Responses echo ``id`` and ``shard``
so the gateway can pipeline requests and match answers positionally.

Worker-level ops (no ``shard`` field)::

    {"id": 0, "op": "ping"}                            # liveness probe
    {"id": 1, "op": "worker_status"}                   # all shard statuses
    {"id": 2, "op": "snapshot_shards", "dir": "D"}     # checkpoint all
    {"id": 3, "op": "shutdown"}                        # snapshot + exit

On SIGTERM/SIGINT the worker snapshots every shard to the manifest's
``snapshot_dir`` (when set) before exiting, so a supervisor kill is as
recoverable as a clean shutdown.  A ``fault`` manifest entry arms the
deterministic chaos layer (:mod:`repro.gateway.faults`) for this
incarnation; absent, injection costs nothing.  Entry point: ``python -m
repro.gateway.worker`` (spawned by :class:`~repro.gateway.gateway.
ShardPool`; not a user-facing CLI).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import IO

from ..service.daemon import (
    ShutdownRequested,
    _handle,
    install_shutdown_handlers,
    timed_lines,
)
from ..service.service import ClusterService
from ..service.snapshot import load_snapshot, save_snapshot
from .faults import FaultInjector

__all__ = ["worker_main", "shard_snapshot_path", "build_shard"]


def shard_snapshot_path(snapshot_dir: "str | Path", shard: int) -> Path:
    """The canonical checkpoint file for one shard."""
    return Path(snapshot_dir) / f"shard-{shard}.json"


def build_shard(spec: dict, restore_from: "str | None") -> ClusterService:
    """One shard service from its manifest entry (or its checkpoint)."""
    batch_max = spec.get("batch_max")
    if restore_from is not None:
        return ClusterService.restore(
            load_snapshot(restore_from), batch_max=batch_max
        )
    return ClusterService(
        spec["machine_counts"],
        spec.get("policy", "fifo"),
        seed=int(spec.get("seed", 0)),
        horizon=spec.get("horizon"),
        batch_max=batch_max,
    )


def _snapshot_all(
    shards: "dict[int, ClusterService]",
    out_dir: "str | Path",
    injector: "FaultInjector | None" = None,
) -> "dict[str, dict]":
    """Checkpoint every shard; returns ``shard -> {path, digest, hash}``.

    Each shard is acked individually: an injected ``torn_checkpoint``
    fault leaves a partial ``*.tmp`` beside the intact previous
    checkpoint (never renamed into place) and reports ``{"error": ...}``
    for that shard alone, so the pool keeps the old checkpoint metadata
    and recovery replays a longer WAL tail.
    """
    result = {}
    for sid, service in sorted(shards.items()):
        payload = service.snapshot()
        path = shard_snapshot_path(out_dir, sid)
        if injector is not None and injector.take_torn_checkpoint():
            # what a crash mid-write leaves with atomic temp+rename:
            # a torn temp file, the real path untouched
            tmp = path.with_name(path.name + ".tmp")
            tmp.parent.mkdir(parents=True, exist_ok=True)
            text = json.dumps(payload, sort_keys=True, indent=1)
            tmp.write_text(text[: max(1, len(text) // 2)], encoding="utf-8")
            result[str(sid)] = {"error": "torn checkpoint write (injected)"}
            continue
        save_snapshot(payload, path)
        result[str(sid)] = {
            "path": str(path),
            "schedule_digest": payload["schedule_digest"],
            "content_hash": payload["content_hash"],
        }
    return result


def serve_shards(
    manifest: dict, lines, out: IO[str]
) -> "dict[int, ClusterService]":
    """The worker loop: build/restore shards, serve until shutdown/EOF."""
    restore = manifest.get("restore") or {}
    shards: "dict[int, ClusterService]" = {}
    restored = []
    for key, spec in sorted(
        manifest["shards"].items(), key=lambda kv: int(kv[0])
    ):
        sid = int(key)
        restore_from = restore.get(key)
        shards[sid] = build_shard(spec, restore_from)
        if restore_from is not None:
            restored.append(sid)
    snapshot_dir = manifest.get("snapshot_dir")
    linger_ms = manifest.get("linger_ms")
    linger_s = None if linger_ms is None else float(linger_ms) / 1000.0
    injector = FaultInjector.from_manifest(manifest.get("fault"))
    if injector is not None:
        injector.bind_output(out)

    out.write(
        json.dumps(
            {
                "ok": True,
                "worker": manifest.get("worker"),
                "shards": sorted(shards),
                "restored": restored,
            }
        )
        + "\n"
    )
    out.flush()

    def any_pending() -> bool:
        return any(s.pending_ingest for s in shards.values())

    buffered_since: "float | None" = None

    def check_linger() -> None:
        nonlocal buffered_since
        if linger_s is None:
            return
        if not any_pending():
            buffered_since = None
        elif buffered_since is None:
            buffered_since = time.monotonic()
        elif time.monotonic() - buffered_since >= linger_s:
            for s in shards.values():
                s.flush_ingest()
            buffered_since = None

    source = timed_lines(
        lines, lambda: linger_s if any_pending() else None
    )
    try:
        for line in source:
            if line is None:
                check_linger()
                continue
            line = line.strip()
            if not line:
                continue
            keep = True
            suppress = False
            req_id = None
            try:
                cmd = json.loads(line)
                if not isinstance(cmd, dict):
                    raise ValueError(
                        f"expected a JSON object, got {type(cmd).__name__}"
                    )
                req_id = cmd.get("id")
                op = cmd.get("op")
                if "shard" in cmd:
                    sid = int(cmd["shard"])
                    if sid not in shards:
                        raise ValueError(f"worker does not own shard {sid}")
                    # only shard commands count toward injected faults:
                    # pings/worker ops stay reliable so liveness detection
                    # is never itself the thing injected against
                    if injector is not None:
                        injector.before_apply()
                    # per-shard semantics are the single daemon's, verbatim;
                    # a shard-level "stop" is not a worker exit
                    response, _ = _handle(shards[sid], cmd)
                    response["shard"] = sid
                    if injector is not None:
                        suppress = injector.suppress_response()
                elif op == "ping":
                    response = {"ok": True, "pong": True}
                elif op == "worker_status":
                    response = {
                        "ok": True,
                        "shards": {
                            str(sid): s.status()
                            for sid, s in sorted(shards.items())
                        },
                    }
                elif op == "snapshot_shards":
                    target = cmd.get("dir", snapshot_dir)
                    if target is None:
                        raise ValueError(
                            "snapshot_shards needs a 'dir' (no snapshot_dir "
                            "in the manifest)"
                        )
                    response = {
                        "ok": True,
                        "snapshots": _snapshot_all(shards, target, injector),
                    }
                elif op == "shutdown":
                    response = {"ok": True, "stopped": True}
                    if snapshot_dir is not None:
                        response["snapshots"] = _snapshot_all(
                            shards, snapshot_dir, injector
                        )
                    keep = False
                else:
                    raise ValueError(
                        f"unknown worker op {op!r} (shard ops need a "
                        f"'shard' field)"
                    )
            except (ValueError, KeyError, TypeError) as exc:
                response = {"ok": False, "error": str(exc)}
            if req_id is not None:
                response["id"] = req_id
            check_linger()
            if not suppress:
                out.write(json.dumps(response) + "\n")
                out.flush()
                if injector is not None:
                    injector.after_reply()
            if not keep:
                break
    except ShutdownRequested:
        # supervisor kill: leave restorable checkpoints behind
        if snapshot_dir is not None:
            _snapshot_all(shards, snapshot_dir)
    return shards


def _read_line_unbuffered(stream) -> str:
    """One line via raw single-byte reads: never consumes bytes past the
    newline, so the following :func:`timed_lines` reader (which reads the
    raw fd itself) sees every subsequent command."""
    try:
        fd = stream.fileno()
    except (AttributeError, ValueError, OSError):
        return stream.readline()
    buf = bytearray()
    while True:
        b = os.read(fd, 1)
        if not b or b == b"\n":
            return buf.decode("utf-8", errors="replace")
        buf.extend(b)


def worker_main(argv: "list[str] | None" = None) -> int:
    """``python -m repro.gateway.worker``: manifest on stdin line 1."""
    install_shutdown_handlers()
    manifest_line = _read_line_unbuffered(sys.stdin)
    if not manifest_line.strip():
        print("worker: no manifest on stdin", file=sys.stderr)
        return 2
    try:
        manifest = json.loads(manifest_line)
    except ValueError as exc:
        print(f"worker: bad manifest: {exc}", file=sys.stderr)
        return 2
    try:
        serve_shards(manifest, sys.stdin, sys.stdout)
    except ShutdownRequested:
        pass  # serve_shards already checkpointed
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    sys.exit(worker_main())
