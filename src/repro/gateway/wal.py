"""Durable per-shard write-ahead log with torn-tail tolerance.

The :class:`~repro.gateway.gateway.ShardPool` keeps an in-memory WAL (the
fast path worker respawns replay from); when a ``snapshot_dir`` is set it
*also* appends every mutating command to an on-disk, append-only JSONL
file per shard -- ``wal-<shard>.jsonl`` -- **before** forwarding it to the
worker (write-ahead ordering).  That file is what makes the *gateway
process itself* recoverable: :meth:`~repro.gateway.gateway.ShardPool.
resume_from_disk` rebuilds the whole fleet from checkpoints plus WAL
replay after the front door dies, exactly as a worker respawn does.

Record grammar (one canonical-JSON object per line):

* command records ``{"seq": n, "cmd": {...}}`` -- ``seq`` is a dense
  per-shard counter starting at 0.
* checkpoint markers ``{"mark": <content_hash>, "seq": n}`` -- appended
  (and fsynced) only *after* a checkpoint of this shard was durably
  renamed into place and acknowledged; ``seq`` is the next command seq,
  i.e. everything below it is inside that checkpoint.

Torn-tail tolerance: a crash mid-append (or an injected
``tear_wal`` fault) leaves a partial final line.  :func:`load_wal` drops
unparseable lines but then *requires the parsed command seqs to be dense
from 0* -- so a torn or garbage line is recovered silently (the record it
interrupted was never acknowledged, by write-ahead ordering), while a
genuinely missing middle record (real corruption) is a hard error, never
a silent loss.  Replay picks the **latest marker whose hash matches the
on-disk checkpoint**; when none matches (e.g. the gateway died between
the checkpoint rename and the marker append) the log replays in full
from genesis -- longer, but bit-identical, because the WAL is append-only
and complete.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["ShardWal", "WalImage", "load_wal", "wal_path"]


def wal_path(snapshot_dir: "str | Path", shard: int) -> Path:
    """The canonical durable WAL file for one shard."""
    return Path(snapshot_dir) / f"wal-{shard}.jsonl"


@dataclass
class WalImage:
    """The decoded contents of one shard's durable WAL."""

    commands: "list[dict]"
    markers: "list[tuple[str, int]]"  # (checkpoint content_hash, seq floor)
    torn: bool = False
    dropped_lines: int = 0

    def replay_floor(self, checkpoint_hash: "str | None") -> int:
        """Commands at or above this seq must be replayed on top of the
        checkpoint whose content hash is ``checkpoint_hash`` (0 -- full
        replay from genesis -- when no marker matches)."""
        if checkpoint_hash is not None:
            for mark_hash, seq in reversed(self.markers):
                if mark_hash == checkpoint_hash:
                    return seq
        return 0


def load_wal(path: "str | Path") -> WalImage:
    """Decode a durable WAL, tolerating a torn tail (see module doc)."""
    path = Path(path)
    commands: "list[tuple[int, dict]]" = []
    markers: "list[tuple[str, int]]" = []
    dropped = 0
    torn = False
    try:
        raw = path.read_bytes()
    except OSError:
        return WalImage(commands=[], markers=[])
    lines = raw.split(b"\n")
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            row = json.loads(line.decode("utf-8"))
            if not isinstance(row, dict):
                raise ValueError("not an object")
        except (ValueError, UnicodeDecodeError):
            dropped += 1
            # a partial record at the very end of the file is the
            # signature of a mid-append crash
            if i == len(lines) - 1:
                torn = True
            continue
        if "mark" in row:
            markers.append((str(row["mark"]), int(row["seq"])))
        elif "cmd" in row:
            commands.append((int(row["seq"]), dict(row["cmd"])))
        else:
            dropped += 1
    commands.sort(key=lambda r: r[0])
    for expect, (seq, _) in enumerate(commands):
        if seq != expect:
            raise ValueError(
                f"{path}: WAL seq gap (expected {expect}, found {seq}) -- "
                f"a complete record is missing, refusing to replay a "
                f"silently truncated history"
            )
    return WalImage(
        commands=[cmd for _, cmd in commands],
        markers=markers,
        torn=torn,
        dropped_lines=dropped,
    )


@dataclass
class ShardWal:
    """The append side of one shard's durable WAL."""

    path: Path
    next_seq: int = 0
    fsyncs: int = 0
    _repair_newline: bool = field(default=False, repr=False)

    @classmethod
    def create(
        cls,
        snapshot_dir: "str | Path",
        shard: int,
        *,
        truncate: bool = False,
    ) -> "ShardWal":
        path = wal_path(snapshot_dir, shard)
        path.parent.mkdir(parents=True, exist_ok=True)
        if truncate:
            # a fresh fleet starts a fresh history; stale records from a
            # previous run in the same directory must not replay into it
            path.unlink(missing_ok=True)
        return cls(path=path)

    @classmethod
    def attach(
        cls, snapshot_dir: "str | Path", shard: int, *, next_seq: int
    ) -> "ShardWal":
        """Reopen an existing WAL for appending (the resume path);
        ``next_seq`` comes from the decoded :class:`WalImage`.  A file
        left without a trailing newline (torn tail) is scheduled for
        newline repair before the next append."""
        path = wal_path(snapshot_dir, shard)
        path.parent.mkdir(parents=True, exist_ok=True)
        repair = False
        try:
            raw = path.read_bytes()
            repair = bool(raw) and not raw.endswith(b"\n")
        except OSError:
            pass
        return cls(path=path, next_seq=next_seq, _repair_newline=repair)

    def _append_line(self, text: str, fsync: bool) -> None:
        with open(self.path, "a", encoding="utf-8") as f:
            if self._repair_newline:
                # the previous append was torn (injected or crashed):
                # terminate the partial record so it parses as exactly one
                # droppable junk line instead of corrupting this one
                f.write("\n")
                self._repair_newline = False
            f.write(text + "\n")
            f.flush()
            if fsync:
                os.fsync(f.fileno())
                self.fsyncs += 1

    def append(self, cmd: dict) -> int:
        """Log one mutating command; returns its seq."""
        seq = self.next_seq
        self.next_seq += 1
        self._append_line(
            json.dumps({"seq": seq, "cmd": cmd}, separators=(",", ":")),
            fsync=False,
        )
        return seq

    def mark_checkpoint(self, content_hash: str) -> None:
        """Record (and fsync) that a durable checkpoint covers every
        command below :attr:`next_seq`.  The fsync here is the WAL's
        durability point: everything before the marker is on disk before
        the marker claims the checkpoint happened."""
        self._append_line(
            json.dumps(
                {"mark": content_hash, "seq": self.next_seq},
                separators=(",", ":"),
            ),
            fsync=True,
        )

    def tear_tail(self) -> None:
        """Injected fault: leave a partial, newline-less record at the
        tail -- what a crash mid-append leaves behind."""
        from .faults import tear_file_tail

        tear_file_tail(self.path)
        self._repair_newline = True
