"""Deterministic shard routing: ``tenant -> shard -> worker``.

The gateway never keeps a routing table that could drift between
restarts or between the gateway and an out-of-band tool: placement is a
pure function of the tenant id and the :class:`~repro.gateway.config.
GatewayConfig` shape.  Tenants hash onto shards with a *stable* digest
(SHA-256, not Python's per-process randomized ``hash``), shards map onto
workers round-robin, and within a shard tenants become organization ids
in declaration order.  Any party holding the config can therefore compute
where a tenant lives -- which is what makes crash recovery (respawn the
worker that owned shards ``S_w``) and the per-shard batch-equivalence
check possible without asking the gateway anything.
"""

from __future__ import annotations

import hashlib

__all__ = ["stable_hash", "shard_of", "worker_of"]


def stable_hash(text: str) -> int:
    """A process-independent 64-bit hash of a tenant id."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def shard_of(tenant: str, n_shards: int) -> int:
    """The shard a tenant's cluster state lives on."""
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    return stable_hash(tenant) % n_shards


def worker_of(shard: int, n_workers: int) -> int:
    """The worker process owning a shard (round-robin over workers)."""
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    return shard % n_workers
