"""GatewayConfig: the content-hashed shape of a multi-tenant fleet.

A gateway deployment is fully described by one frozen value: the tenant
roster (with per-tenant machine endowments and admission limits), the
worker/shard topology, and the per-shard scheduling policy.  Like
:class:`~repro.experiments.spec.ScenarioSpec` and the service snapshot
format, the config is content-hashed (canonical JSON, SHA-256, 16 hex
chars) so two gateways are interchangeable iff their hashes match -- the
hash is stamped into benchmark records and recovery manifests.

Placement is derived, never stored: ``tenant -> shard`` by stable hash
(:mod:`repro.gateway.routing`), ``shard -> worker`` round-robin, and
``tenant -> org id within its shard`` by declaration order.  Every shard
is an independent :class:`~repro.service.ClusterService` whose genesis
organizations are exactly the tenants routed to it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from functools import cached_property

from .routing import shard_of, worker_of

__all__ = ["TenantSpec", "GatewayConfig"]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant organization: identity, endowment, admission limits.

    ``rate``/``burst`` parameterize the ingest token bucket (jobs per
    time unit of the gateway clock / bucket capacity); ``credits`` is the
    tenant's work budget in size units.  ``None`` disables that limit.
    """

    name: str
    machines: int = 1
    rate: "float | None" = None
    burst: "float | None" = None
    credits: "int | None" = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.machines < 0:
            raise ValueError(f"tenant {self.name}: machines must be >= 0")
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"tenant {self.name}: rate must be > 0")
        if self.burst is not None and self.burst < 1:
            raise ValueError(f"tenant {self.name}: burst must be >= 1")
        if self.credits is not None and self.credits < 0:
            raise ValueError(f"tenant {self.name}: credits must be >= 0")


@dataclass(frozen=True)
class GatewayConfig:
    """The full, hashable description of one gateway fleet.

    Parameters
    ----------
    tenants:
        The tenant roster.  Declaration order is semantic: it fixes each
        tenant's organization id within its shard.
    n_workers / n_shards:
        Topology: shards are spread round-robin over workers
        (process-per-core; shards with no routed tenants are not
        instantiated).
    policy / seed / horizon / batch_max / batch_linger_ms:
        Per-shard :class:`~repro.service.ClusterService` knobs.  The
        policy string accepts the registry's parameterized form (e.g.
        ``"rand:n_orderings=30"``); each shard runs seed
        ``seed + shard_id`` so sampled policies draw independent streams.
    """

    tenants: "tuple[TenantSpec, ...]"
    n_workers: int = 2
    n_shards: int = 4
    policy: str = "fifo"
    seed: int = 0
    horizon: "int | None" = None
    batch_max: "int | None" = None
    batch_linger_ms: "float | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "tenants", tuple(self.tenants))
        if not self.tenants:
            raise ValueError("need at least one tenant")
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate tenant names: {dupes}")

    @classmethod
    def uniform(
        cls,
        n_tenants: int,
        *,
        machines: int = 1,
        rate: "float | None" = None,
        burst: "float | None" = None,
        credits: "int | None" = None,
        **kwargs,
    ) -> "GatewayConfig":
        """A roster of ``n_tenants`` identical tenants named ``t0..``."""
        if n_tenants < 1:
            raise ValueError("n_tenants must be >= 1")
        return cls(
            tenants=tuple(
                TenantSpec(
                    f"t{i}",
                    machines=machines,
                    rate=rate,
                    burst=burst,
                    credits=credits,
                )
                for i in range(n_tenants)
            ),
            **kwargs,
        )

    # ------------------------------------------------------------------
    # derived placement (pure functions of the config)
    # ------------------------------------------------------------------
    @cached_property
    def shard_map(self) -> "dict[int, tuple[TenantSpec, ...]]":
        """Populated shards -> their tenants in declaration order."""
        shards: "dict[int, list[TenantSpec]]" = {}
        for t in self.tenants:
            shards.setdefault(shard_of(t.name, self.n_shards), []).append(t)
        return {s: tuple(ts) for s, ts in sorted(shards.items())}

    @cached_property
    def routes(self) -> "dict[str, tuple[int, int]]":
        """Tenant name -> ``(shard, org id within the shard)``."""
        out: "dict[str, tuple[int, int]]" = {}
        for shard, tenants in self.shard_map.items():
            for org, t in enumerate(tenants):
                out[t.name] = (shard, org)
        return out

    def shard_ids(self) -> "tuple[int, ...]":
        """The populated shards, ascending."""
        return tuple(self.shard_map)

    def worker_shards(self, worker: int) -> "tuple[int, ...]":
        """The shards owned by one worker process."""
        return tuple(
            s for s in self.shard_map if worker_of(s, self.n_workers) == worker
        )

    def tenant_route(self, tenant: str) -> "tuple[int, int]":
        try:
            return self.routes[tenant]
        except KeyError:
            raise KeyError(f"unknown tenant {tenant!r}") from None

    def tenant_spec(self, tenant: str) -> TenantSpec:
        for t in self.tenants:
            if t.name == tenant:
                return t
        raise KeyError(f"unknown tenant {tenant!r}")

    def shard_machine_counts(self, shard: int) -> "tuple[int, ...]":
        """The shard service's genesis endowment (declaration order)."""
        return tuple(t.machines for t in self.shard_map[shard])

    def shard_seed(self, shard: int) -> int:
        return self.seed + shard

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "tenants": [
                {
                    "name": t.name,
                    "machines": t.machines,
                    "rate": t.rate,
                    "burst": t.burst,
                    "credits": t.credits,
                }
                for t in self.tenants
            ],
            "n_workers": self.n_workers,
            "n_shards": self.n_shards,
            "policy": self.policy,
            "seed": self.seed,
            "horizon": self.horizon,
            "batch_max": self.batch_max,
            "batch_linger_ms": self.batch_linger_ms,
        }

    def content_hash(self) -> str:
        """Canonical-JSON SHA-256 prefix: equal iff interchangeable."""
        text = json.dumps(
            self.as_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(text.encode()).hexdigest()[:16]
