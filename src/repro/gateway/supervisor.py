"""Worker supervision: detection, backoff, respawn budget, quarantine.

The gateway runs single-threaded, so the "supervisor loop" is woven into
the command path rather than a thread: every pool-level wait carries a
response deadline (a stalled worker *marks itself suspect* instead of
blocking the fleet), pipe errors and protocol desyncs are detected at the
next I/O, idle workers are pinged, and :meth:`~repro.gateway.gateway.
ShardPool.tick` -- called from every gateway operation, the serve loop's
idle path, and the load generator's release loop -- is where scheduled
respawns actually fire.

Per-worker state machine (:class:`WorkerMeta`)::

              detect failure                 budget exhausted
     UP ─────────────────────────▶ DOWN ─────────────────────▶ QUARANTINED
      ▲                             │  backoff elapsed            │
      │    respawn + WAL replay OK  │                             │ cooldown
      └─────────────────────────────┘◀────────────────────────────┘

plus ``ADMIN_DOWN`` for explicit :meth:`kill_worker` (an operator action:
never auto-respawned, ``restore_worker`` is the manual exit).

Backoff is capped-exponential and measured against **both** clocks: the
virtual gateway clock (deterministic relative to a driven stream) and a
wall-clock fallback (so an idle daemon still heals).  A worker that fails
``max_restarts`` times without proving itself healthy in between
(``budget_reset_ops`` settled responses) is *quarantined* -- refused
instead of hot-looped -- until the cooldown expires, after which it gets
a fresh budget.  Every recovery's detect-to-healed wall time is logged;
:attr:`Supervisor.mttr_seconds` is the mean the benchmark gates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["SupervisorPolicy", "Supervisor", "WorkerMeta", "ShardUnavailable"]

#: Worker states.
UP = "up"
DOWN = "down"
QUARANTINED = "quarantined"
ADMIN_DOWN = "admin_down"


class ShardUnavailable(RuntimeError):
    """A shard's owning worker is down or quarantined; the operation was
    refused (typed, in-band at the gateway) rather than parked."""

    code = "shard_unavailable"

    def __init__(self, shard: int, state: str, message: str) -> None:
        super().__init__(message)
        self.shard = shard
        self.state = state


@dataclass(frozen=True)
class SupervisorPolicy:
    """Operational knobs for self-healing.

    Deliberately **not** part of the content-hashed
    :class:`~repro.gateway.config.GatewayConfig`: two fleets with
    different heartbeat timeouts still compute the same schedules, so
    supervision must not change the config identity.
    """

    #: Oldest-pending-response deadline; a worker that exceeds it is
    #: killed and respawned (the stalled-not-dead detection path).
    heartbeat_timeout_s: float = 60.0
    #: Ping an idle worker after this long without traffic (None: never).
    ping_interval_s: "float | None" = 5.0
    #: Consecutive failed recoveries tolerated before quarantine.
    max_restarts: int = 3
    #: Capped-exponential respawn backoff, wall-clock leg.
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    #: Same backoff in virtual (gateway-clock) units -- deterministic
    #: relative to a driven stream; respawn fires when EITHER elapses.
    backoff_base_v: float = 1.0
    backoff_cap_v: float = 64.0
    #: Quarantine cooldown (again: either clock).
    quarantine_cooldown_s: float = 1.0
    quarantine_cooldown_v: float = 200.0
    #: Settled responses after which a worker's failure budget resets.
    budget_reset_ops: int = 200
    #: Max parked (buffered) submits per shard while its worker is down;
    #: beyond this, submits are refused with ``shard_unavailable``.
    park_limit: int = 100_000

    def __post_init__(self) -> None:
        if self.heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be > 0")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.park_limit < 0:
            raise ValueError("park_limit must be >= 0")

    def backoff(self, attempt: int) -> "tuple[float, float]":
        """(wall seconds, virtual units) before respawn ``attempt``."""
        scale = 2 ** max(0, attempt - 1)
        return (
            min(self.backoff_cap_s, self.backoff_base_s * scale),
            min(self.backoff_cap_v, self.backoff_base_v * scale),
        )


@dataclass
class WorkerMeta:
    """One worker's supervision state."""

    worker: int
    state: str = UP
    incarnation: int = 0
    failures: int = 0  # consecutive, resets on sustained health
    restarts_total: int = 0
    quarantines_total: int = 0
    settled_since_up: int = 0
    last_activity: float = field(default_factory=time.monotonic)
    detected_at: "float | None" = None
    down_since_v: "int | None" = None
    next_attempt_wall: float = 0.0
    next_attempt_v: float = 0.0
    last_failure: "str | None" = None

    def as_status(self) -> dict:
        row = {
            "state": self.state,
            "incarnation": self.incarnation,
            "restarts": self.restarts_total,
            "quarantines": self.quarantines_total,
        }
        if self.last_failure is not None:
            row["last_failure"] = self.last_failure
        return row


class Supervisor:
    """Tracks worker health and decides respawn / quarantine / refusal.

    Owns no I/O: the :class:`~repro.gateway.gateway.ShardPool` reports
    failures and settlements in, and asks which workers are due for a
    respawn.  That split keeps the policy unit-testable without spawning
    a single process.
    """

    def __init__(self, policy: "SupervisorPolicy | None" = None) -> None:
        self.policy = policy or SupervisorPolicy()
        self.meta: "dict[int, WorkerMeta]" = {}
        #: (worker, incarnation, reason, mttr_seconds) per auto-recovery.
        self.recoveries: "list[dict]" = []

    # -- registration ----------------------------------------------------
    def register(self, worker: int) -> WorkerMeta:
        self.meta[worker] = WorkerMeta(worker=worker)
        return self.meta[worker]

    def state(self, worker: int) -> str:
        meta = self.meta.get(worker)
        return meta.state if meta is not None else UP

    # -- event sinks (called by the pool) --------------------------------
    def on_settled(self, worker: int, n: int = 1) -> None:
        meta = self.meta[worker]
        meta.last_activity = time.monotonic()
        meta.settled_since_up += n
        if (
            meta.failures
            and meta.settled_since_up >= self.policy.budget_reset_ops
        ):
            meta.failures = 0  # sustained health: budget refilled

    def on_failure(
        self, worker: int, reason: str, vclock: int, *, admin: bool = False
    ) -> str:
        """Record a worker failure; returns the new state."""
        meta = self.meta[worker]
        now = time.monotonic()
        meta.last_failure = reason
        meta.settled_since_up = 0
        if meta.detected_at is None:
            meta.detected_at = now
            meta.down_since_v = vclock
        if admin:
            meta.state = ADMIN_DOWN
            return meta.state
        meta.failures += 1
        if meta.failures > self.policy.max_restarts:
            meta.state = QUARANTINED
            meta.quarantines_total += 1
            meta.next_attempt_wall = now + self.policy.quarantine_cooldown_s
            meta.next_attempt_v = vclock + self.policy.quarantine_cooldown_v
        else:
            meta.state = DOWN
            wall, virt = self.policy.backoff(meta.failures)
            meta.next_attempt_wall = now + wall
            meta.next_attempt_v = vclock + virt
        return meta.state

    def on_healed(self, worker: int, *, manual: bool = False) -> None:
        meta = self.meta[worker]
        now = time.monotonic()
        if meta.detected_at is not None and not manual:
            self.recoveries.append(
                {
                    "worker": worker,
                    "incarnation": meta.incarnation,
                    "reason": meta.last_failure,
                    "mttr_seconds": round(now - meta.detected_at, 4),
                }
            )
        meta.state = UP
        meta.detected_at = None
        meta.down_since_v = None
        meta.settled_since_up = 0
        meta.last_activity = now

    def on_respawn_attempt(self, worker: int) -> int:
        """Bump the incarnation for a spawn attempt; returns it."""
        meta = self.meta[worker]
        meta.incarnation += 1
        meta.restarts_total += 1
        return meta.incarnation

    # -- scheduling ------------------------------------------------------
    def due_for_respawn(
        self, worker: int, vclock: int, *, force: bool = False
    ) -> bool:
        meta = self.meta[worker]
        if meta.state == ADMIN_DOWN:
            return False  # operator kill: only restore_worker revives it
        if meta.state not in (DOWN, QUARANTINED):
            return False
        if force:
            meta.failures = 0
            return True
        due = (
            time.monotonic() >= meta.next_attempt_wall
            or vclock >= meta.next_attempt_v
        )
        if due and meta.state == QUARANTINED:
            meta.failures = 0  # cooldown served: fresh budget
            meta.state = DOWN
        return due

    def needs_ping(self, worker: int) -> bool:
        interval = self.policy.ping_interval_s
        if interval is None:
            return False
        meta = self.meta[worker]
        return (
            meta.state == UP
            and time.monotonic() - meta.last_activity >= interval
        )

    # -- reporting -------------------------------------------------------
    @property
    def mttr_seconds(self) -> "float | None":
        if not self.recoveries:
            return None
        vals = [r["mttr_seconds"] for r in self.recoveries]
        return round(sum(vals) / len(vals), 4)

    @property
    def n_quarantines(self) -> int:
        return sum(m.quarantines_total for m in self.meta.values())

    def status(self) -> dict:
        return {
            "workers": {
                str(w): m.as_status() for w, m in sorted(self.meta.items())
            },
            "auto_recoveries": len(self.recoveries),
            "quarantines": self.n_quarantines,
            "mttr_seconds": self.mttr_seconds,
        }
