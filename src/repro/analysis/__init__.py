"""Theory validation: utilization bounds (Theorem 6.2), the NP-hardness
gadget (Theorem 5.1), the inapproximability gap (Theorem 5.3), and
executable Propositions 4.2 / 5.4 / 5.5."""

from .hardness import (
    ORG_A,
    ORG_B,
    count_orderings_below,
    decode_contribution,
    gadget_eval_time,
    gadget_large_size,
    gadget_workload,
    subsets_below,
)
from .inapprox import OrderReverseGap, order_reverse_gap
from .properties import (
    SupermodularityWitness,
    greedy_value_invariance,
    non_supermodular_witness,
    psi_flowtime_identity,
)
from .utilization import (
    competitive_ratio,
    figure7_ratios,
    figure7_workload,
    greedy_busy_units,
    preemptive_max_units,
    random_adversarial_workload,
    work_upper_bound,
)

__all__ = [
    "ORG_A",
    "ORG_B",
    "OrderReverseGap",
    "SupermodularityWitness",
    "competitive_ratio",
    "count_orderings_below",
    "decode_contribution",
    "figure7_ratios",
    "figure7_workload",
    "gadget_eval_time",
    "gadget_large_size",
    "gadget_workload",
    "greedy_busy_units",
    "greedy_value_invariance",
    "non_supermodular_witness",
    "order_reverse_gap",
    "preemptive_max_units",
    "psi_flowtime_identity",
    "random_adversarial_workload",
    "subsets_below",
    "work_upper_bound",
]
