"""Executable forms of Propositions 4.2, 5.4 and 5.5.

* **Prop. 4.2** -- for a fixed set of equal-size jobs all completed by
  ``t``, maximizing psi_sp is equivalent to minimizing flow time; the exact
  affine identity is
  ``psi_sp = |J| (p t + (p^2+p)/2) - p * sum(r) - p * flowtime``.
  (The paper's derivation prints the release-time term as ``sum(r)``; the
  factor ``p`` is required -- expand ``p(t - (2s+p-1)/2)`` against
  ``p((s+p) - r)`` -- and our property-based tests verify the corrected
  identity.  The proposition's conclusion is unaffected: ``p`` and
  ``sum(r)`` are constants either way.)
* **Prop. 5.4** -- with unit-size jobs, every greedy algorithm completes
  the same number of jobs by every time moment, so coalition values are
  policy-independent (the fact that makes RAND an FPRAS).
* **Prop. 5.5** -- the scheduling game is *not* supermodular; the paper's
  3-organization witness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.engine import ClusterEngine
from ..core.fleet import CoalitionFleet
from ..core.job import Job
from ..core.organization import Organization
from ..core.workload import Workload
from ..shapley.games import unit_coalition_value
from ..utility.strategyproof import psi_sp

__all__ = [
    "psi_flowtime_identity",
    "greedy_value_invariance",
    "SupermodularityWitness",
    "non_supermodular_witness",
]


def psi_flowtime_identity(
    pairs: Sequence[tuple[int, int]],
    releases: Sequence[int],
    t: int,
) -> tuple[int, int, bool]:
    """Check Prop. 4.2's identity on equal-size, all-completed jobs.

    Returns ``(psi, flow, holds)`` where ``holds`` verifies
    ``psi == n*(p*t + (p^2+p)/2) - p*sum(r) - p*flow``
    (the corrected form -- see the module docstring).
    """
    if not pairs:
        return 0, 0, True
    sizes = {p for _, p in pairs}
    if len(sizes) != 1:
        raise ValueError("Prop. 4.2 requires equal-size jobs")
    p = sizes.pop()
    if any(s + p > t for s, _ in pairs):
        raise ValueError("Prop. 4.2 requires every job completed by t")
    if len(releases) != len(pairs):
        raise ValueError("releases must align with pairs")
    psi = psi_sp(pairs, t)
    flow = sum((s + p) - r for (s, _), r in zip(pairs, releases))
    n = len(pairs)
    expected = n * (p * t + (p * p + p) // 2) - p * sum(releases) - p * flow
    # exact integer arithmetic: p^2 + p is always even
    return psi, flow, psi == expected


def greedy_value_invariance(
    workload: Workload,
    policies: Sequence[Callable[[ClusterEngine], int]],
    times: Sequence[int],
) -> bool:
    """Prop. 5.4 checker: for a **unit-size** workload, every greedy policy
    yields identical coalition values at every time in ``times`` (also
    cross-checked against the Lindley closed form)."""
    if any(j.size != 1 for j in workload.jobs):
        raise ValueError("Prop. 5.4 is about unit-size jobs")
    members = list(range(workload.n_orgs))
    grand_mask = (1 << workload.n_orgs) - 1
    horizon = max(times) if times else 0
    values: list[list[int]] = []
    for policy in policies:
        fleet = CoalitionFleet(
            workload, (grand_mask,), horizon=horizon + 1, track_events=False
        )
        row = []
        for t in sorted(times):
            fleet.drive(grand_mask, policy, until=t)
            row.append(fleet.values_at(t)[grand_mask])
        values.append(row)
    reference = [
        unit_coalition_value(workload, members, t) for t in sorted(times)
    ]
    return all(row == reference for row in values)


@dataclass(frozen=True)
class SupermodularityWitness:
    """The four coalition values of Prop. 5.5's counterexample."""

    v_ac: int
    v_bc: int
    v_abc: int
    v_c: int

    @property
    def is_supermodular_here(self) -> bool:
        """Supermodularity would require
        ``v(A ∪ B) + v(A ∩ B) >= v(A) + v(B)`` for A={a,c}, B={b,c}."""
        return self.v_abc + self.v_c >= self.v_ac + self.v_bc


def non_supermodular_witness() -> SupermodularityWitness:
    """Prop. 5.5's instance: orgs a, b, c with one machine each; a and b
    release two unit jobs at t=0; c has none.  At t=2:
    v({a,c}) = v({b,c}) = 4, v({a,b,c}) = 7, v({c}) = 0, and
    7 + 0 < 4 + 4 refutes supermodularity."""
    orgs = [Organization(0, 1), Organization(1, 1), Organization(2, 1)]
    jobs = [
        Job(0, 0, 0, 1),
        Job(0, 0, 1, 1),
        Job(0, 1, 0, 1),
        Job(0, 1, 1, 1),
    ]
    wl = Workload(orgs, jobs)
    t = 2
    return SupermodularityWitness(
        v_ac=unit_coalition_value(wl, [0, 2], t),
        v_bc=unit_coalition_value(wl, [1, 2], t),
        v_abc=unit_coalition_value(wl, [0, 1, 2], t),
        v_c=unit_coalition_value(wl, [2], t),
    )
