"""Resource utilization of greedy algorithms (paper Section 6).

Theorem 6.2: *every* greedy algorithm for sequential jobs on identical
machines is 3/4-competitive for resource utilization -- the fairness
requirement costs at most 25% of the resources, and Fig. 7's instance shows
the bound is tight.

To check the bound empirically we need the *optimal* completed work by a
time ``T``, maximized over all algorithms.  We compute a certified upper
bound from the preemptive relaxation: jobs may be preempted and migrated
(but a sequential job still occupies at most one machine per slot).  The
relaxation is a transportation problem -- job ``j`` supplies
``min(p_j, T - r_j)`` units, each time slot sinks at most ``m`` units, a job
feeds a slot only if released -- solved exactly as a max-flow on
release-interval-compressed slots.  Every non-preemptive schedule is
feasible in the relaxation, so ``busy / flow_bound >= 3/4`` certifies the
theorem on an instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import networkx as nx
import numpy as np

from ..core.engine import ClusterEngine
from ..core.job import Job
from ..core.organization import Organization
from ..core.workload import Workload

__all__ = [
    "preemptive_max_units",
    "work_upper_bound",
    "greedy_busy_units",
    "competitive_ratio",
    "figure7_workload",
    "figure7_ratios",
    "random_adversarial_workload",
]


def work_upper_bound(workload: Workload, t: int) -> int:
    """Cheap closed-form bound: ``min(m*T, sum_j min(p_j, T - r_j))``.

    Valid but loose; :func:`preemptive_max_units` is exact for the
    relaxation and should be used for ratio checks.
    """
    m = workload.n_machines
    per_job = sum(min(j.size, max(0, t - j.release)) for j in workload.jobs)
    return min(m * t, per_job)


def preemptive_max_units(workload: Workload, t: int) -> int:
    """Maximum job units any schedule can execute before ``t`` (preemptive
    relaxation, exact).

    Max-flow formulation with slots compressed into the intervals between
    consecutive release times: ``source -> job`` with capacity
    ``min(p_j, t - r_j)``; ``job -> interval`` with capacity = interval
    length (a sequential job uses at most one machine per slot);
    ``interval -> sink`` with capacity ``m * length``.
    """
    m = workload.n_machines
    if m == 0 or t <= 0:
        return 0
    jobs = [j for j in workload.jobs if j.release < t]
    if not jobs:
        return 0
    cuts = sorted({0, t} | {j.release for j in jobs if 0 < j.release < t})
    intervals = list(zip(cuts, cuts[1:]))
    g = nx.DiGraph()
    for idx, j in enumerate(jobs):
        cap = min(j.size, t - j.release)
        if cap <= 0:
            continue
        g.add_edge("s", ("j", idx), capacity=cap)
        for iv, (a, b) in enumerate(intervals):
            if j.release <= a:
                g.add_edge(("j", idx), ("i", iv), capacity=b - a)
    for iv, (a, b) in enumerate(intervals):
        g.add_edge(("i", iv), "t", capacity=m * (b - a))
    if "s" not in g or "t" not in g:
        return 0
    value, _ = nx.maximum_flow(g, "s", "t")
    return int(value)


def greedy_busy_units(
    workload: Workload,
    t: int,
    select: Callable[[ClusterEngine], int],
) -> int:
    """Units executed before ``t`` by the greedy schedule using ``select``."""
    engine = ClusterEngine(workload, horizon=t)
    engine.drive(select, until=t)
    if engine.t < t:
        engine.advance_to(t)
    return engine.busy_units(t)


def competitive_ratio(
    workload: Workload,
    t: int,
    select: Callable[[ClusterEngine], int],
) -> float:
    """``busy(greedy) / preemptive_opt`` at time ``t`` (Theorem 6.2 says
    this is at least 3/4 for every greedy policy)."""
    opt = preemptive_max_units(workload, t)
    if opt == 0:
        return 1.0
    return greedy_busy_units(workload, t, select) / opt


def figure7_workload() -> Workload:
    """The tight instance of Fig. 7.

    Two organizations with 2 machines each (4 total); O(1) has four size-3
    jobs, O(2) two size-6 jobs, all released at 0.  Starting O(2) first
    yields 100% utilization at T=6; starting O(1) first yields 75% -- the
    worst case of Theorem 6.2.
    """
    orgs = [Organization(0, 2), Organization(1, 2)]
    jobs = [Job(0, 0, i, 3) for i in range(4)] + [Job(0, 1, i, 6) for i in range(2)]
    return Workload(orgs, jobs)


def figure7_ratios() -> tuple[float, float]:
    """Utilizations at T=6 of the two greedy tie-breaks of Fig. 7:
    (O(2)-first, O(1)-first) = (1.0, 0.75)."""
    wl = figure7_workload()
    t = 6

    def o2_first(engine: ClusterEngine) -> int:
        waiting = engine.waiting_orgs()
        return 1 if 1 in waiting else waiting[0]

    def o1_first(engine: ClusterEngine) -> int:
        waiting = engine.waiting_orgs()
        return 0 if 0 in waiting else waiting[0]

    cap = wl.n_machines * t
    return (
        greedy_busy_units(wl, t, o2_first) / cap,
        greedy_busy_units(wl, t, o1_first) / cap,
    )


@dataclass(frozen=True)
class _AdversarialSpec:
    n_orgs: int = 2
    n_machines: int = 4
    n_jobs: int = 12
    max_size: int = 12
    max_release: int = 10


def random_adversarial_workload(
    rng: np.random.Generator,
    n_orgs: int = 2,
    n_machines: int = 4,
    n_jobs: int = 12,
    max_size: int = 12,
    max_release: int = 10,
) -> Workload:
    """Random small instances biased toward Fig.-7-like traps: a mix of
    short and long jobs with clustered releases, used by the Theorem 6.2
    stress tests and the utilization-bound benchmark."""
    machines = [n_machines // n_orgs] * n_orgs
    for i in range(n_machines - sum(machines)):
        machines[i % n_orgs] += 1
    orgs = [Organization(i, machines[i]) for i in range(n_orgs)]
    counters = [0] * n_orgs
    jobs = []
    releases = np.sort(rng.integers(0, max_release + 1, size=n_jobs))
    for r in releases:
        u = int(rng.integers(0, n_orgs))
        if rng.uniform() < 0.5:
            size = int(rng.integers(1, max(2, max_size // 3)))
        else:
            size = int(rng.integers(max(1, max_size // 2), max_size + 1))
        jobs.append(Job(int(r), u, counters[u], size))
        counters[u] += 1
    return Workload(orgs, jobs)
