"""The inapproximability gap construction (paper Theorem 5.3's core).

Theorem 5.3 shows no polynomial (1/2 - eps)-approximate fair scheduler
exists (unless P=NP).  The heart of the argument is a family of instances
where the *relative Manhattan distance* between two feasible schedules --
``sigma_ord`` (organizations served in order 1..m) and ``sigma_rev`` (the
exact reverse) -- tends to 1: m organizations, one machine, one identical
job each.  An approximation better than 1/2 could tell the two apart and
would decode a SUBSETSUM answer.

This module computes the gap exactly so tests and the properties benchmark
can verify ``gap -> 1`` as m grows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utility.strategyproof import psi_sp

__all__ = ["OrderReverseGap", "order_reverse_gap"]


@dataclass(frozen=True)
class OrderReverseGap:
    """The exact gap numbers for one (m, p) instance."""

    n_orgs: int
    job_size: int
    delta_psi: int  #: Manhattan distance between the two utility vectors
    total_value: int  #: v = sum of utilities (equal in both schedules)
    ratio: float  #: delta_psi / total_value

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"m={self.n_orgs} p={self.job_size}: "
            f"delta={self.delta_psi} v={self.total_value} "
            f"ratio={self.ratio:.4f}"
        )


def order_reverse_gap(n_orgs: int, job_size: int = 1) -> OrderReverseGap:
    """Exact relative distance between sigma_ord and sigma_rev.

    One machine; organization u's single size-``p`` job starts at ``u*p`` in
    sigma_ord and at ``(m-1-u)*p`` in sigma_rev; utilities evaluated when
    the last job completes (``t = m*p``).
    """
    if n_orgs < 1:
        raise ValueError("need at least one organization")
    if job_size < 1:
        raise ValueError("job size must be >= 1")
    m, p = n_orgs, job_size
    t = m * p
    ord_util = [psi_sp([(u * p, p)], t) for u in range(m)]
    rev_util = [psi_sp([((m - 1 - u) * p, p)], t) for u in range(m)]
    delta = sum(abs(a - b) for a, b in zip(ord_util, rev_util))
    total = sum(ord_util)
    assert total == sum(rev_util)  # same schedule shape, same total value
    return OrderReverseGap(
        n_orgs=m,
        job_size=p,
        delta_psi=delta,
        total_value=total,
        ratio=delta / total if total else 0.0,
    )
