"""The inapproximability gap construction (paper Theorem 5.3's core).

Theorem 5.3 shows no polynomial (1/2 - eps)-approximate fair scheduler
exists (unless P=NP).  The heart of the argument is a family of instances
where the *relative Manhattan distance* between two feasible schedules --
``sigma_ord`` (organizations served in order 1..m) and ``sigma_rev`` (the
exact reverse) -- tends to 1: m organizations, one machine, one identical
job each.  An approximation better than 1/2 could tell the two apart and
would decode a SUBSETSUM answer.

This module computes the gap exactly so tests and the properties benchmark
can verify ``gap -> 1`` as m grows -- and, since the approximation ladder
(DESIGN.md §12) landed, *runs* registered policies on the very same gadget
(:func:`gap_workload` / :func:`policy_order_gap`): ``repro gap --policy
ref_adaptive`` places a sampled scheduler's realized utility vector between
the two extremes at org counts far past the exact policies' ``max_orgs``
ceiling, while exact entries refuse with a typed capability error.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.job import Job
from ..core.organization import Organization
from ..core.workload import Workload
from ..utility.strategyproof import psi_sp

__all__ = [
    "OrderReverseGap",
    "gap_workload",
    "order_reverse_gap",
    "policy_order_gap",
]


@dataclass(frozen=True)
class OrderReverseGap:
    """The exact gap numbers for one (m, p) instance."""

    n_orgs: int
    job_size: int
    delta_psi: int  #: Manhattan distance between the two utility vectors
    total_value: int  #: v = sum of utilities (equal in both schedules)
    ratio: float  #: delta_psi / total_value

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"m={self.n_orgs} p={self.job_size}: "
            f"delta={self.delta_psi} v={self.total_value} "
            f"ratio={self.ratio:.4f}"
        )


def order_reverse_gap(n_orgs: int, job_size: int = 1) -> OrderReverseGap:
    """Exact relative distance between sigma_ord and sigma_rev.

    One machine; organization u's single size-``p`` job starts at ``u*p`` in
    sigma_ord and at ``(m-1-u)*p`` in sigma_rev; utilities evaluated when
    the last job completes (``t = m*p``).
    """
    if n_orgs < 1:
        raise ValueError("need at least one organization")
    if job_size < 1:
        raise ValueError("job size must be >= 1")
    m, p = n_orgs, job_size
    t = m * p
    ord_util = [psi_sp([(u * p, p)], t) for u in range(m)]
    rev_util = [psi_sp([((m - 1 - u) * p, p)], t) for u in range(m)]
    delta = sum(abs(a - b) for a, b in zip(ord_util, rev_util))
    total = sum(ord_util)
    assert total == sum(rev_util)  # same schedule shape, same total value
    return OrderReverseGap(
        n_orgs=m,
        job_size=p,
        delta_psi=delta,
        total_value=total,
        ratio=delta / total if total else 0.0,
    )


def gap_workload(n_orgs: int, job_size: int = 1) -> Workload:
    """The Theorem 5.3 gadget as a runnable workload: ``n_orgs``
    organizations, one identical size-``p`` job each released at 0, and a
    single machine (owned by org 0 -- some org must own it; the schedule
    *shape* is ownership-independent, only the fairness keys see it)."""
    if n_orgs < 1:
        raise ValueError("need at least one organization")
    if job_size < 1:
        raise ValueError("job size must be >= 1")
    orgs = tuple(
        Organization(u, 1 if u == 0 else 0) for u in range(n_orgs)
    )
    jobs = tuple(Job(0, u, 0, job_size) for u in range(n_orgs))
    return Workload(orgs, jobs)


def policy_order_gap(
    policy, n_orgs: int, job_size: int = 1, *, seed: int = 0
) -> dict:
    """Run a registered policy on the gadget and place its realized
    utility vector between the two Theorem 5.3 extremes.

    Returns ``{"n_orgs", "job_size", "gap", "ratio_ord", "ratio_rev"}``:
    ``ratio_ord`` / ``ratio_rev`` are the relative Manhattan distances of
    the policy's realized psi-vector (at ``t = m*p``) from ``sigma_ord``
    and ``sigma_rev``, each normalized by the schedule's total value, and
    ``gap`` is the analytic ord/rev distance the two schedules themselves
    realize.  Exact policies raise their registry
    :class:`~repro.policies.CapabilityError` past ``max_orgs`` -- the
    whole point of running the sampled ladder here instead.
    """
    from ..policies import CapabilityError, build_scheduler, get_policy
    from ..policies import PolicySpec

    m, p = n_orgs, job_size
    t = m * p
    spec = PolicySpec.parse(policy)
    cap = get_policy(spec.name).capabilities.max_orgs
    if cap is not None and m > cap:
        raise CapabilityError(
            f"policy {spec.name!r} caps at max_orgs={cap} (got m={m}); "
            f"use a sampled policy (rand, ref_stratified, ref_adaptive, "
            f"ref_hier) past the ceiling"
        )
    result = build_scheduler(spec, seed=seed, horizon=t).run(
        gap_workload(m, p)
    )
    util = result.utilities(t)
    ord_util = [psi_sp([(u * p, p)], t) for u in range(m)]
    rev_util = [psi_sp([((m - 1 - u) * p, p)], t) for u in range(m)]
    total = sum(ord_util)
    d_ord = sum(abs(a - b) for a, b in zip(util, ord_util))
    d_rev = sum(abs(a - b) for a, b in zip(util, rev_util))
    return {
        "n_orgs": m,
        "job_size": p,
        "gap": order_reverse_gap(m, p).ratio,
        "ratio_ord": d_ord / total if total else 0.0,
        "ratio_rev": d_rev / total if total else 0.0,
    }
