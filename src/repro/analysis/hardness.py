"""The NP-hardness gadget of Theorem 5.1 (SUBSETSUM reduction).

The paper proves that computing an organization's Shapley contribution is
NP-hard by embedding SUBSETSUM into a scheduling instance: organizations
``O_S = {O_1..O_k}`` mirror the set elements, plus two dummies -- ``a``
(one machine, no jobs) and ``b`` (one machine, a blocker job and one huge
job of size L).  The start time of the huge job in a coalition
``C + {a}`` shifts by exactly one slot depending on whether the members of
``C ∩ O_S`` sum below ``x``, so a's contribution encodes

.. math::

    n_{<x}(S) = \\sum_{S' \\subset S,\\ \\Sigma S' < x}
                (|S'|+1)!\\,(|S|-|S'|)!

via ``floor((k+2)! * phi_a / L) = n_{<x}(S)``; comparing the counts for
``x`` and ``x+1`` answers SUBSETSUM.

This module builds the gadget instance, provides the combinatorial oracle
``n_{<x}``, and decodes contributions computed by the exact REF machinery --
the integration test that our Shapley pipeline reproduces the reduction's
arithmetic on tiny instances.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations
from math import factorial
from typing import Sequence

from ..core.job import Job
from ..core.organization import Organization
from ..core.workload import Workload

__all__ = [
    "gadget_workload",
    "gadget_large_size",
    "count_orderings_below",
    "subsets_below",
    "decode_contribution",
    "gadget_eval_time",
    "ORG_A",
    "ORG_B",
]


def _validate_instance(values: Sequence[int], x: int) -> None:
    if not values:
        raise ValueError("SUBSETSUM set must be nonempty")
    if any(v < 1 for v in values):
        raise ValueError("SUBSETSUM values must be positive integers")
    if x < 0:
        raise ValueError("target x must be >= 0")


def gadget_large_size(values: Sequence[int]) -> int:
    """The reduction's L = 4 |S| x_tot^2 (k+2)! + 1 (with x_tot = sum + 2)."""
    k = len(values)
    x_tot = sum(values) + 2
    return 4 * k * x_tot * x_tot * factorial(k + 2) + 1


def gadget_workload(values: Sequence[int], x: int) -> Workload:
    """Theorem 5.1's scheduling instance for SUBSETSUM(``values``, ``x``).

    Organizations (ids):

    * ``0..k-1`` -- the set organizations O_S, one machine each, four jobs:
      two unit jobs at r=0, one size ``2*x_tot`` job at r=3, one size
      ``2*values[i]`` job at r=4;
    * ``k`` (:data:`ORG_A`) -- dummy ``a``: one machine, **no jobs**;
    * ``k+1`` (:data:`ORG_B`) -- dummy ``b``: one machine, a blocker job
      (r=2, size ``2x+2``) and the huge job (r=``2x+3``, size L).

    The reduction's schedule structure (hence the decode guarantee of
    :func:`decode_contribution`) holds for ``0 <= x <= sum(values) + 1``;
    beyond that the huge job's release falls after every coalition has gone
    idle and the one-slot shift the proof relies on disappears.  SUBSETSUM
    is trivially false there, so the proof never needs that regime.
    """
    _validate_instance(values, x)
    k = len(values)
    x_tot = sum(values) + 2
    big = gadget_large_size(values)
    orgs = [Organization(i, 1) for i in range(k + 2)]
    jobs: list[Job] = []
    for i, xi in enumerate(values):
        jobs.append(Job(0, i, 0, 1))
        jobs.append(Job(0, i, 1, 1))
        jobs.append(Job(3, i, 2, 2 * x_tot))
        jobs.append(Job(4, i, 3, 2 * xi))
    b = k + 1
    jobs.append(Job(2, b, 0, 2 * x + 2))
    jobs.append(Job(2 * x + 3, b, 1, big))
    return Workload(orgs, jobs)


#: Index helpers for the dummies in :func:`gadget_workload`'s layout.
def ORG_A(values: Sequence[int]) -> int:
    """Organization id of dummy ``a`` (the machine-only player)."""
    return len(values)


def ORG_B(values: Sequence[int]) -> int:
    """Organization id of dummy ``b`` (blocker + huge job)."""
    return len(values) + 1


def subsets_below(values: Sequence[int], x: int) -> list[tuple[int, ...]]:
    """All index subsets of ``values`` whose element sum is strictly below
    ``x`` (including the empty subset when ``x > 0``)."""
    out = []
    idx = range(len(values))
    for r in range(len(values) + 1):
        for combo in combinations(idx, r):
            if sum(values[i] for i in combo) < x:
                out.append(combo)
    return out


def count_orderings_below(values: Sequence[int], x: int) -> int:
    """:math:`n_{<x}(S) = \\sum_{S' : \\Sigma S' < x} (|S'|+1)!\\,(|S|-|S'|)!`.

    Counts the joining orders of ``S + {a, b}`` in which ``a`` arrives right
    after exactly the members of some below-``x`` subset plus ``b``.
    """
    _validate_instance(values, x)
    k = len(values)
    return sum(
        factorial(len(sub) + 1) * factorial(k - len(sub))
        for sub in subsets_below(values, x)
    )


def decode_contribution(
    phi_a: Fraction, values: Sequence[int]
) -> int:
    """Recover :math:`n_{<x}(S)` from dummy ``a``'s exact contribution:
    ``floor((k+2)! * phi_a / L)`` (Theorem 5.1's decoding step)."""
    k = len(values)
    big = gadget_large_size(values)
    scaled = Fraction(phi_a) * factorial(k + 2)
    return int(scaled / big)


def gadget_eval_time(values: Sequence[int], x: int) -> int:
    """A time by which every coalition's schedule has completed all jobs.

    Every organization owns a machine, so any coalition finishes by
    ``max_release + total_work``; evaluating contributions there makes them
    final (Theorem 5.1 computes the contribution 'in time t' after the big
    job is done everywhere).
    """
    wl = gadget_workload(values, x)
    total = sum(j.size for j in wl.jobs)
    max_release = max(j.release for j in wl.jobs)
    return max_release + total + 1
