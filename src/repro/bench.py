"""Benchmark recorders behind the ``repro bench`` CLI subcommand.

One registry-driven home for the three BENCH_*.json trajectories (fleet /
pipeline / service) that used to live in three separate
``benchmarks/record_*.py`` scripts::

    repro bench fleet [--quick] [--output BENCH_fleet.json]
    repro bench pipeline [--workers 4] [--repeats 12]
    repro bench service [--jobs 600]
    repro bench all

    repro bench fleet --quick --check-against BENCH_fleet.json

Machine/python metadata is stamped in one place (:func:`machine_meta`), and
the ``--check-against`` mode is the CI ``perf-gate``: it re-measures the
kernel-vs-fleet speedup *ratios* on the current machine and fails (exit 1)
when a ratio regresses below the committed BENCH_fleet.json value minus a
tolerance.  Ratios compare two code paths timed in the same process on the
same hardware, so slow CI runners shift both numerators and denominators
together and the gate does not flake on machine speed -- unlike the
wall-clock fields, which are only comparable against their recorded
environment.

The fleet bench drives three tiers:

* the historical REF k=8 / k=4 instances (fields kept bit-compatible with
  the PR 1 recorder so the trajectory stays comparable, including the
  frozen pre-fleet seed baselines);
* the kernel tiers -- REF k=8 and the previously impractical REF k=10,
  plus the RAND N=75 value oracle at k=5 and k=8 -- each timed on both the
  per-engine fleet and the :class:`~repro.core.kernel.FleetKernel`
  backend, with decision events/sec alongside wall-clock.

The legacy ``benchmarks/record_*.py`` entry points delegate here.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

__all__ = [
    "BENCHES",
    "machine_meta",
    "measure_approx",
    "measure_fleet",
    "measure_pipeline",
    "measure_service",
    "measure_gateway",
    "check_approx_ratios",
    "check_fleet_ratios",
    "check_pipeline_ratios",
    "check_service_ratios",
    "check_gateway_ratios",
    "main",
]

#: Pre-refactor wall-clock baselines (seconds, best of 5; PR 1 container).
#: Frozen: these were measured on the seed implementation and anchor the
#: cross-PR speedup trajectory.
SEED_BASELINES = {
    "ref_k8_seconds": 0.2286,
    "ref_k4_seconds": 0.0053,
}

#: Same-machine ratio fields enforced by the CI ``perf-gate`` job.
GATED_RATIOS = (
    "speedup_ref_k8_kernel_vs_fleet",
    "speedup_rand_k8_n75_oracle",
)


def machine_meta() -> dict:
    """The environment stamp shared by every BENCH_*.json record."""
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else os.cpu_count(),
    }


def best_of(fn, rounds: int = 5) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ----------------------------------------------------------------------
# workload builders (self-contained: the CLI must not import the tests)
# ----------------------------------------------------------------------
def _random_workload(
    rng: np.random.Generator,
    n_orgs: int,
    n_jobs: int,
    max_release: int,
    sizes: "tuple[int, ...]",
    machine_counts: "list[int]",
):
    """Mirror of ``tests/conftest.random_workload`` (same RNG call
    sequence, so historical instances stay bit-identical)."""
    from .core.job import Job
    from .core.organization import Organization
    from .core.workload import Workload

    per_org_releases: dict[int, list[int]] = {u: [] for u in range(n_orgs)}
    for _ in range(n_jobs):
        u = int(rng.integers(0, n_orgs))
        per_org_releases[u].append(int(rng.integers(0, max_release + 1)))
    triples = []
    for u, rels in per_org_releases.items():
        for r in sorted(rels):
            triples.append((r, u, int(rng.choice(sizes))))
    orgs = [Organization(i, m) for i, m in enumerate(machine_counts)]
    counters = [0] * n_orgs
    jobs = []
    for release, org, size in triples:
        jobs.append(Job(release, org, counters[org], size))
        counters[org] += 1
    return Workload(orgs, jobs)


def ref_workload(k: int, n_jobs: int, seed: int):
    """The REF k-scaling family (k=8/seed=8 is the historical
    BENCH_fleet.json instance from ``benchmarks/bench_engine.py``)."""
    rng = np.random.default_rng(seed)
    return _random_workload(
        rng, n_orgs=k, n_jobs=n_jobs, max_release=60,
        sizes=(1, 2, 5), machine_counts=[1] * k,
    )


def rand_workload(k: int, seed: int = 8):
    rng = np.random.default_rng(seed)
    return _random_workload(
        rng, n_orgs=k, n_jobs=8 * k, max_release=80,
        sizes=(1, 2, 5), machine_counts=[1] * k,
    )


# ----------------------------------------------------------------------
# fleet bench
# ----------------------------------------------------------------------
def _forced_backend(min_engines: int):
    """Context manager pinning the kernel dispatch threshold."""
    from contextlib import contextmanager

    from .core import kernel as kernel_mod

    @contextmanager
    def cm():
        old = kernel_mod.KERNEL_MIN_ENGINES
        kernel_mod.KERNEL_MIN_ENGINES = min_engines
        try:
            yield
        finally:
            kernel_mod.KERNEL_MIN_ENGINES = old

    return cm()


_ENGINES_ONLY = 1 << 30


def _time_ref(workload, rounds: int) -> "tuple[float, int]":
    """(best wall seconds, decision events) for one full REF run."""
    from .algorithms.base import drive_fleet, members_mask
    from .algorithms.ref import RefRun

    members, grand = members_mask(workload, None)
    events = 0

    def run():
        nonlocal events
        r = RefRun(workload, members, grand, None)
        n = 0

        def body(fleet, t):
            nonlocal n
            n += 1
            r._on_event(fleet, t)

        drive_fleet(r.fleet, body)
        events = n

    return best_of(run, rounds), events


def _time_rand_oracle(
    workload, n_orderings: int, rounds: int, backend: str
) -> "tuple[float, int]":
    """(best wall seconds, valued decision times) for the RAND value
    oracle in isolation: drive the de-duplicated sampled prefix fleet to
    each distinct release time and read all coalition values -- exactly
    the per-event work `RandRun` asks of its oracle.  ``backend`` pins the
    fleet implementation so both tiers measure what they claim even when
    the auto-dispatch threshold would choose otherwise."""
    from .algorithms.greedy import fifo_select
    from .core.fleet import CoalitionFleet
    from .shapley.sampling import SampledPrefixes

    k = workload.n_orgs
    times = sorted({j.release for j in workload.jobs})
    tail = max(times) + sum(j.size for j in workload.jobs) // max(
        1, workload.n_machines
    )
    times.append(tail)

    def run():
        rng = np.random.default_rng(0)
        member_arr = np.arange(k, dtype=np.int64)
        orderings = np.stack(
            [rng.permutation(member_arr) for _ in range(n_orderings)]
        )
        prefixes = SampledPrefixes(k, orderings)
        sampled = sorted(m for m in prefixes.masks if m)
        fleet = CoalitionFleet(
            workload, sampled, track_events=False, backend=backend
        )
        for t in times:
            # values_array is what RandRun consumes per decision time (the
            # dict form only materializes on the exact fallback)
            fleet.values_array(t, select=fifo_select)

    return best_of(run, rounds), len(times)


def _time_rand_full(workload, n_orderings: int, rounds: int) -> float:
    from .algorithms.rand import RandScheduler

    return best_of(
        lambda: RandScheduler(n_orderings=n_orderings, seed=0).run(workload),
        rounds,
    )


def measure_fleet(quick: bool = False) -> dict:
    """The BENCH_fleet.json payload (``--quick``: fewer rounds, no k=10)."""
    from .algorithms import ref as ref_mod
    from .algorithms.greedy import fifo_select
    from .algorithms.ref import RefScheduler
    from .core.engine import ClusterEngine

    rounds = 2 if quick else 5
    wl8 = ref_workload(8, 48, seed=8)
    rng = np.random.default_rng(3)
    wl4 = _random_workload(
        rng, n_orgs=4, n_jobs=40, max_release=60,
        sizes=(1, 2, 5), machine_counts=[1, 1, 1, 1],
    )
    rng = np.random.default_rng(42)
    wl_engine = _random_workload(
        rng, n_orgs=4, n_jobs=60, max_release=200,
        sizes=(1, 3, 9, 27), machine_counts=[2, 1, 1, 1],
    )
    wl_rand5 = rand_workload(5)
    wl_rand8 = rand_workload(8)

    fleet_rand5_oracle, rand5_times = _time_rand_oracle(
        wl_rand5, 75, rounds, "engines"
    )
    fleet_rand8_oracle, rand8_times = _time_rand_oracle(
        wl_rand8, 75, rounds, "engines"
    )
    with _forced_backend(_ENGINES_ONLY):
        fleet_ref_k8, ref_k8_events = _time_ref(wl8, rounds)
        fleet_ref_k4 = best_of(lambda: RefScheduler().run(wl4), rounds)
        fleet_rand8_full = _time_rand_full(wl_rand8, 75, rounds)

        def drive_engine():
            eng = ClusterEngine(wl_engine)
            eng.drive(fifo_select)

        engine_drive = best_of(drive_engine, rounds)

        # the k=4 dispatch guard: with vectorization forced on, the same
        # instance must not beat the exact small-k path REF chooses (the
        # asserting version lives in benchmarks/bench_smallk.py)
        default_threshold = ref_mod.VECTORIZE_MIN_K
        try:
            ref_mod.VECTORIZE_MIN_K = 0
            ref_k4_vectorized = best_of(lambda: RefScheduler().run(wl4), rounds)
        finally:
            ref_mod.VECTORIZE_MIN_K = default_threshold

    kernel_ref_k8, _ = _time_ref(wl8, rounds)
    kernel_rand5_oracle, _ = _time_rand_oracle(wl_rand5, 75, rounds, "kernel")
    kernel_rand8_oracle, _ = _time_rand_oracle(wl_rand8, 75, rounds, "kernel")
    kernel_rand8_full = _time_rand_full(wl_rand8, 75, rounds)

    from .core import kernel as kernel_mod

    payload = {
        "seed": SEED_BASELINES,
        "fleet": {
            "ref_k8_seconds": round(fleet_ref_k8, 4),
            "ref_k4_seconds": round(fleet_ref_k4, 4),
            "ref_k4_forced_vectorized_seconds": round(ref_k4_vectorized, 4),
            "engine_drive_seconds": round(engine_drive, 4),
            "rand_k5_n75_oracle_seconds": round(fleet_rand5_oracle, 4),
            "rand_k8_n75_oracle_seconds": round(fleet_rand8_oracle, 4),
            "rand_k8_n75_seconds": round(fleet_rand8_full, 4),
        },
        "kernel": {
            "ref_k8_seconds": round(kernel_ref_k8, 4),
            "ref_k8_events_per_sec": round(ref_k8_events / kernel_ref_k8, 1),
            "rand_k5_n75_oracle_seconds": round(kernel_rand5_oracle, 4),
            "rand_k8_n75_oracle_seconds": round(kernel_rand8_oracle, 4),
            "rand_k8_n75_oracle_times_per_sec": round(
                rand8_times / kernel_rand8_oracle, 1
            ),
            "rand_k8_n75_seconds": round(kernel_rand8_full, 4),
        },
        "speedup_ref_k8": round(
            SEED_BASELINES["ref_k8_seconds"] / kernel_ref_k8, 2
        ),
        "speedup_ref_k4": round(
            SEED_BASELINES["ref_k4_seconds"] / fleet_ref_k4, 2
        ),
        "speedup_ref_k8_kernel_vs_fleet": round(
            fleet_ref_k8 / kernel_ref_k8, 2
        ),
        "speedup_rand_k8_n75_oracle": round(
            fleet_rand8_oracle / kernel_rand8_oracle, 2
        ),
        "speedup_rand_k8_n75": round(fleet_rand8_full / kernel_rand8_full, 2),
        "smallk_dispatch_ok": bool(fleet_ref_k4 <= ref_k4_vectorized * 1.15),
        "vectorize_min_k": ref_mod.VECTORIZE_MIN_K,
        "kernel_min_engines": kernel_mod.KERNEL_MIN_ENGINES,
    }
    if not quick:
        wl10 = ref_workload(10, 40, seed=10)
        with _forced_backend(_ENGINES_ONLY):
            fleet_ref_k10, k10_events = _time_ref(wl10, 1)
        kernel_ref_k10, _ = _time_ref(wl10, max(1, rounds - 2))
        payload["fleet"]["ref_k10_seconds"] = round(fleet_ref_k10, 4)
        payload["kernel"]["ref_k10_seconds"] = round(kernel_ref_k10, 4)
        payload["kernel"]["ref_k10_events_per_sec"] = round(
            k10_events / kernel_ref_k10, 1
        )
        payload["speedup_ref_k10_kernel_vs_fleet"] = round(
            fleet_ref_k10 / kernel_ref_k10, 2
        )
    payload.update(machine_meta())
    return payload


def check_fleet_ratios(
    measured: dict, committed_path: "str | Path", tolerance: float = 0.35
) -> "list[str]":
    """The perf-gate: compare the same-machine speedup *ratios* of a fresh
    measurement against the committed BENCH_fleet.json; returns the list of
    regression messages (empty = gate passes)."""
    committed = json.loads(Path(committed_path).read_text())
    problems = []
    for field in GATED_RATIOS:
        want = committed.get(field)
        if want is None:
            problems.append(f"{field}: missing from {committed_path}")
            continue
        floor = want * (1.0 - tolerance)
        got = measured.get(field)
        if got is None or got < floor:
            problems.append(
                f"{field}: measured {got} < committed {want} - {tolerance:.0%}"
                f" tolerance (floor {floor:.2f})"
            )
    if not measured.get("smallk_dispatch_ok", False):
        problems.append("smallk_dispatch_ok: small-k exact dispatch regressed")
    return problems


# ----------------------------------------------------------------------
# pipeline bench (moved from benchmarks/record_pipeline.py)
# ----------------------------------------------------------------------
#: Same-machine pipeline ratio fields enforced by the CI ``perf-gate``
#: (floors, like the fleet gate): the cross-instance batched kernel must
#: keep beating the per-instance serial path.  ``speedup_parallel`` is
#: deliberately *not* gated — it depends on the runner's core count, which
#: is environment, not code.
GATED_PIPELINE_RATIOS = ("speedup_batched",)


def measure_pipeline(
    workers: int = 4, repeats: int = 12, quick: bool = False
) -> dict:
    """Per-instance serial vs cross-instance batched vs sharded-parallel
    vs warm-cache resume wall times for a Table-1-class experiment (see
    BENCH_pipeline.json).

    The recorder *refuses* to emit a record for a non-bit-identical run:
    all four instance streams must be exactly equal and the warm resume
    must recompute nothing, or this raises.  On a single-CPU machine the
    parallel tier is annotated as meaningless (``single_cpu`` +
    ``parallel_note``) and loudly flagged on stderr —
    ``benchmarks/record_pipeline.py`` refuses outright without an
    explicit override.

    ``n_orgs=6`` puts the serial tier's per-instance REF reference on the
    §8 ``FleetKernel`` path (63 masks >= ``KERNEL_MIN_ENGINES``), so
    ``speedup_batched`` measures pure cross-instance amortization against
    the *strongest* per-instance baseline, not against the engine loop.
    """
    import sys

    from .experiments.pipeline import run_pipeline, shard_instances
    from .experiments.spec import ScenarioSpec

    if quick:
        repeats = min(repeats, 6)
    spec = ScenarioSpec(
        family="synthetic",
        traces=("LPC-EGEE",),
        n_orgs=6,
        duration=8_000,
        n_repeats=repeats,
        seed=0,
    )
    # best-of-2 on the two tiers that form the gated ratio: a single
    # timing pass is fragile on busy machines (the parallel tier is
    # reported raw — it is annotated, not gated)
    serial_s = math.inf
    for _ in range(2):
        t0 = time.perf_counter()
        serial = run_pipeline(
            spec, workers=1, batch=False, keep_instances=True
        )
        serial_s = min(serial_s, time.perf_counter() - t0)

    batched_s = math.inf
    for _ in range(2):
        t0 = time.perf_counter()
        batched = run_pipeline(
            spec, workers=1, batch=True, keep_instances=True
        )
        batched_s = min(batched_s, time.perf_counter() - t0)

    t0 = time.perf_counter()
    parallel = run_pipeline(
        spec, workers=workers, batch=True, keep_instances=True
    )
    parallel_s = time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as cache_dir:
        run_pipeline(spec, workers=workers, cache_dir=cache_dir)  # warm
        t0 = time.perf_counter()
        resumed = run_pipeline(
            spec, workers=1, cache_dir=cache_dir, keep_instances=True
        )
        resume_s = time.perf_counter() - t0

    if serial.instances != batched.instances:
        raise AssertionError("batched run is not bit-identical to serial")
    if serial.instances != parallel.instances:
        raise AssertionError("parallel run is not bit-identical to serial")
    if serial.instances != resumed.instances:
        raise AssertionError("cache replay is not bit-identical to serial")
    if resumed.computed != 0:
        raise AssertionError("warm-cache replay recomputed instances")

    shards = shard_instances(list(spec.instances()), workers)
    payload = {
        "spec": {
            "family": spec.family,
            "traces": list(spec.traces),
            "duration": spec.duration,
            "n_repeats": spec.n_repeats,
            "portfolio": spec.portfolio,
            "hash": spec.content_hash(),
        },
        "instances": len(spec.instances()),
        "workers": workers,
        "shards": len(shards),
        "shard_size": max(len(s) for s in shards) if shards else 0,
        "serial_seconds": round(serial_s, 2),
        "batched_seconds": round(batched_s, 2),
        "parallel_seconds": round(parallel_s, 2),
        "resume_seconds": round(resume_s, 4),
        "speedup_batched": round(serial_s / batched_s, 2),
        "speedup_parallel": round(serial_s / parallel_s, 2),
        "speedup_resume": round(serial_s / resume_s, 1),
        "bit_identical": True,
        "stage_seconds": {
            stage: round(seconds, 4)
            for stage, seconds in (batched.timings or {}).items()
        },
        **machine_meta(),
    }
    if payload["cpus"] is not None and payload["cpus"] < 2:
        payload["single_cpu"] = True
        payload["parallel_note"] = (
            "recorded on a single-CPU machine: speedup_parallel measures "
            "process-pool overhead, not parallelism; only speedup_batched "
            "and speedup_resume are meaningful here"
        )
        print(
            "bench pipeline WARNING: single-CPU machine — "
            "speedup_parallel is not meaningful on this record",
            file=sys.stderr,
        )
    return payload


def check_pipeline_ratios(
    measured: dict, committed_path: "str | Path", tolerance: float = 0.35
) -> "list[str]":
    """The pipeline perf-gate: the cross-instance batched-vs-serial
    speedup *ratio* must not regress below the committed
    BENCH_pipeline.json value minus the tolerance (same-machine ratio, so
    slow runners don't flake), and the fresh measurement must carry the
    bit-identity stamp; returns regression messages (empty = passes)."""
    committed = json.loads(Path(committed_path).read_text())
    problems = []
    for field in GATED_PIPELINE_RATIOS:
        want = committed.get(field)
        if want is None:
            problems.append(f"{field}: missing from {committed_path}")
            continue
        floor = want * (1.0 - tolerance)
        got = measured.get(field)
        if got is None or got < floor:
            problems.append(
                f"{field}: measured {got} < committed {want} - {tolerance:.0%}"
                f" tolerance (floor {floor:.2f})"
            )
    if not measured.get("bit_identical", False):
        problems.append("bit_identical: serial/batched/parallel diverged")
    return problems


# ----------------------------------------------------------------------
# service bench (moved from benchmarks/record_service.py)
# ----------------------------------------------------------------------
#: (record key, policy name, org machine counts, job count scale,
#:  policy params, run under --quick, also time the engines-forced backend)
SERVICE_RUNS = (
    ("directcontr_k5", "directcontr", (3, 2, 2, 1, 1), 1.0, None, True, False),
    ("fairshare_k5", "fairshare", (3, 2, 2, 1, 1), 1.0, None, True, False),
    ("fifo_k5", "fifo", (3, 2, 2, 1, 1), 1.0, None, True, False),
    ("rand_k5", "rand", (3, 2, 2, 1, 1), 0.5, None, True, False),
    ("ref_k4", "ref", (2, 1, 1, 1), 0.25, None, True, False),
    ("fifo_k8", "fifo", (3, 2, 2, 1, 1, 1, 1, 1), 0.5, None, True, False),
    ("ref_k8", "ref", (3, 2, 2, 1, 1, 1, 1, 1), 0.5, None, True, True),
    (
        "rand_k8_n75",
        "rand",
        (3, 2, 2, 1, 1, 1, 1, 1),
        0.5,
        {"n_orderings": 75},
        True,
        True,
    ),
    # 1023 coalition rows: kernel-only (the per-engine body at k=10 is the
    # impractical configuration the kernel exists to replace), full mode only
    ("ref_k10", "ref", (2, 2, 2, 1, 1, 1, 1, 1, 1, 1), 0.25, None, False, False),
)

#: Same-machine service *ratio* fields enforced by the CI ``perf-gate``:
#: the fairness tax (GreedyFIFO events/sec over the fair policy's) and the
#: restore/snapshot cost ratio must not grow past the committed value plus
#: the tolerance.  Ratios compare two runs timed in the same process, so a
#: slow CI runner shifts numerator and denominator together.
GATED_SERVICE_RATIOS = (
    "ratio_fifo_over_ref_k8",
    "ratio_fifo_over_rand_k8_n75",
    "restore_over_snapshot",
)


def service_workload(machine_counts: "tuple[int, ...]", n_jobs: int, seed: int = 0):
    """A bursty multi-org stream sized for sustained-throughput timing."""
    from .core.job import Job
    from .core.organization import Organization
    from .core.workload import Workload

    rng = np.random.default_rng(seed)
    k = len(machine_counts)
    orgs = [Organization(i, m) for i, m in enumerate(machine_counts)]
    releases: dict[int, list[int]] = {u: [] for u in range(k)}
    t = 0
    for _ in range(n_jobs):
        t += int(rng.integers(0, 3))
        releases[int(rng.integers(0, k))].append(t)
    jobs = []
    for u, rels in releases.items():
        for i, r in enumerate(sorted(rels)):
            jobs.append(Job(r, u, i, int(rng.integers(1, 6)), id=-1))
    return Workload(orgs, jobs)


def measure_service(n_jobs: int = 600, quick: bool = False) -> dict:
    """Online-service event throughput plus snapshot/restore cost (see
    BENCH_service.json); refuses to record non-equivalent runs.

    Every tier is timed against the replay loop only (``wall_time_s``
    excludes the batch-counterpart verification), best-of-``rounds`` on the
    same workload.  The first run always verifies ``replay == batch``.
    Tiers flagged for it also record the engines-forced backend on the same
    workload (full mode only -- the per-engine body is the slow path the
    kernel replaces, and one timing run of it is enough)."""
    from .service import ClusterService, ReplayDriver

    if quick:
        n_jobs = min(n_jobs, 300)
    rounds = 2 if quick else 3
    runs: dict = {}
    for key, policy, machines, scale, params, in_quick, engines in SERVICE_RUNS:
        if quick and not in_quick:
            continue
        wl = service_workload(machines, max(20, int(n_jobs * scale)))

        def replay(check: bool):
            return ReplayDriver(
                wl, policy, seed=0, policy_params=params, check_batch=check
            ).run()

        report = replay(True)
        if not report.equivalent:
            raise SystemExit(
                f"{key}: replay != batch -- refusing to record a "
                f"throughput number for a wrong schedule"
            )
        best = report
        for _ in range(rounds - 1):
            again = replay(False)
            if again.wall_time_s < best.wall_time_s:
                best = again
        runs[key] = {
            "policy": report.policy,
            "n_orgs": len(machines),
            "n_jobs": report.n_jobs,
            "n_events": report.n_events,
            "wall_time_s": round(best.wall_time_s, 4),
            "events_per_sec": round(best.events_per_sec, 1),
            "replay_equals_batch": report.equivalent,
        }
        if engines and not quick:
            with _forced_backend(_ENGINES_ONLY):
                forced = replay(False)
            runs[key]["events_per_sec_engines"] = round(
                forced.events_per_sec, 1
            )
            runs[key]["kernel_speedup"] = round(
                best.events_per_sec / forced.events_per_sec, 2
            )

    wl = service_workload((3, 2, 2, 1, 1), max(20, n_jobs))
    svc = ClusterService(wl.machine_counts(), "directcontr", seed=0)
    for job in sorted(wl.jobs):
        svc.submit_job(job)
        svc.advance(job.release)
    svc.drain()
    snapshot_s, restore_s = float("inf"), float("inf")
    for _ in range(3):  # best-of-3: both legs are milliseconds-scale
        t0 = time.perf_counter()
        snap = svc.snapshot()
        snapshot_s = min(snapshot_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        restored = ClusterService.restore(snap)
        restore_s = min(restore_s, time.perf_counter() - t0)
    if restored.schedule() != svc.schedule():
        raise SystemExit("restore != live -- refusing to record")

    def tax(fair_key: str) -> float:
        """GreedyFIFO throughput over the fair policy's, same machine."""
        return round(
            runs["fifo_k8"]["events_per_sec"]
            / runs[fair_key]["events_per_sec"],
            2,
        )

    return {
        "bench": "service",
        "runs": runs,
        "ratio_fifo_over_ref_k8": tax("ref_k8"),
        "ratio_fifo_over_rand_k8_n75": tax("rand_k8_n75"),
        "restore_over_snapshot": round(restore_s / snapshot_s, 2),
        "snapshot": {
            "journal_ops": len(svc.journal),
            "snapshot_s": round(snapshot_s, 4),
            "restore_s": round(restore_s, 4),
            "restore_verified": True,
        },
        **machine_meta(),
    }


def check_service_ratios(
    measured: dict, committed_path: "str | Path", tolerance: float = 0.35
) -> "list[str]":
    """The service perf-gate: the fairness-tax and restore-cost *ratios*
    must not grow past the committed BENCH_service.json value plus the
    tolerance (these are costs, so the gated direction is a ceiling, not a
    floor); returns the list of regression messages (empty = passes)."""
    committed = json.loads(Path(committed_path).read_text())
    problems = []
    for field in GATED_SERVICE_RATIOS:
        want = committed.get(field)
        if want is None:
            problems.append(f"{field}: missing from {committed_path}")
            continue
        ceiling = want * (1.0 + tolerance)
        got = measured.get(field)
        if got is None or got > ceiling:
            problems.append(
                f"{field}: measured {got} > committed {want} + "
                f"{tolerance:.0%} tolerance (ceiling {ceiling:.2f})"
            )
    for key, run in measured.get("runs", {}).items():
        if not run.get("replay_equals_batch", False):
            problems.append(f"{key}: replay_equals_batch is not true")
    return problems


# ----------------------------------------------------------------------
# gateway bench (PR 8: the sharded multi-tenant fleet)
# ----------------------------------------------------------------------
#: Same-machine gateway *ratio* fields enforced by the CI ``perf-gate``
#: (a cost ceiling, like the service gate): the subprocess fleet's
#: per-event cost over the identical in-process shard computation -- the
#: pipe/JSON/dispatch tax -- must not grow past the committed value plus
#: the tolerance.  Absolute events/sec is environment; the tax is code.
GATED_GATEWAY_RATIOS = ("ratio_gateway_over_inproc",)

#: Absolute ceiling on the chaos tier's mean time to recovery (detection
#: -> respawn -> checkpoint restore -> WAL replay, per auto-healed
#: crash).  Generous against busy CI machines; the committed value is
#: typically well under a second.
GATEWAY_MTTR_CEILING_S = 5.0

#: (record key, policy, tenants, shards, events, releases, horizon,
#:  quick-mode events) -- the per-policy gateway tiers.  The fifo tier is
#: the ISSUE 8 acceptance instance: >= 100k events across >= 64 tenants
#: on >= 2 worker processes, checkpointed under load mid-stream.
GATEWAY_RUNS = (
    ("fifo_k64", "fifo", 64, 8, 100_000, 250, None, 3_000),
    ("directcontr_k64", "directcontr", 64, 8, 10_000, 100, None, 1_500),
    ("ref_k16", "ref", 16, 4, 2_000, 50, 400, 800),
)


def _inproc_shard_baseline(config, stream) -> "tuple[float, dict]":
    """The same sharded computation without the gateway: in-process
    ``ClusterService`` shards fed the identical admitted stream in the
    identical order.  Returns (wall seconds, per-shard digests) -- the
    digests must match the fleet's, making the tax ratio a comparison of
    two bit-identical code paths."""
    from itertools import groupby

    from .service import ClusterService
    from .service.snapshot import schedule_digest

    shards = {
        s: ClusterService(
            config.shard_machine_counts(s),
            config.policy,
            seed=config.shard_seed(s),
            horizon=config.horizon,
        )
        for s in config.shard_ids()
    }
    routes = config.routes
    t0 = time.perf_counter()
    for release, group in groupby(stream, key=lambda e: e[0]):
        for _, tenant, size in group:
            shard, org = routes[tenant]
            shards[shard].submit(org, size, release=release)
        for svc in shards.values():
            svc.advance(release)
    for svc in shards.values():
        svc.drain()
    wall = time.perf_counter() - t0
    digests = {
        s: schedule_digest(svc.schedule()) for s, svc in shards.items()
    }
    return wall, digests


def measure_gateway(quick: bool = False) -> dict:
    """The BENCH_gateway.json payload: per-policy fleet tiers (aggregate
    events/sec, ingest p50/p99, snapshot-under-load cost), the
    kill/restore recovery stamp, and the gated gateway-over-inproc tax
    ratio.  Refuses to record any tier whose fleet output is not
    bit-identical to the per-shard batch scheduler -- and whose fifo tier
    is not bit-identical to the in-process shard baseline."""
    from .gateway import Gateway, GatewayConfig, LoadSpec, generate_stream
    from .gateway import run_loadgen

    runs: dict = {}
    for key, policy, tenants, shards, events, releases, horizon, q_events \
            in GATEWAY_RUNS:
        n_events = q_events if quick else events
        n_releases = max(10, releases if not quick else releases // 2)
        config = GatewayConfig.uniform(
            tenants,
            machines=1,
            n_workers=2,
            n_shards=shards,
            policy=policy,
            seed=0,
            horizon=horizon,
        )
        spec = LoadSpec(
            n_events=n_events, n_releases=n_releases, max_size=5, seed=0
        )
        with tempfile.TemporaryDirectory() as snap_dir:
            with Gateway(config, snapshot_dir=snap_dir) as gw:
                report = run_loadgen(
                    gw, spec, snapshot_at_release=n_releases // 2
                )
        if not report.verified:
            raise SystemExit(
                f"{key}: fleet != per-shard batch -- refusing to record a "
                f"throughput number for a wrong schedule"
            )
        runs[key] = {
            "policy": policy,
            "tenants": tenants,
            "workers": config.n_workers,
            "shards": report.n_shards,
            "events": report.n_events,
            "events_per_sec": round(report.events_per_sec, 1),
            "ingest_p50_ms": report.p50_ms,
            "ingest_p99_ms": report.p99_ms,
            "snapshot_under_load_s": round(report.snapshot_under_load_s, 4),
            "verified": report.verified,
            "config_hash": report.config_hash,
        }
    # the gated tax ratio runs on a fixed-size probe identical in quick
    # and full mode, so the quick-mode perf-gate measures the same
    # instance the committed full record measured
    probe_config = GatewayConfig.uniform(
        64, machines=1, n_workers=2, n_shards=8, policy="fifo", seed=0
    )
    probe_spec = LoadSpec(n_events=3_000, n_releases=60, max_size=5, seed=2)
    probe_stream = generate_stream(probe_config, probe_spec)
    # best-of-2 on both legs: a single pass is fragile on busy machines
    probe = None
    for _ in range(2):
        with Gateway(probe_config) as gw:
            attempt = run_loadgen(gw, stream=probe_stream)
        if not attempt.verified:
            raise SystemExit(
                "tax probe: fleet != batch -- refusing to record"
            )
        if probe is None or attempt.wall_time_s < probe.wall_time_s:
            probe = attempt
    inproc_wall = math.inf
    for _ in range(2):
        wall, inproc_digests = _inproc_shard_baseline(
            probe_config, probe_stream
        )
        if inproc_digests != probe.shard_digests:
            raise SystemExit(
                "inproc baseline != fleet -- refusing to record a tax "
                "ratio over divergent schedules"
            )
        inproc_wall = min(inproc_wall, wall)
    ratio = round(probe.wall_time_s / inproc_wall, 2)
    tax_probe = {
        "events": probe.n_events,
        "gateway_seconds": round(probe.wall_time_s, 4),
        "inproc_seconds": round(inproc_wall, 4),
        "verified": probe.verified,
    }

    # the crash story, stamped into the record: SIGKILL worker 0
    # mid-stream, restore from checkpoint + WAL, verify bit-identity
    config = GatewayConfig.uniform(
        16, machines=1, n_workers=2, n_shards=4, policy="fifo", seed=1
    )
    spec = LoadSpec(
        n_events=800 if quick else 5_000, n_releases=40, max_size=5, seed=1
    )
    with tempfile.TemporaryDirectory() as snap_dir:
        with Gateway(config, snapshot_dir=snap_dir) as gw:
            t0 = time.perf_counter()
            recovery = run_loadgen(
                gw,
                spec,
                snapshot_at_release=12,
                kill_worker_at_release=25,
            )
            recovery_wall = time.perf_counter() - t0
            restores = gw.pool.restores
    if not recovery.verified or restores != 1:
        raise SystemExit(
            "kill/restore run is not bit-identical -- refusing to record"
        )

    # the self-healing story (PR 10): a seeded fault plan crashes and
    # stalls workers mid-stream; the supervisor detects, respawns, and
    # replays with ZERO manual restore_worker calls, and the final
    # per-shard digests still match the batch scheduler.  A scripted
    # crash rides along so quick mode is guaranteed at least one
    # auto-recovery regardless of scale.
    from .gateway import FaultPlan
    from .gateway.supervisor import SupervisorPolicy

    chaos_config = GatewayConfig.uniform(
        16, machines=1, n_workers=4, n_shards=8, policy="fifo", seed=0
    )
    chaos_spec = LoadSpec(
        n_events=1_000 if quick else 8_000, n_releases=40, max_size=5,
        seed=3,
    )
    plan = FaultPlan.parse("seed=11,rate=0.002,script=0.0.crash.40")
    sup = SupervisorPolicy(heartbeat_timeout_s=0.4, ping_interval_s=0.1)
    with tempfile.TemporaryDirectory() as snap_dir:
        with Gateway(
            chaos_config, snapshot_dir=snap_dir, supervisor=sup,
            fault_plan=plan,
        ) as gw:
            t0 = time.perf_counter()
            chaos_report = run_loadgen(gw, chaos_spec)
            chaos_wall = time.perf_counter() - t0
            manual_restores = gw.pool.restores
    chaos = chaos_report.chaos or {}
    if not chaos_report.verified:
        raise SystemExit(
            "chaos tier: fleet != batch after injected faults -- refusing "
            "to record"
        )
    if manual_restores != 0:
        raise SystemExit(
            "chaos tier: manual restores happened -- self-healing did not"
        )
    if chaos.get("auto_recoveries", 0) < 1:
        raise SystemExit(
            "chaos tier: the fault plan armed no recovery -- plan drifted"
        )

    return {
        "bench": "gateway",
        "runs": runs,
        "tax_probe": tax_probe,
        "ratio_gateway_over_inproc": ratio,
        "recovery": {
            "events": recovery.n_events,
            "kill_restore_verified": recovery.verified,
            "worker_restores": restores,
            "wall_time_s": round(recovery_wall, 4),
        },
        "chaos_verified": True,
        "mttr_seconds": round(chaos["mttr_seconds"], 4),
        "chaos": {
            "plan": chaos["plan"],
            "events": chaos_report.n_events,
            "faults_armed": chaos["faults_armed"],
            "auto_recoveries": chaos["auto_recoveries"],
            "quarantines": chaos["quarantines"],
            "parked_total": chaos["parked_total"],
            "lost_responses": chaos["lost_responses"],
            "wal_tears": chaos["wal_tears"],
            "manual_restores": manual_restores,
            "wall_time_s": round(chaos_wall, 4),
        },
        **machine_meta(),
    }


def check_gateway_ratios(
    measured: dict, committed_path: "str | Path", tolerance: float = 0.35
) -> "list[str]":
    """The gateway perf-gate: the pipe/dispatch tax *ratio* must not grow
    past the committed BENCH_gateway.json value plus the tolerance (a
    cost, so the gated direction is a ceiling, like the service gate),
    every tier must carry its bit-identity stamp, and the kill/restore
    recovery stamp must hold; returns regression messages (empty =
    passes)."""
    committed = json.loads(Path(committed_path).read_text())
    problems = []
    for field in GATED_GATEWAY_RATIOS:
        want = committed.get(field)
        if want is None:
            problems.append(f"{field}: missing from {committed_path}")
            continue
        ceiling = want * (1.0 + tolerance)
        got = measured.get(field)
        if got is None or got > ceiling:
            problems.append(
                f"{field}: measured {got} > committed {want} + "
                f"{tolerance:.0%} tolerance (ceiling {ceiling:.2f})"
            )
    for key, run in measured.get("runs", {}).items():
        if not run.get("verified", False):
            problems.append(f"{key}: verified is not true")
    if not measured.get("recovery", {}).get("kill_restore_verified", False):
        problems.append("recovery: kill_restore_verified is not true")
    # the self-healing gate: the committed record must have been stamped
    # chaos-verified, the fresh measurement must reproduce it, and mean
    # time to recovery must stay under the absolute ceiling
    if not committed.get("chaos_verified", False):
        problems.append(
            f"chaos_verified: missing or false in {committed_path}"
        )
    if not measured.get("chaos_verified", False):
        problems.append("chaos_verified: measured run is not true")
    mttr = measured.get("mttr_seconds")
    if mttr is None:
        problems.append("mttr_seconds: missing from measured run")
    elif mttr > GATEWAY_MTTR_CEILING_S:
        problems.append(
            f"mttr_seconds: measured {mttr} > ceiling "
            f"{GATEWAY_MTTR_CEILING_S} (recovery too slow)"
        )
    return problems


# ----------------------------------------------------------------------
# registry + CLI plumbing
# ----------------------------------------------------------------------
#: name -> (measure callable taking the CLI namespace, default output file)
# ----------------------------------------------------------------------
# approx bench (PR 9: the certified approximation ladder)
# ----------------------------------------------------------------------
#: Gated approx fields -- both are *floors* (quality must not regress):
#: the realized stratified-vs-uniform variance reduction and the worst
#: certified-decision rate across the high-``k`` adaptive tiers.
GATED_APPROX_RATIOS = (
    "variance_ratio_uniform_over_stratified",
    "min_certified_rate",
)

#: (record key, orgs, jobs, n_max, in quick mode) -- the high-``k``
#: adaptive tiers.  ``n_max`` stays modest: the point is throughput past
#: the exact ceiling, not maximal certification (EXPERIMENTS.md has the
#: fairness-vs-budget sweep).
APPROX_RUNS = (
    ("adaptive_k50", 50, 150, 16, True),
    ("adaptive_k100", 100, 200, 16, True),
    ("adaptive_k200", 200, 300, 16, False),
)


def _variance_ratio(
    k: int = 8, n: int = 8, rounds: int = 24, seed: int = 3
) -> dict:
    """Realized estimator variance of the ordering samplers on one frozen
    decision: full-lattice coalition values at mid-stream ``t``, ``rounds``
    independent ``N=n`` draws per sampler, per-org variance averaged.
    Ratios > 1.0 mean the variance-reduced draw beats uniform."""
    from .algorithms.greedy import fifo_select
    from .core.coalition import iter_subsets
    from .core.fleet import CoalitionFleet
    from .shapley.sampling import (
        ORDERING_SAMPLERS,
        SampledPrefixes,
        sample_member_orderings,
    )

    wl = service_workload((1,) * k, 120, seed=seed)
    grand = (1 << k) - 1
    fleet = CoalitionFleet(
        wl, [m for m in iter_subsets(grand) if m], track_events=False
    )
    t = max(j.release for j in wl.jobs) // 2
    values = dict(fleet.values_at(t, select=fifo_select))
    values[0] = 0
    member_arr = np.arange(k, dtype=np.int64)

    def mean_var(draw) -> float:
        ests = []
        for r in range(rounds):
            rng = np.random.default_rng(1000 + r)
            sp = SampledPrefixes(k, draw(member_arr, n, rng))
            phi = sp.estimate_scaled({m: values[m] for m in sp.masks})
            ests.append([phi[u] / sp.n for u in range(k)])
        return float(np.array(ests, dtype=float).var(axis=0).mean())

    uniform = mean_var(sample_member_orderings)
    out = {"var_uniform": round(uniform, 3)}
    for name in ("stratified", "antithetic", "stratified_antithetic"):
        var = mean_var(ORDERING_SAMPLERS[name])
        out[f"var_{name}"] = round(var, 3)
        out[f"variance_ratio_uniform_over_{name}"] = round(
            uniform / var, 3
        )
    return out


def measure_approx(quick: bool = False) -> dict:
    """Certified-ladder throughput past the exact ceiling (see
    BENCH_approx.json): ``ref_adaptive`` decision streams at k=50/100/200
    with per-decision certificate rates, plus the realized
    stratified-vs-uniform estimator variance ratio.

    Every tier runs the honest certifier -- a decision is only counted
    certified when its kind is sound (singleton / degenerate / separated /
    exact), so the recorded rate is a quality trajectory, not a tuning
    artifact."""
    from .algorithms.base import members_mask
    from .approx import AdaptiveRun

    runs: dict = {}
    rates = []
    for key, k, n_jobs, n_max, in_quick in APPROX_RUNS:
        if quick and not in_quick:
            continue
        wl = service_workload((1,) * k, n_jobs, seed=11)
        members, mask = members_mask(wl, None)
        best: "dict | None" = None
        for _ in range(2 if quick else 3):
            t0 = time.perf_counter()
            run = AdaptiveRun(
                wl,
                members,
                mask,
                np.random.default_rng(0),
                None,
                n_min=4,
                n_max=n_max,
            )
            n_events = run.drive()
            wall = time.perf_counter() - t0
            if best is None or wall < best["wall_time_s"]:
                s = run.summary()
                best = {
                    "n_orgs": k,
                    "n_jobs": len(wl.jobs),
                    "n_events": n_events,
                    "n_max": n_max,
                    "wall_time_s": round(wall, 4),
                    "events_per_sec": round(n_events / wall, 1),
                    "decisions": s.decisions,
                    "certified": s.certified,
                    "certified_rate": round(
                        s.certified / max(1, s.decisions), 4
                    ),
                    "samples_mean": round(s.samples_mean, 2),
                }
        runs[key] = best
        rates.append(best["certified_rate"])
    # deterministic (fixed seeds, no timing) -- quick mode keeps the full
    # round count so the gate compares identical numbers
    variance = _variance_ratio(rounds=24)
    return {
        "bench": "approx",
        "runs": runs,
        "min_certified_rate": min(rates),
        **variance,
        **machine_meta(),
    }


def check_approx_ratios(
    measured: dict, committed_path: "str | Path", tolerance: float = 0.35
) -> "list[str]":
    """The approx perf-gate: quality *floors*.  The variance-reduction
    ratio must stay >= 1.0 and must not fall below the committed value
    minus the tolerance; the worst certified rate must not fall below the
    committed value minus the tolerance.  Returns regression messages
    (empty = passes)."""
    committed = json.loads(Path(committed_path).read_text())
    problems = []
    for field in GATED_APPROX_RATIOS:
        want = committed.get(field)
        if want is None:
            problems.append(f"{field}: missing from {committed_path}")
            continue
        floor = want * (1.0 - tolerance)
        got = measured.get(field)
        if got is None or got < floor:
            problems.append(
                f"{field}: measured {got} < committed {want} - "
                f"{tolerance:.0%} tolerance (floor {floor:.3f})"
            )
    ratio = measured.get("variance_ratio_uniform_over_stratified")
    if ratio is not None and ratio < 1.0:
        problems.append(
            f"variance_ratio_uniform_over_stratified: {ratio} < 1.0 -- "
            f"stratification is supposed to be pure profit"
        )
    return problems


BENCHES = {
    "fleet": (
        lambda args: measure_fleet(quick=args.quick),
        "BENCH_fleet.json",
    ),
    "pipeline": (
        lambda args: measure_pipeline(
            workers=args.workers, repeats=args.repeats, quick=args.quick
        ),
        "BENCH_pipeline.json",
    ),
    "service": (
        lambda args: measure_service(n_jobs=args.jobs, quick=args.quick),
        "BENCH_service.json",
    ),
    "gateway": (
        lambda args: measure_gateway(quick=args.quick),
        "BENCH_gateway.json",
    ),
    "approx": (
        lambda args: measure_approx(quick=args.quick),
        "BENCH_approx.json",
    ),
}


def run_bench(name: str, args: argparse.Namespace) -> dict:
    try:
        measure, _ = BENCHES[name]
    except KeyError:  # pragma: no cover - argparse enforces the choices
        raise ValueError(f"unknown bench {name!r}") from None
    return measure(args)


def main(args: argparse.Namespace) -> int:
    """``repro bench`` entry point (argparse namespace from the CLI)."""
    names = list(BENCHES) if args.bench == "all" else [args.bench]
    exit_code = 0
    for name in names:
        payload = run_bench(name, args)
        out = args.output
        if out is None or len(names) > 1:
            out = BENCHES[name][1]
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")
        print(json.dumps(payload, indent=2))
        checker = {"fleet": (check_fleet_ratios, GATED_RATIOS),
                   "pipeline": (check_pipeline_ratios, GATED_PIPELINE_RATIOS),
                   "service": (check_service_ratios, GATED_SERVICE_RATIOS),
                   "gateway": (check_gateway_ratios, GATED_GATEWAY_RATIOS),
                   "approx": (check_approx_ratios, GATED_APPROX_RATIOS)}
        if name in checker and args.check_against is not None:
            check, fields = checker[name]
            problems = check(payload, args.check_against, args.tolerance)
            if problems:
                exit_code = 1
                for p in problems:
                    print(f"perf-gate FAIL: {p}")
            else:
                print(
                    "perf-gate OK: "
                    + ", ".join(
                        f"{f}={payload[f]}" for f in fields
                    )
                )
    return exit_code
