"""Jobs: the unit of work in the multi-organizational scheduling model.

The paper's model (Section 2): each organization :math:`O^{(u)}` produces a
stream of *sequential* jobs :math:`J^{(u)}_i` with a release time
:math:`r^{(u)}_i` and a processing time :math:`p^{(u)}_i`.  Scheduling is

* **online** -- a job is unknown until its release time,
* **non-clairvoyant** -- the processing time is unknown until the job
  completes,
* **non-preemptive** -- a started job cannot be stopped, cancelled or moved,
* **FIFO-per-organization** -- jobs of one organization start in the order
  they were submitted (organizations keep an internal prioritization).

Time is discrete (:class:`int` time steps) and processing times are positive
integers, exactly as in the paper.  A job occupying a machine during the time
slots ``[s, s+p)`` is identified with the pair ``(s, p)`` when evaluating
utility functions (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence

__all__ = ["Job", "sort_jobs", "validate_jobs", "split_job", "merge_jobs"]


@dataclass(frozen=True, slots=True, order=True)
class Job:
    """A sequential job.

    The ordering of :class:`Job` instances is (release, org, index, size, id)
    which is exactly the submission order required by the FIFO-per-
    organization rule, with a deterministic tie-break.

    Attributes
    ----------
    release:
        Release time :math:`r^{(u)}_i \\ge 0`.  The job is invisible to every
        scheduler before this time.
    org:
        Index of the owning organization (``0 <= org < k``).
    index:
        Submission sequence number *within* the owning organization.  Jobs of
        one organization must be started in increasing ``index`` order.
    size:
        Processing time :math:`p^{(u)}_i \\ge 1` (integer time units).  Hidden
        from schedulers until completion (non-clairvoyance); the simulation
        engine enforces this by never exposing ``size`` through the scheduler
        state API.
    id:
        Globally unique identifier (stable across workload transforms); used
        for schedule bookkeeping and round-tripping through SWF files.
    """

    release: int
    org: int
    index: int
    size: int
    id: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.release < 0:
            raise ValueError(f"release must be >= 0, got {self.release}")
        if self.size < 1:
            raise ValueError(f"size must be >= 1, got {self.size}")
        if self.org < 0:
            raise ValueError(f"org must be >= 0, got {self.org}")
        if self.index < 0:
            raise ValueError(f"index must be >= 0, got {self.index}")

    def delayed(self, delta: int) -> "Job":
        """Return a copy of this job released ``delta`` time units later.

        Delaying is one of the three workload manipulations of Section 4
        (never profitable under a utility satisfying the anonymity axioms).
        """
        if delta < 0:
            raise ValueError("delta must be >= 0")
        return replace(self, release=self.release + delta)

    def inflated(self, extra: int) -> "Job":
        """Return a copy with ``extra`` artificial processing units appended.

        Artificially increasing job sizes is the third manipulation discussed
        under strategy-resistance in Section 4.
        """
        if extra < 0:
            raise ValueError("extra must be >= 0")
        return replace(self, size=self.size + extra)


def sort_jobs(jobs: Iterable[Job]) -> list[Job]:
    """Return jobs sorted in canonical submission order."""
    return sorted(jobs)


def validate_jobs(jobs: Sequence[Job]) -> None:
    """Check a job list for model validity.

    Raises
    ------
    ValueError
        If two jobs of one organization share a submission index, if indices
        are not contiguous from zero, or if release times decrease with the
        submission index (FIFO order must be realizable: a job cannot be
        expected to start before a later-released predecessor is known).
    """
    per_org: dict[int, list[Job]] = {}
    for job in jobs:
        per_org.setdefault(job.org, []).append(job)
    for org, org_jobs in per_org.items():
        org_jobs.sort(key=lambda j: j.index)
        for pos, job in enumerate(org_jobs):
            if job.index != pos:
                raise ValueError(
                    f"org {org}: job indices must be contiguous from 0, "
                    f"found index {job.index} at position {pos}"
                )
        for prev, nxt in zip(org_jobs, org_jobs[1:]):
            if nxt.release < prev.release:
                raise ValueError(
                    f"org {org}: job {nxt.index} released at {nxt.release} "
                    f"before its FIFO predecessor (released {prev.release})"
                )


def split_job(job: Job, sizes: Sequence[int]) -> list[Job]:
    """Split ``job`` into pieces with the given sizes (a Section 4 manipulation).

    The pieces inherit the release time and are submitted consecutively in
    place of the original (callers re-index the organization's stream
    afterwards; see :func:`repro.utility.axioms.apply_split`).
    """
    if sum(sizes) != job.size:
        raise ValueError(f"piece sizes {sizes!r} do not sum to job size {job.size}")
    if any(s < 1 for s in sizes):
        raise ValueError("every piece must have size >= 1")
    return [
        Job(release=job.release, org=job.org, index=job.index + off, size=s, id=-1)
        for off, s in enumerate(sizes)
    ]


def merge_jobs(jobs: Sequence[Job]) -> Job:
    """Merge consecutive jobs of one organization into one (Section 4).

    The merged job is released when the *first* piece was released (merging
    cannot make work available earlier than its parts).
    """
    if not jobs:
        raise ValueError("cannot merge an empty job list")
    org = jobs[0].org
    if any(j.org != org for j in jobs):
        raise ValueError("can only merge jobs of a single organization")
    ordered = sorted(jobs, key=lambda j: j.index)
    for a, b in zip(ordered, ordered[1:]):
        if b.index != a.index + 1:
            raise ValueError("can only merge consecutive jobs")
    return Job(
        release=max(j.release for j in ordered),
        org=org,
        index=ordered[0].index,
        size=sum(j.size for j in ordered),
        id=-1,
    )


def iter_release_times(jobs: Iterable[Job]) -> Iterator[int]:
    """Yield the distinct release times in increasing order."""
    seen = sorted({j.release for j in jobs})
    yield from seen
