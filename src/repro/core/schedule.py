"""Schedules: the output of a scheduling algorithm, with feasibility checks.

A schedule (paper Section 2) is a set of triples
:math:`(J^{(u)}_i, s^{(u)}_i, M(J^{(u)}_i))` -- job, start time, machine.
The paper identifies a job with the pair ``(s, p)`` for utility evaluation;
:meth:`Schedule.org_pairs` provides exactly that view.

Feasibility (the paper's :math:`\\Gamma`):

* a job starts no earlier than its release time,
* a machine runs at most one job at a time,
* jobs of one organization start in FIFO (submission) order,
* *greediness*: whenever a machine is free and a released job waits, some
  job is started (checked by replay).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from .job import Job
from .workload import Workload

__all__ = ["ScheduledJob", "Schedule"]


@dataclass(frozen=True, slots=True, order=True)
class ScheduledJob:
    """One schedule entry: ``job`` started at ``start`` on ``machine``."""

    start: int
    machine: int
    job: Job

    @property
    def end(self) -> int:
        """First time slot after the job completes (``start + size``)."""
        return self.start + self.job.size

    def pair(self) -> tuple[int, int]:
        """The ``(s, p)`` pair used by utility functions (paper Section 4)."""
        return (self.start, self.job.size)


class Schedule:
    """An immutable collection of :class:`ScheduledJob` entries."""

    __slots__ = ("entries",)

    def __init__(self, entries: Iterable[ScheduledJob]):
        object.__setattr__(self, "entries", tuple(sorted(entries)))

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Schedule is immutable")

    def __iter__(self) -> Iterator[ScheduledJob]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self.entries == other.entries

    def __hash__(self) -> int:
        return hash(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Schedule({len(self.entries)} jobs)"

    # -- views ---------------------------------------------------------------
    def org_pairs(self, org: int) -> list[tuple[int, int]]:
        """``(start, size)`` pairs of one organization's scheduled jobs."""
        return [e.pair() for e in self.entries if e.job.org == org]

    def all_pairs(self) -> list[tuple[int, int]]:
        """``(start, size)`` pairs of every scheduled job."""
        return [e.pair() for e in self.entries]

    def start_of(self, job_id: int) -> int:
        """Start time of the job with the given global id."""
        for e in self.entries:
            if e.job.id == job_id:
                return e.start
        raise KeyError(f"job id {job_id} not in schedule")

    def makespan(self) -> int:
        """Completion time of the last job (0 for an empty schedule)."""
        return max((e.end for e in self.entries), default=0)

    # -- global efficiency -----------------------------------------------
    def busy_units(self, t: int) -> int:
        """Machine-time units of work executed strictly before ``t``.

        This is the numerator of the resource-utilization metric of
        Section 6: the number of unit-size job parts completed by ``t``.
        """
        return sum(
            min(e.job.size, max(0, t - e.start)) for e in self.entries
        )

    def utilization(self, t: int, n_machines: int) -> float:
        """Fraction of machine capacity used during ``[0, t)`` (Section 6)."""
        if t <= 0 or n_machines <= 0:
            raise ValueError("t and n_machines must be positive")
        return self.busy_units(t) / (t * n_machines)

    def flow_time(self, t: int | None = None) -> int:
        """Total flow time of jobs *completed* by ``t`` (default: all jobs).

        Flow time of a job is ``completion - release``; the classic metric
        that Prop. 4.2 relates to the strategy-proof utility.
        """
        horizon = self.makespan() if t is None else t
        return sum(
            e.end - e.job.release for e in self.entries if e.end <= horizon
        )

    # -- feasibility ---------------------------------------------------------
    def validate(
        self,
        workload: Workload,
        *,
        machine_owners: Sequence[int] | None = None,
        check_greedy: bool = True,
        members: Iterable[int] | None = None,
        horizon: int | None = None,
    ) -> None:
        """Raise ``ValueError`` unless the schedule is feasible for ``workload``.

        Parameters
        ----------
        machine_owners:
            Owner organization of each machine id; defaults to the canonical
            layout (org 0's machines first, then org 1's, ...).
        check_greedy:
            Also verify the greedy invariant (no machine idles while a
            released, unscheduled job waits) -- the class of schedules the
            paper restricts to.
        members:
            Coalition members (defaults to all organizations); jobs and
            machines of non-members must not appear.
        horizon:
            When the schedule was built with a stop time, pass it here: the
            greedy invariant is only checked at times before the horizon
            (after it the scheduler legitimately stops starting jobs).
        """
        member_set = (
            set(members) if members is not None else set(range(workload.n_orgs))
        )
        owners = (
            list(machine_owners)
            if machine_owners is not None
            else _canonical_owners(workload)
        )
        usable = [m for m, o in enumerate(owners) if o in member_set]
        usable_set = set(usable)

        # release times and machine validity
        for e in self.entries:
            if e.start < e.job.release:
                raise ValueError(
                    f"job {e.job.id} started at {e.start} before release "
                    f"{e.job.release}"
                )
            if e.machine not in usable_set:
                raise ValueError(
                    f"job {e.job.id} placed on machine {e.machine} outside "
                    f"the coalition's pool"
                )
            if e.job.org not in member_set:
                raise ValueError(
                    f"job {e.job.id} belongs to non-member org {e.job.org}"
                )

        # machine exclusivity: intervals on one machine must not overlap
        per_machine: dict[int, list[ScheduledJob]] = {}
        for e in self.entries:
            per_machine.setdefault(e.machine, []).append(e)
        for machine, entries in per_machine.items():
            entries.sort(key=lambda e: e.start)
            for a, b in zip(entries, entries[1:]):
                if b.start < a.end:
                    raise ValueError(
                        f"machine {machine}: jobs {a.job.id} and {b.job.id} "
                        f"overlap ({a.start}+{a.job.size} > {b.start})"
                    )

        # FIFO per organization
        per_org: dict[int, list[ScheduledJob]] = {}
        for e in self.entries:
            per_org.setdefault(e.job.org, []).append(e)
        for org, entries in per_org.items():
            entries.sort(key=lambda e: e.job.index)
            for a, b in zip(entries, entries[1:]):
                if b.job.index != a.job.index + 1:
                    # a gap is fine only if the later jobs were never started
                    raise ValueError(
                        f"org {org}: job index gap between scheduled jobs "
                        f"{a.job.index} and {b.job.index}"
                    )
                if b.start < a.start:
                    raise ValueError(
                        f"org {org}: FIFO violated, job {b.job.id} (index "
                        f"{b.job.index}) starts before job {a.job.id}"
                    )

        if check_greedy:
            self._validate_greedy(workload, member_set, usable, horizon)

    def _validate_greedy(
        self,
        workload: Workload,
        member_set: set[int],
        usable_machines: list[int],
        horizon: int | None = None,
    ) -> None:
        """Replay the schedule and check the greedy invariant.

        At every event time, if a machine is free and some released job is
        unscheduled-and-waiting, the schedule must start a job at that time.
        """
        jobs = [j for j in workload.jobs if j.org in member_set]
        started = {e.job.id: e for e in self.entries}
        n_machines = len(usable_machines)
        if n_machines == 0:
            if self.entries:
                raise ValueError("jobs scheduled but the coalition has no machines")
            return
        # event times: all releases, starts, ends
        times = sorted(
            {j.release for j in jobs}
            | {e.start for e in self.entries}
            | {e.end for e in self.entries}
        )
        starts_at: dict[int, int] = {}
        for e in self.entries:
            starts_at[e.start] = starts_at.get(e.start, 0) + 1
        for t in times:
            if horizon is not None and t >= horizon:
                continue
            busy = sum(1 for e in self.entries if e.start <= t < e.end)
            free = n_machines - busy
            waiting = sum(
                1
                for j in jobs
                if j.release <= t
                and (j.id not in started or started[j.id].start > t)
            )
            if free > 0 and waiting > 0:
                raise ValueError(
                    f"greedy invariant violated at t={t}: {free} free "
                    f"machine(s) while {waiting} job(s) wait"
                )


def _canonical_owners(workload: Workload) -> list[int]:
    """Default machine-ownership layout: org 0's machines get the lowest ids."""
    owners: list[int] = []
    for org in workload.organizations:
        owners.extend([org.id] * org.machines)
    return owners
