"""Coalitions as immutable bitmask sets, plus Shapley weight tables.

A coalition :math:`\\mathcal{C} \\subseteq \\mathcal{O}` is a subset of the
organizations.  The exponential algorithms (REF, exact Shapley) enumerate all
:math:`2^k` subsets, so the representation must be compact and hashable and
subset enumeration must be cheap: we use integer bitmasks, where bit ``u``
set means organization ``u`` is a member.

The Shapley subset formula (paper Eq. 1) weighs the marginal contribution of
``u`` to ``C'`` by ``|C'|! (k - |C'| - 1)! / k!``.  Working with those
rationals in floating point would make fairness *decisions* (argmin over
organizations) vulnerable to rounding ties, so we precompute **scaled
integer** weights multiplied by ``k!`` -- all REF comparisons then happen in
exact integer arithmetic (Python ints are unbounded).
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from math import factorial
from typing import Iterator

__all__ = [
    "Coalition",
    "iter_subsets",
    "iter_proper_subsets",
    "iter_members",
    "subsets_by_size",
    "shapley_weight",
    "scaled_shapley_weights",
    "popcount",
]


def popcount(mask: int) -> int:
    """Number of members in a coalition bitmask."""
    return mask.bit_count()


class Coalition:
    """An immutable set of organization indices backed by a bitmask.

    Thin value-type wrapper: most internal code passes raw ``int`` masks for
    speed; :class:`Coalition` is the public-facing API with set semantics.
    """

    __slots__ = ("mask",)

    def __init__(self, members: "int | Iterator[int] | list[int] | tuple[int, ...] | set[int] | frozenset[int]" = 0):
        if isinstance(members, int):
            if members < 0:
                raise ValueError("coalition mask must be >= 0")
            mask = members
        else:
            mask = 0
            for u in members:
                if u < 0:
                    raise ValueError("organization indices must be >= 0")
                mask |= 1 << u
        object.__setattr__(self, "mask", mask)

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Coalition is immutable")

    # -- set protocol -----------------------------------------------------
    def __contains__(self, u: int) -> bool:
        return bool((self.mask >> u) & 1)

    def __iter__(self) -> Iterator[int]:
        return iter_members(self.mask)

    def __len__(self) -> int:
        return popcount(self.mask)

    def __bool__(self) -> bool:
        return self.mask != 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Coalition):
            return self.mask == other.mask
        if isinstance(other, (set, frozenset)):
            return set(self) == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Coalition", self.mask))

    def __repr__(self) -> str:
        return f"Coalition({sorted(self)})"

    # -- algebra -----------------------------------------------------------
    def add(self, u: int) -> "Coalition":
        return Coalition(self.mask | (1 << u))

    def remove(self, u: int) -> "Coalition":
        if u not in self:
            raise KeyError(u)
        return Coalition(self.mask & ~(1 << u))

    def union(self, other: "Coalition") -> "Coalition":
        return Coalition(self.mask | other.mask)

    def intersection(self, other: "Coalition") -> "Coalition":
        return Coalition(self.mask & other.mask)

    def issubset(self, other: "Coalition") -> bool:
        return self.mask & ~other.mask == 0

    def subsets(self, proper: bool = False) -> Iterator["Coalition"]:
        it = iter_proper_subsets(self.mask) if proper else iter_subsets(self.mask)
        return (Coalition(m) for m in it)

    @staticmethod
    def grand(k: int) -> "Coalition":
        """The grand coalition of ``k`` organizations (paper's C_g)."""
        if k < 0:
            raise ValueError("k must be >= 0")
        return Coalition((1 << k) - 1)


def iter_members(mask: int) -> Iterator[int]:
    """Yield the organization indices in a bitmask, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def iter_subsets(mask: int) -> Iterator[int]:
    """Yield every submask of ``mask`` including 0 and ``mask`` itself.

    Uses the standard descending submask-enumeration trick:
    ``sub = (sub - 1) & mask``, which visits each of the ``2^popcount(mask)``
    submasks exactly once.
    """
    sub = mask
    while True:
        yield sub
        if sub == 0:
            return
        sub = (sub - 1) & mask


def iter_proper_subsets(mask: int) -> Iterator[int]:
    """Yield every submask of ``mask`` except ``mask`` itself (0 included)."""
    it = iter_subsets(mask)
    next(it)  # skip mask itself
    yield from it


def subsets_by_size(mask: int) -> list[list[int]]:
    """All submasks of ``mask`` grouped by popcount (index = size).

    REF processes subcoalitions in increasing size order each event time
    (paper Fig. 1, the ``for s <- 1 to |C|`` loop); this helper materializes
    that ordering once.
    """
    groups: list[list[int]] = [[] for _ in range(popcount(mask) + 1)]
    for sub in iter_subsets(mask):
        groups[popcount(sub)].append(sub)
    return groups


def shapley_weight(subset_size: int, k: int) -> Fraction:
    """Exact Shapley weight ``(s-1)! (k-s)! / k!`` for a subset of size ``s``
    *containing* the player, in a game with ``k`` players (paper Eq. 1 as used
    by ``UpdateVals`` in Fig. 1).
    """
    if not 1 <= subset_size <= k:
        raise ValueError(f"subset size must be in [1, {k}], got {subset_size}")
    return Fraction(
        factorial(subset_size - 1) * factorial(k - subset_size), factorial(k)
    )


@lru_cache(maxsize=None)
def scaled_shapley_weights(k: int) -> tuple[int, ...]:
    """Integer Shapley weights scaled by ``k!``.

    ``scaled_shapley_weights(k)[s]`` equals ``(s-1)! (k-s)! `` for subset
    size ``s`` (index 0 unused).  Summing ``weight[s] * (v(S) - v(S\\{u}))``
    over subsets S containing u yields ``k! * phi_u`` -- an exact integer
    whenever coalition values are integers, which is what REF compares.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    out = [0] * (k + 1)
    for s in range(1, k + 1):
        out[s] = factorial(s - 1) * factorial(k - s)
    return tuple(out)
