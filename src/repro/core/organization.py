"""Organizations: the players of the cooperative scheduling game.

An organization (paper Section 2) contributes a cluster of ``machines``
identical processors to the common pool and submits a FIFO-ordered stream of
jobs.  Organizations are the *agents* of the cooperative game: coalition
values are sums of per-organization utilities, and the Shapley value divides
the grand-coalition value among them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Organization"]


@dataclass(frozen=True, slots=True)
class Organization:
    """A participating organization.

    Attributes
    ----------
    id:
        Organization index ``0 <= id < k``.  Job ownership refers to this.
    machines:
        Number of identical processors the organization contributes,
        :math:`m^{(u)} \\ge 0`.  An organization may own zero machines (it
        then free-rides on the pool; its Shapley contribution reflects that).
    speed:
        Machine speed factor for the *related machines* extension (Section 8
        future work).  ``1.0`` for the paper's identical-machines model; the
        exact REF/RAND algorithms require identical machines, heuristics and
        baselines accept related ones.
    name:
        Optional human-readable label used in reports.
    """

    id: int
    machines: int
    speed: float = 1.0
    name: str = field(default="")

    def __post_init__(self) -> None:
        if self.id < 0:
            raise ValueError(f"organization id must be >= 0, got {self.id}")
        if self.machines < 0:
            raise ValueError(f"machines must be >= 0, got {self.machines}")
        if self.speed <= 0:
            raise ValueError(f"speed must be > 0, got {self.speed}")
        if not self.name:
            object.__setattr__(self, "name", f"O({self.id})")

    @property
    def is_identical_speed(self) -> bool:
        """True when the organization's machines run at the reference speed."""
        return self.speed == 1.0
