"""Batched structure-of-arrays coalition simulation kernel (DESIGN.md §8).

The fair schedulers drive *many near-identical greedy simulations*: REF keeps
one engine per subcoalition (up to ``2^k``), RAND one per sampled prefix
coalition (up to ``N * k`` before deduplication).  Advancing each of them as a
separate :class:`~repro.core.engine.ClusterEngine` costs a Python event loop
per engine per decision time.  :class:`FleetKernel` replaces the whole family
with one structure-of-arrays simulation advanced in **vectorized lockstep**:

* ``(n_engines, n_machines)`` int64 matrices hold every engine's busy-until
  times (``_FAR`` where free/absent), running-job owner and start -- the
  flattened union of all the per-engine busy heaps;
* ``(n_engines, n_orgs)`` int64 matrices generalize the engines' psi_sp value
  ledgers: completed units / weighted starts and the running-job start
  moments ``(count, Σs, Σs²)``, by job owner and by machine owner;
* the job streams are shared: every engine sees the same canonical per-org
  job arrays, so one *global* release pointer per organization plus a
  per-(engine, org) started counter describe every engine's FIFO queues
  (engine ``e`` waits on exactly the org-``u`` jobs in ``[started[e,u],
  released[u])``).

Lockstep invariant: all rows share one clock ``t``; completions and releases
at times ``<= t`` are processed for every engine in a handful of scatter
operations, and greedy fills run as *batched rounds* -- each round starts one
job per still-capable engine via a masked row ``argmax``/``argmin``, exactly
reproducing the per-engine selection loop (first-occurrence ``argmax`` is the
lowest-id tie-break).  Only engines **touched** by an event (a completion, or
a member organization's release) are filled, which is sound by the greedy
invariant: an untouched engine has no new free-machine/waiting-job pair.

Exactness: the kernel only engages when :func:`kernel_certified` proves from
the workload that *no ledger scalar nor any query at an event time can
overflow int64* (conservative bound over the total work and the latest
possible finish time).  Far-future value queries are still guarded per query
and fall back to exact Python-int arithmetic over the (certified exact)
int64 ledgers -- the same two-tier scheme as
:class:`~repro.core.fleet.CoalitionFleet`, with identical results.

Escape hatch: anything the arrays cannot express (adopting an externally
built engine, dynamic machine mutation, forking) triggers
:meth:`FleetKernel.materialize_row` -- the row is reconstructed as a real,
bit-identical :class:`~repro.core.engine.ClusterEngine` and the fleet
continues in per-engine mode.  :class:`KernelEngineView` gives read access to
one row through the ``ClusterEngine`` API in the meantime.

One level up, :class:`~repro.core.multikernel.MultiInstanceKernel`
(DESIGN.md §10) applies the same SoA trick *across problem instances*:
the rows of many independent single-instance simulations advance in
jagged lockstep with per-row clocks.  It shares this module's sentinels
and the :func:`_overflow_bound` certification arithmetic (applied per
instance there, since its rows never mix instances).
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from collections import deque
from typing import Iterable

import numpy as np

from .coalition import iter_members
from .engine import ClusterEngine, RunningJob, _partial_psi
from .job import Job
from .schedule import Schedule, ScheduledJob
from .workload import Workload

__all__ = [
    "FleetKernel",
    "KernelEngineView",
    "KernelUnsafe",
    "KERNEL_MIN_ENGINES",
    "kernel_certified",
]

#: Fleets with at least this many coalition engines dispatch to the kernel
#: (below it the per-event numpy overhead exceeds the Python loops saved;
#: crossover measured by ``repro bench fleet``, see BENCH_fleet.json: a
#: 31-engine fleet -- REF k=5, RAND k=5/N=75 -- is break-even or slightly
#: slower, a 63-engine fleet is ~1.6x faster, 255 engines ~4x).
KERNEL_MIN_ENGINES = 48

#: Sentinel finish time for a free (or absent) machine slot.  Far beyond any
#: certified event time, and small enough that comparisons cannot overflow.
_FAR = np.iinfo(np.int64).max // 4

#: Cap certified for every ledger scalar and every query intermediate at
#: event times (matches CoalitionFleet's guards).
_QUERY_CAP = 1 << 62

_I64_MIN = np.iinfo(np.int64).min


class KernelUnsafe(Exception):
    """Raised *before* any mutation when an operation cannot be absorbed
    without risking int64 overflow; the fleet materializes and retries."""


def _overflow_bound(total_units: int, max_release: int, n_machines: int) -> int:
    """Worst-case magnitude of any ledger scalar or query intermediate when
    events run no later than ``T = max_release + total_units`` (the serial
    makespan bound, valid for any greedy schedule on any subcoalition)."""
    t = max_release + total_units + 1
    u = total_units
    m = max(n_machines, 1)
    # units*t + wstart + rcount*(t²+t) + rsum*(2t+1) + rsq, each term bounded
    # with units <= U, wstart <= p·s + p² <= 2·U·t, rcount <= M,
    # rsum <= M·t, rsq <= M·t²  (starts and finishes never exceed t)
    return 4 * u * t + 6 * m * t * t + 16


def kernel_certified(workload: Workload, horizon: "int | None") -> bool:
    """True when int64 arithmetic provably cannot overflow for any event-time
    update or query on ``workload`` (the kernel precondition).  Coalition
    masks are stored as int64 rows, so workloads past 63 organizations
    (the approximation ladder's high-``k`` regime) are inadmissible and
    stay on the per-engine path."""
    if workload.n_orgs > 63:
        return False
    total = sum(j.size for j in workload.jobs)
    rel = max((j.release for j in workload.jobs), default=0)
    if horizon is not None:
        rel = max(rel, horizon)
    return _overflow_bound(total, rel, workload.n_machines) < _QUERY_CAP


class FleetKernel:
    """Structure-of-arrays lockstep simulation of one fleet of coalition
    engines over a frozen (but online-extensible) workload.

    Parameters
    ----------
    workload:
        The shared problem instance; every row simulates a sub-coalition of
        its organizations over its machine layout (canonical global ids).
    masks:
        One nonzero coalition bitmask per row, in fleet registration order.
    horizon:
        Optional stop time: greedy fills are suppressed at ``t >= horizon``
        (completions and releases still process, like
        :meth:`~repro.core.engine.ClusterEngine.advance_to`).
    events:
        The owning fleet's shared :class:`~repro.core.events.EventQueue`, or
        ``None`` when the fleet does not track decision events; batched
        starts push their completion times into it.
    """

    def __init__(
        self,
        workload: Workload,
        masks: "Iterable[int]",
        horizon: "int | None" = None,
        events=None,
    ) -> None:
        self.workload = workload
        self.horizon = horizon
        self.events = events
        self.masks = list(masks)
        self.k = workload.n_orgs
        n = len(self.masks)
        self.n = n
        k = self.k
        self._row = {m: i for i, m in enumerate(self.masks)}
        mask_arr = np.array(self.masks, dtype=np.int64)
        self.member = (mask_arr[:, None] >> np.arange(k, dtype=np.int64)) & 1
        self.member = self.member.astype(bool)

        # --- machines (canonical global ids) --------------------------------
        owners: list[int] = []
        for org in workload.organizations:
            owners.extend([org.id] * org.machines)
        self.machine_org = np.array(owners, dtype=np.int64)
        self.n_mach = len(owners)
        self.has_machine = (
            self.member[:, self.machine_org]
            if self.n_mach
            else np.zeros((n, 0), dtype=bool)
        )
        self.free = self.has_machine.copy()
        self.free_count = self.free.sum(axis=1).astype(np.int64)
        self.finish = np.full((n, self.n_mach), _FAR, dtype=np.int64)
        self.run_org = np.zeros((n, self.n_mach), dtype=np.int64)
        self.run_start = np.zeros((n, self.n_mach), dtype=np.int64)

        # --- shared job streams (canonical per-org order) -------------------
        per_org: list[list[Job]] = [[] for _ in range(k)]
        for j in sorted(workload.jobs):
            per_org[j.org].append(j)
        self.jobs_flat: list[Job] = [j for org in per_org for j in org]
        counts = np.array([len(o) for o in per_org], dtype=np.int64)
        self.org_start = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(counts, out=self.org_start[1:])
        # one trailing sentinel pads the flat arrays so clipped gathers of an
        # exhausted / empty organization stay in bounds (never selected)
        self.rel_flat = np.fromiter(
            (j.release for j in self.jobs_flat),
            dtype=np.int64,
            count=len(self.jobs_flat),
        )
        self.size_flat = np.fromiter(
            (j.size for j in self.jobs_flat),
            dtype=np.int64,
            count=len(self.jobs_flat),
        )
        self.rel_flat = np.append(self.rel_flat, _FAR)
        self.size_flat = np.append(self.size_flat, 1)

        #: global per-org released-job counts (shared by every row)
        self.released = np.zeros(k, dtype=np.int64)
        #: per-(row, org) started-job counts; row e's FIFO queue for org u is
        #: the canonical org-u jobs in [started[e,u], released[u]).  Non-member
        #: cells hold the _FAR sentinel so ``started < released`` alone is the
        #: waiting predicate (no separate member mask in the hot loops).
        self.started = np.zeros((n, k), dtype=np.int64)
        self.started[~self.member] = _FAR

        # --- psi_sp ledgers ((n_engines, n_orgs) int64, certified exact) ---
        # by-machine-owner aggregates are *not* kept hot: they are exactly
        # reconstructible from the start log (DIRECTCONTR-style queries and
        # materialization are rare; completions are the hot path)
        self.done_units = np.zeros((n, k), dtype=np.int64)
        self.done_wstart = np.zeros((n, k), dtype=np.int64)
        self.rcount = np.zeros((n, k), dtype=np.int64)
        self.rsum = np.zeros((n, k), dtype=np.int64)
        self.rsq = np.zeros((n, k), dtype=np.int64)
        self.version = np.zeros(n, dtype=np.int64)

        # --- global chronological start log (SoA, grown geometrically) -----
        cap = 256
        self._log_row = np.empty(cap, dtype=np.int64)
        self._log_start = np.empty(cap, dtype=np.int64)
        self._log_mach = np.empty(cap, dtype=np.int64)
        self._log_job = np.empty(cap, dtype=np.int64)
        self._log_len = 0

        self.t = 0
        self._used = False
        # running certification inputs (extended by submit)
        self._total_units = int(self.size_flat[:-1].sum())
        self._max_release = int(self.rel_flat[:-1].max()) if len(self.jobs_flat) else 0
        if horizon is not None:
            self._max_release = max(self._max_release, horizon)

        self._head_rel = np.full(k, _FAR, dtype=np.int64)
        self._org_clip = np.maximum(
            self.org_start[1:] - self.org_start[:-1] - 1, 0
        )
        self._refresh_head_rel()
        self._next_fin = _FAR

    # ------------------------------------------------------------------
    # event bookkeeping
    # ------------------------------------------------------------------
    def _refresh_head_rel(self) -> None:
        idx = np.minimum(self.org_start[:-1] + self.released, self.org_start[1:])
        have = self.org_start[:-1] + self.released < self.org_start[1:]
        self._head_rel = np.where(have, self.rel_flat[idx], _FAR)
        self._next_rel = int(self._head_rel.min()) if self.k else _FAR

    def next_event_time(self) -> "int | None":
        """Next release or completion strictly tracking the engines' union
        (``None`` when exhausted or at/after the horizon)."""
        t = min(self._next_fin, self._next_rel)
        if t >= _FAR:
            return None
        if self.horizon is not None and t >= self.horizon:
            return None
        return t

    def has_event_at_or_before(self, t: int) -> bool:
        return min(self._next_fin, self._next_rel) <= t

    # ------------------------------------------------------------------
    # lockstep advancement
    # ------------------------------------------------------------------
    def _complete_upto(self, t: int) -> "np.ndarray | None":
        """Process every completion with finish ``<= t``; returns the row
        indices that completed something (or ``None`` when none did)."""
        if self._next_fin > t:
            return None
        fin = self.finish
        e, m = np.nonzero(fin <= t)
        if not e.size:
            return None
        starts = self.run_start[e, m]
        sizes = fin[e, m] - starts
        tri = sizes * starts + sizes * (sizes - 1) // 2
        orgs = self.run_org[e, m]
        np.add.at(self.done_units, (e, orgs), sizes)
        np.add.at(self.done_wstart, (e, orgs), tri)
        np.add.at(self.rcount, (e, orgs), -1)
        np.add.at(self.rsum, (e, orgs), -starts)
        np.add.at(self.rsq, (e, orgs), -(starts * starts))
        fin[e, m] = _FAR
        self.free[e, m] = True
        np.add.at(self.free_count, e, 1)
        np.add.at(self.version, e, 1)
        self._next_fin = int(fin.min()) if fin.size else _FAR
        return e

    def _release_upto(self, t: int) -> "np.ndarray | None":
        """Advance the global release pointers past every job released at
        ``<= t``; returns the org ids that released (or ``None``)."""
        if self._next_rel > t:
            return None
        hit = np.flatnonzero(self._head_rel <= t)
        for u in hit:
            lo = int(self.org_start[u] + self.released[u])
            hi = int(self.org_start[u + 1])
            self.released[u] += int(
                np.searchsorted(self.rel_flat[lo:hi], t, side="right")
            )
        self._refresh_head_rel()
        return hit

    def advance(self, t: int) -> None:
        """Process all completions and releases at times ``<= t`` for every
        row at once (the no-starts lockstep of ``CoalitionFleet.advance_all``;
        starts between events are the caller's job)."""
        if t < self.t:
            raise ValueError(f"cannot advance backwards ({self.t} -> {t})")
        self._used = True
        self._complete_upto(t)
        self._release_upto(t)
        self.t = t

    def drive_fifo(self, until: int) -> None:
        """Drive every row's own greedy FIFO loop to ``until`` (events at
        ``until`` included) in lockstep over the union of event times, then
        align all clocks with ``until`` -- the batched equivalent of
        ``engine.drive(fifo_select, until)`` per engine."""
        if until < self.t:
            raise ValueError(f"cannot advance backwards ({self.t} -> {until})")
        self._used = True
        while True:
            tn = min(self._next_fin, self._next_rel)
            if tn > until or tn >= _FAR:
                break
            comp_rows = self._complete_upto(tn)
            rel_orgs = self._release_upto(tn)
            self.t = tn
            if self.horizon is not None and tn >= self.horizon:
                continue  # completions/releases only; no starts past horizon
            touched = np.zeros(self.n, dtype=bool)
            if comp_rows is not None:
                touched[comp_rows] = True
            if rel_orgs is not None and rel_orgs.size:
                touched |= self.member[:, rel_orgs].any(axis=1)
            rows = np.flatnonzero(touched & (self.free_count > 0))
            self._fill_fifo(rows, tn)
        self.t = until

    def _fill_fifo(self, rows: np.ndarray, t: int) -> None:
        """Batched greedy-FIFO rounds: start the (earliest head release,
        lowest org) job on every still-capable row until none remains."""
        while rows.size:
            wait = self.started[rows] < self.released
            cap = (self.free_count[rows] > 0) & wait.any(axis=1)
            if not cap.all():
                rows = rows[cap]
                if not rows.size:
                    return
                wait = wait[cap]
            idx = self.org_start[:-1] + np.minimum(
                self.started[rows], self._org_clip
            )
            hr = np.where(wait, self.rel_flat[idx], _FAR)
            sel = hr.argmin(axis=1)  # first min == lowest org id tie-break
            self._start_batch(rows, sel, t)

    def fill_rows(self, rows: np.ndarray, keys: np.ndarray, t: int) -> None:
        """Batched ``fill_capacity``: repeatedly start the FIFO-head job of
        the waiting organization maximizing ``keys[row, org]`` (ties: lowest
        org id) on every row while it has a free machine and waiting work.

        ``keys`` is aligned with ``rows`` (shape ``(len(rows), n_orgs)``) and
        must be exact in int64 (the caller guards the subtraction).
        """
        self._used = True
        keys = np.asarray(keys, dtype=np.int64)
        while rows.size:
            wait = self.started[rows] < self.released
            cap = (self.free_count[rows] > 0) & wait.any(axis=1)
            if not cap.all():
                rows = rows[cap]
                keys = keys[cap]
                wait = wait[cap]
            if not rows.size:
                return
            masked = np.where(wait, keys, _I64_MIN)
            sel = masked.argmax(axis=1)  # first max == lowest org id tie-break
            self._start_batch(rows, sel, t)

    def _start_batch(self, rows: np.ndarray, sel: np.ndarray, t: int) -> None:
        """Start org ``sel[i]``'s FIFO-head job on row ``rows[i]``'s lowest
        free machine, for all ``i`` at once."""
        jidx = self.started[rows, sel]
        flat = self.org_start[sel] + jidx
        fins = t + self.size_flat[flat]
        mach = self.free[rows].argmax(axis=1)  # first True == lowest free id
        self.finish[rows, mach] = fins
        self.run_org[rows, mach] = sel
        self.run_start[rows, mach] = t
        self.free[rows, mach] = False
        self.free_count[rows] -= 1
        self.started[rows, sel] += 1
        self.rcount[rows, sel] += 1
        self.rsum[rows, sel] += t
        self.rsq[rows, sel] += t * t
        self.version[rows] += 1
        nf = int(fins.min())
        if nf < self._next_fin:
            self._next_fin = nf
        self._log_append(rows, mach, flat, t)
        if self.events is not None:
            for end in set(fins.tolist()):
                self.events.push(end)

    def _log_append(self, rows, mach, flat, t) -> None:
        b = len(rows)
        need = self._log_len + b
        if need > len(self._log_row):
            cap = max(need, 2 * len(self._log_row))
            for name in ("_log_row", "_log_start", "_log_mach", "_log_job"):
                old = getattr(self, name)
                new = np.empty(cap, dtype=np.int64)
                new[: self._log_len] = old[: self._log_len]
                setattr(self, name, new)
        s = slice(self._log_len, need)
        self._log_row[s] = rows
        self._log_start[s] = t
        self._log_mach[s] = mach
        self._log_job[s] = flat
        self._log_len = need

    # ------------------------------------------------------------------
    # single-row actions (the per-engine API surface)
    # ------------------------------------------------------------------
    def start_row(
        self, row: int, org: int, machine: "int | None" = None, *, t=None
    ) -> ScheduledJob:
        """Start ``org``'s FIFO-head job on one row (explicit or lowest-id
        free machine) -- the kernel's ``engine.start_next``."""
        self._used = True
        t = self.t if t is None else t
        if not (
            0 <= org < self.k
            and self.member[row, org]
            and self.started[row, org] < self.released[org]
        ):
            raise ValueError(f"org {org} has no waiting job at t={t}")
        if self.free_count[row] <= 0:
            raise ValueError(f"no free machine at t={t}")
        if machine is None:
            machine = int(self.free[row].argmax())
        elif not (0 <= machine < self.n_mach and self.free[row, machine]):
            raise ValueError(f"machine {machine} is not free at t={t}")
        flat = int(self.org_start[org] + self.started[row, org])
        job = self.jobs_flat[flat]
        self.finish[row, machine] = t + job.size
        self.run_org[row, machine] = org
        self.run_start[row, machine] = t
        self.free[row, machine] = False
        self.free_count[row] -= 1
        self.started[row, org] += 1
        self.rcount[row, org] += 1
        self.rsum[row, org] += t
        self.rsq[row, org] += t * t
        self.version[row] += 1
        if t + job.size < self._next_fin:
            self._next_fin = t + job.size
        self._log_append(
            np.array([row], dtype=np.int64),
            np.array([machine], dtype=np.int64),
            np.array([flat], dtype=np.int64),
            t,
        )
        return ScheduledJob(t, machine, job)

    @staticmethod
    def _splice_one(arr: np.ndarray, pos: int, value: int) -> np.ndarray:
        out = np.empty(len(arr) + 1, dtype=np.int64)
        out[:pos] = arr[:pos]
        out[pos] = value
        out[pos + 1 :] = arr[pos:]
        return out

    def submit(self, job: Job) -> None:
        """Inject one job into the shared stream (online ingestion): every
        row covering ``job.org`` sees it, in canonical order.  Raises
        :class:`KernelUnsafe` *before mutating* when absorbing the job could
        break the int64 certification."""
        if job.release < self.t:
            raise ValueError(
                f"cannot submit into the past (release {job.release} < "
                f"engine time {self.t})"
            )
        total = self._total_units + job.size
        rel = max(self._max_release, job.release)
        if _overflow_bound(total, rel, self.n_mach) >= _QUERY_CAP:
            raise KernelUnsafe("job pushes the int64 certification bound")
        self._used = True
        u = job.org
        lo = int(self.org_start[u] + self.released[u])
        hi = int(self.org_start[u + 1])
        pos = lo + bisect_right(self.jobs_flat[lo:hi], job)
        self.jobs_flat.insert(pos, job)
        # manual splice: ~5x cheaper than np.insert's generic machinery on
        # this per-op hot path (online ingest runs it once per job)
        self.rel_flat = self._splice_one(self.rel_flat, pos, job.release)
        self.size_flat = self._splice_one(self.size_flat, pos, job.size)
        self.org_start[u + 1 :] += 1
        # log/job indices at or past the insertion point shift by one
        if self._log_len:
            live = self._log_job[: self._log_len]
            live[live >= pos] += 1
        self._total_units = total
        self._max_release = rel
        self._org_clip = np.maximum(
            self.org_start[1:] - self.org_start[:-1] - 1, 0
        )
        self._refresh_head_rel()

    def submit_many(self, jobs: "list[Job]") -> None:
        """Inject a whole ingest batch into the shared stream with *one*
        certification check and one set of array splices (amortizing the
        per-op :meth:`submit` cost).  Raises :class:`KernelUnsafe` before
        any mutation when absorbing the batch could break the int64
        certification -- the batch is all-or-nothing, so the fleet's
        materialize-and-retry escape hatch sees a consistent stream.

        Equivalent to submitting the jobs one by one in any order: each
        insertion position is computed against the *original* stream and
        ``np.insert`` places simultaneous insertions exactly where
        sequential ones would land (values at duplicate positions keep
        their given order, which org-major sorting makes the stream
        order).
        """
        if len(jobs) == 1:
            self.submit(jobs[0])
            return
        total = self._total_units
        rel = self._max_release
        for job in jobs:
            if job.release < self.t:
                raise ValueError(
                    f"cannot submit into the past (release {job.release} < "
                    f"engine time {self.t})"
                )
            total += job.size
            if job.release > rel:
                rel = job.release
        if _overflow_bound(total, rel, self.n_mach) >= _QUERY_CAP:
            raise KernelUnsafe("batch pushes the int64 certification bound")
        self._used = True
        # org-major order: two jobs of *different* orgs can share a flat
        # position only at an org-window boundary, where the lower org's
        # job must land first; within an org the canonical (release,
        # index) order is the stream order
        ordered = sorted(jobs, key=lambda j: (j.org, j))
        pos = np.empty(len(ordered), dtype=np.int64)
        for i, job in enumerate(ordered):
            u = job.org
            lo = int(self.org_start[u] + self.released[u])
            hi = int(self.org_start[u + 1])
            pos[i] = lo + bisect_right(self.jobs_flat[lo:hi], job)
        # splice the Job list by merging in position order (stable: equal
        # positions keep the canonical job order, matching np.insert)
        order = np.argsort(pos, kind="stable")
        new_jobs: "list[Job]" = []
        prev = 0
        for oi in order:
            p = int(pos[oi])
            new_jobs.extend(self.jobs_flat[prev:p])
            new_jobs.append(ordered[int(oi)])
            prev = p
        new_jobs.extend(self.jobs_flat[prev:])
        self.jobs_flat = new_jobs
        self.rel_flat = np.insert(
            self.rel_flat, pos, [j.release for j in ordered]
        )
        self.size_flat = np.insert(
            self.size_flat, pos, [j.size for j in ordered]
        )
        counts = np.zeros(self.k, dtype=np.int64)
        np.add.at(counts, [j.org for j in ordered], 1)
        self.org_start[1:] += np.cumsum(counts)
        # a live log/job index f shifts by the number of insertions at or
        # before it (the simultaneous form of the per-op ``>= pos`` bump)
        if self._log_len:
            spos = np.sort(pos)
            live = self._log_job[: self._log_len]
            live += np.searchsorted(spos, live, side="right")
        self._total_units = total
        self._max_release = rel
        self._org_clip = np.maximum(
            self.org_start[1:] - self.org_start[:-1] - 1, 0
        )
        self._refresh_head_rel()

    # ------------------------------------------------------------------
    # batched queries
    # ------------------------------------------------------------------
    def capable_rows(self) -> np.ndarray:
        """Boolean row mask: a free machine *and* a waiting job."""
        waiting = (self.started < self.released).any(axis=1)
        return (self.free_count > 0) & waiting

    def waiting_matrix(self) -> np.ndarray:
        """Per-(row, org) released-but-unstarted job counts."""
        return np.where(self.member, self.released - self.started, 0)

    def _query_safe(self, t: int) -> bool:
        """Certify one int64 evaluation at ``t`` -- CoalitionFleet's
        ``_vector_safe`` from the construction-time component bounds (every
        ledger scalar is bounded by the certified ``U``/``T``/``M``
        quantities, so no per-query column maxima are needed)."""
        if t < 0:
            return False
        T = self._max_release + self._total_units + 1
        if t <= T:  # certified once at construction / submit
            return True
        tt = t * t + t
        if tt >= _QUERY_CAP:
            return False
        u = self._total_units
        m = max(self.n_mach, 1)
        bound = (
            u * t + 2 * u * T + m * tt + m * T * (2 * t + 1) + m * T * T
        )
        return bound < _QUERY_CAP

    def _ledger_rows(self):
        """Row totals of the five value aggregates (int64 vectors)."""
        return (
            self.done_units.sum(axis=1),
            self.done_wstart.sum(axis=1),
            self.rcount.sum(axis=1),
            self.rsum.sum(axis=1),
            self.rsq.sum(axis=1),
        )

    def values_i64(self, t: int) -> "np.ndarray | None":
        """All row values at ``t`` (``t >= self.t``) as int64, or ``None``
        when the per-query overflow guard cannot certify the evaluation."""
        if not self._query_safe(t):
            return None
        units, wstart, rc, rs, rq = self._ledger_rows()
        return units * t - wstart + (rc * (t * t + t) - rs * (2 * t + 1) + rq) // 2

    def values_exact(self, t: int) -> "list[int]":
        """All row values at ``t >= self.t`` in exact Python ints (the
        overflow fallback; the int64 ledgers are exact by certification)."""
        units, wstart, rc, rs, rq = (
            col.tolist() for col in self._ledger_rows()
        )
        tt = t * t + t
        return [
            u * t - w + (c * tt - s * (2 * t + 1) + q) // 2
            for u, w, c, s, q in zip(units, wstart, rc, rs, rq)
        ]

    def values_retro(self, t: int) -> "np.ndarray":
        """All row values at a *past* time ``t < self.t``, re-derived from
        the chronological start log (int64-safe: ``t`` precedes certified
        event times)."""
        n = self._log_len
        out = np.zeros(self.n, dtype=np.int64)
        if not n:
            return out
        starts = self._log_start[:n]
        sizes = self.size_flat[self._log_job[:n]]
        c = np.clip(t - starts, 0, sizes)
        vals = c * (t - starts) - c * (c - 1) // 2
        np.add.at(out, self._log_row[:n], vals)
        return out

    def psis_matrix(self, t: int) -> "np.ndarray | None":
        """Per-(row, org) psi_sp at ``t >= self.t`` as int64, or ``None``
        when the per-query guard trips (fall back to exact row queries)."""
        if not self._query_safe(t):
            return None
        return (
            self.done_units * t
            - self.done_wstart
            + (
                self.rcount * (t * t + t)
                - self.rsum * (2 * t + 1)
                + self.rsq
            )
            // 2
        )

    # ------------------------------------------------------------------
    # per-row exact queries (view/materialization substrate)
    # ------------------------------------------------------------------
    def row_log_indices(self, row: int) -> np.ndarray:
        return np.flatnonzero(self._log_row[: self._log_len] == row)

    def row_entries(self, row: int) -> "list[ScheduledJob]":
        """The row's start log in chronological order (exact objects)."""
        idx = self.row_log_indices(row)
        jobs = self.jobs_flat
        return [
            ScheduledJob(
                int(self._log_start[i]),
                int(self._log_mach[i]),
                jobs[int(self._log_job[i])],
            )
            for i in idx
        ]

    def row_psis(self, row: int, t: "int | None" = None) -> "list[int]":
        """One row's per-org psi_sp at ``t`` in exact Python ints (matches
        ``ClusterEngine.psis`` for past, present and future ``t``)."""
        t = self.t if t is None else t
        if t < self.t:
            out = [0] * self.k
            for e in self.row_entries(row):
                out[e.job.org] += _partial_psi(e.start, e.job.size, t)
            return out
        du = self.done_units[row].tolist()
        dw = self.done_wstart[row].tolist()
        out = [u * t - w for u, w in zip(du, dw)]
        for m in np.flatnonzero(self.finish[row] < _FAR):
            s = int(self.run_start[row, m])
            size = int(self.finish[row, m]) - s
            out[int(self.run_org[row, m])] += _partial_psi(s, size, t)
        return out

    def row_psis_by_machine_owner(
        self, row: int, t: "int | None" = None
    ) -> "list[int]":
        """psi_sp of the work executed on each org's machines, re-derived
        from the start log (``_partial_psi`` caps at the job size, so one
        formula covers completed, running and retrospective queries)."""
        t = self.t if t is None else t
        out = [0] * self.k
        for e in self.row_entries(row):
            out[int(self.machine_org[e.machine])] += _partial_psi(
                e.start, e.job.size, t
            )
        return out

    def row_value(self, row: int, t: "int | None" = None) -> int:
        t = self.t if t is None else t
        if t < self.t:
            total = 0
            for e in self.row_entries(row):
                total += _partial_psi(e.start, e.job.size, t)
            return total
        return sum(self.row_psis(row, t))

    # ------------------------------------------------------------------
    # materialization (the escape hatch back to real engines)
    # ------------------------------------------------------------------
    def materialize_row(self, row: int) -> ClusterEngine:
        """Reconstruct this row as a real, bit-identical
        :class:`~repro.core.engine.ClusterEngine` (same schedule, ledgers,
        stream position, free set and pending queues)."""
        mask = self.masks[row]
        members = tuple(sorted(iter_members(mask)))
        eng = object.__new__(ClusterEngine)
        eng.workload = self.workload
        eng.n_orgs = self.k
        eng.members = members
        eng.horizon = self.horizon
        member_set = set(members)
        eng.machine_owner = {
            int(m): int(self.machine_org[m])
            for m in range(self.n_mach)
            if self.has_machine[row, m]
        }
        eng.n_machines = len(eng.machine_owner)
        eng._free = sorted(int(m) for m in np.flatnonzero(self.free[row]))
        eng._free_set = set(eng._free)
        heapq.heapify(eng._free)
        # shared canonical stream, restricted to members (includes submits)
        stream = sorted(j for j in self.jobs_flat if j.org in member_set)
        eng._stream = stream
        eng._stream_pos = int(
            sum(self.released[u] for u in members)
        )
        eng._pending = {}
        for u in members:
            lo = int(self.org_start[u] + self.started[row, u])
            hi = int(self.org_start[u] + self.released[u])
            eng._pending[u] = deque(self.jobs_flat[lo:hi])
        eng._n_waiting = int(sum(len(q) for q in eng._pending.values()))
        eng.t = self.t
        running_m = np.flatnonzero(self.finish[row] < _FAR)
        eng._busy = [
            (int(self.finish[row, m]), int(m)) for m in running_m
        ]
        heapq.heapify(eng._busy)
        eng._running = {}
        for m in running_m:
            s = int(self.run_start[row, m])
            size = int(self.finish[row, m]) - s
            flat = self._find_running_job(row, int(m), s, size)
            eng._running[int(m)] = RunningJob(flat, s, int(m))
        eng._retiring = set()
        eng._retired = set()
        eng._done_units = self.done_units[row].tolist()
        eng._done_wstart = self.done_wstart[row].tolist()
        # by-machine-owner aggregates over *completed* jobs, from the log
        eng._done_units_mach = [0] * self.k
        eng._done_wstart_mach = [0] * self.k
        for e in self.row_entries(row):
            if e.end <= self.t:
                p = e.job.size
                owner = int(self.machine_org[e.machine])
                eng._done_units_mach[owner] += p
                eng._done_wstart_mach[owner] += p * e.start + p * (p - 1) // 2
        eng._tot_units = int(self.done_units[row].sum())
        eng._tot_wstart = int(self.done_wstart[row].sum())
        eng._run_start_sum = int(self.rsum[row].sum())
        eng._run_start_sq = int(self.rsq[row].sum())
        eng.version = int(self.version[row])
        entries = self.row_entries(row)
        eng._log = entries
        eng._completed = sorted(
            (e for e in entries if e.end <= self.t),
            key=lambda e: (e.end, e.machine),
        )
        return eng

    def _find_running_job(self, row: int, machine: int, start: int, size: int) -> Job:
        """The Job object running on ``(row, machine)`` via the start log."""
        idx = self.row_log_indices(row)
        for i in idx[::-1]:  # most recent start on that machine wins
            if int(self._log_mach[i]) == machine:
                return self.jobs_flat[int(self._log_job[i])]
        raise RuntimeError(
            f"no log entry for running job on row {row} machine {machine}"
        )  # pragma: no cover - running implies a logged start


class KernelEngineView:
    """Read-only :class:`~repro.core.engine.ClusterEngine` facade over one
    kernel row.

    Every accessor first checks whether the owning fleet has materialized
    (escaped to real engines) and then delegates, so a held view stays valid
    across materialization.  Mutating calls trigger materialization
    themselves and are forwarded to the real engine.
    """

    __slots__ = ("_fleet", "_mask", "_bound")

    def __init__(self, fleet, mask: int):
        self._fleet = fleet
        self._mask = mask
        #: set at fleet materialization: the real engine this view stands
        #: for, *permanently* (callers expect engine() handles to keep
        #: pointing at the same simulation even after the fleet row is
        #: swapped by replace_engine, exactly like real engine references)
        self._bound: "ClusterEngine | None" = None

    # -- delegation plumbing -------------------------------------------------
    def _real(self) -> "ClusterEngine | None":
        if self._bound is not None:
            return self._bound
        return self._fleet._engines.get(self._mask)

    def _escape(self) -> ClusterEngine:
        self._fleet._materialize()
        return self._real()

    def _kr(self):
        """(kernel, row) for the live-kernel path (caller checked _real)."""
        kern = self._fleet.kernel  # property: builds a stale kernel lazily
        return kern, kern._row[self._mask]

    # -- identity ------------------------------------------------------------
    @property
    def workload(self):
        real = self._real()
        return real.workload if real is not None else self._fleet.workload

    @property
    def horizon(self):
        real = self._real()
        return real.horizon if real is not None else self._fleet.horizon

    @property
    def members(self) -> "tuple[int, ...]":
        real = self._real()
        if real is not None:
            return real.members
        return tuple(sorted(iter_members(self._mask)))

    @property
    def n_orgs(self) -> int:
        real = self._real()
        if real is not None:
            return real.n_orgs
        return self._fleet.workload.n_orgs

    @property
    def t(self) -> int:
        real = self._real()
        if real is not None:
            return real.t
        return self._fleet.kernel.t

    @property
    def version(self) -> int:
        real = self._real()
        if real is not None:
            return real.version
        kern, row = self._kr()
        return int(kern.version[row])

    @property
    def machine_owner(self) -> "dict[int, int]":
        real = self._real()
        if real is not None:
            return real.machine_owner
        kern, row = self._kr()
        return {
            int(m): int(kern.machine_org[m])
            for m in np.flatnonzero(kern.has_machine[row])
        }

    @property
    def n_machines(self) -> int:
        real = self._real()
        if real is not None:
            return real.n_machines
        kern, row = self._kr()
        return int(kern.has_machine[row].sum())

    # -- scheduler-facing state ---------------------------------------------
    @property
    def free_count(self) -> int:
        real = self._real()
        if real is not None:
            return real.free_count
        kern, row = self._kr()
        return int(kern.free_count[row])

    def free_machines(self) -> "list[int]":
        real = self._real()
        if real is not None:
            return real.free_machines()
        kern, row = self._kr()
        return [int(m) for m in np.flatnonzero(kern.free[row])]

    def has_waiting(self) -> bool:
        real = self._real()
        if real is not None:
            return real.has_waiting()
        kern, row = self._kr()
        return bool((kern.started[row] < kern.released).any())

    def waiting_count(self, org: int) -> int:
        real = self._real()
        if real is not None:
            return real.waiting_count(org)
        kern, row = self._kr()
        if not kern.member[row, org]:
            raise KeyError(org)
        return int(kern.released[org] - kern.started[row, org])

    def waiting_orgs(self) -> "list[int]":
        real = self._real()
        if real is not None:
            return real.waiting_orgs()
        kern, row = self._kr()
        return [
            int(u)
            for u in np.flatnonzero(kern.started[row] < kern.released)
        ]

    def head_release(self, org: int) -> int:
        real = self._real()
        if real is not None:
            return real.head_release(org)
        kern, row = self._kr()
        if kern.started[row, org] >= kern.released[org]:
            raise IndexError(f"org {org} has no waiting job")
        return int(kern.rel_flat[kern.org_start[org] + kern.started[row, org]])

    def running_count(self, org: int) -> int:
        real = self._real()
        if real is not None:
            return real.running_count(org)
        kern, row = self._kr()
        return int(kern.rcount[row, org])

    def running_counts(self) -> "list[int]":
        real = self._real()
        if real is not None:
            return real.running_counts()
        kern, row = self._kr()
        return kern.rcount[row].tolist()

    def running_on(self, machine: int) -> "RunningJob | None":
        real = self._real()
        if real is not None:
            return real.running_on(machine)
        kern, row = self._kr()
        if not (0 <= machine < kern.n_mach) or kern.finish[row, machine] >= _FAR:
            return None
        s = int(kern.run_start[row, machine])
        size = int(kern.finish[row, machine]) - s
        return RunningJob(kern._find_running_job(row, machine, s, size), s, machine)

    def consumed_cpu(self, org: int, t: "int | None" = None) -> int:
        real = self._real()
        if real is not None:
            return real.consumed_cpu(org, t)
        kern, row = self._kr()
        t = kern.t if t is None else t
        total = int(kern.done_units[row, org])
        for m in np.flatnonzero(kern.finish[row] < _FAR):
            if int(kern.run_org[row, m]) == org:
                total += min(t, int(kern.finish[row, m])) - int(
                    kern.run_start[row, m]
                )
        return total

    def machine_counts(self) -> "list[int]":
        real = self._real()
        if real is not None:
            return real.machine_counts()
        kern, row = self._kr()
        return np.bincount(
            kern.machine_org[kern.has_machine[row]], minlength=kern.k
        ).tolist()

    # -- utilities -----------------------------------------------------------
    def psi(self, org: int, t: "int | None" = None) -> int:
        real = self._real()
        if real is not None:
            return real.psi(org, t)
        kern, row = self._kr()
        return kern.row_psis(row, t)[org]

    def psis(self, t: "int | None" = None) -> "list[int]":
        real = self._real()
        if real is not None:
            return real.psis(t)
        kern, row = self._kr()
        return kern.row_psis(row, t)

    def psis_by_machine_owner(self, t: "int | None" = None) -> "list[int]":
        real = self._real()
        if real is not None:
            return real.psis_by_machine_owner(t)
        kern, row = self._kr()
        return kern.row_psis_by_machine_owner(row, t)

    def value(self, t: "int | None" = None) -> int:
        real = self._real()
        if real is not None:
            return real.value(t)
        kern, row = self._kr()
        return kern.row_value(row, t)

    def ledger(self) -> "tuple[int, int, int, int, int]":
        real = self._real()
        if real is not None:
            return real.ledger()
        kern, row = self._kr()
        return (
            int(kern.done_units[row].sum()),
            int(kern.done_wstart[row].sum()),
            int(kern.rcount[row].sum()),
            int(kern.rsum[row].sum()),
            int(kern.rsq[row].sum()),
        )

    # -- event iteration -----------------------------------------------------
    def next_event_time(self) -> "int | None":
        real = self._real()
        if real is not None:
            return real.next_event_time()
        kern, row = self._kr()
        cands = []
        fin = kern.finish[row]
        if fin.size:
            nf = int(fin.min())
            if nf < _FAR:
                cands.append(nf)
        for u in np.flatnonzero(kern.member[row]):
            lo = int(kern.org_start[u] + kern.released[u])
            if lo < int(kern.org_start[u + 1]):
                cands.append(int(kern.rel_flat[lo]))
        if not cands:
            return None
        t = min(cands)
        if kern.horizon is not None and t >= kern.horizon:
            return None
        return t

    def has_event_at_or_before(self, t: int) -> bool:
        real = self._real()
        if real is not None:
            return real.has_event_at_or_before(t)
        kern, row = self._kr()
        fin = kern.finish[row]
        if fin.size and int(fin.min()) <= t:
            return True
        for u in np.flatnonzero(kern.member[row]):
            lo = int(kern.org_start[u] + kern.released[u])
            if lo < int(kern.org_start[u + 1]) and int(kern.rel_flat[lo]) <= t:
                return True
        return False

    def is_idle(self) -> bool:
        real = self._real()
        if real is not None:
            return real.is_idle()
        kern, row = self._kr()
        return int(kern.rcount[row].sum()) == 0 and not self.has_waiting()

    def done(self) -> bool:
        real = self._real()
        if real is not None:
            return real.done()
        kern, row = self._kr()
        member = kern.member[row]
        released_all = bool(
            (
                kern.released[member]
                == (kern.org_start[1:] - kern.org_start[:-1])[member]
            ).all()
        )
        return released_all and self.is_idle()

    # -- results -------------------------------------------------------------
    @property
    def completed_log(self) -> "list[ScheduledJob]":
        real = self._real()
        if real is not None:
            return real.completed_log
        kern, row = self._kr()
        return sorted(
            (e for e in kern.row_entries(row) if e.end <= kern.t),
            key=lambda e: (e.end, e.machine),
        )

    def schedule(self) -> Schedule:
        real = self._real()
        if real is not None:
            return real.schedule()
        kern, row = self._kr()
        return Schedule(kern.row_entries(row))

    def busy_units(self, t: "int | None" = None) -> int:
        real = self._real()
        if real is not None:
            return real.busy_units(t)
        kern, row = self._kr()
        t = kern.t if t is None else t
        return sum(
            min(e.job.size, max(0, t - e.start)) for e in kern.row_entries(row)
        )

    def utilization(self, t: "int | None" = None) -> float:
        real = self._real()
        if real is not None:
            return real.utilization(t)
        t = self._fleet.kernel.t if t is None else t
        n_mach = self.n_machines
        if t <= 0 or n_mach == 0:
            return 0.0
        return self.busy_units(t) / (t * n_mach)

    # -- mutators (materialize, then delegate) -------------------------------
    def start_next(self, org: int, machine: "int | None" = None) -> ScheduledJob:
        real = self._real()
        if real is not None:
            return real.start_next(org, machine=machine)
        kern, row = self._kr()
        return kern.start_row(row, org, machine)

    def submit(self, job: Job) -> None:
        real = self._real() or self._escape()
        real.submit(job)

    def add_machine(self, machine: int, owner: int) -> None:
        real = self._real() or self._escape()
        real.add_machine(machine, owner)

    def retire_machine(self, machine: int) -> None:
        real = self._real() or self._escape()
        real.retire_machine(machine)

    def add_member(self, org: int) -> None:
        real = self._real() or self._escape()
        real.add_member(org)

    def remove_member(self, org: int) -> None:
        real = self._real() or self._escape()
        real.remove_member(org)

    def fork(self) -> ClusterEngine:
        real = self._real() or self._escape()
        return real.fork()

    def advance_to(self, t: int) -> None:
        real = self._real() or self._escape()
        real.advance_to(t)

    def drive(self, select, until: "int | None" = None) -> None:
        real = self._real() or self._escape()
        real.drive(select, until=until)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KernelEngineView(mask={self._mask:#b})"
