"""Cross-instance structure-of-arrays simulation kernel (DESIGN.md §10).

:class:`~repro.core.kernel.FleetKernel` batches the coalition engines of
*one* problem instance into 2-D int64 arrays sharing a single clock.  The
experiment pipeline runs *many independent instances* of the same shape
(every repeat of a scenario sweep), and per-instance kernels still pay the
full numpy dispatch count once per instance per event.
:class:`MultiInstanceKernel` applies the same trick one level up: the
per-coalition rows of many instances are stacked into one set of arrays and
advanced in **jagged lockstep** -- every sweep moves every live instance to
its *own* next event time, so one masked argmin/argmax pass serves N
instances and the sweep count is ``max_i E_i`` instead of ``sum_i E_i``.

Layout (local coordinates, padded to the batch maxima):

* rows are grouped per instance (``row0[i] .. row0[i+1]``), ``row_inst``
  maps each row back to its instance;
* organization columns are the instance's *own* org ids ``0..k_i-1``
  (padding columns are non-member: ``started`` holds the ``_FAR`` sentinel
  so ``started < released`` stays the waiting predicate);
* machine columns are the instance's *own* canonical machine ids
  ``0..M_i-1`` (padding columns are absent: never free, finish ``_FAR``),
  so logged starts translate directly into each instance's schedule;
* job streams concatenate per-(instance, org) segments of the canonical
  per-org arrays, addressed by ``seg_start``/``seg_len`` -- the
  two-dimensional form of ``FleetKernel.org_start``.

Because organization and machine columns are instance-local, **no
arithmetic ever mixes rows of different instances**: completions scatter by
(row, local org), releases advance per-(instance, org) pointers, and value
queries evaluate each row at its own instance clock (``t_inst[row_inst]``).
Certification is therefore *per instance*: instance ``i`` is int64-safe iff
``_overflow_bound(U_i, T_i, M_i)`` clears the cap with its **own**
workload's totals -- one overflowing instance is simply not admitted to the
batch (the caller runs it on the stock per-instance path) and cannot evict
or perturb its siblings.  Admitted instances never trip a runtime guard:
every event time is bounded by the certified ``T_i``.

Bit-identity contract: for each admitted instance, the logged schedule is
identical to the one produced by the per-instance engines/kernel path --
the per-row rounds of :meth:`fill_rows` reproduce the per-engine selection
loop exactly (first-occurrence argmax = lowest org id, first free machine =
lowest machine id), and the jagged event iteration reproduces each
instance's own ``min(next completion, next release)`` event sequence.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .kernel import _FAR, _I64_MIN, _QUERY_CAP, KernelUnsafe, _overflow_bound
from .job import Job
from .schedule import ScheduledJob
from .workload import Workload

__all__ = ["MultiInstanceKernel", "instance_bound"]


def instance_bound(workload: Workload, horizon: "int | None") -> int:
    """The instance's certified worst-case ledger/query magnitude (the
    per-instance form of :func:`~repro.core.kernel.kernel_certified`)."""
    total = sum(j.size for j in workload.jobs)
    rel = max((j.release for j in workload.jobs), default=0)
    if horizon is not None:
        rel = max(rel, horizon)
    return _overflow_bound(total, rel, workload.n_machines)


class MultiInstanceKernel:
    """Jagged-lockstep SoA simulation of many independent instances.

    Parameters
    ----------
    items:
        One ``(workload, masks, horizon)`` triple per instance: the
        instance's workload, its coalition bitmasks in row order, and its
        stop time (``None`` = run to exhaustion).  Every instance must be
        individually int64-certified (:class:`KernelUnsafe` otherwise --
        callers are expected to pre-filter with :func:`instance_bound`).
    """

    def __init__(
        self,
        items: Sequence["tuple[Workload, Iterable[int], int | None]"],
    ) -> None:
        items = [(wl, list(masks), horizon) for wl, masks, horizon in items]
        self.B = B = len(items)
        self.workloads = [wl for wl, _, _ in items]
        self.bounds = [
            instance_bound(wl, horizon) for wl, _, horizon in items
        ]
        for i, bound in enumerate(self.bounds):
            if bound >= _QUERY_CAP:
                raise KernelUnsafe(
                    f"instance {i} fails int64 certification (bound {bound})"
                )
        self.k_max = k_max = max((wl.n_orgs for wl, _, _ in items), default=0)
        self.n_mach_max = m_max = max(
            (wl.n_machines for wl, _, _ in items), default=0
        )
        counts = [len(masks) for _, masks, _ in items]
        self.n = n = int(sum(counts))
        self.row0 = np.zeros(B, dtype=np.int64)
        np.cumsum(counts[:-1], out=self.row0[1:])
        self.row_inst = np.repeat(np.arange(B, dtype=np.int64), counts)
        self.horizon = np.array(
            [_FAR if h is None else int(h) for _, _, h in items],
            dtype=np.int64,
        )

        # --- membership (instance-local org columns) -----------------------
        self.member = np.zeros((n, k_max), dtype=bool)
        for i, (wl, masks, _) in enumerate(items):
            block = np.array(masks, dtype=np.int64)[:, None]
            bits = (block >> np.arange(wl.n_orgs, dtype=np.int64)) & 1
            self.member[
                self.row0[i] : self.row0[i] + len(masks), : wl.n_orgs
            ] = bits.astype(bool)

        # --- machines (instance-local canonical ids) -----------------------
        self.has_machine = np.zeros((n, m_max), dtype=bool)
        for i, (wl, masks, _) in enumerate(items):
            owners: list[int] = []
            for org in wl.organizations:
                owners.extend([org.id] * org.machines)
            if owners:
                lo = self.row0[i]
                self.has_machine[lo : lo + len(masks), : len(owners)] = (
                    self.member[lo : lo + len(masks)][
                        :, np.array(owners, dtype=np.int64)
                    ]
                )
        self.machine_org = np.zeros((B, m_max), dtype=np.int64)
        for i, (wl, _, _) in enumerate(items):
            col = 0
            for org in wl.organizations:
                for _ in range(org.machines):
                    self.machine_org[i, col] = org.id
                    col += 1
        self.free = self.has_machine.copy()
        self.free_count = self.free.sum(axis=1).astype(np.int64)
        self.finish = np.full((n, m_max), _FAR, dtype=np.int64)
        self.run_org = np.zeros((n, m_max), dtype=np.int64)
        self.run_start = np.zeros((n, m_max), dtype=np.int64)

        # --- job streams: per-(instance, org) segments ---------------------
        self.jobs_flat: list[Job] = []
        rel_parts: list[int] = []
        size_parts: list[int] = []
        self.seg_start = np.zeros((B, k_max), dtype=np.int64)
        self.seg_len = np.zeros((B, k_max), dtype=np.int64)
        pos = 0
        for i, (wl, _, _) in enumerate(items):
            per_org: list[list[Job]] = [[] for _ in range(wl.n_orgs)]
            for j in sorted(wl.jobs):
                per_org[j.org].append(j)
            for u in range(k_max):
                self.seg_start[i, u] = pos
                if u < wl.n_orgs:
                    jobs = per_org[u]
                    self.seg_len[i, u] = len(jobs)
                    self.jobs_flat.extend(jobs)
                    rel_parts.extend(j.release for j in jobs)
                    size_parts.extend(j.size for j in jobs)
                    pos += len(jobs)
        # trailing sentinel keeps clipped gathers of exhausted/empty/padding
        # segments in bounds (masked before use, never selected)
        self.rel_flat = np.array(rel_parts + [_FAR], dtype=np.int64)
        self.size_flat = np.array(size_parts + [1], dtype=np.int64)
        self.seg_clip = np.maximum(self.seg_len - 1, 0)

        #: per-(instance, org) released counts and per-(row, org) started
        #: counts; row r of instance i waits on org u's jobs in
        #: ``[started[r,u], released[i,u])``
        self.released = np.zeros((B, k_max), dtype=np.int64)
        self.started = np.zeros((n, k_max), dtype=np.int64)
        self.started[~self.member] = _FAR

        # --- psi_sp ledgers (instance-local org columns) -------------------
        self.done_units = np.zeros((n, k_max), dtype=np.int64)
        self.done_wstart = np.zeros((n, k_max), dtype=np.int64)
        self.rcount = np.zeros((n, k_max), dtype=np.int64)
        self.rsum = np.zeros((n, k_max), dtype=np.int64)
        self.rsq = np.zeros((n, k_max), dtype=np.int64)

        # --- chronological start log (SoA, grown geometrically) -----------
        cap = 256
        self._log_row = np.empty(cap, dtype=np.int64)
        self._log_start = np.empty(cap, dtype=np.int64)
        self._log_mach = np.empty(cap, dtype=np.int64)
        self._log_job = np.empty(cap, dtype=np.int64)
        self._log_len = 0

        #: per-instance clocks and liveness
        self.t_inst = np.zeros(B, dtype=np.int64)
        self.done = np.zeros(B, dtype=bool)
        self.head_rel = np.full((B, k_max), _FAR, dtype=np.int64)
        self._refresh_head_rel()

    # ------------------------------------------------------------------
    # event bookkeeping
    # ------------------------------------------------------------------
    def _refresh_head_rel(self) -> None:
        if not self.k_max:
            self.next_rel = np.full(self.B, _FAR, dtype=np.int64)
            return
        idx = self.seg_start + np.minimum(self.released, self.seg_clip)
        have = self.released < self.seg_len
        self.head_rel = np.where(have, self.rel_flat[idx], _FAR)
        self.next_rel = self.head_rel.min(axis=1)

    def _next_fin(self) -> np.ndarray:
        if not (self.n and self.n_mach_max):
            return np.full(self.B, _FAR, dtype=np.int64)
        row_min = self.finish.min(axis=1)
        return np.minimum.reduceat(row_min, self.row0)

    # ------------------------------------------------------------------
    # jagged lockstep advancement
    # ------------------------------------------------------------------
    def sweep(self) -> "np.ndarray | None":
        """Advance every live instance to its *own* next event time:
        process its completions and releases and move its clock.  Returns
        the ``(B,)`` bool mask of instances that advanced to a pre-horizon
        decision time (their rows are eligible for starts this sweep), or
        ``None`` when every instance is done.

        Each instance's sequence of sweep times is exactly its own
        ``min(next completion, next release)`` event iteration -- the
        decision-time stream of the per-instance event loop.  An instance
        whose next event falls at/after its horizon is finished without
        processing it (post-horizon completions cannot change the start
        log, hence not the schedule)."""
        nt = np.minimum(self._next_fin(), self.next_rel)
        live = ~self.done & (nt < _FAR)
        finished = live & (nt >= self.horizon)
        if finished.any():
            self.done |= finished
            live &= ~finished
        if not live.any():
            self.done[:] = True
            return None
        thr = np.where(live, nt, _I64_MIN)
        self._complete_upto(thr)
        self._release_upto(thr)
        self.t_inst = np.where(live, nt, self.t_inst)
        return live

    def _complete_upto(self, thr: np.ndarray) -> None:
        """Process every completion with ``finish <= thr[instance]`` (the
        per-row-threshold form of ``FleetKernel._complete_upto``)."""
        if not self.n_mach_max:
            return
        thr_row = thr[self.row_inst]
        e, m = np.nonzero(self.finish <= thr_row[:, None])
        if not e.size:
            return
        starts = self.run_start[e, m]
        sizes = self.finish[e, m] - starts
        tri = sizes * starts + sizes * (sizes - 1) // 2
        orgs = self.run_org[e, m]
        np.add.at(self.done_units, (e, orgs), sizes)
        np.add.at(self.done_wstart, (e, orgs), tri)
        np.add.at(self.rcount, (e, orgs), -1)
        np.add.at(self.rsum, (e, orgs), -starts)
        np.add.at(self.rsq, (e, orgs), -(starts * starts))
        self.finish[e, m] = _FAR
        self.free[e, m] = True
        np.add.at(self.free_count, e, 1)

    def _release_upto(self, thr: np.ndarray) -> None:
        """Advance every (instance, org) release pointer past jobs released
        at ``<= thr[instance]`` (each pointer advances once per distinct
        release time over the whole run, so the Python loop amortizes)."""
        ii, uu = np.nonzero(self.head_rel <= thr[:, None])
        if not ii.size:
            return
        for i, u in zip(ii.tolist(), uu.tolist()):
            lo = int(self.seg_start[i, u] + self.released[i, u])
            hi = int(self.seg_start[i, u] + self.seg_len[i, u])
            self.released[i, u] += int(
                np.searchsorted(
                    self.rel_flat[lo:hi], int(thr[i]), side="right"
                )
            )
        self._refresh_head_rel()

    # ------------------------------------------------------------------
    # batched queries (per-row instance clocks)
    # ------------------------------------------------------------------
    def capable_rows(self, act: np.ndarray) -> np.ndarray:
        """Rows of this sweep's active instances with a free machine and a
        waiting job (the start-eligible set)."""
        waiting = (self.started < self.released[self.row_inst]).any(axis=1)
        return act[self.row_inst] & (self.free_count > 0) & waiting

    def psis_rows(self) -> np.ndarray:
        """Per-(row, org) psi_sp, each row evaluated at its own instance
        clock.  Always int64-exact: every clock is bounded by its
        instance's certified ``T_i``, so no runtime guard is needed (the
        construction-time certification covers every sweep query)."""
        t = self.t_inst[self.row_inst]
        tc = t[:, None]
        return (
            self.done_units * tc
            - self.done_wstart
            + (
                self.rcount * (t * t + t)[:, None]
                - self.rsum * (2 * t + 1)[:, None]
                + self.rsq
            )
            // 2
        )

    # ------------------------------------------------------------------
    # batched scheduling rounds
    # ------------------------------------------------------------------
    def fill_rows(self, rows: np.ndarray, keys: np.ndarray) -> None:
        """Batched ``fill_capacity`` at per-row times: repeatedly start the
        FIFO-head job of the waiting org maximizing ``keys[row, org]``
        (ties: lowest org id) on every row while it has a free machine and
        waiting work.  ``keys`` is aligned with ``rows``; starts stamp each
        row's own instance clock."""
        keys = np.asarray(keys, dtype=np.int64)
        t_row = self.t_inst[self.row_inst[rows]]
        while rows.size:
            wait = self.started[rows] < self.released[self.row_inst[rows]]
            cap = (self.free_count[rows] > 0) & wait.any(axis=1)
            if not cap.all():
                rows = rows[cap]
                keys = keys[cap]
                t_row = t_row[cap]
                wait = wait[cap]
            if not rows.size:
                return
            masked = np.where(wait, keys, _I64_MIN)
            sel = masked.argmax(axis=1)  # first max == lowest org id
            self._start_batch(rows, sel, t_row)

    def _start_batch(
        self, rows: np.ndarray, sel: np.ndarray, t_row: np.ndarray
    ) -> None:
        inst = self.row_inst[rows]
        jidx = self.started[rows, sel]
        flat = self.seg_start[inst, sel] + jidx
        fins = t_row + self.size_flat[flat]
        mach = self.free[rows].argmax(axis=1)  # first True == lowest free id
        self.finish[rows, mach] = fins
        self.run_org[rows, mach] = sel
        self.run_start[rows, mach] = t_row
        self.free[rows, mach] = False
        self.free_count[rows] -= 1
        self.started[rows, sel] += 1
        self.rcount[rows, sel] += 1
        self.rsum[rows, sel] += t_row
        self.rsq[rows, sel] += t_row * t_row
        self._log_append(rows, mach, flat, t_row)

    def _log_append(self, rows, mach, flat, t_row) -> None:
        b = len(rows)
        need = self._log_len + b
        if need > len(self._log_row):
            cap = max(need, 2 * len(self._log_row))
            for name in ("_log_row", "_log_start", "_log_mach", "_log_job"):
                old = getattr(self, name)
                new = np.empty(cap, dtype=np.int64)
                new[: self._log_len] = old[: self._log_len]
                setattr(self, name, new)
        s = slice(self._log_len, need)
        self._log_row[s] = rows
        self._log_start[s] = t_row
        self._log_mach[s] = mach
        self._log_job[s] = flat
        self._log_len = need

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def row_entries(self, row: int) -> "list[ScheduledJob]":
        """One row's start log in chronological order (exact Job objects;
        machine ids are the owning instance's canonical ids)."""
        idx = np.flatnonzero(self._log_row[: self._log_len] == row)
        jobs = self.jobs_flat
        return [
            ScheduledJob(
                int(self._log_start[i]),
                int(self._log_mach[i]),
                jobs[int(self._log_job[i])],
            )
            for i in idx
        ]
