"""CoalitionFleet: the shared per-coalition value oracle (DESIGN.md §2.4).

Every fair scheduler in the paper -- REF (Figs. 1/3), its general-utility
variant, RAND (Fig. 6) and DIRECTCONTR (Fig. 9) -- needs the same primitive:
*advance a family of per-coalition cluster simulations to time t and read
their values v(C', t)*.  This module owns that primitive once, so the
algorithm modules are thin policies:

* one :class:`~repro.core.engine.ClusterEngine` per registered coalition
  bitmask, advanced in lockstep (or driven lazily by a per-coalition greedy
  policy, as RAND's sampled coalitions require);
* one shared :class:`~repro.core.events.EventQueue` seeded with the release
  times of every covered organization's jobs; engine starts push their
  completion times back into it (:meth:`CoalitionFleet.start_next`);
* a **vectorized psi_sp ledger**: each engine's O(1) value aggregates
  ``(units, wstart, n_running, Σstart, Σstart²)`` are mirrored into int64
  numpy columns, so :meth:`values_at` evaluates *all* coalition values at an
  event time with a handful of array ops instead of ``2^k`` Python loops of
  ``O(k + #running)`` each.

Dirty tracking: an engine's :attr:`~repro.core.engine.ClusterEngine.version`
counter bumps only on value-affecting mutations (job starts / completions),
so a ledger row is re-read only when its coalition processed such an event
since the last query -- releases and no-op advances cost nothing.

Exactness: the ledger is int64 with an overflow guard.  Aggregates are
checked when mirrored, and each query bounds the largest possible
intermediate from running column maxima; if either check trips, the query
falls back to the engines' exact unbounded-int path
(:meth:`~repro.core.engine.ClusterEngine.value`), so no scheduling decision
is ever affected by wraparound.  Property tests verify both paths agree.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from .coalition import iter_members
from .engine import ClusterEngine
from .events import EventQueue
from .schedule import ScheduledJob
from .workload import Workload

__all__ = ["CoalitionFleet"]

#: Magnitude cap for a single mirrored ledger scalar.  Chosen so the query
#: guard (a sum of five products of a scalar with ~t², see values_array) can
#: certify the full expression fits in signed int64.
_SCALAR_CAP = 1 << 61

#: Cap for the certified worst-case intermediate of one vectorized query.
_QUERY_CAP = 1 << 62

SelectFn = Callable[[ClusterEngine], int]


class CoalitionFleet:
    """Owns the engines for a set of coalition masks and serves batched
    coalition values at event times.

    Parameters
    ----------
    workload:
        The shared problem instance.
    masks:
        Initial coalition bitmasks (nonzero).  More can be registered later
        with :meth:`add_mask` (e.g. the lazily-growing cache of
        :class:`repro.shapley.games.SchedulingGame`).
    horizon:
        Optional stop time, forwarded to every engine: events at
        ``t >= horizon`` are not processed.
    track_events:
        Seed the shared :attr:`events` queue with covered organizations'
        job releases (and accept completion pushes).  Pass ``False`` for
        fleets driven by a per-engine loop or used purely as a value
        oracle, where the queue would only accumulate unpopped entries.
    """

    def __init__(
        self,
        workload: Workload,
        masks: Iterable[int] = (),
        *,
        horizon: int | None = None,
        track_events: bool = True,
    ) -> None:
        self.workload = workload
        self.horizon = horizon
        self._track_events = track_events
        self._engines: dict[int, ClusterEngine] = {}
        self._order: list[int] = []
        #: shared decision-time queue: job releases of covered orgs, plus
        #: completion times of every start made through the fleet
        self.events = EventQueue()
        self._seeded_orgs: set[int] = set()
        # ledger columns (int64, grown geometrically)
        cap = 8
        self._units = np.zeros(cap, np.int64)
        self._wstart = np.zeros(cap, np.int64)
        self._rcount = np.zeros(cap, np.int64)
        self._rsum = np.zeros(cap, np.int64)
        self._rsq = np.zeros(cap, np.int64)
        self._seen = np.full(cap, -1, np.int64)
        # running column maxima (exact Python ints; grow monotonically, so
        # they are conservative bounds for the overflow guard)
        self._mx_units = 0
        self._mx_wstart = 0
        self._mx_rcount = 0
        self._mx_rsum = 0
        self._mx_rsq = 0
        #: permanently False once any engine scalar exceeds the int64 cap
        self._int64_ok = True
        for m in masks:
            self.add_mask(m)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @property
    def masks(self) -> tuple[int, ...]:
        """Registered coalition masks, in registration order."""
        return tuple(self._order)

    def __contains__(self, mask: int) -> bool:
        return mask in self._engines

    def __len__(self) -> int:
        return len(self._order)

    def engine(self, mask: int) -> ClusterEngine:
        """The engine simulating coalition ``mask``."""
        return self._engines[mask]

    def add_mask(
        self, mask: int, engine: ClusterEngine | None = None
    ) -> ClusterEngine:
        """Register a coalition (idempotent) and return its engine.

        Release times of newly covered organizations are pushed into the
        shared event queue.  ``engine`` adopts an externally built engine
        (the online service constructs engines from its *dynamic* cluster
        state -- machines added at runtime, coalitions formed mid-stream --
        which the fleet's frozen ``workload`` cannot describe) instead of
        simulating ``mask`` over ``self.workload`` from time zero.
        """
        if mask in self._engines:
            return self._engines[mask]
        if mask <= 0:
            raise ValueError("coalition mask must be a nonzero bitmask")
        members = list(iter_members(mask))
        eng = (
            engine
            if engine is not None
            else ClusterEngine(self.workload, members, horizon=self.horizon)
        )
        row = len(self._order)
        if row == len(self._seen):
            self._grow()
        self._engines[mask] = eng
        self._order.append(mask)
        if self._track_events:
            new_orgs = [u for u in members if u not in self._seeded_orgs]
            if new_orgs:
                self._seeded_orgs.update(new_orgs)
                new_set = set(new_orgs)
                for j in self.workload.jobs:
                    if j.org in new_set:
                        self.events.push(j.release)
        return eng

    def remove_mask(self, mask: int) -> ClusterEngine:
        """Deregister a coalition and return its (still valid) engine.

        The online service drops coalitions containing a departed
        organization.  Ledger rows above the removed one shift down in
        lockstep with :attr:`masks`, so dirty tracking stays aligned; the
        running column maxima stay (conservatively) as they are.
        """
        if mask not in self._engines:
            raise KeyError(f"mask {mask} is not registered")
        eng = self._engines.pop(mask)
        i = self._order.index(mask)
        self._order.pop(i)
        n = len(self._order)
        for name in ("_units", "_wstart", "_rcount", "_rsum", "_rsq", "_seen"):
            col = getattr(self, name)
            col[i:n] = col[i + 1 : n + 1]
            col[n] = -1 if name == "_seen" else 0
        return eng

    def replace_engine(self, mask: int, engine: ClusterEngine) -> None:
        """Swap the engine simulating ``mask`` (same coalition, new object).

        The online service uses this to fork a coalition's engine at a
        membership epoch: the physical engine moves to the grown coalition
        while a deep copy continues the old mask's counterfactual.  The
        ledger row is marked dirty so the next query re-mirrors it.
        """
        if mask not in self._engines:
            raise KeyError(f"mask {mask} is not registered")
        self._engines[mask] = engine
        self._seen[self._order.index(mask)] = -1

    def submit(self, job) -> None:
        """Feed one job to every registered engine covering its owner and
        push its release into the shared decision queue (online ingestion;
        the batch path instead freezes streams at construction)."""
        hit = False
        bit = 1 << job.org
        for mask in self._order:
            if mask & bit:
                self._engines[mask].submit(job)
                hit = True
        if not hit:
            raise ValueError(f"no registered coalition covers org {job.org}")
        if self._track_events:
            self.events.push(job.release)

    def _grow(self) -> None:
        cap = 2 * len(self._seen)
        for name in ("_units", "_wstart", "_rcount", "_rsum", "_rsq", "_seen"):
            old = getattr(self, name)
            new = np.full(cap, -1, np.int64) if name == "_seen" else np.zeros(
                cap, np.int64
            )
            new[: len(old)] = old
            setattr(self, name, new)

    # ------------------------------------------------------------------
    # event iteration
    # ------------------------------------------------------------------
    def next_decision(self) -> int | None:
        """Pop the next decision time from the shared queue (deduplicated),
        or ``None`` when exhausted or at/after the horizon."""
        t = self.events.pop()
        if t is None:
            return None
        if self.horizon is not None and t >= self.horizon:
            return None
        return t

    def peek_decision(self) -> int | None:
        """The next decision time without consuming it (``None`` when
        exhausted or at/after the horizon) -- how the online service bounds
        event processing by its ingest clock."""
        t = self.events.peek()
        if t is None:
            return None
        if self.horizon is not None and t >= self.horizon:
            return None
        return t

    # ------------------------------------------------------------------
    # lockstep / lazy advancement
    # ------------------------------------------------------------------
    def advance_all(self, t: int) -> None:
        """Process every engine's events up to ``t`` (lockstep advance).

        Engines with no pending event at or before ``t`` are left lazily
        behind: with no release or completion in ``(engine.t, t]`` their
        scheduler-visible state and their value ledger are already exact at
        ``t`` (psi_sp only changes through starts and completions, and the
        greedy invariant guarantees they have no free-machine/waiting-job
        pair to act on).
        """
        self._sync(t, None)

    def drive(self, mask: int, select: SelectFn, until: int) -> None:
        """Drive one engine's own greedy event loop to ``until`` (events at
        ``until`` included), then align its clock with ``until``."""
        eng = self._engines[mask]
        eng.drive(select, until=until)
        if eng.t < until:
            eng.advance_to(until)

    def drive_all(self, select: SelectFn, until: int) -> None:
        """Drive every engine's own greedy loop to ``until`` (RAND's lazily
        tracked sampled coalitions), then align clocks with ``until``."""
        self._sync(until, select)

    def _sync(self, t: int, select: SelectFn | None) -> list[int]:
        """Bring every engine to ``t`` (advance, or drive with ``select``)
        in one pass and return the row indices of engines already *past*
        ``t`` -- the retrospective rows :meth:`values_array` must value
        from their start logs.  Horizon capping is not needed here:
        decision times already stop before the horizon, and processing a
        completion/release never changes psi_sp.
        """
        ahead: list[int] = []
        for i, mask in enumerate(self._order):
            eng = self._engines[mask]
            if select is None:
                if eng.has_event_at_or_before(t):
                    eng.advance_to(t)
                elif eng.t > t:
                    ahead.append(i)
            elif eng.t <= t:
                eng.drive(select, until=t)
                if eng.t < t:
                    eng.advance_to(t)
            else:
                ahead.append(i)
        return ahead

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------
    def start_next(
        self, mask: int, org: int, machine: int | None = None
    ) -> ScheduledJob:
        """Start ``org``'s FIFO-head job on coalition ``mask``'s cluster and
        push the completion time into the shared event queue (when event
        tracking is on)."""
        entry = self._engines[mask].start_next(org, machine=machine)
        if self._track_events:
            self.events.push(entry.end)
        return entry

    # ------------------------------------------------------------------
    # batched coalition values
    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        """Mirror dirty engines' ledgers into the numpy columns."""
        seen = self._seen
        for i, mask in enumerate(self._order):
            eng = self._engines[mask]
            v = eng.version
            if v == seen[i]:
                continue
            units, wstart, rcount, rsum, rsq = eng.ledger()
            if units >= _SCALAR_CAP or wstart >= _SCALAR_CAP or rsq >= _SCALAR_CAP:
                self._int64_ok = False
            else:
                self._units[i] = units
                self._wstart[i] = wstart
                self._rcount[i] = rcount
                self._rsum[i] = rsum
                self._rsq[i] = rsq
                if units > self._mx_units:
                    self._mx_units = units
                if wstart > self._mx_wstart:
                    self._mx_wstart = wstart
                if rcount > self._mx_rcount:
                    self._mx_rcount = rcount
                if rsum > self._mx_rsum:
                    self._mx_rsum = rsum
                if rsq > self._mx_rsq:
                    self._mx_rsq = rsq
            seen[i] = v

    def _vector_safe(self, t: int) -> bool:
        """Certify that the vectorized int64 query at ``t`` cannot overflow."""
        if not self._int64_ok or t < 0:
            return False
        tt = t * t + t
        # the scalars t*t+t and 2t+1 are materialized as int64 inside the
        # numpy expression even when every ledger column is zero, so they
        # must fit on their own
        if tt >= _QUERY_CAP:
            return False
        bound = (
            self._mx_units * t
            + self._mx_wstart
            + self._mx_rcount * tt
            + self._mx_rsum * (2 * t + 1)
            + self._mx_rsq
        )
        return bound < _QUERY_CAP

    def values_array(
        self, t: int, *, select: SelectFn | None = None
    ) -> "np.ndarray | None":
        """Coalition values at ``t`` as an int64 array aligned with
        :attr:`masks`, or ``None`` when the overflow guard trips (use
        :meth:`values_at`, which falls back to exact arithmetic).

        Every engine is brought to ``t`` first: driven by ``select`` when
        given (its own greedy policy, RAND-style), otherwise advanced in
        lockstep.  An engine lazily left at ``engine.t < t`` has no start or
        completion in ``(engine.t, t]``, so its ledger row evaluates exactly
        at ``t``; engines already *past* ``t`` (retrospective queries) are
        valued exactly from their start logs instead.
        """
        ahead = self._sync(t, select)
        if not self._int64_ok:  # permanent exact mode: skip the dead mirror
            return None
        self._refresh()
        if not self._vector_safe(t):
            return None
        n = len(self._order)
        rows = slice(0, n)
        vals = (
            self._units[rows] * t
            - self._wstart[rows]
            + (
                self._rcount[rows] * (t * t + t)
                - self._rsum[rows] * (2 * t + 1)
                + self._rsq[rows]
            )
            // 2
        )
        for i in ahead:  # retrospective rows: value from the start log
            exact = self._engines[self._order[i]].value(t)
            if abs(exact) >= _SCALAR_CAP:
                return None
            vals[i] = exact
        return vals

    def values_at(
        self, t: int, *, select: SelectFn | None = None
    ) -> dict[int, int]:
        """Coalition values ``{mask: v(C', t)}`` for every registered mask,
        plus the empty coalition ``{0: 0}`` -- exactly the table the REF
        recursion's ``UpdateVals`` consumes."""
        arr = self.values_array(t, select=select)
        values: dict[int, int] = {0: 0}
        if arr is not None:
            values.update(zip(self._order, arr.tolist()))
            return values
        # exact fallback: unbounded Python ints via each engine
        for mask in self._order:
            values[mask] = self._engines[mask].value(t)
        return values

    def values_exact(
        self, t: int, *, select: SelectFn | None = None
    ) -> dict[int, int]:
        """Like :meth:`values_at` but always on the engines' unbounded-int
        path, skipping the numpy ledger entirely.  With the engines' O(1)
        value formula this wins for small fleets (few dozen coalitions),
        where per-query array overhead exceeds the loop it replaces."""
        if select is not None:
            self.drive_all(select, t)
        else:
            self.advance_all(t)
        values: dict[int, int] = {0: 0}
        for mask in self._order:
            values[mask] = self._engines[mask].value(t)
        return values
