"""CoalitionFleet: the shared per-coalition value oracle (DESIGN.md §2.4, §8).

Every fair scheduler in the paper -- REF (Figs. 1/3), its general-utility
variant, RAND (Fig. 6) and DIRECTCONTR (Fig. 9) -- needs the same primitive:
*advance a family of per-coalition cluster simulations to time t and read
their values v(C', t)*.  This module owns that primitive once, so the
algorithm modules are thin policies:

* one :class:`~repro.core.engine.ClusterEngine` per registered coalition
  bitmask, advanced in lockstep (or driven lazily by a per-coalition greedy
  policy, as RAND's sampled coalitions require);
* one shared :class:`~repro.core.events.EventQueue` seeded with the release
  times of every covered organization's jobs; engine starts push their
  completion times back into it (:meth:`CoalitionFleet.start_next`);
* a **vectorized psi_sp ledger**: each engine's O(1) value aggregates
  ``(units, wstart, n_running, Σstart, Σstart²)`` are mirrored into int64
  numpy columns, so :meth:`values_at` evaluates *all* coalition values at an
  event time with a handful of array ops instead of ``2^k`` Python loops of
  ``O(k + #running)`` each.

**Kernel dispatch** (DESIGN.md §8): a fleet of at least
:data:`~repro.core.kernel.KERNEL_MIN_ENGINES` coalitions over a workload
whose arithmetic is :func:`~repro.core.kernel.kernel_certified` does not
build per-coalition engines at all -- the whole family lives in one
:class:`~repro.core.kernel.FleetKernel` structure-of-arrays simulation, and
``advance_all`` / ``drive_all`` (FIFO) / ``values_array`` / ``submit`` /
``start_next`` become a handful of vectorized array passes.  The public API
is unchanged: :meth:`engine` returns a live
:class:`~repro.core.kernel.KernelEngineView`, and any operation the arrays
cannot express (adopting an externally built engine, ``replace_engine``,
dynamic machine mutation through a view, an unknown drive policy)
transparently *materializes* real engines -- bit-identical state, same
schedules -- and continues in per-engine mode.  ``backend="engines"`` or
``backend="kernel"`` forces either mode.

Dirty tracking: an engine's :attr:`~repro.core.engine.ClusterEngine.version`
counter bumps only on value-affecting mutations (job starts / completions),
so a ledger row is re-read only when its coalition processed such an event
since the last query -- releases and no-op advances cost nothing.

Exactness: the ledger is int64 with an overflow guard.  Aggregates are
checked when mirrored, and each query bounds the largest possible
intermediate from running column maxima; if either check trips, the query
falls back to the engines' exact unbounded-int path
(:meth:`~repro.core.engine.ClusterEngine.value`), so no scheduling decision
is ever affected by wraparound.  The kernel keeps the same contract with
its own two-tier guard (construction-time certification plus per-query
checks).  Property tests verify all paths agree.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from . import kernel as kernel_mod
from .coalition import iter_members
from .engine import ClusterEngine
from .events import EventQueue
from .kernel import FleetKernel, KernelEngineView, KernelUnsafe, kernel_certified
from .schedule import ScheduledJob
from .workload import Workload

__all__ = ["CoalitionFleet"]

#: Magnitude cap for a single mirrored ledger scalar.  Chosen so the query
#: guard (a sum of five products of a scalar with ~t², see values_array) can
#: certify the full expression fits in signed int64.
_SCALAR_CAP = 1 << 61

#: Cap for the certified worst-case intermediate of one vectorized query.
_QUERY_CAP = 1 << 62

SelectFn = Callable[[ClusterEngine], int]


class CoalitionFleet:
    """Owns the engines for a set of coalition masks and serves batched
    coalition values at event times.

    Parameters
    ----------
    workload:
        The shared problem instance.
    masks:
        Initial coalition bitmasks (nonzero).  More can be registered later
        with :meth:`add_mask` (e.g. the lazily-growing cache of
        :class:`repro.shapley.games.SchedulingGame`).
    horizon:
        Optional stop time, forwarded to every engine: events at
        ``t >= horizon`` are not processed.
    track_events:
        Seed the shared :attr:`events` queue with covered organizations'
        job releases (and accept completion pushes).  Pass ``False`` for
        fleets driven by a per-engine loop or used purely as a value
        oracle, where the queue would only accumulate unpopped entries.
    backend:
        ``"auto"`` (default) chooses the batched
        :class:`~repro.core.kernel.FleetKernel` when the construction-time
        mask count reaches :data:`~repro.core.kernel.KERNEL_MIN_ENGINES`
        and the workload passes int64 certification; ``"engines"`` /
        ``"kernel"`` force a mode (the latter still requires
        certification).
    """

    def __init__(
        self,
        workload: Workload,
        masks: Iterable[int] = (),
        *,
        horizon: int | None = None,
        track_events: bool = True,
        backend: str = "auto",
    ) -> None:
        if backend not in ("auto", "engines", "kernel"):
            raise ValueError("backend must be 'auto', 'engines' or 'kernel'")
        self.workload = workload
        self.horizon = horizon
        self._track_events = track_events
        self._engines: dict[int, ClusterEngine] = {}
        self._order: list[int] = []
        self._mask_set: set[int] = set()
        #: shared decision-time queue: job releases of covered orgs, plus
        #: completion times of every start made through the fleet
        self.events = EventQueue()
        self._seeded_orgs: set[int] = set()
        # ledger columns (int64, grown geometrically; per-engine mode only)
        cap = 8
        self._units = np.zeros(cap, np.int64)
        self._wstart = np.zeros(cap, np.int64)
        self._rcount = np.zeros(cap, np.int64)
        self._rsum = np.zeros(cap, np.int64)
        self._rsq = np.zeros(cap, np.int64)
        self._seen = np.full(cap, -1, np.int64)
        # running column maxima (exact Python ints; grow monotonically, so
        # they are conservative bounds for the overflow guard)
        self._mx_units = 0
        self._mx_wstart = 0
        self._mx_rcount = 0
        self._mx_rsum = 0
        self._mx_rsq = 0
        #: permanently False once any engine scalar exceeds the int64 cap
        self._int64_ok = True
        # kernel-backend state
        self._use_kernel = False
        self._kernel_obj: FleetKernel | None = None
        self._kernel_stale = False
        self._views: dict[int, KernelEngineView] = {}
        self._constructing = True
        for m in masks:
            self.add_mask(m)
        self._constructing = False
        wants_kernel = backend == "kernel" or (
            backend == "auto"
            and len(self._order) >= kernel_mod.KERNEL_MIN_ENGINES
        )
        if wants_kernel and kernel_certified(workload, horizon):
            self._use_kernel = True
            self._kernel_stale = True
        else:
            while len(self._seen) < len(self._order):
                self._grow()
            for m in self._order:
                self._engines[m] = ClusterEngine(
                    workload, list(iter_members(m)), horizon=horizon
                )

    # ------------------------------------------------------------------
    # backend plumbing
    # ------------------------------------------------------------------
    @property
    def kernel(self) -> "FleetKernel | None":
        """The live structure-of-arrays backend, or ``None`` in per-engine
        mode (built lazily; algorithm fast paths key off this)."""
        if not self._use_kernel:
            return None
        if self._kernel_stale or self._kernel_obj is None:
            self._kernel_obj = FleetKernel(
                self.workload,
                self._order,
                self.horizon,
                self.events if self._track_events else None,
            )
            self._kernel_stale = False
        return self._kernel_obj

    def _materialize(self) -> None:
        """Escape hatch: reconstruct every kernel row as a real, bit-identical
        :class:`~repro.core.engine.ClusterEngine` and continue per-engine."""
        if not self._use_kernel:
            return
        kern = self._kernel_obj
        if kern is not None and not self._kernel_stale:
            for i, m in enumerate(self._order):
                self._engines[m] = kern.materialize_row(i)
        else:  # never used: virgin engines are identical to virgin rows
            for m in self._order:
                self._engines[m] = ClusterEngine(
                    self.workload, list(iter_members(m)), horizon=self.horizon
                )
        self._use_kernel = False
        self._kernel_obj = None
        self._kernel_stale = False
        # held views become permanent proxies for the engines their masks
        # resolved to at this moment (object-identity semantics survive a
        # later replace_engine, like real engine references would)
        for mask, view in self._views.items():
            view._bound = self._engines.get(mask)
        self._views.clear()
        while len(self._seen) < len(self._order):
            self._grow()
        self._seen[: len(self._order)] = -1

    @staticmethod
    def _kernel_select(select: "SelectFn | None") -> "str | None":
        """The kernel-native policy tag of a drive callback (``"fifo"`` for
        the canonical greedy FIFO selectors), or ``None``."""
        return getattr(select, "kernel_policy", None)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @property
    def masks(self) -> tuple[int, ...]:
        """Registered coalition masks, in registration order."""
        return tuple(self._order)

    def __contains__(self, mask: int) -> bool:
        return mask in self._mask_set

    def __len__(self) -> int:
        return len(self._order)

    def engine(self, mask: int) -> ClusterEngine:
        """The engine simulating coalition ``mask`` (a live
        :class:`~repro.core.kernel.KernelEngineView` under the kernel
        backend -- same read API, mutations materialize)."""
        if self._use_kernel:
            if mask not in self._mask_set:
                raise KeyError(mask)
            view = self._views.get(mask)
            if view is None:
                view = self._views[mask] = KernelEngineView(self, mask)
            return view
        return self._engines[mask]

    def add_mask(
        self, mask: int, engine: ClusterEngine | None = None
    ) -> ClusterEngine:
        """Register a coalition (idempotent) and return its engine.

        Release times of newly covered organizations are pushed into the
        shared event queue.  ``engine`` adopts an externally built engine
        (the online service constructs engines from its *dynamic* cluster
        state -- machines added at runtime, coalitions formed mid-stream --
        which the fleet's frozen ``workload`` cannot describe) instead of
        simulating ``mask`` over ``self.workload`` from time zero.
        """
        if isinstance(engine, KernelEngineView):
            engine = engine._escape()  # adopt the underlying real engine
        if mask in self._mask_set:
            return self.engine(mask)
        if mask <= 0:
            raise ValueError("coalition mask must be a nonzero bitmask")
        members = list(iter_members(mask))
        if self._constructing:
            # engine construction is deferred until the backend is chosen
            # at the end of __init__ (the kernel backend never builds them)
            if engine is not None:
                raise ValueError(
                    "cannot adopt an external engine at construction"
                )
            self._order.append(mask)
            self._mask_set.add(mask)
            self._seed_releases(members)
            return None  # unused during construction
        if self._use_kernel:
            kern = self._kernel_obj
            if engine is None and (kern is None or not kern._used):
                # pristine kernel: absorb the mask by (lazily) rebuilding
                self._order.append(mask)
                self._mask_set.add(mask)
                self._kernel_stale = True
                self._seed_releases(members)
                return self.engine(mask)
            self._materialize()
        eng = (
            engine
            if engine is not None
            else ClusterEngine(self.workload, members, horizon=self.horizon)
        )
        row = len(self._order)
        if row == len(self._seen):
            self._grow()
        self._engines[mask] = eng
        self._order.append(mask)
        self._mask_set.add(mask)
        self._seed_releases(members)
        return eng

    def _seed_releases(self, members: "list[int]") -> None:
        if not self._track_events:
            return
        new_orgs = [u for u in members if u not in self._seeded_orgs]
        if new_orgs:
            self._seeded_orgs.update(new_orgs)
            new_set = set(new_orgs)
            for j in self.workload.jobs:
                if j.org in new_set:
                    self.events.push(j.release)

    def remove_mask(self, mask: int) -> ClusterEngine:
        """Deregister a coalition and return its (still valid) engine.

        The online service drops coalitions containing a departed
        organization.  Ledger rows above the removed one shift down in
        lockstep with :attr:`masks`, so dirty tracking stays aligned; the
        running column maxima stay (conservatively) as they are.
        """
        if mask not in self._mask_set:
            raise KeyError(f"mask {mask} is not registered")
        self._materialize()
        eng = self._engines.pop(mask)
        self._mask_set.discard(mask)
        i = self._order.index(mask)
        self._order.pop(i)
        n = len(self._order)
        for name in ("_units", "_wstart", "_rcount", "_rsum", "_rsq", "_seen"):
            col = getattr(self, name)
            col[i:n] = col[i + 1 : n + 1]
            col[n] = -1 if name == "_seen" else 0
        return eng

    def replace_engine(self, mask: int, engine: ClusterEngine) -> None:
        """Swap the engine simulating ``mask`` (same coalition, new object).

        The online service uses this to fork a coalition's engine at a
        membership epoch: the physical engine moves to the grown coalition
        while a deep copy continues the old mask's counterfactual.  The
        ledger row is marked dirty so the next query re-mirrors it.
        """
        if mask not in self._mask_set:
            raise KeyError(f"mask {mask} is not registered")
        if isinstance(engine, KernelEngineView):
            engine = engine._escape()
        self._materialize()
        self._engines[mask] = engine
        self._seen[self._order.index(mask)] = -1

    def submit(self, job) -> None:
        """Feed one job to every registered engine covering its owner and
        push its release into the shared decision queue (online ingestion;
        the batch path instead freezes streams at construction)."""
        bit = 1 << job.org
        if not any(mask & bit for mask in self._order):
            raise ValueError(f"no registered coalition covers org {job.org}")
        if self._use_kernel:
            try:
                kern = self.kernel
                assert kern is not None
                kern.submit(job)
            except KernelUnsafe:
                self._materialize()
        if not self._use_kernel:
            for mask in self._order:
                if mask & bit:
                    self._engines[mask].submit(job)
        if self._track_events:
            self.events.push(job.release)

    def submit_many(self, jobs: "Iterable") -> None:
        """Feed a whole ingest batch (online micro-batching): under the
        kernel backend the batch is absorbed with *one* certification check
        and one set of array splices (:meth:`FleetKernel.submit_many`);
        per-engine mode falls back to per-job feeding.  Equivalent to
        calling :meth:`submit` per job, including the materialize-on-
        :class:`KernelUnsafe` escape hatch (the batch check happens before
        any mutation, so the engines see the full, consistent stream)."""
        jobs = list(jobs)
        if not jobs:
            return
        for job in jobs:
            bit = 1 << job.org
            if not any(mask & bit for mask in self._order):
                raise ValueError(
                    f"no registered coalition covers org {job.org}"
                )
        if self._use_kernel:
            try:
                kern = self.kernel
                assert kern is not None
                kern.submit_many(jobs)
            except KernelUnsafe:
                self._materialize()
        if not self._use_kernel:
            for job in jobs:
                bit = 1 << job.org
                for mask in self._order:
                    if mask & bit:
                        self._engines[mask].submit(job)
        if self._track_events:
            for job in jobs:
                self.events.push(job.release)

    def _grow(self) -> None:
        cap = 2 * len(self._seen)
        for name in ("_units", "_wstart", "_rcount", "_rsum", "_rsq", "_seen"):
            old = getattr(self, name)
            new = np.full(cap, -1, np.int64) if name == "_seen" else np.zeros(
                cap, np.int64
            )
            new[: len(old)] = old
            setattr(self, name, new)

    # ------------------------------------------------------------------
    # event iteration
    # ------------------------------------------------------------------
    def next_decision(self) -> int | None:
        """Pop the next decision time from the shared queue (deduplicated),
        or ``None`` when exhausted or at/after the horizon."""
        t = self.events.pop()
        if t is None:
            return None
        if self.horizon is not None and t >= self.horizon:
            return None
        return t

    def peek_decision(self) -> int | None:
        """The next decision time without consuming it (``None`` when
        exhausted or at/after the horizon) -- how the online service bounds
        event processing by its ingest clock."""
        t = self.events.peek()
        if t is None:
            return None
        if self.horizon is not None and t >= self.horizon:
            return None
        return t

    # ------------------------------------------------------------------
    # lockstep / lazy advancement
    # ------------------------------------------------------------------
    def advance_all(self, t: int) -> None:
        """Process every engine's events up to ``t`` (lockstep advance).

        Engines with no pending event at or before ``t`` are left lazily
        behind: with no release or completion in ``(engine.t, t]`` their
        scheduler-visible state and their value ledger are already exact at
        ``t`` (psi_sp only changes through starts and completions, and the
        greedy invariant guarantees they have no free-machine/waiting-job
        pair to act on).
        """
        if self._use_kernel:
            kern = self.kernel
            assert kern is not None
            if t >= kern.t:
                kern.advance(t)
            return
        self._sync(t, None)

    def drive(self, mask: int, select: SelectFn, until: int) -> None:
        """Drive one engine's own greedy event loop to ``until`` (events at
        ``until`` included), then align its clock with ``until``."""
        if self._use_kernel:
            self._materialize()
        eng = self._engines[mask]
        eng.drive(select, until=until)
        if eng.t < until:
            eng.advance_to(until)

    def drive_all(self, select: SelectFn, until: int) -> None:
        """Drive every engine's own greedy loop to ``until`` (RAND's lazily
        tracked sampled coalitions), then align clocks with ``until``."""
        if self._use_kernel:
            if self._kernel_select(select) == "fifo":
                kern = self.kernel
                assert kern is not None
                if until >= kern.t:
                    kern.drive_fifo(until)
                return
            self._materialize()
        self._sync(until, select)

    def _sync(self, t: int, select: SelectFn | None) -> list[int]:
        """Bring every engine to ``t`` (advance, or drive with ``select``)
        in one pass and return the row indices of engines already *past*
        ``t`` -- the retrospective rows :meth:`values_array` must value
        from their start logs.  Horizon capping is not needed here:
        decision times already stop before the horizon, and processing a
        completion/release never changes psi_sp.
        """
        ahead: list[int] = []
        for i, mask in enumerate(self._order):
            eng = self._engines[mask]
            if select is None:
                if eng.has_event_at_or_before(t):
                    eng.advance_to(t)
                elif eng.t > t:
                    ahead.append(i)
            elif eng.t <= t:
                eng.drive(select, until=t)
                if eng.t < t:
                    eng.advance_to(t)
            else:
                ahead.append(i)
        return ahead

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------
    def start_next(
        self, mask: int, org: int, machine: int | None = None
    ) -> ScheduledJob:
        """Start ``org``'s FIFO-head job on coalition ``mask``'s cluster and
        push the completion time into the shared event queue (when event
        tracking is on)."""
        if self._use_kernel:
            kern = self.kernel
            assert kern is not None
            entry = kern.start_row(kern._row[mask], org, machine)
        else:
            entry = self._engines[mask].start_next(org, machine=machine)
        if self._track_events:
            self.events.push(entry.end)
        return entry

    def fill_rows(self, rows: np.ndarray, keys: np.ndarray, t: int) -> None:
        """Kernel fast path for :func:`repro.algorithms.base.fill_capacity`
        over many coalitions at once: batched greedy rounds starting the
        ``argmax(keys)`` organization's FIFO-head job on every still-capable
        row (ties: lowest org id).  Kernel backend only."""
        kern = self.kernel
        if kern is None:
            raise RuntimeError("fill_rows requires the kernel backend")
        kern.fill_rows(rows, keys, t)

    # ------------------------------------------------------------------
    # batched coalition values
    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        """Mirror dirty engines' ledgers into the numpy columns."""
        seen = self._seen
        for i, mask in enumerate(self._order):
            eng = self._engines[mask]
            v = eng.version
            if v == seen[i]:
                continue
            units, wstart, rcount, rsum, rsq = eng.ledger()
            if units >= _SCALAR_CAP or wstart >= _SCALAR_CAP or rsq >= _SCALAR_CAP:
                self._int64_ok = False
            else:
                self._units[i] = units
                self._wstart[i] = wstart
                self._rcount[i] = rcount
                self._rsum[i] = rsum
                self._rsq[i] = rsq
                if units > self._mx_units:
                    self._mx_units = units
                if wstart > self._mx_wstart:
                    self._mx_wstart = wstart
                if rcount > self._mx_rcount:
                    self._mx_rcount = rcount
                if rsum > self._mx_rsum:
                    self._mx_rsum = rsum
                if rsq > self._mx_rsq:
                    self._mx_rsq = rsq
            seen[i] = v

    def _vector_safe(self, t: int) -> bool:
        """Certify that the vectorized int64 query at ``t`` cannot overflow."""
        if not self._int64_ok or t < 0:
            return False
        tt = t * t + t
        # the scalars t*t+t and 2t+1 are materialized as int64 inside the
        # numpy expression even when every ledger column is zero, so they
        # must fit on their own
        if tt >= _QUERY_CAP:
            return False
        bound = (
            self._mx_units * t
            + self._mx_wstart
            + self._mx_rcount * tt
            + self._mx_rsum * (2 * t + 1)
            + self._mx_rsq
        )
        return bound < _QUERY_CAP

    def _kernel_sync(
        self, t: int, select: "SelectFn | None"
    ) -> "FleetKernel | None":
        """Bring the kernel to ``t`` for a value query; returns the kernel,
        or ``None`` after materializing on an unknown drive policy."""
        kern = self.kernel
        assert kern is not None
        if select is None:
            if t >= kern.t:
                kern.advance(t)
        elif self._kernel_select(select) == "fifo":
            if t >= kern.t:
                kern.drive_fifo(t)
        else:
            self._materialize()
            return None
        return kern

    def values_array(
        self, t: int, *, select: SelectFn | None = None
    ) -> "np.ndarray | None":
        """Coalition values at ``t`` as an int64 array aligned with
        :attr:`masks`, or ``None`` when the overflow guard trips (use
        :meth:`values_at`, which falls back to exact arithmetic).

        Every engine is brought to ``t`` first: driven by ``select`` when
        given (its own greedy policy, RAND-style), otherwise advanced in
        lockstep.  An engine lazily left at ``engine.t < t`` has no start or
        completion in ``(engine.t, t]``, so its ledger row evaluates exactly
        at ``t``; engines already *past* ``t`` (retrospective queries) are
        valued exactly from their start logs instead.
        """
        if self._use_kernel:
            kern = self._kernel_sync(t, select)
            if kern is not None:
                if t < kern.t:
                    return kern.values_retro(t)
                return kern.values_i64(t)
            # fall through: materialized on an unknown policy
        ahead = self._sync(t, select)
        if not self._int64_ok:  # permanent exact mode: skip the dead mirror
            return None
        self._refresh()
        if not self._vector_safe(t):
            return None
        n = len(self._order)
        rows = slice(0, n)
        vals = (
            self._units[rows] * t
            - self._wstart[rows]
            + (
                self._rcount[rows] * (t * t + t)
                - self._rsum[rows] * (2 * t + 1)
                + self._rsq[rows]
            )
            // 2
        )
        for i in ahead:  # retrospective rows: value from the start log
            exact = self._engines[self._order[i]].value(t)
            if abs(exact) >= _SCALAR_CAP:
                return None
            vals[i] = exact
        return vals

    def values_at(
        self, t: int, *, select: SelectFn | None = None
    ) -> dict[int, int]:
        """Coalition values ``{mask: v(C', t)}`` for every registered mask,
        plus the empty coalition ``{0: 0}`` -- exactly the table the REF
        recursion's ``UpdateVals`` consumes."""
        arr = self.values_array(t, select=select)
        values: dict[int, int] = {0: 0}
        if arr is not None:
            values.update(zip(self._order, arr.tolist()))
            return values
        if self._use_kernel:
            # kernel guard tripped at t >= kernel.t: exact Python-int formula
            # over the (certified exact) int64 ledgers
            kern = self._kernel_obj
            assert kern is not None
            values.update(zip(self._order, kern.values_exact(t)))
            return values
        # exact fallback: unbounded Python ints via each engine
        for mask in self._order:
            values[mask] = self._engines[mask].value(t)
        return values

    def values_exact(
        self, t: int, *, select: SelectFn | None = None
    ) -> dict[int, int]:
        """Like :meth:`values_at` but always on the engines' unbounded-int
        path, skipping the numpy ledger entirely.  With the engines' O(1)
        value formula this wins for small fleets (few dozen coalitions),
        where per-query array overhead exceeds the loop it replaces."""
        if self._use_kernel:
            kern = self._kernel_sync(t, select)
            if kern is not None:
                values: dict[int, int] = {0: 0}
                if t < kern.t:
                    values.update(
                        zip(self._order, kern.values_retro(t).tolist())
                    )
                else:
                    values.update(zip(self._order, kern.values_exact(t)))
                return values
        if select is not None:
            self.drive_all(select, t)
        else:
            self.advance_all(t)
        values = {0: 0}
        for mask in self._order:
            values[mask] = self._engines[mask].value(t)
        return values
