"""Core substrate: jobs, organizations, workloads, coalitions, schedules,
and the event-driven cluster simulation engine.

These are the building blocks of the paper's model (Section 2): a
multi-organizational system with identical processors, online non-clairvoyant
sequential jobs, FIFO-per-organization order, and greedy schedules.
"""

from .coalition import (
    Coalition,
    iter_members,
    iter_proper_subsets,
    iter_subsets,
    popcount,
    scaled_shapley_weights,
    shapley_weight,
    subsets_by_size,
)
from .engine import ClusterEngine, RunningJob
from .events import EventQueue
from .fleet import CoalitionFleet
from .kernel import KERNEL_MIN_ENGINES, FleetKernel, KernelEngineView, kernel_certified
from .job import Job, merge_jobs, sort_jobs, split_job, validate_jobs
from .organization import Organization
from .schedule import Schedule, ScheduledJob
from .workload import Workload, WorkloadStats

__all__ = [
    "Coalition",
    "CoalitionFleet",
    "ClusterEngine",
    "EventQueue",
    "FleetKernel",
    "Job",
    "KERNEL_MIN_ENGINES",
    "KernelEngineView",
    "kernel_certified",
    "Organization",
    "RunningJob",
    "Schedule",
    "ScheduledJob",
    "Workload",
    "WorkloadStats",
    "iter_members",
    "iter_proper_subsets",
    "iter_subsets",
    "merge_jobs",
    "popcount",
    "scaled_shapley_weights",
    "shapley_weight",
    "sort_jobs",
    "split_job",
    "subsets_by_size",
    "validate_jobs",
]
