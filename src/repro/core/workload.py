"""Workloads: organizations plus their job streams.

A :class:`Workload` is the complete input of the fair-scheduling problem:
the set of organizations (with machine endowments) and every job they will
ever submit.  Schedulers see jobs only from their release times onward; the
workload object itself is the *offline* ground truth used by the simulator
and the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from .job import Job, validate_jobs
from .organization import Organization

__all__ = ["Workload", "WorkloadStats"]


@dataclass(frozen=True, slots=True)
class WorkloadStats:
    """Summary statistics of a workload (reported by trace generators)."""

    n_orgs: int
    n_machines: int
    n_jobs: int
    total_work: int
    horizon: int
    load_factor: float
    mean_size: float
    max_size: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.n_orgs} orgs, {self.n_machines} machines, "
            f"{self.n_jobs} jobs, work={self.total_work}, "
            f"horizon={self.horizon}, load={self.load_factor:.2f}"
        )


class Workload:
    """Organizations and their jobs; the scheduling-problem instance.

    Parameters
    ----------
    organizations:
        The ``k`` players, with ids ``0..k-1`` (checked).
    jobs:
        All jobs of all organizations.  Jobs get fresh contiguous global ids
        if any id is negative.  FIFO indices per organization must be
        contiguous from 0 with non-decreasing release times
        (:func:`repro.core.job.validate_jobs`).
    """

    __slots__ = ("organizations", "jobs", "_jobs_by_org")

    def __init__(
        self,
        organizations: Sequence[Organization],
        jobs: Iterable[Job],
    ) -> None:
        orgs = tuple(organizations)
        for pos, org in enumerate(orgs):
            if org.id != pos:
                raise ValueError(
                    f"organization ids must be contiguous from 0; "
                    f"position {pos} has id {org.id}"
                )
        job_list = sorted(jobs)
        if any(j.id < 0 for j in job_list):
            job_list = [
                Job(j.release, j.org, j.index, j.size, id=i)
                for i, j in enumerate(job_list)
            ]
        for j in job_list:
            if j.org >= len(orgs):
                raise ValueError(f"job {j.id} references unknown org {j.org}")
        validate_jobs(job_list)
        ids = [j.id for j in job_list]
        if len(set(ids)) != len(ids):
            raise ValueError("job ids must be unique")
        by_org: list[list[Job]] = [[] for _ in orgs]
        for j in job_list:
            by_org[j.org].append(j)
        for org_jobs in by_org:
            org_jobs.sort(key=lambda j: j.index)
        object.__setattr__(self, "organizations", orgs)
        object.__setattr__(self, "jobs", tuple(job_list))
        object.__setattr__(self, "_jobs_by_org", tuple(tuple(js) for js in by_org))

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Workload is immutable")

    # -- accessors ---------------------------------------------------------
    @property
    def n_orgs(self) -> int:
        return len(self.organizations)

    @property
    def n_machines(self) -> int:
        return sum(o.machines for o in self.organizations)

    def machines_of(self, org: int) -> int:
        """Machine count contributed by one organization."""
        return self.organizations[org].machines

    def jobs_of(self, org: int) -> tuple[Job, ...]:
        """The FIFO-ordered job stream of one organization."""
        return self._jobs_by_org[org]

    def machine_counts(self) -> tuple[int, ...]:
        """Per-organization machine endowments (index = org id)."""
        return tuple(o.machines for o in self.organizations)

    def shares(self) -> tuple[float, ...]:
        """Machine-fraction target shares (used by the fair share family).

        The paper (Section 7.1) sets each organization's fair share target to
        the fraction of processors it contributes to the global pool.
        """
        total = self.n_machines
        if total == 0:
            raise ValueError("workload has no machines")
        return tuple(o.machines / total for o in self.organizations)

    def stats(self) -> WorkloadStats:
        """Summary statistics (size, work, horizon, load factor)."""
        sizes = [j.size for j in self.jobs]
        total_work = sum(sizes)
        horizon = (
            max((j.release + j.size for j in self.jobs), default=0)
        )
        m = self.n_machines
        load = total_work / (m * horizon) if m and horizon else 0.0
        return WorkloadStats(
            n_orgs=self.n_orgs,
            n_machines=m,
            n_jobs=len(self.jobs),
            total_work=total_work,
            horizon=horizon,
            load_factor=load,
            mean_size=(total_work / len(sizes)) if sizes else 0.0,
            max_size=max(sizes, default=0),
        )

    # -- transforms ----------------------------------------------------------
    def restrict(self, members: Iterable[int]) -> "Workload":
        """The sub-workload of a coalition: its organizations *and machines*
        keep their global ids, non-members keep their identity but contribute
        neither jobs nor machines.

        Organization ids are preserved (required so that utilities/Shapley
        values computed on subcoalitions line up with the grand coalition);
        non-member organizations are replaced by 0-machine, 0-job husks.
        """
        member_set = set(members)
        orgs = tuple(
            org
            if org.id in member_set
            else Organization(org.id, 0, org.speed, org.name)
            for org in self.organizations
        )
        jobs = [j for j in self.jobs if j.org in member_set]
        return Workload(orgs, jobs)

    def window(self, start: int, end: int) -> "Workload":
        """Jobs released in ``[start, end)``, re-based so time 0 = ``start``.

        This is the paper's experimental protocol (Section 7.2): experiments
        run on random sub-traces ``[t_start, t_start + D)`` of a long trace.
        FIFO indices are re-assigned contiguously per organization.
        """
        if end < start:
            raise ValueError("end must be >= start")
        picked = [j for j in self.jobs if start <= j.release < end]
        picked.sort()
        counters = [0] * self.n_orgs
        rebased = []
        for j in picked:
            rebased.append(
                Job(
                    release=j.release - start,
                    org=j.org,
                    index=counters[j.org],
                    size=j.size,
                    id=-1,
                )
            )
            counters[j.org] += 1
        return Workload(self.organizations, rebased)

    def map_jobs(self, fn: Callable[[Job], Job]) -> "Workload":
        """Apply ``fn`` to every job and revalidate (used by manipulations)."""
        return Workload(self.organizations, [fn(j) for j in self.jobs])

    def with_unit_jobs(self) -> "Workload":
        """Replace every job of size p with p unit jobs (same release).

        Used by the unit-size special case (Section 5.1) and by tests of
        Prop. 5.4.  FIFO indices are re-assigned.
        """
        counters = [0] * self.n_orgs
        out: list[Job] = []
        for j in sorted(self.jobs):
            for _ in range(j.size):
                out.append(Job(j.release, j.org, counters[j.org], 1, id=-1))
                counters[j.org] += 1
        return Workload(self.organizations, out)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Workload({self.stats()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Workload):
            return NotImplemented
        return (
            self.organizations == other.organizations and self.jobs == other.jobs
        )

    def __hash__(self) -> int:
        return hash((self.organizations, self.jobs))
