"""Event-driven online cluster simulator (one instance per coalition).

This is the execution substrate shared by *every* scheduling algorithm in the
library.  It models the paper's system (Section 2): a pool of identical
processors contributed by coalition members, per-organization FIFO queues of
released-but-unstarted jobs, non-preemptive execution, and the *greedy*
invariant (a free machine plus a waiting job forces a start).

Design notes (see DESIGN.md §2):

* **Event-driven**: scheduling decisions only occur at release/completion
  times; the engine advances lazily between them.  Tests prove equivalence
  with a literal per-time-tick transcription of the paper's pseudo-code
  (:mod:`repro.sim.tick_reference`).
* **Exact integer utility aggregates**: the strategy-proof utility
  :math:`\\psi_{sp}` of a completed job ``(s, p)`` at time ``t`` is
  ``p*(t-s) - p*(p-1)/2``, so per-organization sums ``(Σp, Σ(p·s+p(p-1)/2))``
  plus an O(#running) pass give :math:`\\psi_{sp}` at any event time in exact
  integer arithmetic.  The same bookkeeping keyed by the *machine owner*
  supports DIRECTCONTR's contribution estimate.
* **O(1) value ledger**: coalition-total aggregates (completed units and
  weighted starts, plus running-job start moments) are maintained
  incrementally, so ``value(t)`` at the current time is a constant-time
  formula and :class:`repro.core.fleet.CoalitionFleet` can mirror every
  engine's ledger into numpy arrays.  A ``version`` counter bumps on each
  value-affecting mutation (start or completion -- releases do not change
  :math:`\\psi_{sp}`) for the fleet's dirty tracking.
* **Free machines**: a min-heap with a shadow set and lazy deletion, so the
  default lowest-id pop stays O(log n) *and* DIRECTCONTR's explicit random
  machine choice is O(1) instead of the O(n) remove-and-reheapify it used
  to cost.
* **Non-clairvoyance**: scheduler-facing accessors never expose the size of
  a running job; sizes become visible only through completion.
* **Dynamic mutation** (DESIGN.md §6): the online service feeds the engine
  incrementally instead of freezing everything at construction.
  :meth:`ClusterEngine.submit` inserts a job into the unprocessed stream
  suffix (bit-identical with a frozen stream whenever submission happens no
  later than release); :meth:`ClusterEngine.add_machine` /
  :meth:`ClusterEngine.retire_machine` grow and drain the pool (a busy
  machine finishes its job, then retires); :meth:`ClusterEngine.add_member`
  / :meth:`ClusterEngine.remove_member` change the coalition, withdrawing a
  leaver's unstarted jobs while running jobs complete (non-preemption) and
  its history stays in every ledger.
"""

from __future__ import annotations

import heapq
from bisect import insort
from collections import deque
from typing import Iterable, Sequence

from .job import Job
from .schedule import Schedule, ScheduledJob
from .workload import Workload

__all__ = ["ClusterEngine", "RunningJob"]


class RunningJob:
    """A job currently occupying a machine (scheduler-visible fields only)."""

    __slots__ = ("job", "start", "machine", "finish")

    def __init__(self, job: Job, start: int, machine: int):
        self.job = job
        self.start = start
        self.machine = machine
        self.finish = start + job.size  # engine-internal; hidden from policies

    @property
    def org(self) -> int:
        return self.job.org


class ClusterEngine:
    """Simulates one coalition's cluster, driven by an external orchestrator.

    Parameters
    ----------
    workload:
        The full problem instance.  Only the jobs and machines of coalition
        ``members`` participate.
    members:
        Coalition member organization ids (default: all).  Machine ids are
        global (canonical layout: org 0's machines first), so the same job
        placed by different coalitions refers to consistent machine ids.
    horizon:
        Optional stop time: events at ``t >= horizon`` are not processed.
        Utilities evaluated *at* the horizon are unaffected (a job started at
        ``t`` contributes nothing to :math:`\\psi_{sp}(t)`).

    The orchestration contract is::

        while (t := engine.next_event_time()) is not None:
            engine.advance_to(t)
            while engine.free_count > 0 and engine.has_waiting():
                engine.start_next(chosen_org)

    (:meth:`drive` packages this loop for simple policies.)
    """

    def __init__(
        self,
        workload: Workload,
        members: Iterable[int] | None = None,
        *,
        horizon: int | None = None,
    ) -> None:
        self.workload = workload
        k = workload.n_orgs
        self.n_orgs = k
        self.members: tuple[int, ...] = (
            tuple(sorted(set(members))) if members is not None else tuple(range(k))
        )
        for u in self.members:
            if not 0 <= u < k:
                raise ValueError(f"unknown organization {u}")
        self.horizon = horizon

        # --- machines (canonical global ids, filtered to members) --------
        owners: list[int] = []
        for org in workload.organizations:
            owners.extend([org.id] * org.machines)
        self.machine_owner: dict[int, int] = {
            mid: o for mid, o in enumerate(owners) if o in set(self.members)
        }
        self.n_machines = len(self.machine_owner)
        # free machines: min-heap + shadow set with lazy deletion (an id is
        # free iff it is in the set; the heap may hold stale entries)
        self._free: list[int] = sorted(self.machine_owner)
        self._free_set: set[int] = set(self._free)
        heapq.heapify(self._free)

        # --- job release stream (members only, canonical order) ----------
        self._stream: list[Job] = sorted(
            j for j in workload.jobs if j.org in set(self.members)
        )
        self._stream_pos = 0
        self._pending: dict[int, deque[Job]] = {u: deque() for u in self.members}
        self._n_waiting = 0

        # --- execution state ---------------------------------------------
        self.t = 0
        self._busy: list[tuple[int, int]] = []  # (finish, machine) heap
        self._running: dict[int, RunningJob] = {}  # machine -> RunningJob
        # dynamic-pool bookkeeping: machines draining (busy, retire at
        # completion) and machines fully retired (kept in machine_owner so
        # retrospective by-owner attribution of their past work still works)
        self._retiring: set[int] = set()
        self._retired: set[int] = set()

        # --- psi_sp aggregates (exact ints) --------------------------------
        # by job owner
        self._done_units = [0] * k
        self._done_wstart = [0] * k
        # by machine owner (for DIRECTCONTR-style contribution accounting)
        self._done_units_mach = [0] * k
        self._done_wstart_mach = [0] * k
        # coalition totals for the O(1) value ledger: completed units,
        # completed weighted starts, and the running jobs' start-moment sums
        # Σs and Σs² (all running jobs have finish > self.t, so their
        # psi_sp at self.t is tri(t - s) -- see value()).
        self._tot_units = 0
        self._tot_wstart = 0
        self._run_start_sum = 0
        self._run_start_sq = 0
        #: bumped on every value-affecting mutation (start / completion);
        #: releases leave it untouched.  CoalitionFleet uses this for dirty
        #: tracking of its vectorized ledger.
        self.version = 0

        self._log: list[ScheduledJob] = []
        self._completed: list[ScheduledJob] = []

    # ------------------------------------------------------------------
    # event iteration
    # ------------------------------------------------------------------
    def next_event_time(self) -> int | None:
        """Next release or completion time after the current time, or None.

        Returns ``None`` once there is nothing left to do (or every
        remaining event is at/after the horizon).
        """
        candidates: list[int] = []
        if self._stream_pos < len(self._stream):
            candidates.append(self._stream[self._stream_pos].release)
        if self._busy:
            candidates.append(self._busy[0][0])
        if not candidates:
            return None
        t = min(candidates)
        if self.horizon is not None and t >= self.horizon:
            return None
        return t

    def has_event_at_or_before(self, t: int) -> bool:
        """Any unprocessed release or completion at a time ``<= t``?

        Allocation-free (unlike :meth:`next_event_time`) and deliberately
        horizon-blind: it answers "would :meth:`advance_to` do any work",
        which is what :class:`repro.core.fleet.CoalitionFleet` asks once
        per engine per decision time.
        """
        if self._stream_pos < len(self._stream):
            if self._stream[self._stream_pos].release <= t:
                return True
        return bool(self._busy) and self._busy[0][0] <= t

    def advance_to(self, t: int) -> None:
        """Process all completions and releases at times ``<= t``.

        Completions are processed before releases at equal times; neither
        ordering affects utilities (both only enable scheduling *at* ``t``).
        """
        if t < self.t:
            raise ValueError(f"cannot advance backwards ({self.t} -> {t})")
        while self._busy and self._busy[0][0] <= t:
            finish, machine = heapq.heappop(self._busy)
            run = self._running.pop(machine)
            self._complete(run)
            if machine in self._retiring:
                self._retiring.discard(machine)
                self._retired.add(machine)
                self.n_machines -= 1
            else:
                heapq.heappush(self._free, machine)
                self._free_set.add(machine)
        while (
            self._stream_pos < len(self._stream)
            and self._stream[self._stream_pos].release <= t
        ):
            job = self._stream[self._stream_pos]
            self._stream_pos += 1
            self._pending[job.org].append(job)
            self._n_waiting += 1
        self.t = t

    def _complete(self, run: RunningJob) -> None:
        p = run.job.size
        s = run.start
        tri = p * s + p * (p - 1) // 2
        u = run.job.org
        self._done_units[u] += p
        self._done_wstart[u] += tri
        mo = self.machine_owner[run.machine]
        self._done_units_mach[mo] += p
        self._done_wstart_mach[mo] += tri
        self._tot_units += p
        self._tot_wstart += tri
        self._run_start_sum -= s
        self._run_start_sq -= s * s
        self.version += 1
        self._completed.append(ScheduledJob(run.start, run.machine, run.job))

    # ------------------------------------------------------------------
    # scheduler-facing state (non-clairvoyant: no running sizes exposed)
    # ------------------------------------------------------------------
    @property
    def free_count(self) -> int:
        return len(self._free_set)

    def free_machines(self) -> list[int]:
        """Ids of currently free machines (sorted)."""
        return sorted(self._free_set)

    def has_waiting(self) -> bool:
        """True when any member has a released, unstarted job."""
        return self._n_waiting > 0

    def waiting_count(self, org: int) -> int:
        """Released-but-unstarted jobs of one organization."""
        return len(self._pending[org])

    def waiting_orgs(self) -> list[int]:
        """Members with at least one released, unstarted job (ascending)."""
        return [u for u in self.members if self._pending[u]]

    def head_release(self, org: int) -> int:
        """Release time of the organization's first waiting job."""
        return self._pending[org][0].release

    def running_count(self, org: int) -> int:
        """Currently executing jobs of one organization."""
        return sum(1 for r in self._running.values() if r.org == org)

    def running_counts(self) -> list[int]:
        """Currently executing jobs per organization (length k)."""
        out = [0] * self.n_orgs
        for r in self._running.values():
            out[r.org] += 1
        return out

    def running_on(self, machine: int) -> RunningJob | None:
        """The job currently on ``machine`` (None if the machine is free)."""
        return self._running.get(machine)

    def consumed_cpu(self, org: int, t: int | None = None) -> int:
        """CPU time consumed by the organization's jobs up to ``t``.

        Completed work plus elapsed time of running jobs -- the quantity the
        classic FAIRSHARE algorithm balances against target shares.
        """
        t = self.t if t is None else t
        total = self._done_units[org]
        for r in self._running.values():
            if r.org == org:
                total += min(t, r.finish) - r.start
        return total

    # ------------------------------------------------------------------
    # psi_sp utilities (exact integers)
    # ------------------------------------------------------------------
    def psi(self, org: int, t: int | None = None) -> int:
        """:math:`\\psi_{sp}` (paper Eq. 3) of one organization at time ``t``.

        O(#running) for the current time (the hot path during simulation);
        retrospective queries (``t < self.t``) recompute from the start log.
        """
        t = self.t if t is None else t
        if t < self.t:
            return self.psis(t)[org]
        val = self._done_units[org] * t - self._done_wstart[org]
        for r in self._running.values():
            if r.org == org:
                val += _partial_psi(r.start, r.job.size, t)
        return val

    def psis(self, t: int | None = None) -> list[int]:
        """Per-organization :math:`\\psi_{sp}` values in one pass (length k)."""
        t = self.t if t is None else t
        out = [0] * self.n_orgs
        if t < self.t:
            # retrospective: the completed-job aggregates assume full
            # execution by t, so recompute exactly from the start log
            for e in self._log:
                out[e.job.org] += _partial_psi(e.start, e.job.size, t)
            return out
        for u in range(self.n_orgs):
            out[u] = self._done_units[u] * t - self._done_wstart[u]
        for r in self._running.values():
            out[r.org] += _partial_psi(r.start, r.job.size, t)
        return out

    def psis_by_machine_owner(self, t: int | None = None) -> list[int]:
        """:math:`\\psi_{sp}` of work executed on each organization's machines.

        The DIRECTCONTR contribution estimate: the utility an organization's
        processors *produced* (for anyone), at time ``t``.
        """
        t = self.t if t is None else t
        out = [0] * self.n_orgs
        if t < self.t:
            for e in self._log:
                out[self.machine_owner[e.machine]] += _partial_psi(
                    e.start, e.job.size, t
                )
            return out
        for u in range(self.n_orgs):
            out[u] = self._done_units_mach[u] * t - self._done_wstart_mach[u]
        for machine, r in self._running.items():
            out[self.machine_owner[machine]] += _partial_psi(
                r.start, r.job.size, t
            )
        return out

    def value(self, t: int | None = None) -> int:
        """Coalition value ``v(C, t)`` = total :math:`\\psi_{sp}` (paper §2).

        O(1) at the current time: every running job has ``finish > self.t``
        (completions at or before the current time have been processed), so
        its executed part at ``t = self.t`` is ``c = t - start < size`` and
        its psi_sp is the triangular sum ``c*(c+1)/2``; summing over running
        jobs needs only ``Σstart`` and ``Σstart²``.
        """
        if t is None or t == self.t:
            t = self.t
            r = len(self._running)
            return (
                self._tot_units * t
                - self._tot_wstart
                + (
                    r * (t * t + t)
                    - self._run_start_sum * (2 * t + 1)
                    + self._run_start_sq
                )
                // 2
            )
        return sum(self.psis(t))

    def ledger(self) -> tuple[int, int, int, int, int]:
        """The O(1) value aggregates ``(units, wstart, n_running, Σs, Σs²)``.

        Exact Python ints; :class:`repro.core.fleet.CoalitionFleet` mirrors
        them into int64 numpy columns so ``v(C', t)`` for *all* coalitions is
        a handful of array ops.  Valid for evaluation at the engine's current
        time (see :meth:`value`).
        """
        return (
            self._tot_units,
            self._tot_wstart,
            len(self._running),
            self._run_start_sum,
            self._run_start_sq,
        )

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------
    def start_next(self, org: int, machine: int | None = None) -> ScheduledJob:
        """Start the organization's first waiting job now (FIFO order).

        Parameters
        ----------
        machine:
            Specific free machine id (DIRECTCONTR chooses machines in random
            order); default is the lowest-id free machine.
        """
        if not self._pending[org]:
            raise ValueError(f"org {org} has no waiting job at t={self.t}")
        if not self._free_set:
            raise ValueError(f"no free machine at t={self.t}")
        if machine is None:
            # lazy deletion: skip heap entries whose machine was taken by an
            # explicit-machine start since it was pushed
            while True:
                machine = heapq.heappop(self._free)
                if machine in self._free_set:
                    break
            self._free_set.discard(machine)
        else:
            if machine not in self._free_set:
                raise ValueError(f"machine {machine} is not free at t={self.t}")
            self._free_set.discard(machine)  # heap entry goes stale, O(1)
        job = self._pending[org].popleft()
        self._n_waiting -= 1
        run = RunningJob(job, self.t, machine)
        self._running[machine] = run
        heapq.heappush(self._busy, (run.finish, machine))
        self._run_start_sum += self.t
        self._run_start_sq += self.t * self.t
        self.version += 1
        entry = ScheduledJob(self.t, machine, job)
        self._log.append(entry)
        return entry

    # ------------------------------------------------------------------
    # dynamic mutation (online service, DESIGN.md §6)
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> None:
        """Inject a job into the unprocessed stream (online ingestion).

        The job must belong to a current member and must not be released in
        the engine's past (``job.release >= self.t``) -- the service clamps
        stale releases before calling.  Insertion keeps the stream suffix in
        canonical :class:`~repro.core.job.Job` order, so an engine fed one
        job at a time is bit-identical to an engine constructed with the
        full frozen stream (the replay == batch equivalence lever).
        """
        if job.org not in self._pending:
            raise ValueError(f"org {job.org} is not a member of this engine")
        if job.release < self.t:
            raise ValueError(
                f"cannot submit into the past (release {job.release} < "
                f"engine time {self.t})"
            )
        insort(self._stream, job, lo=self._stream_pos)

    def add_machine(self, machine: int, owner: int) -> None:
        """Add a (free) machine with a service-assigned global id."""
        if machine in self.machine_owner:
            raise ValueError(f"machine id {machine} already known")
        if owner not in self._pending:
            raise ValueError(f"org {owner} is not a member of this engine")
        self.machine_owner[machine] = owner
        self.n_machines += 1
        heapq.heappush(self._free, machine)
        self._free_set.add(machine)

    def retire_machine(self, machine: int) -> None:
        """Remove a machine from the pool.

        A free machine retires immediately (its heap entry is lazily
        deleted); a busy machine *drains* -- it finishes its running job
        (non-preemption) and retires at that completion instead of
        returning to the free pool.  Historical attribution is unaffected:
        the ownership record is kept for retrospective by-owner queries.
        """
        if machine in self._free_set:
            self._free_set.discard(machine)
            self._retired.add(machine)
            self.n_machines -= 1
        elif machine in self._running:
            self._retiring.add(machine)
        elif machine in self.machine_owner:
            raise ValueError(f"machine {machine} is already retired")
        else:
            raise ValueError(f"unknown machine {machine}")

    def machine_counts(self) -> list[int]:
        """Live machines per organization (length ``n_orgs``); draining
        machines count until their running job completes."""
        out = [0] * self.n_orgs
        for machine, owner in self.machine_owner.items():
            if machine not in self._retired:
                out[owner] += 1
        return out

    def add_member(self, org: int) -> None:
        """Admit an organization (id may extend the known range).

        The newcomer starts with no machines and no jobs; use
        :meth:`add_machine` / :meth:`submit` for its endowment and stream.
        Per-organization ledgers grow with zeros -- the newcomer's utility
        history begins at admission.
        """
        if org in self._pending:
            raise ValueError(f"org {org} is already a member")
        if org < 0:
            raise ValueError(f"org must be >= 0, got {org}")
        if org >= self.n_orgs:
            grow = org + 1 - self.n_orgs
            for ledger in (
                self._done_units,
                self._done_wstart,
                self._done_units_mach,
                self._done_wstart_mach,
            ):
                ledger.extend([0] * grow)
            self.n_orgs = org + 1
        self.members = tuple(sorted((*self.members, org)))
        self._pending[org] = deque()

    def fork(self) -> "ClusterEngine":
        """An independent copy of this engine's full simulation state.

        Mutable containers are copied, immutable records (the workload,
        jobs, schedule entries, write-once running-job records) are
        shared.  The online service forks the grand coalition's engine at
        a membership epoch: the original grows into the new coalition
        while the fork continues the old mask's counterfactual.
        """
        clone = object.__new__(ClusterEngine)
        clone.workload = self.workload
        clone.n_orgs = self.n_orgs
        clone.members = self.members
        clone.horizon = self.horizon
        clone.machine_owner = dict(self.machine_owner)
        clone.n_machines = self.n_machines
        clone._free = list(self._free)
        clone._free_set = set(self._free_set)
        clone._stream = list(self._stream)
        clone._stream_pos = self._stream_pos
        clone._pending = {u: deque(q) for u, q in self._pending.items()}
        clone._n_waiting = self._n_waiting
        clone.t = self.t
        clone._busy = list(self._busy)
        clone._running = dict(self._running)
        clone._retiring = set(self._retiring)
        clone._retired = set(self._retired)
        clone._done_units = list(self._done_units)
        clone._done_wstart = list(self._done_wstart)
        clone._done_units_mach = list(self._done_units_mach)
        clone._done_wstart_mach = list(self._done_wstart_mach)
        clone._tot_units = self._tot_units
        clone._tot_wstart = self._tot_wstart
        clone._run_start_sum = self._run_start_sum
        clone._run_start_sq = self._run_start_sq
        clone.version = self.version
        clone._log = list(self._log)
        clone._completed = list(self._completed)
        return clone

    def remove_member(self, org: int) -> None:
        """Expel an organization: unstarted work is withdrawn.

        Waiting jobs are dropped, not-yet-released jobs are purged from the
        stream, running jobs complete normally (non-preemption) and every
        ledger keeps the leaver's history -- coalition values remain exact
        for the work that actually ran.  The leaver's machines are retired
        separately (:meth:`retire_machine`), so a caller can choose whether
        hardware outlives membership.
        """
        if org not in self._pending:
            raise ValueError(f"org {org} is not a member of this engine")
        self._n_waiting -= len(self._pending[org])
        self._pending[org].clear()
        del self._pending[org]
        self.members = tuple(u for u in self.members if u != org)
        kept = [j for j in self._stream[self._stream_pos:] if j.org != org]
        self._stream = self._stream[: self._stream_pos] + kept

    # ------------------------------------------------------------------
    # orchestration helpers
    # ------------------------------------------------------------------
    def drive(self, select, until: int | None = None) -> None:
        """Run the standard greedy event loop with a selection callback.

        ``select(engine) -> org_id`` is invoked while a machine is free and
        jobs wait.  Processing stops when events are exhausted or the next
        event is at/after ``until`` (events exactly at ``until`` *are*
        processed so values at ``until`` reflect every earlier decision).
        """
        while True:
            t = self.next_event_time()
            if t is None or (until is not None and t > until):
                return
            self.advance_to(t)
            while self._free_set and self._n_waiting:
                self.start_next(select(self))

    def is_idle(self) -> bool:
        """True when no job is running and none is waiting."""
        return not self._running and self._n_waiting == 0

    def done(self) -> bool:
        """True when every job has been released, run and completed."""
        return (
            self._stream_pos == len(self._stream)
            and not self._running
            and self._n_waiting == 0
        )

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def completed_log(self) -> list[ScheduledJob]:
        """Completed jobs in completion order (treat as read-only).

        Completion is when a job's size becomes visible (non-clairvoyance);
        DIRECTCONTR's faithful accounting consumes this list incrementally.
        """
        return self._completed

    def schedule(self) -> Schedule:
        """The schedule built so far (started jobs, including running ones)."""
        return Schedule(self._log)

    def busy_units(self, t: int | None = None) -> int:
        """Unit-size job parts executed strictly before ``t`` (Section 6)."""
        t = self.t if t is None else t
        total = sum(self._done_units)
        # completed jobs may extend past t if t is in their past: recompute
        # exactly from the log instead when t is before current time.
        if t < self.t:
            return sum(
                min(e.job.size, max(0, t - e.start)) for e in self._log
            )
        for r in self._running.values():
            total += max(0, min(t, r.finish) - r.start)
        return total

    def utilization(self, t: int | None = None) -> float:
        """Average fraction of busy processors during ``[0, t)``."""
        t = self.t if t is None else t
        if t <= 0 or self.n_machines == 0:
            return 0.0
        return self.busy_units(t) / (t * self.n_machines)


def _partial_psi(start: int, size: int, t: int) -> int:
    """:math:`\\psi_{sp}` contribution at ``t`` of a single job ``(start, size)``.

    ``c = min(size, t - start)`` unit parts have been executed by ``t``; the
    part run in slot ``start + i`` is worth ``t - start - i``:
    ``sum = c*(t-start) - c*(c-1)/2``  (exact integer).
    """
    c = t - start
    if c <= 0:
        return 0
    if c > size:
        c = size
    return c * (t - start) - c * (c - 1) // 2
