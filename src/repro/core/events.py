"""A deduplicating min-heap of event times.

The simulators are event-driven: schedulers act only at release and
completion times, because between two consecutive events no machine frees up
and no job arrives, so a *greedy* schedule (the paper's feasible class)
cannot change.  Multiple engines (one per coalition in REF/RAND) push their
completion times into one shared queue; duplicates are coalesced so each
time moment is processed once.
"""

from __future__ import annotations

import heapq
from typing import Iterable

__all__ = ["EventQueue"]


class EventQueue:
    """Min-heap of integer time points with de-duplication on pop."""

    __slots__ = ("_heap", "_last")

    def __init__(self, times: Iterable[int] = ()):
        self._heap: list[int] = list(times)
        heapq.heapify(self._heap)
        self._last: int | None = None

    def push(self, t: int) -> None:
        """Add a candidate event time (duplicates are fine)."""
        heapq.heappush(self._heap, t)

    def pop(self) -> int | None:
        """Smallest not-yet-returned time, or ``None`` when exhausted.

        Times less than or equal to the previously popped time are skipped:
        pushing an event at or before the current time cannot create new
        scheduling opportunities (they were handled when that time was
        processed).
        """
        while self._heap:
            t = heapq.heappop(self._heap)
            if self._last is None or t > self._last:
                self._last = t
                return t
        return None

    def peek(self) -> int | None:
        """Smallest pending time without popping (skipping stale entries)."""
        while self._heap and self._last is not None and self._heap[0] <= self._last:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    def __bool__(self) -> bool:
        return self.peek() is not None

    def __len__(self) -> int:
        return len(self._heap)
