"""ClusterService: the long-lived incremental fair-share scheduler.

Where the batch path (:mod:`repro.sim.runner`) freezes a complete
:class:`~repro.core.workload.Workload` and runs a scheduler to
completion, :class:`ClusterService` is a *daemon*: jobs are submitted as
they appear, organizations join and leave, machines are added and
drained, and the fair-share state of the configured policy -- REF's full
subcoalition recursion, RAND's sampled prefix oracle, DIRECTCONTR's
machine-owner accounting, or any :class:`~repro.algorithms.base.
PolicyScheduler` -- advances one decision event at a time.

Equivalence contract (tested, and asserted by
:class:`~repro.service.replay.ReplayDriver`): feeding a frozen workload
through the service in release order reproduces the batch scheduler's
schedule **bit for bit**, because

* engines receive jobs through :meth:`~repro.core.engine.ClusterEngine.
  submit`, which keeps the stream in the same canonical order the batch
  constructor sorts into;
* decision times flow through the same
  :class:`~repro.core.events.EventQueue` (releases pushed at ingest,
  completions pushed by starts) and are therefore popped in the same
  deduplicated ascending order;
* the per-event bodies are literally the batch ones
  (:meth:`repro.algorithms.ref.RefRun.step`,
  :meth:`repro.algorithms.rand.RandRun.step`,
  :meth:`~repro.algorithms.base.PolicyScheduler.schedule_event`), stepped
  instead of driven.

Dynamic membership semantics (DESIGN.md §6): the *physical* cluster is
always the grand coalition's engine and mutates in place -- a joiner's
machines and jobs extend it, a leaver's unstarted jobs are withdrawn
while its running jobs complete (non-preemption) and its machines drain.
Counterfactual coalition engines (REF subcoalitions, RAND samples) keep
their history when their member set survives the change and start fresh
at the change epoch when it does not.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..algorithms.base import PolicyScheduler, SchedulerResult
from ..algorithms.rand import RandRun
from ..algorithms.ref import RefRun
from ..core.coalition import iter_members, popcount, subsets_by_size
from ..core.engine import ClusterEngine
from ..core.fleet import CoalitionFleet
from ..core.job import Job
from ..core.organization import Organization
from ..core.schedule import Schedule
from ..core.workload import Workload
from ..policies import (
    REF_MAX_ORGS,
    CapabilityError,
    PolicySpec,
    get_policy,
    policy_names,
)
from .snapshot import (
    build_snapshot,
    check_snapshot,
    schedule_digest,
)
from .state import ClusterCensus, ServiceOp

__all__ = [
    "ClusterService",
    "OnlinePolicy",
    "REF_MAX_ORGS",
]


# ----------------------------------------------------------------------
# online policy adapters
# ----------------------------------------------------------------------
class OnlinePolicy(ABC):
    """Event-granular policy driver bound to one :class:`ClusterService`.

    The service owns time: it asks :meth:`pending` for the next decision
    time and calls :meth:`step` exactly once per popped time, in
    ascending order.  Mutation hooks keep the policy's engines aligned
    with the live census.
    """

    #: Batch display name (matches the equivalent batch scheduler's).
    name: str = "policy"

    @abstractmethod
    def pending(self) -> "int | None":
        """Next unprocessed decision time (None: idle / past horizon)."""

    @abstractmethod
    def step(self, t: int) -> None:
        """Process the decision round at time ``t``."""

    @abstractmethod
    def force_round(self, t: int) -> None:
        """Run an out-of-band scheduling round at ``t`` (capacity or work
        appeared *after* the round at ``t`` was already processed)."""

    @abstractmethod
    def submit(self, job: Job) -> None:
        """Feed one job to every engine covering its organization."""

    def submit_many(self, jobs: "list[Job]") -> None:
        """Feed a whole ingest batch (the service's micro-batched flush).

        The default loops :meth:`submit`; fleet-backed policies override
        it to absorb the batch in one grouped kernel update with a single
        certification check.  Must be equivalent to per-job feeding --
        the service relies on that for the online==batch contract.
        """
        for job in jobs:
            self.submit(job)

    @abstractmethod
    def grand_engine(self) -> ClusterEngine:
        """The physical cluster: the grand coalition's engine."""

    @abstractmethod
    def join(self, org: int) -> None:
        """An organization was admitted (census already updated)."""

    @abstractmethod
    def leave(self, org: int, machine_ids: "list[int]") -> None:
        """An organization left; retire its machines on the physical
        engine (census already updated)."""

    @abstractmethod
    def machines_added(self, org: int, machine_ids: "list[int]") -> None:
        """Fresh machines joined the pool."""

    @abstractmethod
    def machines_removed(self, org: int, machine_ids: "list[int]") -> None:
        """Machines were removed (busy ones drain)."""


class _SingleEnginePolicy(OnlinePolicy):
    """Adapter for any :class:`PolicyScheduler`: one physical engine,
    stepped through the exact batch event loop (advance, then
    ``schedule_event``)."""

    def __init__(self, service: "ClusterService", scheduler: PolicyScheduler):
        self.service = service
        self.scheduler = scheduler
        self.name = scheduler.name
        self.engine = ClusterEngine(
            service.genesis_workload(), None, horizon=service.horizon
        )
        self._draining = False
        self._pool_target = self.engine.n_machines
        scheduler.on_run_start(self.engine)

    def pending(self) -> "int | None":
        return self.engine.next_event_time()

    def step(self, t: int) -> None:
        self.engine.advance_to(t)
        if self._draining:
            # a machine drain can only complete at an event; re-derive
            # pool-dependent state (e.g. fair-share targets) before
            # scheduling against the shrunken pool
            self._draining = self.engine.n_machines > self._pool_target
            self.scheduler.on_cluster_change(self.engine)
        self.scheduler.schedule_event(self.engine)

    def force_round(self, t: int) -> None:
        self.step(t)

    def _note_drain(self) -> None:
        """A removal may have hit busy machines; until the pool shrinks to
        the census's live count, every step re-derives pool state."""
        self._pool_target = len(self.service.census.live_machines())
        self._draining = self.engine.n_machines > self._pool_target

    def submit(self, job: Job) -> None:
        self.engine.submit(job)

    def grand_engine(self) -> ClusterEngine:
        return self.engine

    def join(self, org: int) -> None:
        self.engine.add_member(org)
        for mid, owner in self.service.census.live_machines((org,)):
            self.engine.add_machine(mid, owner)
        self.scheduler.on_cluster_change(self.engine)

    def leave(self, org: int, machine_ids: "list[int]") -> None:
        self.engine.remove_member(org)
        for mid in machine_ids:
            self.engine.retire_machine(mid)
        self._note_drain()
        self.scheduler.on_cluster_change(self.engine)

    def machines_added(self, org: int, machine_ids: "list[int]") -> None:
        for mid in machine_ids:
            self.engine.add_machine(mid, org)
        self.scheduler.on_cluster_change(self.engine)

    def machines_removed(self, org: int, machine_ids: "list[int]") -> None:
        for mid in machine_ids:
            self.engine.retire_machine(mid)
        self._note_drain()
        self.scheduler.on_cluster_change(self.engine)


class _FleetPolicy(OnlinePolicy):
    """Shared machinery for the fleet-driven policies (REF, RAND): the
    decision queue lives on a :class:`CoalitionFleet` whose grand engine
    is the physical cluster."""

    def __init__(self, service: "ClusterService"):
        self.service = service

    # the fleet carrying the decision queue (set by subclasses)
    fleet: CoalitionFleet
    grand_mask: int

    def pending(self) -> "int | None":
        return self.fleet.peek_decision()

    def step(self, t: int) -> None:
        popped = self.fleet.next_decision()
        if popped != t:
            raise RuntimeError(
                f"decision queue out of sync: popped {popped}, expected {t}"
            )
        self._round(t)

    def force_round(self, t: int) -> None:
        self._round(t)

    def submit(self, job: Job) -> None:
        self.fleet.submit(job)

    def submit_many(self, jobs: "list[Job]") -> None:
        self.fleet.submit_many(jobs)

    def grand_engine(self) -> ClusterEngine:
        return self.fleet.engine(self.grand_mask)

    @abstractmethod
    def _round(self, t: int) -> None:
        """The policy's per-event body."""

    # -- physical-engine mutation (shared by join/leave) ----------------
    def _grow_grand(self, org: int) -> ClusterEngine:
        """Move the physical engine from the old grand mask to the one
        including ``org`` (with its machines); returns it."""
        phys = self.fleet.remove_mask(self.grand_mask)
        phys.add_member(org)
        for mid, owner in self.service.census.live_machines((org,)):
            phys.add_machine(mid, owner)
        self.grand_mask |= 1 << org
        self.fleet.add_mask(self.grand_mask, phys)
        return phys

    def _shrink_grand(
        self, org: int, machine_ids: "list[int]"
    ) -> ClusterEngine:
        """Expel ``org`` from the physical engine: withdraw its unstarted
        jobs, drain its machines, move to the reduced mask."""
        phys = self.fleet.remove_mask(self.grand_mask)
        phys.remove_member(org)
        for mid in machine_ids:
            phys.retire_machine(mid)
        self.grand_mask &= ~(1 << org)
        if self.grand_mask in self.fleet:
            # the physical truth supersedes the counterfactual that
            # simulated this coalition "as if the leaver never joined"
            self.fleet.remove_mask(self.grand_mask)
        self.fleet.add_mask(self.grand_mask, phys)
        return phys

    def _mutate_pool(
        self, org: int, machine_ids: "list[int]", add: bool
    ) -> None:
        bit = 1 << org
        for fl in self._fleets():
            for mask in fl.masks:
                if mask & bit:
                    eng = fl.engine(mask)
                    for mid in machine_ids:
                        if add:
                            eng.add_machine(mid, org)
                        else:
                            eng.retire_machine(mid)

    def _fleets(self) -> "tuple[CoalitionFleet, ...]":
        return (self.fleet,)

    def machines_added(self, org: int, machine_ids: "list[int]") -> None:
        self._mutate_pool(org, machine_ids, add=True)

    def machines_removed(self, org: int, machine_ids: "list[int]") -> None:
        self._mutate_pool(org, machine_ids, add=False)


class _RefPolicy(_FleetPolicy):
    """Online REF: the full subcoalition recursion, stepped per event.

    Coalition engines whose member set survives a membership change keep
    their simulated history; coalitions that only become feasible at the
    change (they contain the joiner) start fresh at the change epoch.
    The old grand coalition forks at a join: the physical engine grows
    into the new grand mask while a deep copy continues the old mask's
    counterfactual ("as if the joiner never arrived").
    """

    name = "REF"

    def __init__(self, service: "ClusterService"):
        super().__init__(service)
        self._check_size(len(service.census.members))
        members = service.census.members
        self.grand_mask = service.census.members_mask
        self.run = RefRun(
            service.genesis_workload(),
            members,
            self.grand_mask,
            service.horizon,
        )
        self.fleet = self.run.fleet

    def _check_size(self, k: int) -> None:
        cap = self.service.max_orgs
        if cap is not None and k > cap:
            raise CapabilityError(
                f"online REF keeps 2^k - 1 coalition engines; {k} active "
                f"members exceeds the cap of {cap} (use RAND or "
                f"DIRECTCONTR for larger federations)"
            )

    def _round(self, t: int) -> None:
        self.run.step(t)

    def join(self, org: int) -> None:
        self._check_size(len(self.service.census.members))
        old_grand = self.grand_mask
        # fork: the physical engine grows into the new grand coalition
        # while its fork carries on the old grand mask's counterfactual
        # ("as if the joiner never arrived"), keeping that ledger row in
        # place
        phys = self.fleet.engine(old_grand)
        self.fleet.replace_engine(old_grand, phys.fork())
        phys.add_member(org)
        for mid, owner in self.service.census.live_machines((org,)):
            phys.add_machine(mid, owner)
        self.grand_mask |= 1 << org
        self.fleet.add_mask(self.grand_mask, phys)
        # fresh epoch engines for every other newcomer coalition
        for group in subsets_by_size(self.grand_mask)[1:]:
            for mask in group:
                if mask not in self.fleet:
                    self.fleet.add_mask(mask, self.service.build_engine(mask))
        self._rebuild()

    def leave(self, org: int, machine_ids: "list[int]") -> None:
        self._shrink_grand(org, machine_ids)
        bit = 1 << org
        for mask in [m for m in self.fleet.masks if m & bit]:
            self.fleet.remove_mask(mask)
        self._rebuild()

    def _rebuild(self) -> None:
        self.run = RefRun(
            self.service.zero_workload(),
            self.service.census.members,
            self.grand_mask,
            self.service.horizon,
            fleet=self.fleet,
        )


class _RandPolicy(_FleetPolicy):
    """Online RAND: sampled-prefix contribution estimates, stepped per
    event.  At a membership change the joining orders are redrawn over
    the new member set (continuing the policy's RNG stream) and the
    oracle engines restart at the change epoch; the physical engine keeps
    its history like every other policy.

    The budget controls mirror :class:`~repro.algorithms.rand.
    RandScheduler`: explicit ``n_samples`` beats the Theorem 5.6
    ``epsilon``/``delta`` choice beats the fixed ``n_orderings``, and an
    epsilon-driven budget is re-resolved from the *live* member count at
    every membership epoch.  ``sampler`` selects the ordering draw
    (:data:`~repro.shapley.sampling.ORDERING_SAMPLERS`), which is how
    ``ref_stratified`` rides this same adapter online.
    """

    def __init__(
        self,
        service: "ClusterService",
        n_orderings: int = 15,
        *,
        epsilon: float = 0.0,
        delta: float = 0.05,
        n_samples: int = 0,
        sampler: "str | None" = None,
        name: "str | None" = None,
    ):
        super().__init__(service)
        self.n_orderings = int(n_orderings)
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.n_samples = int(n_samples)
        self.sampler = sampler
        self.rng = np.random.default_rng(service.seed)
        self.grand_mask = service.census.members_mask
        budget = self._budget(len(service.census.members))
        self.name = name or f"Rand(N={budget})"
        genesis = service.genesis_workload()
        carrier = CoalitionFleet(
            genesis, (self.grand_mask,), horizon=service.horizon
        )
        self.fleet = carrier
        self.run = RandRun(
            genesis,
            service.census.members,
            self.grand_mask,
            budget,
            self.rng,
            service.horizon,
            sampler=sampler,
            oracle_factory=lambda sampled: CoalitionFleet(
                genesis, sampled, horizon=service.horizon, track_events=False
            ),
            fleet=carrier,
        )

    def _round(self, t: int) -> None:
        self.run.step(t)

    def submit(self, job: Job) -> None:
        self.fleet.submit(job)
        self.run.oracle.submit(job)

    def submit_many(self, jobs: "list[Job]") -> None:
        self.fleet.submit_many(jobs)
        self.run.oracle.submit_many(jobs)

    def _fleets(self) -> "tuple[CoalitionFleet, ...]":
        return (self.fleet, self.run.oracle)

    def join(self, org: int) -> None:
        self._grow_grand(org)
        self._redraw()

    def leave(self, org: int, machine_ids: "list[int]") -> None:
        self._shrink_grand(org, machine_ids)
        self._redraw()

    def _budget(self, k: int) -> int:
        """The joining-order budget for ``k`` live members (explicit
        ``n_samples``, else Theorem 5.6, else fixed ``n_orderings``)."""
        if self.n_samples:
            return self.n_samples
        if self.epsilon:
            from ..shapley.sampling import hoeffding_samples

            return hoeffding_samples(k, self.epsilon, 1.0 - self.delta)
        return self.n_orderings

    def _redraw(self) -> None:
        service = self.service
        self.run = RandRun(
            service.zero_workload(),
            service.census.members,
            self.grand_mask,
            self._budget(len(service.census.members)),
            self.rng,
            service.horizon,
            sampler=self.sampler,
            oracle_factory=self._epoch_oracle,
            fleet=self.fleet,
        )

    def _epoch_oracle(self, sampled: "list[int]") -> CoalitionFleet:
        fleet = CoalitionFleet(
            self.service.zero_workload(),
            (),
            horizon=self.service.horizon,
            track_events=False,
        )
        for mask in sampled:
            fleet.add_mask(mask, self.service.build_engine(mask))
        return fleet


# ----------------------------------------------------------------------
# the service
# ----------------------------------------------------------------------
class ClusterService:
    """A long-lived, stateful fair-share scheduling daemon.

    Parameters
    ----------
    machine_counts:
        Genesis endowment: machines per organization (orgs get ids
        ``0..len-1``, machine ids follow the canonical layout so the
        service agrees with batch engines).
    policy:
        A registered policy: a :class:`~repro.policies.PolicySpec`, a
        name, or a CLI string such as ``"rand:n_orderings=30"``.  The
        policy must declare the ``step`` capability
        (:class:`~repro.policies.CapabilityError` otherwise), and its
        ``max_orgs`` cap is enforced here at ingest — at genesis and on
        every :meth:`join_org`.
    seed:
        Policy RNG seed (RAND's orderings, DIRECTCONTR's machine order).
    horizon:
        Optional stop time: decision events at/after it are ignored,
        exactly like the batch schedulers' ``horizon``.
    policy_params:
        Extra policy knobs merged over the spec's params (kept for
        backward compatibility; prefer params on the spec itself).

    Ingest API: :meth:`submit`, :meth:`join_org`, :meth:`leave_org`,
    :meth:`add_machines`, :meth:`remove_machines`; time advances through
    :meth:`advance` / :meth:`drain`.  Every mutation is journaled
    (:mod:`repro.service.state`), which is what :meth:`snapshot` /
    :meth:`restore` serialize.
    """

    def __init__(
        self,
        machine_counts: Sequence[int],
        policy: "str | PolicySpec" = "directcontr",
        *,
        seed: int = 0,
        horizon: "int | None" = None,
        policy_params: "dict | None" = None,
        batch_max: "int | None" = None,
    ) -> None:
        counts = tuple(int(c) for c in machine_counts)
        if not counts:
            raise ValueError("need at least one genesis organization")
        spec = PolicySpec.parse(policy)
        if policy_params:
            spec = spec.with_params(**policy_params)
        entry = get_policy(spec.name)
        if not entry.capabilities.step:
            raise CapabilityError(
                f"policy {spec.name!r} has no step capability: it cannot "
                f"drive the online service (online policies: "
                f"{policy_names('step')})"
            )
        resolved = entry.resolve_params(spec)  # typed error on bad params
        cap = entry.capabilities.max_orgs
        if cap is not None and len(counts) > cap:
            raise CapabilityError(
                f"policy {spec.name!r} has a max_orgs cap of {cap} active "
                f"organizations; genesis has {len(counts)}"
            )
        self.genesis_machines = counts
        self.policy_entry = entry
        self.policy_spec = spec
        self.policy_name = spec.name
        self.seed = int(seed)
        self.horizon = horizon
        #: Explicit (non-default) params — what :meth:`snapshot` records,
        #: keeping snapshot hashes identical to pre-registry ones.
        self.policy_params = spec.as_dict()
        self.census = ClusterCensus.genesis(counts)
        self.clock = 0
        self.journal: "list[ServiceOp]" = []
        self.n_events = 0
        self.n_jobs = 0
        self._last_decision: "int | None" = None
        #: Micro-batched ingest (DESIGN.md §9): accepted-but-unfed jobs.
        #: Census validation and journaling happen eagerly at submit;
        #: feeding the policy's engines is deferred until a flush point
        #: (any time advance, membership/machine mutation, observation, or
        #: the ``batch_max``-th buffered job).  Flushing never runs a
        #: scheduling round, so the schedule is bit-identical for every
        #: batch size.
        if batch_max is not None and batch_max < 1:
            raise ValueError("batch_max must be >= 1 (or None: unbounded)")
        self.batch_max = batch_max
        self._pending_jobs: "list[Job]" = []
        #: Observability counters (reported by :meth:`status`, not part of
        #: the snapshot): how often the ingest buffer flushed and how many
        #: jobs those flushes fed to the policy's engines.
        self.n_flushes = 0
        self.n_jobs_flushed = 0
        self._policy: OnlinePolicy = entry.online_factory(self, resolved)

    @property
    def capabilities(self):
        """The resolved policy's :class:`~repro.policies.PolicyCapabilities`."""
        return self.policy_entry.capabilities

    @property
    def max_orgs(self) -> "int | None":
        """The policy's active-organization cap (``None``: unbounded)."""
        return self.policy_entry.capabilities.max_orgs

    # ------------------------------------------------------------------
    # engine construction helpers (used by the policy adapters)
    # ------------------------------------------------------------------
    def genesis_workload(self) -> Workload:
        """The jobless workload describing the genesis cluster -- batch
        engines built from it share machine ids with the service."""
        return Workload(
            tuple(
                Organization(i, m) for i, m in enumerate(self.genesis_machines)
            ),
            (),
        )

    def zero_workload(self) -> Workload:
        """A jobless, machineless workload spanning every org id ever
        issued (epoch engines get their machines explicitly)."""
        return Workload(
            tuple(Organization(i, 0) for i in range(self.census.n_orgs)), ()
        )

    def build_engine(self, mask: int) -> ClusterEngine:
        """A fresh epoch engine for coalition ``mask``: current live
        machines of its members, empty history, clock-aligned."""
        members = [u for u in iter_members(mask)]
        eng = ClusterEngine(
            self.zero_workload(), members, horizon=self.horizon
        )
        for mid, owner in self.census.live_machines(tuple(members)):
            eng.add_machine(mid, owner)
        if self.clock > 0:
            eng.advance_to(self.clock)
        return eng

    # ------------------------------------------------------------------
    # micro-batched ingest
    # ------------------------------------------------------------------
    @property
    def pending_ingest(self) -> int:
        """Accepted (journaled) jobs not yet fed to the policy's engines."""
        return len(self._pending_jobs)

    def flush_ingest(self) -> int:
        """Feed every buffered job to the policy as one grouped update
        (one kernel certification + splice under the kernel backend);
        returns the number of jobs flushed.  Runs automatically before any
        event processing, membership/machine mutation, or observation --
        calling it explicitly only controls *when* the batch lands, never
        what gets scheduled.
        """
        if not self._pending_jobs:
            return 0
        jobs, self._pending_jobs = self._pending_jobs, []
        self._policy.submit_many(jobs)
        self.n_flushes += 1
        self.n_jobs_flushed += len(jobs)
        return len(jobs)

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    def advance(self, until: int) -> int:
        """Process every decision event at times ``<= until`` and move the
        service clock there; returns the number of events processed.

        Advances are journaled: *when* rounds ran relative to same-time
        submissions is part of the state a snapshot must reproduce.
        """
        self.journal.append(
            ServiceOp("advance", self.clock, (("until", until),))
        )
        self.flush_ingest()
        done = 0
        while True:
            t = self._policy.pending()
            if t is None or t > until:
                break
            self._step(t)
            done += 1
        if until > self.clock:
            self.clock = until
        return done

    def drain(self) -> int:
        """Process every remaining decision event (up to the horizon);
        returns the service clock afterwards."""
        self.journal.append(ServiceOp("drain", self.clock))
        self.flush_ingest()
        while True:
            t = self._policy.pending()
            if t is None:
                break
            self._step(t)
        if self._last_decision is not None:
            self.clock = max(self.clock, self._last_decision)
        return self.clock

    def _require_dynamic(self, action: str) -> None:
        if not self.capabilities.dynamic_membership:
            raise CapabilityError(
                f"policy {self.policy_name!r} has no dynamic_membership "
                f"capability: cannot {action} on a live service"
            )

    def _step(self, t: int) -> None:
        self._policy.step(t)
        self.n_events += 1
        self._last_decision = t

    def _force_round(self) -> None:
        """Re-open the scheduling round at the current clock (capacity or
        work appeared after that round was processed)."""
        self.flush_ingest()
        self._policy.force_round(self.clock)
        self.n_events += 1

    # ------------------------------------------------------------------
    # ingest API
    # ------------------------------------------------------------------
    def submit(
        self,
        org: int,
        size: int,
        release: "int | None" = None,
        *,
        index: "int | None" = None,
        job_id: "int | None" = None,
    ) -> Job:
        """Submit one job; returns the canonical :class:`Job` record.

        ``release`` defaults to (and is clamped up to) the service clock:
        a job cannot be injected into the already-simulated past.  FIFO
        indices are auto-assigned per organization; passing an explicit
        ``index`` (the replay path) asserts it matches the sequence.
        Per organization, releases must be non-decreasing in submission
        order (otherwise FIFO order would be unrealizable).
        """
        self.census.require_member(org)
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        effective = self.clock if release is None else max(release, self.clock)
        if effective < self.census.last_release[org]:
            raise ValueError(
                f"org {org}: release {effective} precedes an earlier "
                f"submission ({self.census.last_release[org]}); FIFO order "
                f"would be unrealizable"
            )
        expected = self.census.next_index[org]
        if index is not None and index != expected:
            raise ValueError(
                f"org {org}: expected FIFO index {expected}, got {index}"
            )
        jid = self.census.next_job_id if job_id is None else job_id
        self.census.next_job_id = max(self.census.next_job_id, jid + 1)
        self.census.next_index[org] = expected + 1
        self.census.last_release[org] = effective
        job = Job(effective, org, expected, int(size), id=jid)
        self.journal.append(
            ServiceOp(
                "submit",
                self.clock,
                (
                    ("org", org),
                    ("size", job.size),
                    ("release", effective),
                    ("index", expected),
                    ("id", jid),
                ),
            )
        )
        self._pending_jobs.append(job)
        self.n_jobs += 1
        if self._last_decision is not None and effective <= self._last_decision:
            # the round at this time already ran; re-open it so a free
            # machine cannot idle past a job that just arrived
            # (_force_round flushes the buffer first)
            self._force_round()
        elif (
            self.batch_max is not None
            and len(self._pending_jobs) >= self.batch_max
        ):
            self.flush_ingest()
        return job

    def submit_job(self, job: Job) -> Job:
        """Submit a pre-built :class:`Job` (the replay driver's path),
        preserving its identity fields."""
        return self.submit(
            job.org,
            job.size,
            release=job.release,
            index=job.index,
            job_id=job.id,
        )

    def join_org(self, machines: int = 0) -> int:
        """Admit a new organization with ``machines`` fresh processors;
        returns its (never reused) id.

        Capability-validated at ingest: a join beyond the policy's
        ``max_orgs`` cap (or under a policy without
        ``dynamic_membership``) fails with a typed
        :class:`~repro.policies.CapabilityError` before any state
        mutates.
        """
        if machines < 0:
            raise ValueError("machines must be >= 0")
        self._require_dynamic("admit an organization")
        self.flush_ingest()
        cap = self.max_orgs
        if cap is not None and len(self.census.members) + 1 > cap:
            raise CapabilityError(
                f"policy {self.policy_name!r} has a max_orgs cap of {cap} "
                f"active organizations; a join would make "
                f"{len(self.census.members) + 1}"
            )
        org, _ = self.census.admit(machines)
        self.journal.append(
            ServiceOp("join_org", self.clock, (("machines", machines),))
        )
        try:
            self._policy.join(org)
        except Exception:
            # keep census and engines consistent on refusal (e.g. the
            # REF size cap): roll the admission back
            self.census.rollback_admit(org, machines)
            self.journal.pop()
            raise
        if machines > 0:
            self._force_round()
        return org

    def leave_org(self, org: int) -> None:
        """Expel an organization: its waiting jobs are withdrawn, its
        running jobs complete (non-preemption), its machines drain."""
        self._require_dynamic("expel an organization")
        self.census.require_member(org)
        if len(self.census.members) == 1:
            raise ValueError("cannot remove the last member organization")
        self.flush_ingest()
        machine_ids = self.census.expel(org)
        self.journal.append(
            ServiceOp("leave_org", self.clock, (("org", org),))
        )
        self._policy.leave(org, machine_ids)

    def add_machines(self, org: int, count: int) -> "list[int]":
        """Grow an organization's endowment; returns the new global ids."""
        if count < 1:
            raise ValueError("count must be >= 1")
        self.flush_ingest()
        machine_ids = self.census.grow(org, count)
        self.journal.append(
            ServiceOp(
                "add_machines", self.clock, (("org", org), ("count", count))
            )
        )
        self._policy.machines_added(org, machine_ids)
        self._force_round()
        return machine_ids

    def remove_machines(self, org: int, count: int) -> "list[int]":
        """Shrink an organization's endowment (highest ids first; busy
        machines drain); returns the retired global ids."""
        if count < 1:
            raise ValueError("count must be >= 1")
        self.flush_ingest()
        machine_ids = self.census.shrink(org, count)
        self.journal.append(
            ServiceOp(
                "remove_machines",
                self.clock,
                (("org", org), ("count", count)),
            )
        )
        self._policy.machines_removed(org, machine_ids)
        return machine_ids

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    @property
    def policy(self) -> OnlinePolicy:
        """The live policy adapter (buffered ingest is flushed first, so
        engine state observed through it reflects every accepted op)."""
        self.flush_ingest()
        return self._policy

    def schedule(self) -> Schedule:
        """The physical cluster's schedule so far."""
        self.flush_ingest()
        return self._policy.grand_engine().schedule()

    def psis(self, t: "int | None" = None) -> "list[int]":
        """Per-organization psi_sp on the physical cluster."""
        self.flush_ingest()
        return self._policy.grand_engine().psis(t)

    def result(self, workload: "Workload | None" = None) -> SchedulerResult:
        """The run-so-far as a batch-compatible :class:`SchedulerResult`
        (``workload`` defaults to the jobless genesis description)."""
        self.flush_ingest()
        engine = self._policy.grand_engine()
        return SchedulerResult(
            algorithm=self._policy.name,
            workload=workload if workload is not None else self.genesis_workload(),
            members=engine.members,
            schedule=engine.schedule(),
            horizon=self.horizon,
            meta={"online": True, "n_events": self.n_events},
        )

    def status(self) -> dict:
        """A JSON-friendly health/throughput summary.

        ``ingest.buffered`` reports the micro-batch buffer depth *as the
        status call found it* (observation flushes the buffer, so the live
        value afterwards is always 0); ``per_org`` carries the ingest and
        queue counters the gateway's aggregate status rolls up.
        """
        buffered = self.pending_ingest
        self.flush_ingest()
        engine = self._policy.grand_engine()
        running = engine.running_counts()
        return {
            "policy": self._policy.name,
            "clock": self.clock,
            "members": list(self.census.members),
            "machines": {
                str(org): len(ids) for org, ids in self.census.machines.items()
            },
            "jobs_submitted": self.n_jobs,
            "jobs_started": len(engine.schedule()),
            "events_processed": self.n_events,
            "waiting": sum(
                engine.waiting_count(u) for u in engine.members
            ),
            "running": sum(running),
            "free_machines": engine.free_count,
            "ingest": {
                "buffered": buffered,
                "flushes": self.n_flushes,
                "jobs_flushed": self.n_jobs_flushed,
            },
            "per_org": {
                str(u): {
                    "jobs_submitted": self.census.next_index.get(u, 0),
                    "waiting": engine.waiting_count(u),
                    "running": running[u] if u < len(running) else 0,
                }
                for u in self.census.members
            },
        }

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Serialize the full scheduler state (event-sourced: genesis +
        journal + clock, content-hashed; see :mod:`repro.service.snapshot`)."""
        return build_snapshot(
            policy={
                "name": self.policy_name,
                "seed": self.seed,
                "params": dict(self.policy_params),
            },
            genesis_machines=self.genesis_machines,
            horizon=self.horizon,
            clock=self.clock,
            journal=self.journal,
            digest=schedule_digest(self.schedule()),
            n_events=self.n_events,
        )

    @classmethod
    def restore(
        cls,
        payload: dict,
        *,
        verify: bool = True,
        batch_max: "int | None" = None,
    ) -> "ClusterService":
        """Rebuild a service from a snapshot, bit-identically.

        The journal is replayed through the live ingest path (each op at
        its recorded clock) with micro-batched ingest -- consecutive
        journaled submits land as one grouped update at the next journaled
        flush point, which batching guarantees is schedule-identical --
        then the clock is advanced to the snapshot's.  With ``verify``
        (default) the restored schedule's digest must match the recorded
        one.  ``batch_max`` becomes the restored service's ingest knob
        (replay itself always defers to the journaled flush points).
        """
        journal = check_snapshot(payload)
        policy = payload["policy"]
        service = cls(
            payload["genesis_machines"],
            policy["name"],
            seed=int(policy["seed"]),
            horizon=payload["horizon"],
            policy_params=policy.get("params") or {},
        )
        for op in journal:
            service._apply(op)
        service.batch_max = batch_max
        if service.clock != payload["clock"]:
            raise ValueError(
                f"restore verification failed: replayed clock "
                f"{service.clock} != recorded {payload['clock']}"
            )
        if verify:
            digest = schedule_digest(service.schedule())
            if digest != payload["schedule_digest"]:
                raise ValueError(
                    f"restore verification failed: replayed schedule digest "
                    f"{digest} != recorded {payload['schedule_digest']}"
                )
        return service

    def _apply(self, op: ServiceOp) -> None:
        if op.kind == "submit":
            self.submit(
                op.arg("org"),
                op.arg("size"),
                release=op.arg("release"),
                index=op.arg("index"),
                job_id=op.arg("id"),
            )
        elif op.kind == "join_org":
            self.join_org(op.arg("machines"))
        elif op.kind == "leave_org":
            self.leave_org(op.arg("org"))
        elif op.kind == "add_machines":
            self.add_machines(op.arg("org"), op.arg("count"))
        elif op.kind == "remove_machines":
            self.remove_machines(op.arg("org"), op.arg("count"))
        elif op.kind == "advance":
            self.advance(op.arg("until"))
        elif op.kind == "drain":
            self.drain()
        else:  # pragma: no cover - ServiceOp validates kinds
            raise ValueError(f"unknown op kind {op.kind!r}")
