"""Snapshot format: versioned, content-hashed service checkpoints.

A snapshot captures the service's *sufficient statistic* -- genesis
configuration, policy identity, the ordered ingest journal and the clock
-- rather than a dump of every engine's internals (DESIGN.md §6 explains
the trade).  Restore replays the journal through the production code
path, so a restored daemon is bit-identical to the killed one by
construction; the recorded ``schedule_digest`` lets :func:`verify` prove
it after the fact.

Like :class:`~repro.experiments.spec.ScenarioSpec`, a snapshot is
content-hashed (canonical JSON, SHA-256, 16 hex chars) so two snapshots
are interchangeable iff their hashes match, and a corrupted or hand-edited
file is rejected before any state is rebuilt.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from .state import ServiceOp

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "content_hash",
    "schedule_digest",
    "build_snapshot",
    "check_snapshot",
    "save_snapshot",
    "load_snapshot",
]

SNAPSHOT_FORMAT = "repro.service.snapshot"

#: Bump on any change to the payload layout; restore refuses unknown
#: versions instead of silently misreading them.
SNAPSHOT_VERSION = 1


def content_hash(payload: dict) -> str:
    """Canonical-JSON SHA-256 of the payload minus its own hash field."""
    body = {k: v for k, v in payload.items() if k != "content_hash"}
    text = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def schedule_digest(entries) -> str:
    """Digest of a schedule's start log: the output-side fingerprint used
    to verify that a restored service reproduced the original bit for bit.
    """
    rows = sorted(
        (e.start, e.machine, e.job.org, e.job.index, e.job.size, e.job.id)
        for e in entries
    )
    text = json.dumps(rows, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def build_snapshot(
    *,
    policy: dict,
    genesis_machines: tuple[int, ...],
    horizon: "int | None",
    clock: int,
    journal: "list[ServiceOp]",
    digest: str,
    n_events: int,
) -> dict:
    payload = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "policy": policy,
        "genesis_machines": list(genesis_machines),
        "horizon": horizon,
        "clock": clock,
        "journal": [op.to_json() for op in journal],
        "schedule_digest": digest,
        "n_events": n_events,
    }
    payload["content_hash"] = content_hash(payload)
    return payload


def check_snapshot(payload: dict) -> list[ServiceOp]:
    """Validate format / version / hash; return the decoded journal."""
    if payload.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(
            f"not a service snapshot (format={payload.get('format')!r})"
        )
    if payload.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported snapshot version {payload.get('version')!r} "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    expected = payload.get("content_hash")
    actual = content_hash(payload)
    if expected != actual:
        raise ValueError(
            f"snapshot content hash mismatch (recorded {expected}, "
            f"recomputed {actual}): refusing to restore corrupted state"
        )
    return [ServiceOp.from_json(d) for d in payload["journal"]]


def save_snapshot(payload: dict, path: "str | Path") -> Path:
    """Write a checkpoint atomically: temp file, fsync, ``os.rename``.

    A crash (or injected fault) mid-write can therefore only ever leave a
    torn ``*.tmp`` beside an intact previous checkpoint -- readers never
    observe a half-written file, which is what lets gateway recovery fall
    back to the previous checkpoint plus a longer WAL replay instead of
    dying on corrupt JSON.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    data = json.dumps(payload, sort_keys=True, indent=1) + "\n"
    with open(tmp, "w", encoding="utf-8") as f:
        f.write(data)
        f.flush()
        os.fsync(f.fileno())
    os.rename(tmp, path)
    return path


def load_snapshot(path: "str | Path") -> dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))
