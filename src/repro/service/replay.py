"""ReplayDriver: stream a frozen workload through the live service.

This is both the service's proof harness and its load generator: any
workload source -- synthetic stand-ins, real SWF traces, the federated /
churn families of the scenario registry -- is replayed as timed events
(jobs submitted in release order, the clock advanced between release
groups), and the resulting schedule is compared **bit for bit** against
the batch scheduler the policy mirrors (the `sim/runner.py` path).

``snapshot_every`` exercises the crash story: after every N release
groups the service is snapshotted, discarded, and restored from the
snapshot before streaming continues -- so a passing replay proves the
kill / restore / resume cycle is invisible in the output.

:func:`replay_scenario` plugs the driver into the PR 2 scenario
registry: the same family builders that feed the batch pipeline feed the
service, so "replay == batch over every registered scenario family" is
one parameterized assertion (see tests/test_service.py).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import groupby
from typing import Sequence

from ..core.schedule import Schedule
from ..core.workload import Workload
from ..policies import PolicySpec, build_scheduler
from .service import ClusterService

__all__ = ["ReplayDriver", "ReplayReport", "replay_scenario"]


@dataclass
class ReplayReport:
    """Outcome of one replay: throughput plus the equivalence verdict."""

    policy: str
    n_jobs: int
    n_events: int
    n_snapshots: int
    wall_time_s: float
    schedule: Schedule
    equivalent: "bool | None" = None
    batch_schedule: "Schedule | None" = None
    metrics: dict = field(default_factory=dict)

    @property
    def events_per_sec(self) -> float:
        if self.wall_time_s <= 0:
            return 0.0
        return self.n_events / self.wall_time_s

    def summary(self) -> str:
        verdict = (
            "not checked"
            if self.equivalent is None
            else ("OK (bit-identical)" if self.equivalent else "FAILED")
        )
        lines = [
            f"policy            {self.policy}",
            f"jobs streamed     {self.n_jobs}",
            f"decision events   {self.n_events}",
            f"snapshot cycles   {self.n_snapshots}",
            f"wall time         {self.wall_time_s:.3f}s",
            f"events/sec        {self.events_per_sec:,.0f}",
            f"replay == batch   {verdict}",
        ]
        for name, value in self.metrics.items():
            lines.append(f"{name:<18}{value:.6g}")
        return "\n".join(lines)


class ReplayDriver:
    """Stream ``workload`` through a :class:`ClusterService`.

    Parameters
    ----------
    workload:
        The frozen instance to stream (its machine endowments become the
        service genesis; its jobs are submitted at their release times).
    policy:
        Service policy: a :class:`~repro.policies.PolicySpec`, a
        registered name, or a CLI string like ``"rand:n_orderings=30"``
        (resolved through :data:`repro.policies.POLICY_REGISTRY`; must
        declare the ``step`` capability).
    seed:
        Policy seed; must match the batch counterpart's for equivalence.
    horizon:
        Optional stop time (the batch scheduler gets the same one).
    snapshot_every:
        Kill/restore cadence: after every N release groups the service is
        snapshotted, thrown away, and restored from the snapshot.
        ``None`` streams straight through.
    check_batch:
        Run the batch counterpart on the same workload and compare
        schedules (exact ``Schedule`` equality, machine ids included).
    """

    def __init__(
        self,
        workload: Workload,
        policy: "str | PolicySpec" = "directcontr",
        *,
        seed: int = 0,
        horizon: "int | None" = None,
        snapshot_every: "int | None" = None,
        check_batch: bool = True,
        policy_params: "dict | None" = None,
    ) -> None:
        if snapshot_every is not None and snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.workload = workload
        self.policy = policy
        self.seed = seed
        self.horizon = horizon
        self.snapshot_every = snapshot_every
        self.check_batch = check_batch
        self.policy_params = policy_params

    def run(self) -> ReplayReport:
        service = ClusterService(
            self.workload.machine_counts(),
            self.policy,
            seed=self.seed,
            horizon=self.horizon,
            policy_params=self.policy_params,
        )
        jobs = sorted(self.workload.jobs)
        n_snapshots = 0
        started = time.perf_counter()
        for n_groups, (release, group) in enumerate(
            groupby(jobs, key=lambda j: j.release), start=1
        ):
            for job in group:
                service.submit_job(job)
            service.advance(release)
            if (
                self.snapshot_every is not None
                and n_groups % self.snapshot_every == 0
            ):
                # kill / restore: the restored daemon must be bit-identical
                service = ClusterService.restore(service.snapshot())
                n_snapshots += 1
        service.drain()
        wall = time.perf_counter() - started

        report = ReplayReport(
            policy=service.policy.name,
            n_jobs=service.n_jobs,
            n_events=service.n_events,
            n_snapshots=n_snapshots,
            wall_time_s=wall,
            schedule=service.schedule(),
        )
        if self.check_batch:
            spec = PolicySpec.parse(self.policy)
            if self.policy_params:
                spec = spec.with_params(**self.policy_params)
            batch = build_scheduler(spec, seed=self.seed, horizon=self.horizon)
            batch_result = batch.run(self.workload)
            report.batch_schedule = batch_result.schedule
            report.equivalent = report.schedule == batch_result.schedule
        return report


def replay_scenario(
    name: str,
    *,
    instance_index: int = 0,
    policy: "str | PolicySpec" = "directcontr",
    snapshot_every: "int | None" = None,
    check_batch: bool = True,
    metrics: "Sequence[str] | None" = None,
    **overrides,
) -> ReplayReport:
    """Replay one instance of a registered scenario through the service.

    The instance is built by the scenario's family builder exactly as the
    batch pipeline would build it (same derived seeds), the service runs
    with ``horizon = spec.duration``, and -- when ``metrics`` is given --
    every named metric is scored for the replayed schedule against the
    exact REF reference, mirroring ``evaluate_portfolio``.
    """
    from ..experiments.registry import get_family, scenario_spec
    from ..sim.runner import METRICS

    spec = scenario_spec(name, **overrides)
    instances = spec.instances()
    if not 0 <= instance_index < len(instances):
        raise IndexError(
            f"instance_index {instance_index} out of range "
            f"(scenario {name!r} has {len(instances)} instances)"
        )
    inst = instances[instance_index]
    workload, alg_seed = get_family(spec.family)(spec, inst)
    driver = ReplayDriver(
        workload,
        policy,
        seed=alg_seed,
        horizon=spec.duration,
        snapshot_every=snapshot_every,
        check_batch=check_batch,
    )
    report = driver.run()
    if metrics:
        unknown = [m for m in metrics if m not in METRICS]
        if unknown:
            raise KeyError(
                f"unknown metrics {unknown}; available: {sorted(METRICS)}"
            )
        from ..algorithms.base import SchedulerResult

        ref_result = build_scheduler("ref", horizon=spec.duration).run(workload)
        online_result = SchedulerResult(
            algorithm=report.policy,
            workload=workload,
            members=tuple(range(workload.n_orgs)),
            schedule=report.schedule,
            horizon=spec.duration,
        )
        for m in metrics:
            report.metrics[m] = float(
                METRICS[m](online_result, ref_result, spec.duration)
            )
    return report
