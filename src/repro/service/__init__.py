"""Online serving subsystem: the long-lived incremental fair scheduler.

The batch layers of this repository answer "what schedule would be fair
for this frozen workload?"; this package answers the production question
the paper's online algorithm implies (and Pacholczyk & Rzadca 2018 make
explicit for federated clouds): *keep* a fair schedule as jobs stream in
and providers join, leave and resize.

* :mod:`repro.service.service` -- :class:`ClusterService`, the stateful
  daemon: ingest API, per-event fair-share stepping for every policy,
  dynamic membership;
* :mod:`repro.service.state` -- the event-sourced journal and live census;
* :mod:`repro.service.snapshot` -- versioned, content-hashed checkpoints
  with verified bit-identical restore;
* :mod:`repro.service.replay` -- :class:`ReplayDriver`, streaming any
  workload source through the service and asserting replay == batch;
* :mod:`repro.service.daemon` -- the ``repro serve`` JSONL command loop.
"""

from .replay import ReplayDriver, ReplayReport, replay_scenario
from .service import ClusterService, OnlinePolicy
from .snapshot import load_snapshot, save_snapshot

__all__ = [
    "ClusterService",
    "OnlinePolicy",
    "ReplayDriver",
    "ReplayReport",
    "replay_scenario",
    "load_snapshot",
    "save_snapshot",
]
