"""The ``repro serve`` transport: a line-oriented JSONL command loop.

The service's ingest API is exposed over the simplest transport that is
fully scriptable and dependency-free: one JSON object per input line, one
JSON response per line on the output.  A shell, a test, or a supervisor
pipes commands in; the daemon journals every mutation, so a ``snapshot``
command (or ``--snapshot-to`` on exit) captures a restorable checkpoint
at any moment.

Commands (``op`` field selects; remaining fields are the arguments)::

    {"op": "submit", "org": 0, "size": 3}            # release defaults to clock
    {"op": "submit", "org": 0, "size": 3, "release": 120}
    {"op": "advance", "t": 500}
    {"op": "drain"}
    {"op": "join", "machines": 2}
    {"op": "leave", "org": 1}
    {"op": "add_machines", "org": 0, "count": 2}
    {"op": "remove_machines", "org": 0, "count": 1}
    {"op": "status"}
    {"op": "snapshot", "path": "state.json"}         # path optional: inline
    {"op": "stop"}

Every response carries ``"ok": true/false``; errors are reported in-band
(the daemon keeps serving).  Malformed JSON is also an in-band error.
"""

from __future__ import annotations

import io
import json
import os
import selectors
import signal
import time
from typing import IO, Callable, Iterable

from .service import ClusterService
from .snapshot import save_snapshot

__all__ = [
    "serve_loop",
    "timed_lines",
    "ShutdownRequested",
    "install_shutdown_handlers",
]


class ShutdownRequested(BaseException):
    """Raised by the graceful-shutdown signal handlers (SIGTERM/SIGINT).

    Deliberately a :class:`BaseException`: nothing in the serve path may
    swallow it, so it unwinds straight through :func:`serve_loop`, whose
    ``finally`` writes the ``--snapshot-to`` checkpoint -- a supervisor's
    ``kill`` is then exactly as recoverable as a clean ``stop``.
    """

    def __init__(self, signum: int) -> None:
        super().__init__(f"shutdown requested by signal {signum}")
        self.signum = signum


def install_shutdown_handlers(
    signums: "tuple[int, ...]" = (signal.SIGTERM, signal.SIGINT),
) -> None:
    """Route ``signums`` to :class:`ShutdownRequested` in the main thread.

    A handled signal interrupts the blocking stdin read (or selector
    wait), so a lingering daemon reacts immediately instead of at the
    next command.
    """

    def _raise(signum, frame):  # pragma: no cover - trivial closure
        raise ShutdownRequested(signum)

    for signum in signums:
        signal.signal(signum, _raise)


def timed_lines(
    stream, timeout: "Callable[[], float | None]"
) -> "Iterable[str | None]":
    """Yield lines from ``stream``, yielding ``None`` on read timeouts.

    ``timeout()`` is consulted before each wait: ``None`` blocks until
    input arrives, a number bounds the wait in seconds (yielding ``None``
    when it elapses without a complete line, so the caller can run idle
    work such as a linger flush).  Sources without a real file descriptor
    (lists, ``StringIO``, generators) fall back to plain iteration --
    they cannot block indefinitely, so per-line timing is moot there.
    """
    try:
        fd = stream.fileno()
    except (AttributeError, ValueError, OSError, io.UnsupportedOperation):
        yield from stream
        return
    sel = selectors.DefaultSelector()
    try:
        sel.register(fd, selectors.EVENT_READ)
    except (OSError, ValueError, PermissionError):
        sel.close()
        yield from stream
        return
    buf = bytearray()
    try:
        while True:
            wait = timeout()
            if wait is not None and wait <= 0:
                # never busy-spin a zero linger
                wait = 0.001
            if not sel.select(wait):
                yield None
                continue
            chunk = os.read(fd, 1 << 16)
            if not chunk:
                if buf:
                    yield buf.decode("utf-8", errors="replace")
                return
            buf.extend(chunk)
            while True:
                nl = buf.find(b"\n")
                if nl < 0:
                    break
                line = buf[:nl].decode("utf-8", errors="replace")
                del buf[: nl + 1]
                yield line
    finally:
        sel.close()


def _handle(service: ClusterService, cmd: dict) -> "tuple[dict, bool]":
    """Execute one command; returns (response, keep_serving)."""
    op = cmd.get("op")
    if op == "submit":
        job = service.submit(
            int(cmd["org"]),
            int(cmd["size"]),
            release=(int(cmd["release"]) if "release" in cmd else None),
        )
        return (
            {
                "ok": True,
                "job_id": job.id,
                "org": job.org,
                "index": job.index,
                "release": job.release,
            },
            True,
        )
    if op == "advance":
        processed = service.advance(int(cmd["t"]))
        return {"ok": True, "clock": service.clock, "events": processed}, True
    if op == "drain":
        clock = service.drain()
        return {"ok": True, "clock": clock}, True
    if op == "join":
        org = service.join_org(int(cmd.get("machines", 0)))
        return {"ok": True, "org": org}, True
    if op == "leave":
        service.leave_org(int(cmd["org"]))
        return {"ok": True}, True
    if op == "add_machines":
        ids = service.add_machines(int(cmd["org"]), int(cmd["count"]))
        return {"ok": True, "machines": ids}, True
    if op == "remove_machines":
        ids = service.remove_machines(int(cmd["org"]), int(cmd["count"]))
        return {"ok": True, "machines": ids}, True
    if op == "status":
        return {"ok": True, **service.status()}, True
    if op == "snapshot":
        payload = service.snapshot()
        if "path" in cmd:
            save_snapshot(payload, cmd["path"])
            return (
                {
                    "ok": True,
                    "path": str(cmd["path"]),
                    "content_hash": payload["content_hash"],
                },
                True,
            )
        return {"ok": True, "snapshot": payload}, True
    if op == "stop":
        return {"ok": True, "stopped": True}, False
    return {"ok": False, "error": f"unknown op {op!r}"}, True


def serve_loop(
    service: ClusterService,
    lines: Iterable[str],
    out: IO[str],
    *,
    snapshot_to: "str | None" = None,
    batch_linger_ms: "float | None" = None,
) -> ClusterService:
    """Serve JSONL commands until ``stop`` / EOF; returns the service.

    ``snapshot_to`` writes a final snapshot when the loop ends (whether by
    ``stop``, end of input, or a client going away), so a supervised
    daemon always leaves a restorable checkpoint behind.

    ``batch_linger_ms`` bounds how long a submitted job may sit in the
    service's micro-batch ingest buffer (see ``ClusterService.batch_max``):
    the buffer is force-flushed once the oldest buffered job is older than
    the linger -- checked after each command *and* whenever the input has
    been idle for the linger (the blocking read is bounded with a selector
    timeout, so a buffered job on an idle stdin never sits unflushed past
    the linger).  Flush timing never changes the schedule -- the knobs
    only trade per-op latency for grouped-update throughput.
    """
    linger_s = None if batch_linger_ms is None else batch_linger_ms / 1000.0
    buffered_since: "float | None" = None

    def check_linger() -> None:
        nonlocal buffered_since
        if not service.pending_ingest:
            buffered_since = None
        elif buffered_since is None:
            buffered_since = time.monotonic()
        elif time.monotonic() - buffered_since >= linger_s:
            service.flush_ingest()
            buffered_since = None

    if linger_s is None:
        source: "Iterable[str | None]" = lines
    else:
        source = timed_lines(
            lines, lambda: linger_s if service.pending_ingest else None
        )
    try:
        for line in source:
            if line is None:  # idle read timeout: only linger work to do
                check_linger()
                continue
            line = line.strip()
            if not line:
                continue
            try:
                cmd = json.loads(line)
                if not isinstance(cmd, dict):
                    raise ValueError(
                        f"expected a JSON object, got {type(cmd).__name__}"
                    )
                response, keep = _handle(service, cmd)
            except (ValueError, KeyError, TypeError) as exc:
                response, keep = {"ok": False, "error": str(exc)}, True
            if linger_s is not None:
                check_linger()
            out.write(json.dumps(response) + "\n")
            out.flush()
            if not keep:
                break
    finally:
        if snapshot_to is not None:
            save_snapshot(service.snapshot(), snapshot_to)
    return service
