"""Service state: the journal of ingest operations plus the live census.

The online service is **event-sourced** (DESIGN.md §6): every externally
visible mutation -- a job submission, an organization joining or leaving,
machines added or removed -- is recorded as a :class:`ServiceOp` carrying
the service clock at which it was applied.  Because every component the
ops feed (engines, fleets, policies) is deterministic, the ordered journal
*is* the full scheduler state: replaying it through the very same code
path reconstructs every engine, ledger, queue and RNG stream bit for bit.
That is what makes :mod:`repro.service.snapshot` both small (O(#ops)
JSON) and trustworthy (restore runs the production path, not a parallel
deserializer that could drift from it).

:class:`ClusterCensus` tracks the live side: which organizations are
members, which global machine ids each owns, and the monotonic id
counters for machines, jobs and per-organization FIFO indices.  Ids are
never reused -- a departed organization's id stays retired, which keeps
coalition bitmasks and historical ledgers unambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ServiceOp", "ClusterCensus"]

#: Operation kinds a journal may contain, in the vocabulary of the ingest
#: API (``ClusterService`` methods of the same names).  Time advancement
#: is journaled too: *when* decision events were processed relative to
#: same-time submissions is part of the state (a round at time T that ran
#: before a time-T submission arrived schedules differently from one that
#: ran after it).
OP_KINDS = (
    "submit",
    "join_org",
    "leave_org",
    "add_machines",
    "remove_machines",
    "advance",
    "drain",
)


@dataclass(frozen=True, slots=True)
class ServiceOp:
    """One journaled ingest operation.

    ``time`` is the service clock when the operation was applied (for
    ``advance``/``drain`` ops: before the move).  Replay re-applies the
    ops in order through the live ingest path -- including the journaled
    advances, so the interleaving of event processing and ingestion is
    reproduced exactly.
    """

    kind: str
    time: int
    args: tuple[tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}")

    def arg(self, name: str) -> int:
        for k, v in self.args:
            if k == name:
                return v
        raise KeyError(name)

    def to_json(self) -> dict:
        return {"kind": self.kind, "time": self.time, **dict(self.args)}

    @classmethod
    def from_json(cls, d: dict) -> "ServiceOp":
        args = tuple(
            (k, int(v)) for k, v in d.items() if k not in ("kind", "time")
        )
        return cls(kind=d["kind"], time=int(d["time"]), args=args)


@dataclass
class ClusterCensus:
    """Live membership and machine registry (the non-simulated truth).

    ``n_orgs`` counts every organization id ever issued (ids are dense and
    never reused); ``members`` holds the currently active subset.
    ``machines`` maps active organizations to their *live* global machine
    ids -- the genesis endowment uses the canonical layout (org 0's
    machines get the lowest ids) so that service engines and batch engines
    agree on ids, and runtime additions extend monotonically from there.
    """

    machines: dict[int, list[int]] = field(default_factory=dict)
    n_orgs: int = 0
    next_machine_id: int = 0
    next_job_id: int = 0
    next_index: dict[int, int] = field(default_factory=dict)
    last_release: dict[int, int] = field(default_factory=dict)

    @classmethod
    def genesis(cls, machine_counts: "tuple[int, ...]") -> "ClusterCensus":
        census = cls()
        for count in machine_counts:
            if count < 0:
                raise ValueError("machine counts must be >= 0")
            census.admit(count)
        return census

    @property
    def members(self) -> tuple[int, ...]:
        return tuple(sorted(self.machines))

    @property
    def members_mask(self) -> int:
        mask = 0
        for u in self.machines:
            mask |= 1 << u
        return mask

    def admit(self, machine_count: int) -> tuple[int, list[int]]:
        """Issue the next organization id and its machine endowment."""
        org = self.n_orgs
        self.n_orgs += 1
        self.machines[org] = []
        self.next_index[org] = 0
        self.last_release[org] = 0
        return org, self.grow(org, machine_count)

    def rollback_admit(self, org: int, machine_count: int) -> None:
        """Undo the most recent :meth:`admit` (the policy refused it).

        Lives next to :meth:`admit` so every side effect of admission has
        its inverse in one place.
        """
        if org != self.n_orgs - 1:
            raise ValueError(
                f"can only roll back the latest admission (org {org} is "
                f"not the newest id {self.n_orgs - 1})"
            )
        self.machines.pop(org)
        self.next_index.pop(org, None)
        self.last_release.pop(org, None)
        self.n_orgs -= 1
        self.next_machine_id -= machine_count

    def grow(self, org: int, machine_count: int) -> list[int]:
        """Issue ``machine_count`` fresh global machine ids to ``org``."""
        self.require_member(org)
        new = list(
            range(self.next_machine_id, self.next_machine_id + machine_count)
        )
        self.next_machine_id += machine_count
        self.machines[org].extend(new)
        return new

    def shrink(self, org: int, machine_count: int) -> list[int]:
        """Pick the machines to retire: the org's highest-id live machines
        (a deterministic rule, so journal replay retires the same ids)."""
        self.require_member(org)
        live = self.machines[org]
        if machine_count > len(live):
            raise ValueError(
                f"org {org} has {len(live)} machines, cannot remove "
                f"{machine_count}"
            )
        picked = sorted(live)[len(live) - machine_count:]
        self.machines[org] = [m for m in live if m not in set(picked)]
        return picked

    def expel(self, org: int) -> list[int]:
        """Remove an organization; returns its (now retired) machine ids."""
        self.require_member(org)
        gone = sorted(self.machines.pop(org))
        return gone

    def require_member(self, org: int) -> None:
        if org not in self.machines:
            raise ValueError(f"org {org} is not an active member")

    def live_machines(self, members: "tuple[int, ...] | None" = None) -> list[
        tuple[int, int]
    ]:
        """Sorted ``(machine_id, owner)`` pairs of the live pool (optionally
        restricted to a coalition)."""
        chosen = self.members if members is None else members
        pairs = [
            (mid, org)
            for org in chosen
            for mid in self.machines.get(org, ())
        ]
        pairs.sort()
        return pairs
