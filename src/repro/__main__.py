"""``python -m repro`` entry point.

Delegates to :func:`repro.cli.main`, the exact argparse tree the
``repro`` console script uses, so both entry points behave identically.
The call is guarded: merely importing ``repro.__main__`` (tooling,
pickling, ``runpy`` introspection) must not parse ``sys.argv`` or exit
the interpreter.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
