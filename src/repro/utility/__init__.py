"""Utility functions (paper Section 4): the strategy-proof utility
:math:`\\psi_{sp}`, the general anonymous family of Theorem 4.1, classic
scheduling metrics, and executable axiom checkers.
"""

from .axioms import (
    apply_delay,
    apply_merge,
    apply_split,
    check_merge_split_invariance,
    check_start_time_anonymity,
    check_task_count_anonymity,
    delay_never_profitable,
)
from .base import Pairs, UtilityFunction
from .classic import (
    CompletedCountUtility,
    CompletedWorkUtility,
    FlowTimeUtility,
    MakespanUtility,
    flow_time,
    turnaround_times,
)
from .strategyproof import (
    GeneralAnonymousUtility,
    StrategyProofUtility,
    psi_sp,
    psi_sp_vector,
    unit_value,
)

__all__ = [
    "CompletedCountUtility",
    "CompletedWorkUtility",
    "FlowTimeUtility",
    "GeneralAnonymousUtility",
    "MakespanUtility",
    "Pairs",
    "StrategyProofUtility",
    "UtilityFunction",
    "apply_delay",
    "apply_merge",
    "apply_split",
    "check_merge_split_invariance",
    "check_start_time_anonymity",
    "check_task_count_anonymity",
    "delay_never_profitable",
    "flow_time",
    "psi_sp",
    "psi_sp_vector",
    "turnaround_times",
    "unit_value",
]
