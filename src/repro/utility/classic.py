"""Classic scheduling utilities/metrics (flow time, turnaround, makespan...).

These are the standard objectives the paper discusses and rejects for the
fair-scheduling game (Section 4): each of them violates at least one of the
three axioms, creating incentives for workload manipulation.  They remain
useful (a) as utilities for the *general* REF algorithm (Fig. 1 works with
an arbitrary utility), and (b) in the tests and examples demonstrating the
manipulations.

All of these are evaluated non-clairvoyantly at a time ``t``: only job parts
executed before ``t`` are visible.  Release times are *not* part of the
``(start, size)`` schedule pairs, so flow-time-like metrics here take an
optional release lookup; the convenience wrappers in
:mod:`repro.sim.metrics` bind releases from a workload.
"""

from __future__ import annotations

from typing import Callable, Sequence

from .base import Pairs, UtilityFunction

__all__ = [
    "CompletedCountUtility",
    "CompletedWorkUtility",
    "MakespanUtility",
    "FlowTimeUtility",
    "flow_time",
    "turnaround_times",
]


class CompletedCountUtility(UtilityFunction):
    """Number of jobs fully completed by ``t``.

    Violates *task anonymity (starting times)*: moving a completed job
    earlier does not change the count, so the delay-penalty axiom fails.
    Violates strategy-resistance: splitting a job into unit pieces inflates
    the count.
    """

    maximize = True
    name = "completed_jobs"

    def value(self, pairs: Pairs, t: int) -> int:
        return sum(1 for s, p in pairs if s + p <= t)


class CompletedWorkUtility(UtilityFunction):
    """Unit-size job parts executed before ``t`` (the throughput numerator).

    This is the Section 6 resource-usage count for one organization.  It is
    merge/split-proof but not delay-penalizing (violates axiom 1: a unit is
    worth the same no matter when it ran).
    """

    maximize = True
    name = "completed_work"

    def value(self, pairs: Pairs, t: int) -> int:
        return sum(min(p, max(0, t - s)) for s, p in pairs)


class MakespanUtility(UtilityFunction):
    """Negated completion time of the organization's last finished job.

    A minimization metric expressed as a (to-maximize) negative value.
    Violates both anonymity axioms (only the last job matters).
    """

    maximize = True
    name = "neg_makespan"

    def value(self, pairs: Pairs, t: int) -> int:
        done = [s + p for s, p in pairs if s + p <= t]
        return -max(done, default=0)


class FlowTimeUtility(UtilityFunction):
    """Negated total flow time of jobs completed by ``t``.

    The paper's Section 4 discussion: flow time (i) improves when jobs are
    simply *not* scheduled (violates task anonymity / number of tasks) and
    (ii) favors short tasks, rewarding job splitting (violates
    strategy-resistance).  Prop. 4.2 shows it coincides with
    :math:`\\psi_{sp}` only for equal-size, all-completed job sets.

    Because flow time needs release times and schedule pairs carry none,
    construct with a ``release_of(start, size) -> release`` callable or pass
    ``releases`` aligned with the pairs at call time via
    :func:`flow_time`.  The default assumes release 0 for every job (pure
    completion-time sum), which is the common benchmark situation in the
    paper's examples (e.g. Fig. 2 where all releases are 0).
    """

    maximize = True
    name = "neg_flow_time"

    def __init__(self, release_of: Callable[[int, int], int] | None = None):
        self.release_of = release_of or (lambda s, p: 0)

    def value(self, pairs: Pairs, t: int) -> int:
        total = 0
        for s, p in pairs:
            if s + p <= t:
                total += (s + p) - self.release_of(s, p)
        return -total


def flow_time(
    pairs: Pairs, releases: Sequence[int], t: int | None = None
) -> int:
    """Total flow time ``sum (completion - release)`` of completed jobs.

    ``releases[i]`` is the release time of ``pairs[i]``.  Jobs not completed
    by ``t`` are excluded (classic definition over finished jobs).
    """
    if len(releases) != len(pairs):
        raise ValueError("releases must align with pairs")
    total = 0
    for (s, p), r in zip(pairs, releases):
        end = s + p
        if t is None or end <= t:
            total += end - r
    return total


def turnaround_times(pairs: Pairs, releases: Sequence[int]) -> list[int]:
    """Per-job turnaround (= flow) times, aligned with the input order."""
    if len(releases) != len(pairs):
        raise ValueError("releases must align with pairs")
    return [(s + p) - r for (s, p), r in zip(pairs, releases)]
