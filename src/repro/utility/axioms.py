"""Executable forms of the Section 4 axioms and workload manipulations.

The paper restricts fair utilities with three axioms:

1. **Task anonymity (starting times)** -- starting any task one slot earlier
   is equally (and positively) profitable, independent of the rest of the
   schedule and of the task identity:
   ``psi(sigma + {(s,p)}) - psi(sigma + {(s+1,p)})`` is a positive constant
   across sigma, s, p-fixed.
2. **Task anonymity (number of tasks)** -- adding a completed task of a given
   shape is equally profitable in every schedule.
3. **Strategy-resistance** -- merging/splitting back-to-back jobs leaves the
   utility unchanged:
   ``psi(sigma + {(s,p1)}) + psi(sigma + {(s+p1,p2)}) = psi(sigma + {(s,p1+p2)})``
   (note the sigma-relative form: the paper states it with a shared base
   schedule; since utilities in this model are sums over jobs, this reduces
   to per-job additivity).

These checkers are used by the hypothesis test-suite (which proves
:math:`\\psi_{sp}` satisfies all three and that flow time / completed-count
break them) and by the ``strategyproofness.py`` example.
"""

from __future__ import annotations

from typing import Sequence

from ..core.job import Job
from ..core.workload import Workload
from .base import Pairs, UtilityFunction

__all__ = [
    "check_start_time_anonymity",
    "check_task_count_anonymity",
    "check_merge_split_invariance",
    "delay_never_profitable",
    "apply_split",
    "apply_merge",
    "apply_delay",
]


def check_start_time_anonymity(
    utility: UtilityFunction,
    base_a: Pairs,
    base_b: Pairs,
    t: int,
    *,
    s_a: int,
    s_b: int,
    p: int,
) -> bool:
    """Axiom 1 on two concrete contexts.

    Requires ``s_a, s_b <= t - 1``: the unit-shift gain of a ``p``-sized task
    must be the same positive number in schedule ``base_a`` at start ``s_a``
    as in ``base_b`` at ``s_b``.
    """
    if s_a > t - 1 or s_b > t - 1:
        raise ValueError("axiom 1 is stated for starts <= t-1")
    gain_a = utility.value([*base_a, (s_a, p)], t) - utility.value(
        [*base_a, (s_a + 1, p)], t
    )
    gain_b = utility.value([*base_b, (s_b, p)], t) - utility.value(
        [*base_b, (s_b + 1, p)], t
    )
    return gain_a == gain_b and gain_a > 0


def check_task_count_anonymity(
    utility: UtilityFunction,
    base_a: Pairs,
    base_b: Pairs,
    t: int,
    *,
    s: int,
    p: int,
) -> bool:
    """Axiom 2 on two concrete contexts: adding the task ``(s, p)`` is
    equally and positively profitable in both base schedules."""
    if s > t - 1:
        raise ValueError("axiom 2 is stated for starts <= t-1")
    gain_a = utility.value([*base_a, (s, p)], t) - utility.value(base_a, t)
    gain_b = utility.value([*base_b, (s, p)], t) - utility.value(base_b, t)
    return gain_a == gain_b and gain_a > 0


def check_merge_split_invariance(
    utility: UtilityFunction,
    base: Pairs,
    t: int,
    *,
    s: int,
    p1: int,
    p2: int,
) -> bool:
    """Axiom 3: running ``(s, p1)`` then ``(s+p1, p2)`` back-to-back is worth
    exactly as much as the merged job ``(s, p1+p2)``."""
    lhs = (
        utility.value([*base, (s, p1)], t)
        + utility.value([*base, (s + p1, p2)], t)
        - utility.value(base, t)  # the base is counted twice on the lhs
    )
    rhs = utility.value([*base, (s, p1 + p2)], t)
    return lhs == rhs


def delay_never_profitable(
    utility: UtilityFunction, base: Pairs, t: int, *, s: int, p: int
) -> bool:
    """Derived property: delaying a start strictly reduces the utility
    (consequence of axiom 1, noted under strategy-resistance in Section 4)."""
    if s + 1 > t - 1:
        return True  # the delayed copy has no executed parts to compare
    return utility.value([*base, (s, p)], t) > utility.value(
        [*base, (s + 1, p)], t
    )


# ----------------------------------------------------------------------
# Workload manipulations (the strategic moves of Section 4)
# ----------------------------------------------------------------------
def _reindex(jobs: Sequence[Job]) -> list[Job]:
    """Re-assign contiguous FIFO indices per organization, keeping order."""
    counters: dict[int, int] = {}
    out = []
    for j in sorted(jobs, key=lambda j: (j.org, j.index, j.release)):
        idx = counters.get(j.org, 0)
        counters[j.org] = idx + 1
        out.append(Job(j.release, j.org, idx, j.size, id=-1))
    return out


def apply_split(
    workload: Workload, org: int, job_index: int, sizes: Sequence[int]
) -> Workload:
    """Return the workload where one organization split one job into pieces.

    This is the manipulation strategy-resistance must make unprofitable.
    """
    jobs: list[Job] = []
    for j in workload.jobs:
        if j.org == org and j.index == job_index:
            if sum(sizes) != j.size:
                raise ValueError("split sizes must sum to the job size")
            for off, sz in enumerate(sizes):
                # fractional indices keep FIFO position before re-indexing
                jobs.append(Job(j.release, org, j.index, sz, id=-1))
        else:
            jobs.append(j)
    # rebuild FIFO indices preserving submission order (split pieces stay
    # consecutive at the original position)
    per_org: dict[int, list[Job]] = {}
    for j in workload.jobs:
        per_org.setdefault(j.org, []).append(j)
    rebuilt: list[Job] = []
    for o, ojobs in per_org.items():
        ojobs.sort(key=lambda j: j.index)
        idx = 0
        for j in ojobs:
            if o == org and j.index == job_index:
                for sz in sizes:
                    rebuilt.append(Job(j.release, o, idx, sz, id=-1))
                    idx += 1
            else:
                rebuilt.append(Job(j.release, o, idx, j.size, id=-1))
                idx += 1
    return Workload(workload.organizations, rebuilt)


def apply_merge(
    workload: Workload, org: int, first_index: int, count: int
) -> Workload:
    """Return the workload where ``count`` consecutive jobs of one
    organization are merged into a single job (released with the last piece)."""
    if count < 2:
        raise ValueError("merging needs at least two jobs")
    per_org: dict[int, list[Job]] = {}
    for j in workload.jobs:
        per_org.setdefault(j.org, []).append(j)
    target = sorted(per_org.get(org, []), key=lambda j: j.index)
    merged_range = [
        j for j in target if first_index <= j.index < first_index + count
    ]
    if len(merged_range) != count:
        raise ValueError("job index range out of bounds")
    rebuilt: list[Job] = []
    for o, ojobs in per_org.items():
        ojobs.sort(key=lambda j: j.index)
        idx = 0
        for j in ojobs:
            if o == org and first_index < j.index < first_index + count:
                continue  # absorbed into the merged job
            if o == org and j.index == first_index:
                rebuilt.append(
                    Job(
                        max(x.release for x in merged_range),
                        o,
                        idx,
                        sum(x.size for x in merged_range),
                        id=-1,
                    )
                )
            else:
                rebuilt.append(Job(j.release, o, idx, j.size, id=-1))
            idx += 1
    return Workload(workload.organizations, rebuilt)


def apply_delay(workload: Workload, org: int, delta: int) -> Workload:
    """Return the workload where one organization delays all releases by
    ``delta`` (delaying a prefix only could violate FIFO realizability)."""
    return workload.map_jobs(
        lambda j: j.delayed(delta) if j.org == org else j
    )
