"""The strategy-proof utility function (paper Section 4, Theorem 4.1, Eq. 3).

Theorem 4.1: a utility satisfying *task anonymity (starting times)*, *task
anonymity (number of tasks)* and *strategy-resistance* must have the form

.. math::

    \\psi(\\sigma, t) = \\sum_{(s,p) \\in \\sigma_t} \\min(p, t-s)
        \\Big(K_1 - K_2 \\frac{s + \\min(s+p-1,\\, t-1)}{2}\\Big) + K_3

with constants :math:`K_1, K_2 > 0` and :math:`K_3 = \\psi(\\emptyset)` --
unique up to those constants.  The paper's canonical instance (Eq. 3),

.. math::

    \\psi_{sp}(\\sigma, t) = \\sum_{(s,p):\\, s \\le t} \\min(p, t-s)
        \\Big(t - \\frac{s + \\min(s+p-1,\\, t-1)}{2}\\Big),

is the member with :math:`K_1 = t` (value of a unit executed in slot 0),
:math:`K_2 = 1` (per-slot delay penalty of one unit) and :math:`K_3 = 0`.
(The paper's prose says "K1 = 1, K2 = t"; substituting those into the
Theorem 4.1 form does not give Eq. 3 -- the roles are swapped there.  We
implement Eq. 3 itself, whose worked example (Fig. 2) our tests match
exactly.)

Interpretation: *task throughput* -- every executed unit-size part of a job,
run in time slot ``ts``, is worth ``t - ts`` at evaluation time ``t``.

With integer times :math:`\\psi_{sp}` is always an integer:
``sum_{i=0}^{c-1} (t - s - i) = c*(t-s) - c*(c-1)/2`` for
``c = min(p, t-s)`` executed units.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from .base import Pairs, UtilityFunction

__all__ = [
    "StrategyProofUtility",
    "GeneralAnonymousUtility",
    "psi_sp",
    "psi_sp_vector",
    "unit_value",
]


def unit_value(slot: int, t: int) -> int:
    """Value at time ``t`` of one unit-size job part executed in ``slot``.

    The paper's interpretation of Eq. 3: a unit run during ``[slot, slot+1)``
    is worth ``t - slot`` at any ``t > slot`` and nothing before.
    """
    return max(0, t - slot)


def psi_sp(pairs: Pairs, t: int) -> int:
    """:math:`\\psi_{sp}(\\sigma, t)` (paper Eq. 3), exact integer arithmetic.

    Parameters
    ----------
    pairs:
        ``(start, size)`` pairs of one organization's started jobs.
    t:
        Evaluation time.
    """
    total = 0
    for s, p in pairs:
        c = t - s
        if c <= 0:
            continue
        if c > p:
            c = p
        total += c * (t - s) - c * (c - 1) // 2
    return total


def psi_sp_vector(starts: np.ndarray, sizes: np.ndarray, t: int) -> int:
    """Vectorized :func:`psi_sp` over numpy arrays of starts/sizes.

    Used when re-evaluating long schedules at many horizons (the per-event
    incremental aggregates in the engine are faster during simulation; this
    is the batch form).
    """
    starts = np.asarray(starts, dtype=np.int64)
    sizes = np.asarray(sizes, dtype=np.int64)
    c = np.clip(t - starts, 0, sizes)
    return int(np.sum(c * (t - starts) - c * (c - 1) // 2))


class StrategyProofUtility(UtilityFunction):
    """The canonical strategy-proof utility (Eq. 3)."""

    maximize = True
    name = "psi_sp"

    def value(self, pairs: Pairs, t: int) -> int:
        return psi_sp(pairs, t)

    def job_value(self, start: int, size: int, t: int) -> int:
        """Contribution of a single job to :math:`\\psi_{sp}` at ``t``."""
        return psi_sp([(start, size)], t)


class GeneralAnonymousUtility(UtilityFunction):
    """The full (K1, K2, K3) family of Theorem 4.1 (exact rationals).

    Parameters
    ----------
    k1:
        Value of one unit executed in slot 0; must be positive.  Pass the
        literal string ``"t"`` for the canonical time-dependent choice, in
        which case (with ``k2=1, k3=0``) the value equals :func:`psi_sp`.
    k2:
        Per-slot delay penalty of one unit; must be positive.
    k3:
        Utility of the empty schedule, :math:`\\psi(\\emptyset)`.
    """

    maximize = True

    def __init__(
        self,
        k1: "int | Fraction | str" = "t",
        k2: "int | Fraction" = 1,
        k3: "int | Fraction" = 0,
    ) -> None:
        if k1 != "t" and Fraction(k1) <= 0:
            raise ValueError("Theorem 4.1 requires K1 > 0")
        if Fraction(k2) <= 0:
            raise ValueError("Theorem 4.1 requires K2 > 0")
        self.k1 = k1 if k1 == "t" else Fraction(k1)
        self.k2 = Fraction(k2)
        self.k3 = Fraction(k3)
        self.name = f"psi(K1={k1},K2={k2},K3={k3})"

    def value(self, pairs: Pairs, t: int) -> Fraction:
        k1 = Fraction(t) if self.k1 == "t" else self.k1
        total = Fraction(0)
        for s, p in pairs:
            c = min(p, t - s)
            if c <= 0:
                continue
            mid = Fraction(s + min(s + p - 1, t - 1), 2)
            total += c * (k1 - self.k2 * mid)
        return total + self.k3

    def as_canonical(self) -> StrategyProofUtility:
        """The canonical member of the family (Eq. 3)."""
        return StrategyProofUtility()
