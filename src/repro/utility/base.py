"""Utility function interface.

The paper (Section 2) defines a utility function
:math:`\\psi : \\Gamma \\times O \\times T \\to \\mathbb{R}` mapping a
schedule, an organization and a time moment to the organization's
satisfaction.  Section 4 restricts attention to *envy-free* utilities that
depend only on the organization's own jobs and are *non-clairvoyant* (only
parts of jobs executed before ``t`` count).  We therefore expose the
schedule to a utility as the list of ``(start, size)`` pairs of one
organization's started jobs -- the paper's identification of a schedule with
:math:`\\bigcup \\{(s^{(u)}_i, p^{(u)}_i)\\}`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

__all__ = ["UtilityFunction", "Pairs"]

#: ``(start, size)`` pairs of one organization's started jobs.
Pairs = Sequence[tuple[int, int]]


class UtilityFunction(ABC):
    """An envy-free, non-clairvoyant per-organization utility.

    Subclasses implement :meth:`value`.  ``maximize`` tells the fair
    scheduler which direction is "better" (flow time is a minimization
    metric; the strategy-proof utility is maximized).
    """

    #: True when larger values are better.
    maximize: bool = True

    #: Human-readable name used in reports.
    name: str = "utility"

    @abstractmethod
    def value(self, pairs: Pairs, t: int) -> float:
        """Utility at time ``t`` of an organization whose started jobs are
        ``pairs``.

        Only job parts executed strictly before ``t`` may influence the
        result (non-clairvoyance); implementations clamp with
        ``min(size, t - start)``.
        """

    def values(self, per_org_pairs: Sequence[Pairs], t: int) -> list[float]:
        """Vector of utilities for several organizations (convenience)."""
        return [self.value(pairs, t) for pairs in per_org_pairs]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
