"""repro: non-monetary fair scheduling via cooperative game theory.

A complete reproduction of Skowron & Rzadca, *"Non-monetary fair
scheduling -- a cooperative game theory approach"* (SPAA 2013,
arXiv:1302.0948): the multi-organizational scheduling model, the
strategy-proof utility, Shapley-value fairness, the exact exponential
scheduler (REF), the randomized FPRAS (RAND), the practical heuristic
(DIRECTCONTR), distributive-fairness baselines, the workload substrate and
the full experimental harness.

Quickstart (the stable surface lives in :mod:`repro.api`; policies are
named through the :data:`~repro.policies.POLICY_REGISTRY`)::

    from repro import api

    wl = api.Workload(
        [api.Organization(0, 2), api.Organization(1, 1)],
        [api.Job(release=0, org=0, index=0, size=4),
         api.Job(release=0, org=1, index=0, size=4)],
    )
    result = api.build_scheduler("ref").run(wl)
    print(result.utilities(t=8))

    # the whole mechanism family, by name, against the exact reference
    comparison = api.compare_algorithms(
        [e.name for e in api.list_policies() if e.capabilities.batch],
        "ref", wl, t_end=8,
    )

Direct constructor imports (``repro.RefScheduler()`` etc.) keep working
bit-identically.  See README.md for the architecture overview and the
deprecation table, and EXPERIMENTS.md for the paper-versus-measured
record of every table and figure.
"""

from .algorithms import (
    CurrFairShareScheduler,
    DirectContributionScheduler,
    FairShareScheduler,
    GeneralRefScheduler,
    GreedyFifoScheduler,
    RandScheduler,
    RefScheduler,
    RoundRobinScheduler,
    Scheduler,
    SchedulerResult,
    UtFairShareScheduler,
)
from .core import (
    ClusterEngine,
    Coalition,
    CoalitionFleet,
    Job,
    Organization,
    Schedule,
    ScheduledJob,
    Workload,
)
from .shapley import (
    SchedulingGame,
    hoeffding_samples,
    shapley_exact,
    shapley_sample,
)
from .experiments import (
    ScenarioSpec,
    list_scenarios,
    run_pipeline,
    scenario_spec,
)
from . import api
from .policies import (
    POLICY_REGISTRY,
    CapabilityError,
    PolicySpec,
    build_scheduler,
    list_policies,
    register_policy,
)
from .sim import avg_delay, compare_algorithms, run_schedule, unfairness
from .utility import (
    FlowTimeUtility,
    GeneralAnonymousUtility,
    StrategyProofUtility,
    UtilityFunction,
    psi_sp,
)
from .workloads import load_swf, make_trace

__version__ = "1.0.0"

__all__ = [
    "CapabilityError",
    "ClusterEngine",
    "Coalition",
    "CoalitionFleet",
    "CurrFairShareScheduler",
    "DirectContributionScheduler",
    "FairShareScheduler",
    "FlowTimeUtility",
    "GeneralAnonymousUtility",
    "GeneralRefScheduler",
    "GreedyFifoScheduler",
    "Job",
    "Organization",
    "POLICY_REGISTRY",
    "PolicySpec",
    "RandScheduler",
    "RefScheduler",
    "RoundRobinScheduler",
    "ScenarioSpec",
    "Schedule",
    "ScheduledJob",
    "Scheduler",
    "SchedulerResult",
    "SchedulingGame",
    "StrategyProofUtility",
    "UtFairShareScheduler",
    "UtilityFunction",
    "Workload",
    "__version__",
    "api",
    "avg_delay",
    "build_scheduler",
    "compare_algorithms",
    "hoeffding_samples",
    "list_policies",
    "list_scenarios",
    "load_swf",
    "make_trace",
    "psi_sp",
    "register_policy",
    "run_pipeline",
    "run_schedule",
    "scenario_spec",
    "shapley_exact",
    "shapley_sample",
    "unfairness",
]
