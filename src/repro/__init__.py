"""repro: non-monetary fair scheduling via cooperative game theory.

A complete reproduction of Skowron & Rzadca, *"Non-monetary fair
scheduling -- a cooperative game theory approach"* (SPAA 2013,
arXiv:1302.0948): the multi-organizational scheduling model, the
strategy-proof utility, Shapley-value fairness, the exact exponential
scheduler (REF), the randomized FPRAS (RAND), the practical heuristic
(DIRECTCONTR), distributive-fairness baselines, the workload substrate and
the full experimental harness.

Quickstart::

    import repro

    wl = repro.Workload(
        [repro.Organization(0, 2), repro.Organization(1, 1)],
        [repro.Job(release=0, org=0, index=0, size=4),
         repro.Job(release=0, org=1, index=0, size=4)],
    )
    result = repro.RefScheduler().run(wl)
    print(result.utilities(t=8))

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from .algorithms import (
    CurrFairShareScheduler,
    DirectContributionScheduler,
    FairShareScheduler,
    GeneralRefScheduler,
    GreedyFifoScheduler,
    RandScheduler,
    RefScheduler,
    RoundRobinScheduler,
    Scheduler,
    SchedulerResult,
    UtFairShareScheduler,
)
from .core import (
    ClusterEngine,
    Coalition,
    CoalitionFleet,
    Job,
    Organization,
    Schedule,
    ScheduledJob,
    Workload,
)
from .shapley import (
    SchedulingGame,
    hoeffding_samples,
    shapley_exact,
    shapley_sample,
)
from .experiments import (
    ScenarioSpec,
    list_scenarios,
    run_pipeline,
    scenario_spec,
)
from .sim import avg_delay, compare_algorithms, run_schedule, unfairness
from .utility import (
    FlowTimeUtility,
    GeneralAnonymousUtility,
    StrategyProofUtility,
    UtilityFunction,
    psi_sp,
)
from .workloads import load_swf, make_trace

__version__ = "1.0.0"

__all__ = [
    "ClusterEngine",
    "Coalition",
    "CoalitionFleet",
    "CurrFairShareScheduler",
    "DirectContributionScheduler",
    "FairShareScheduler",
    "FlowTimeUtility",
    "GeneralAnonymousUtility",
    "GeneralRefScheduler",
    "GreedyFifoScheduler",
    "Job",
    "Organization",
    "RandScheduler",
    "RefScheduler",
    "RoundRobinScheduler",
    "ScenarioSpec",
    "Schedule",
    "ScheduledJob",
    "Scheduler",
    "SchedulerResult",
    "SchedulingGame",
    "StrategyProofUtility",
    "UtFairShareScheduler",
    "UtilityFunction",
    "Workload",
    "__version__",
    "avg_delay",
    "compare_algorithms",
    "hoeffding_samples",
    "list_scenarios",
    "load_swf",
    "make_trace",
    "psi_sp",
    "run_pipeline",
    "run_schedule",
    "scenario_spec",
    "shapley_exact",
    "shapley_sample",
    "unfairness",
]
