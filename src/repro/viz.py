"""Plain-text visualization: Gantt charts, fairness reports, sparklines.

Everything renders to strings (no plotting dependencies) so the CLI,
examples and EXPERIMENTS.md can embed the output directly.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from .algorithms.base import SchedulerResult
from .core.schedule import Schedule
from .sim.runner import Comparison

__all__ = ["gantt", "fairness_report", "sparkline", "utilities_bar"]

_SPARK = "▁▂▃▄▅▆▇█"


def gantt(
    schedule: "Schedule | Iterable",
    n_machines: int,
    t_end: int,
    *,
    idle_char: str = "·",
) -> str:
    """ASCII Gantt chart: one row per machine, one character per time slot,
    digits/letters identify the owning organization (1-based, then a-z)."""
    if t_end < 1 or n_machines < 1:
        raise ValueError("need t_end >= 1 and n_machines >= 1")
    rows = [[idle_char] * t_end for _ in range(n_machines)]
    alphabet = "123456789abcdefghijklmnopqrstuvwxyz"
    for e in schedule:
        label = alphabet[e.job.org % len(alphabet)]
        for slot in range(max(0, e.start), min(e.end, t_end)):
            rows[e.machine][slot] = label
    axis = "".join(
        str((t // 10) % 10) if t % 10 == 0 else " " for t in range(t_end)
    )
    lines = [f"      {axis}"]
    for m, row in enumerate(rows):
        lines.append(f"  M{m:<2} |{''.join(row)}|")
    return "\n".join(lines)


def utilities_bar(
    result: SchedulerResult, t: int, width: int = 40
) -> str:
    """Horizontal bars of per-organization utilities at ``t``."""
    utils = result.utilities(t)
    peak = max(utils) if utils and max(utils) > 0 else 1
    lines = []
    for org in result.workload.organizations:
        val = utils[org.id]
        bar = "#" * max(0, round(width * val / peak))
        lines.append(f"  {org.name:<10} {val:>10} |{bar}")
    return "\n".join(lines)


def fairness_report(comparison: Comparison) -> str:
    """Ranked fairness summary of a :func:`repro.sim.compare_algorithms`
    result (the paper's Delta-psi / p_tot per algorithm)."""
    lines = [
        f"fairness vs {comparison.reference.algorithm} at t={comparison.t_end}",
        f"  {'algorithm':<16}{'delta_psi':>12}{'avg delay':>12}{'seconds':>10}",
    ]
    for name in comparison.ranking():
        o = comparison.by_name(name)
        lines.append(
            f"  {o.algorithm:<16}{o.delta_psi:>12.0f}"
            f"{o.avg_delay:>12.3f}{o.wall_time_s:>10.2f}"
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line unicode sparkline (used for Figure-10-style series)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARK[0] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / (hi - lo) * (len(_SPARK) - 1))
        out.append(_SPARK[idx])
    return "".join(out)
