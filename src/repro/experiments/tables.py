"""Tables 1 and 2 of the paper: average unjustified delay per algorithm.

Table 1: duration 5*10^4, Table 2: duration 5*10^5 -- same protocol, 10x
longer windows.  The paper's headline observations both tables support:

* RAND is the most Shapley-fair polynomial algorithm, DIRECTCONTR next;
* FAIRSHARE (the industry standard) trails the contribution-tracking
  algorithms; ROUNDROBIN is far worse;
* all gaps grow with the window length (Table 2 >> Table 1), i.e. static
  shares drift ever further from true contributions on long horizons.

Both run here in scaled form by default; pass ``scale=1.0`` and the paper's
durations/repeats to replicate full-size (hours of CPU).
"""

from __future__ import annotations

from .harness import ExperimentConfig, ExperimentResult, run_experiment

__all__ = ["table1", "table2", "TABLE1_PAPER", "TABLE2_PAPER"]

#: The paper's Table 1 (duration 5*10^4): mean avg-delay per trace.
TABLE1_PAPER: dict[str, dict[str, float]] = {
    "RoundRobin": {
        "LPC-EGEE": 238, "PIK-IPLEX": 6, "SHARCNET-Whale": 145, "RICC": 2839,
    },
    "Rand(N=15)": {
        "LPC-EGEE": 8, "PIK-IPLEX": 0.014, "SHARCNET-Whale": 6, "RICC": 162,
    },
    "DirectContr": {
        "LPC-EGEE": 5, "PIK-IPLEX": 0.02, "SHARCNET-Whale": 10, "RICC": 537,
    },
    "FairShare": {
        "LPC-EGEE": 16, "PIK-IPLEX": 0.3, "SHARCNET-Whale": 13, "RICC": 626,
    },
    "UtFairShare": {
        "LPC-EGEE": 16, "PIK-IPLEX": 0.3, "SHARCNET-Whale": 38, "RICC": 515,
    },
    "CurrFairShare": {
        "LPC-EGEE": 87, "PIK-IPLEX": 0.3, "SHARCNET-Whale": 145, "RICC": 1231,
    },
}

#: The paper's Table 2 (duration 5*10^5).
TABLE2_PAPER: dict[str, dict[str, float]] = {
    "RoundRobin": {
        "LPC-EGEE": 4511, "PIK-IPLEX": 242, "SHARCNET-Whale": 404, "RICC": 10850,
    },
    "Rand(N=15)": {
        "LPC-EGEE": 562, "PIK-IPLEX": 1.3, "SHARCNET-Whale": 26, "RICC": 771,
    },
    "DirectContr": {
        "LPC-EGEE": 410, "PIK-IPLEX": 0.2, "SHARCNET-Whale": 60, "RICC": 1808,
    },
    "FairShare": {
        "LPC-EGEE": 575, "PIK-IPLEX": 2.3, "SHARCNET-Whale": 94, "RICC": 2746,
    },
    "UtFairShare": {
        "LPC-EGEE": 888, "PIK-IPLEX": 1.2, "SHARCNET-Whale": 120, "RICC": 4963,
    },
    "CurrFairShare": {
        "LPC-EGEE": 1082, "PIK-IPLEX": 2.2, "SHARCNET-Whale": 180, "RICC": 5387,
    },
}


def table1(
    *,
    traces: tuple[str, ...] = ("LPC-EGEE", "PIK-IPLEX", "SHARCNET-Whale", "RICC"),
    n_orgs: int = 5,
    duration: int = 5_000,
    n_repeats: int = 3,
    scale: "float | None" = None,
    seed: int = 0,
    workers: int = 1,
    cache_dir: "str | None" = None,
    resume: bool = True,
) -> ExperimentResult:
    """Regenerate Table 1 (scaled by default; paper-size:
    ``duration=50_000, n_repeats=100, scale=1.0``).  ``workers`` and
    ``cache_dir`` forward to the experiment pipeline (parallel fan-out,
    resumable checkpoint); results are identical at any worker count."""
    return run_experiment(
        ExperimentConfig(
            traces=traces,
            n_orgs=n_orgs,
            duration=duration,
            n_repeats=n_repeats,
            scale=scale,
            seed=seed,
        ),
        workers=workers,
        cache_dir=cache_dir,
        resume=resume,
    )


def table2(
    *,
    traces: tuple[str, ...] = ("LPC-EGEE", "PIK-IPLEX", "SHARCNET-Whale", "RICC"),
    n_orgs: int = 5,
    duration: int = 50_000,
    n_repeats: int = 2,
    scale: "float | None" = None,
    seed: int = 1,
    workers: int = 1,
    cache_dir: "str | None" = None,
    resume: bool = True,
) -> ExperimentResult:
    """Regenerate Table 2: the Table 1 protocol with a 10x longer window
    (paper-size: ``duration=500_000, n_repeats=100, scale=1.0``)."""
    return run_experiment(
        ExperimentConfig(
            traces=traces,
            n_orgs=n_orgs,
            duration=duration,
            n_repeats=n_repeats,
            scale=scale,
            seed=seed,
        ),
        workers=workers,
        cache_dir=cache_dir,
        resume=resume,
    )
