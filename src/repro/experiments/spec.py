"""Declarative experiment scenarios: :class:`ScenarioSpec`.

A *scenario* is everything needed to reproduce one family of Section-7.2
experiments: the trace source, the window sampler, the organization /
user / machine split, the algorithm portfolio, the metrics, the repeat
count and the scale.  A :class:`ScenarioSpec` is a frozen value object, so

* it can be **content-hashed** (:meth:`ScenarioSpec.content_hash`) — the
  hash keys the pipeline's on-disk instance cache, so a re-run of an
  unchanged spec resumes instead of recomputing and any edit to any knob
  invalidates the cache automatically;
* it **enumerates its instances** (:meth:`ScenarioSpec.instances`)
  up front: every (trace, sweep-variant, repeat) cell becomes one
  :class:`InstanceSpec` with a deterministic identity key.  Instances are
  independent by construction (per-instance seeds are derived from stable
  string keys with ``zlib.crc32``, never from shared mutable RNG state),
  which is what lets :mod:`repro.experiments.pipeline` fan them out over
  worker processes while staying bit-identical with a serial run;
* it is trivially **picklable** (plain data, no callables), so the same
  object parameterizes the worker processes.

How a spec turns into concrete workloads is delegated to its *family* —
a named instance builder registered in :mod:`repro.experiments.registry`
(``synthetic``, ``swf``, ``federated``, ``churn``, ...).  Likewise the
algorithm row set is a named *portfolio*.  Names rather than callables keep
the spec hashable and the registry pluggable.

See DESIGN.md §3 for the seed-derivation and cache-key schemes.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import asdict, dataclass, field

import numpy as np

from ..policies import PolicySpec

__all__ = ["ScenarioSpec", "InstanceSpec", "derive_rng", "seed_from_key"]


def seed_from_key(key: str) -> int:
    """Deterministic 32-bit seed for a stable string key.

    ``zlib.crc32`` (unlike ``hash()``) is identical across processes and
    Python builds, so an instance computes the same seed no matter which
    worker — or which run — executes it.  This is the scheme the original
    harness used; keeping it makes the pipeline bit-compatible with the
    pre-pipeline serial loops.
    """
    return zlib.crc32(key.encode())


def derive_rng(key: str) -> np.random.Generator:
    """A fresh, process-independent generator for a stable string key."""
    return np.random.default_rng(seed_from_key(key))


@dataclass(frozen=True)
class InstanceSpec:
    """One cell of a scenario: (trace, sweep variant, repeat).

    ``key`` is the instance's identity inside its spec's cache file (the
    file itself is keyed by the spec content hash, so ``key`` only needs to
    be unique within the scenario).  ``variant`` carries sweep-axis
    overrides (e.g. ``(("n_orgs", 4), ("zipf_exponent", 2.0))``) that the
    family builder applies on top of the spec's scalar fields.
    """

    index: int
    trace: str
    repeat: int
    variant: tuple[tuple[str, "int | float | str"], ...] = ()
    key: str = ""

    def params(self) -> dict:
        """The variant overrides as a dict."""
        return dict(self.variant)

    def param(self, name: str, default):
        for k, v in self.variant:
            if k == name:
                return v
        return default


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one experiment family (frozen).

    Parameters
    ----------
    family:
        Name of the instance builder (``repro.experiments.registry``):
        how (trace, variant, repeat, seed) becomes a concrete
        :class:`~repro.core.workload.Workload`.
    traces:
        Trace labels the family understands (archive stand-in names for
        ``synthetic``/``churn``, a display label for ``swf``/``federated``).
    n_orgs, machine_dist, zipf_exponent:
        The organization split: user identifiers are dealt uniformly among
        ``n_orgs`` organizations; machines follow Zipf (``zipf_exponent``)
        or uniform counts.
    duration, pool_factor:
        Window sampler: a sub-trace window of length ``duration`` is drawn
        from a long trace of length ``pool_factor * duration``.
    n_repeats:
        Windows per (trace, variant) cell.
    scale:
        Trace shrink factor; ``None`` means the per-trace tuned default
        (:data:`repro.experiments.harness.DEFAULT_SCALES`).
    portfolio:
        Named algorithm row set (see ``registry.PORTFOLIOS``).
    policies:
        Explicit algorithm rows as :class:`~repro.policies.PolicySpec`
        values (or names / ``name:k=v`` strings, normalized at
        construction).  When non-empty this *overrides* ``portfolio``:
        each spec is built through the policy registry with the
        instance's derived seed.  Empty (the default) keeps the named
        portfolio and the spec's pre-registry content hash, so existing
        caches stay valid.
    metrics:
        Named scoring functions (see ``repro.sim.runner.METRICS``); every
        algorithm is scored against the ``reference`` policy's schedule.
    reference:
        The policy every metric scores against (default ``"ref"``, the
        exact exponential benchmark).  High-``k`` scenarios past REF's
        ``max_orgs=10`` ceiling name an approximate stand-in instead
        (e.g. ``"ref_hier:block_size=8"`` for the ``scale`` family);
        parsed as a :class:`~repro.policies.PolicySpec` CLI string.
    seed:
        Master seed; per-instance seeds are derived, never shared.
    org_counts, zipf_exponents:
        Optional sweep axes (the ``churn`` family): when non-empty they
        override ``n_orgs`` / ``zipf_exponent`` per variant and the
        scenario becomes their cross product.
    swf_path:
        For the ``swf`` family: path of the Standard Workload Format file.
    params:
        Family-specific extra knobs as a sorted tuple of (name, value)
        pairs (e.g. the federated family's burst amplitude).
    """

    family: str
    traces: tuple[str, ...] = ("LPC-EGEE",)
    n_orgs: int = 5
    duration: int = 5_000
    n_repeats: int = 5
    scale: "float | None" = None
    machine_dist: str = "zipf"
    zipf_exponent: float = 1.0
    seed: int = 0
    pool_factor: int = 4
    portfolio: str = "paper"
    policies: "tuple[PolicySpec, ...]" = ()
    metrics: tuple[str, ...] = ("avg_delay",)
    org_counts: tuple[int, ...] = ()
    zipf_exponents: tuple[float, ...] = ()
    swf_path: "str | None" = None
    reference: str = "ref"
    params: tuple[tuple[str, "int | float | str"], ...] = field(
        default_factory=tuple
    )

    def __post_init__(self) -> None:
        if self.machine_dist not in ("zipf", "uniform"):
            raise ValueError("machine_dist must be 'zipf' or 'uniform'")
        if self.n_orgs < 1 or self.duration < 1 or self.n_repeats < 1:
            raise ValueError("n_orgs, duration, n_repeats must be >= 1")
        if self.pool_factor < 1:
            raise ValueError("pool_factor must be >= 1")
        if not self.traces:
            raise ValueError("need at least one trace")
        if not self.metrics:
            raise ValueError("need at least one metric")
        if any(k < 1 for k in self.org_counts):
            raise ValueError("org_counts entries must be >= 1")
        # normalize for stable hashing regardless of caller container types
        object.__setattr__(
            self,
            "policies",
            tuple(
                p if isinstance(p, PolicySpec) else PolicySpec.from_json(p)
                for p in self.policies
            ),
        )
        object.__setattr__(self, "traces", tuple(self.traces))
        object.__setattr__(self, "metrics", tuple(self.metrics))
        object.__setattr__(self, "org_counts", tuple(self.org_counts))
        object.__setattr__(
            self, "zipf_exponents", tuple(self.zipf_exponents)
        )
        object.__setattr__(
            self, "params", tuple(sorted(tuple(p) for p in self.params))
        )

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def content_hash(self) -> str:
        """Stable hex digest of every knob (keys the instance cache).

        Canonical JSON of the dataclass fields, SHA-256, first 16 hex
        chars.  Any change to any field — including the portfolio or
        metric *names* — yields a different hash and therefore a fresh
        cache file.

        Migration note: fields added after PR 2 (currently ``policies``
        and ``reference``) are dropped from the payload while at their
        "absent" default, so every pre-registry spec keeps its original
        hash and on-disk caches survive the API redesign; a spec that
        *uses* a new field hashes fresh.
        """
        fields = asdict(self)
        if not self.policies:
            fields.pop("policies")
        if self.reference == "ref":
            fields.pop("reference")
        payload = json.dumps(
            fields, sort_keys=True, separators=(",", ":"), default=str
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def param(self, name: str, default):
        """Family-specific extra knob lookup."""
        for k, v in self.params:
            if k == name:
                return v
        return default

    def policy_rows(self) -> "tuple[PolicySpec, ...] | None":
        """The spec's portfolio as concrete :class:`PolicySpec` rows, or
        ``None`` when it resolves to a bare factory with no stable policy
        identity.  This is what keys the cross-spec result store: two
        specs that differ only in portfolio *naming* share rows whenever
        the underlying ``(workload, policy, seed)`` triples coincide.
        (New hash-relevant fields must follow the migration rule in
        :meth:`content_hash`; this method adds none.)
        """
        if self.policies:
            return self.policies
        from .registry import PORTFOLIO_SPECS

        return PORTFOLIO_SPECS.get(self.portfolio)

    # ------------------------------------------------------------------
    # instance enumeration
    # ------------------------------------------------------------------
    def variants(self) -> tuple[tuple[tuple[str, "int | float | str"], ...], ...]:
        """The sweep-axis cross product (a single empty variant when no
        axis is set)."""
        if not self.org_counts and not self.zipf_exponents:
            return ((),)
        ks = self.org_counts or (self.n_orgs,)
        zs = self.zipf_exponents or (self.zipf_exponent,)
        out = []
        for k in ks:
            for z in zs:
                v: list[tuple[str, "int | float | str"]] = []
                if self.org_counts:
                    v.append(("n_orgs", int(k)))
                if self.zipf_exponents:
                    v.append(("zipf_exponent", float(z)))
                out.append(tuple(v))
        return tuple(out)

    def instances(self) -> tuple[InstanceSpec, ...]:
        """Every (trace, variant, repeat) cell, in deterministic order.

        The order is the serial execution order; the parallel pipeline
        aggregates results in this same order, which is why parallel and
        serial runs agree bit-for-bit.
        """
        out: list[InstanceSpec] = []
        index = 0
        for trace in self.traces:
            for variant in self.variants():
                suffix = "".join(
                    f"/{name}={value:g}" if isinstance(value, float)
                    else f"/{name}={value}"
                    for name, value in variant
                )
                for rep in range(self.n_repeats):
                    out.append(
                        InstanceSpec(
                            index=index,
                            trace=trace,
                            repeat=rep,
                            variant=variant,
                            key=f"{trace}{suffix}/{rep}",
                        )
                    )
                    index += 1
        return tuple(out)
