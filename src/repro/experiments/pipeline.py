"""The experiment execution engine: parallel, cached, resumable.

:func:`run_pipeline` turns a :class:`~repro.experiments.spec.ScenarioSpec`
into aggregated results with three properties the hand-rolled serial loop
lacked:

**Parallel, deterministically.**  *Shards* of the instance list fan out
over a :class:`~concurrent.futures.ProcessPoolExecutor` (one task per
shard, not per instance, so IPC+pickle overhead stops dominating small
instances).  Each instance derives its RNGs from stable string keys
(``zlib.crc32`` — identical across processes), and aggregation consumes
results in the spec's canonical instance order regardless of completion
order, so a ``workers=N`` run is **bit-identical** to the serial run
(asserted in tests).

**Batched across instances.**  Within a shard, every admissible REF
reference run advances through one fused
:class:`~repro.core.multikernel.MultiInstanceKernel` sweep loop
(:func:`~repro.algorithms.multiref.ref_results_batched`) instead of one
Python event loop per instance; inadmissible instances (small k,
failed per-instance int64 certification) transparently fall back to the
stock per-instance path.  ``batch=False`` forces the per-instance path
everywhere — results are bit-identical either way (asserted in tests).

**Deduplicated across specs.**  With a ``store_dir``, every scored
portfolio row lands in a content-addressed
:class:`~repro.experiments.store.ResultStore` keyed by the concrete
``(workload, policy, seed, horizon, metrics)`` content — not the spec
hash — so overlapping specs (portfolio variants, re-sliced sweeps) replay
shared rows bit-identically instead of recomputing them, and an
instance whose rows all hit skips even its REF reference run.

**Cached, resumably.**  With a ``cache_dir``, every finished
:class:`PipelineInstanceResult` is appended (and flushed) to a JSONL file named by
the spec's content hash.  A killed run resumes from the last flushed line;
a finished run replays entirely from cache; editing *any* spec knob
changes the hash and starts fresh.  Torn tail lines from a kill are
skipped on load.

**O(1) memory in repeats.**  Results stream through Welford mean/std
accumulators (:class:`StreamingStats`) per (group, metric, algorithm)
cell; instances are only retained when ``keep_instances=True``.

The per-instance work itself (:func:`run_instance_spec`) is: family
builder -> workload; portfolio factory -> algorithms; exact REF reference;
score every (algorithm, metric) cell — steps 1-6 of the paper's Section
7.2 protocol.
"""

from __future__ import annotations

import json
import math
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

from ..algorithms.multiref import ref_results_batched
from ..policies import build_scheduler
from ..sim.runner import evaluate_portfolio
from .registry import get_family, get_portfolio
from .spec import InstanceSpec, ScenarioSpec
from .store import ResultStore

__all__ = [
    "PipelineInstanceResult",
    "PipelineResult",
    "StreamingStats",
    "cache_path_for",
    "run_instance_spec",
    "run_pipeline",
    "run_shard",
    "shard_instances",
]

#: Optional override for the spec's named portfolio (must be picklable for
#: parallel runs).  Overrides disable the cache: a callable has no stable
#: content hash.
AlgorithmFactory = Callable[[int, int], list]

Variant = tuple[tuple[str, "int | float | str"], ...]


@dataclass(frozen=True)
class PipelineInstanceResult:
    """The outcome of one pipeline instance (one cache line).

    ``metrics`` maps metric name -> algorithm name -> score.  Equality is
    exact (dict/float comparison), which is what the serial==parallel and
    cache-replay guarantees are asserted against.
    """

    key: str
    trace: str
    repeat: int
    variant: Variant
    metrics: dict[str, dict[str, float]]
    n_jobs: int
    n_machines: int

    def to_json(self) -> dict:
        return {
            "key": self.key,
            "trace": self.trace,
            "repeat": self.repeat,
            "variant": [list(pair) for pair in self.variant],
            "metrics": self.metrics,
            "n_jobs": self.n_jobs,
            "n_machines": self.n_machines,
        }

    @classmethod
    def from_json(cls, d: dict) -> "PipelineInstanceResult":
        return cls(
            key=d["key"],
            trace=d["trace"],
            repeat=int(d["repeat"]),
            variant=tuple((k, v) for k, v in d["variant"]),
            metrics=d["metrics"],
            n_jobs=int(d["n_jobs"]),
            n_machines=int(d["n_machines"]),
        )


class StreamingStats:
    """Welford mean/std accumulator (population std, matching ``np.std``).

    O(1) state per cell regardless of how many repeats stream through —
    the pipeline's memory does not grow with ``n_repeats``.
    """

    __slots__ = ("n", "mean", "_m2")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0

    def push(self, x: float) -> None:
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (x - self.mean)

    @property
    def std(self) -> float:
        return math.sqrt(self._m2 / self.n) if self.n else 0.0

    def as_tuple(self) -> tuple[int, float, float]:
        return (self.n, self.mean, self.std)


@dataclass
class PipelineResult:
    """Aggregated pipeline outcome.

    ``aggregates`` maps ``(trace, variant)`` group keys to
    ``{metric: {algorithm: (n, mean, std)}}``.  ``instances`` is ``None``
    unless the run was asked to keep them (``keep_instances=True``).
    """

    spec: ScenarioSpec
    aggregates: dict[
        "tuple[str, Variant]", dict[str, dict[str, tuple[int, float, float]]]
    ]
    computed: int
    cached: int
    wall_time_s: float
    cache_path: "str | None" = None
    instances: "tuple[PipelineInstanceResult, ...] | None" = None
    #: Per-stage wall time: ``simulate`` (worker compute, including the
    #: batched kernels), ``aggregate`` (streaming stats), ``cache_io``
    #: (checkpoint load + append/flush) — the attribution benchmarks
    #: record so perf regressions name their stage.
    timings: "dict[str, float] | None" = None

    def groups(self) -> list["tuple[str, Variant]"]:
        return list(self.aggregates)

    def algorithms(self) -> list[str]:
        names: list[str] = []
        for per_metric in self.aggregates.values():
            for per_alg in per_metric.values():
                for name in per_alg:
                    if name not in names:
                        names.append(name)
        return names

    def mean_std(
        self,
        trace: str,
        algorithm: str,
        metric: str = "avg_delay",
        variant: Variant = (),
    ) -> tuple[float, float]:
        cell = self.aggregates[(trace, variant)][metric][algorithm]
        return cell[1], cell[2]


def cache_path_for(spec: ScenarioSpec, cache_dir: "str | Path") -> Path:
    """The spec's JSONL checkpoint file: family + content hash."""
    return Path(cache_dir) / f"{spec.family}-{spec.content_hash()}.jsonl"


def run_instance_spec(
    spec: ScenarioSpec,
    inst: InstanceSpec,
    algorithms: "AlgorithmFactory | None" = None,
) -> PipelineInstanceResult:
    """Compute one instance end-to-end (the worker-process entry point).

    Row resolution order: an explicit ``algorithms`` callable wins, then
    the spec's embedded ``policies`` (each built through the policy
    registry with the instance's derived seed), then the named
    portfolio.  The ``spec.reference`` policy (exact REF by default; an
    approximate stand-in for high-``k`` scenarios) also resolves through
    the registry, with the instance's derived seed.
    """
    build = get_family(spec.family)
    workload, alg_seed = build(spec, inst)
    if algorithms is not None:
        portfolio = algorithms(spec.duration, alg_seed)
    elif spec.policies:
        portfolio = [
            build_scheduler(p, seed=alg_seed, horizon=spec.duration)
            for p in spec.policies
        ]
    else:
        portfolio = get_portfolio(spec.portfolio)(spec.duration, alg_seed)
    metrics = evaluate_portfolio(
        workload,
        spec.duration,
        portfolio,
        build_scheduler(
            spec.reference, seed=alg_seed, horizon=spec.duration
        ),
        spec.metrics,
    )
    return PipelineInstanceResult(
        key=inst.key,
        trace=inst.trace,
        repeat=inst.repeat,
        variant=inst.variant,
        metrics=metrics,
        n_jobs=len(workload.jobs),
        n_machines=workload.n_machines,
    )


#: Upper bound on instances per worker shard: large enough to amortize
#: per-shard kernel construction and coefficient-plan reuse, small enough
#: that the padded lockstep arrays stay cache-resident and a straggler
#: shard cannot serialize the pool tail.
MAX_SHARD = 32


def shard_instances(
    todo: "list[InstanceSpec]", workers: int
) -> "list[tuple[InstanceSpec, ...]]":
    """Split the work list into contiguous shards: one batched kernel and
    one executor task per shard (replacing ``chunksize=1`` task-per-
    instance dispatch).  Serial runs take maximal shards; parallel runs
    aim for ~2 shards per worker so the order-preserving map keeps every
    worker busy without per-instance IPC+pickle round trips."""
    if not todo:
        return []
    if workers <= 1:
        size = min(len(todo), MAX_SHARD)
    else:
        size = max(1, min(MAX_SHARD, -(-len(todo) // (workers * 2))))
    return [tuple(todo[i : i + size]) for i in range(0, len(todo), size)]


def run_shard(
    spec: ScenarioSpec,
    insts: "tuple[InstanceSpec, ...] | list[InstanceSpec]",
    algorithms: "AlgorithmFactory | None" = None,
    *,
    batch: bool = True,
    store: "ResultStore | None" = None,
) -> list[PipelineInstanceResult]:
    """Compute a shard of instances as one unit, bit-identically to
    per-instance :func:`run_instance_spec` calls.

    Three-stage shape: (1) probe the cross-spec result store — an
    instance whose every portfolio row hits is assembled from stored
    floats and skips simulation entirely; (2) run all remaining REF
    references through one fused multi-instance kernel (``batch=True``;
    inadmissible instances fall back per-instance, never evicting their
    siblings); (3) score every instance through the exact same
    :func:`evaluate_portfolio` float path as the per-instance runner,
    writing fresh rows back to the store.  Store keys require rows with
    stable policy identity (:meth:`ScenarioSpec.policy_rows`), so an
    ``algorithms`` callable or bare-factory portfolio disables the store,
    exactly like it disables the JSONL cache.
    """
    build = get_family(spec.family)
    prepared = [(inst, *build(spec, inst)) for inst in insts]
    rows = None
    # the result store keys rows by (workload, policy, seed, metrics)
    # only -- a non-default reference changes every metric value, so it
    # bypasses the store rather than poisoning REF-keyed rows
    if (
        store is not None
        and algorithms is None
        and spec.metrics
        and spec.reference == "ref"
    ):
        rows = spec.policy_rows()
    keys_by_inst: dict[str, list[str]] = {}
    hit_metrics: dict[str, dict[str, dict[str, float]]] = {}
    need_ref: list[tuple[InstanceSpec, "object"]] = []
    for inst, workload, alg_seed in prepared:
        if rows is not None:
            keys = [
                store.key_for(
                    workload, p, alg_seed, spec.duration, spec.metrics
                )
                for p in rows
            ]
            keys_by_inst[inst.key] = keys
            stored = [store.get(k) for k in keys]
            if all(r is not None for r in stored):
                assembled: dict[str, dict[str, float]] = {
                    m: {} for m in spec.metrics
                }
                for r in stored:
                    for m in spec.metrics:
                        assembled[m][r["algorithm"]] = r["metrics"][m]
                hit_metrics[inst.key] = assembled
                continue
        need_ref.append((inst, workload, alg_seed))
    refs: dict[str, object] = {}
    if need_ref:
        # the fused multi-instance kernel is REF-only; approximate
        # references run per-instance through the registry
        if batch and spec.reference == "ref":
            batched = ref_results_batched(
                [(w, spec.duration) for _, w, _ in need_ref]
            )
        else:
            batched = [None] * len(need_ref)
        for (inst, workload, alg_seed), ref_result in zip(need_ref, batched):
            if ref_result is None:
                ref_result = build_scheduler(
                    spec.reference, seed=alg_seed, horizon=spec.duration
                ).run(workload)
            refs[inst.key] = ref_result
    results: list[PipelineInstanceResult] = []
    for inst, workload, alg_seed in prepared:
        metrics = hit_metrics.get(inst.key)
        if metrics is None:
            if algorithms is not None:
                portfolio = algorithms(spec.duration, alg_seed)
            elif spec.policies:
                portfolio = [
                    build_scheduler(p, seed=alg_seed, horizon=spec.duration)
                    for p in spec.policies
                ]
            else:
                portfolio = get_portfolio(spec.portfolio)(
                    spec.duration, alg_seed
                )
            metrics = evaluate_portfolio(
                workload,
                spec.duration,
                portfolio,
                spec.reference,
                spec.metrics,
                reference_result=refs[inst.key],
            )
            if rows is not None:
                names = list(next(iter(metrics.values()), {}))
                # positional row <-> scored-name alignment requires
                # distinct names; degenerate portfolios just skip storage
                if len(names) == len(rows):
                    for key, name in zip(keys_by_inst[inst.key], names):
                        store.put(
                            key,
                            name,
                            {m: metrics[m][name] for m in spec.metrics},
                        )
        results.append(
            PipelineInstanceResult(
                key=inst.key,
                trace=inst.trace,
                repeat=inst.repeat,
                variant=inst.variant,
                metrics=metrics,
                n_jobs=len(workload.jobs),
                n_machines=workload.n_machines,
            )
        )
    return results


def _run_shard(args) -> list[PipelineInstanceResult]:
    """Picklable ProcessPoolExecutor task (one per shard)."""
    spec, insts, algorithms, batch, store_dir = args
    store = ResultStore(store_dir) if store_dir is not None else None
    return run_shard(spec, insts, algorithms, batch=batch, store=store)


def _compute_stream(
    spec: ScenarioSpec,
    todo: "list[InstanceSpec]",
    workers: int,
    algorithms: "AlgorithmFactory | None",
    batch: bool,
    store_dir: "str | Path | None",
) -> Iterator[PipelineInstanceResult]:
    """Yield fresh results in ``todo`` order (parallel computation happens
    behind an order-preserving ``Executor.map`` over shards)."""
    shards = shard_instances(todo, workers)
    if workers <= 1 or len(shards) <= 1:
        store = ResultStore(store_dir) if store_dir is not None else None
        for shard in shards:
            yield from run_shard(
                spec, shard, algorithms, batch=batch, store=store
            )
        return
    with ProcessPoolExecutor(max_workers=min(workers, len(shards))) as ex:
        for shard_results in ex.map(
            _run_shard,
            (
                (spec, shard, algorithms, batch, store_dir)
                for shard in shards
            ),
            chunksize=1,
        ):
            yield from shard_results


def _load_cache(path: Path) -> dict[str, PipelineInstanceResult]:
    """Replay a checkpoint file; torn tail lines (killed mid-write) and
    other junk lines are skipped, not fatal."""
    out: dict[str, PipelineInstanceResult] = {}
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return out
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            result = PipelineInstanceResult.from_json(json.loads(line))
        except (ValueError, KeyError, TypeError):
            continue
        out[result.key] = result
    return out


def run_pipeline(
    spec: ScenarioSpec,
    *,
    workers: int = 1,
    cache_dir: "str | Path | None" = None,
    resume: bool = True,
    keep_instances: bool = False,
    algorithms: "AlgorithmFactory | None" = None,
    progress: "Callable[[str], None] | None" = None,
    batch: bool = True,
    store_dir: "str | Path | None" = None,
) -> PipelineResult:
    """Execute every instance of ``spec`` and aggregate.

    Parameters
    ----------
    workers:
        Process fan-out; ``1`` runs inline.  Results are identical either
        way (see module docstring).
    cache_dir:
        Directory for the JSONL instance checkpoint.  ``None`` disables
        caching entirely.
    resume:
        Replay instances already present in the checkpoint instead of
        recomputing them (``False`` recomputes and re-appends everything).
    keep_instances:
        Retain per-instance results on the returned object (memory then
        grows with instance count; aggregation itself stays streaming).
    algorithms:
        Optional portfolio override (callable).  Disables the cache and
        the result store — a callable has no stable content hash to key
        either by.
    progress:
        Called with one short line per finished instance.
    batch:
        Advance each shard's REF references through one fused
        multi-instance kernel (``False`` forces the per-instance path;
        results are bit-identical either way).
    store_dir:
        Directory of the cross-spec content-addressed
        :class:`~repro.experiments.store.ResultStore`.  Unlike
        ``cache_dir`` (keyed by spec hash) it dedupes shared
        ``(workload, policy, seed)`` rows across *different* specs.
    """
    started = time.perf_counter()
    timings = {"simulate": 0.0, "aggregate": 0.0, "cache_io": 0.0}
    instances = spec.instances()
    cache_file: "Path | None" = None
    cached: dict[str, PipelineInstanceResult] = {}
    if cache_dir is not None and algorithms is None:
        cache_file = cache_path_for(spec, cache_dir)
        if resume:
            t0 = time.perf_counter()
            cached = _load_cache(cache_file)
            timings["cache_io"] += time.perf_counter() - t0
    todo = [inst for inst in instances if inst.key not in cached]
    fresh = _compute_stream(spec, todo, workers, algorithms, batch, store_dir)

    aggregates: dict[
        "tuple[str, Variant]", dict[str, dict[str, StreamingStats]]
    ] = {}
    kept: list[PipelineInstanceResult] = []
    n_cached = 0
    n_computed = 0
    sink = None
    if cache_file is not None:
        cache_file.parent.mkdir(parents=True, exist_ok=True)
        sink = open(cache_file, "a", encoding="utf-8")
    try:
        for inst in instances:
            if inst.key in cached:
                result = cached[inst.key]
                n_cached += 1
            else:
                t0 = time.perf_counter()
                result = next(fresh)
                timings["simulate"] += time.perf_counter() - t0
                n_computed += 1
                if sink is not None:
                    t0 = time.perf_counter()
                    sink.write(
                        json.dumps(result.to_json(), separators=(",", ":"))
                        + "\n"
                    )
                    sink.flush()
                    timings["cache_io"] += time.perf_counter() - t0
            t0 = time.perf_counter()
            group = aggregates.setdefault((result.trace, result.variant), {})
            for metric, per_alg in result.metrics.items():
                cells = group.setdefault(metric, {})
                for alg, value in per_alg.items():
                    cells.setdefault(alg, StreamingStats()).push(value)
            timings["aggregate"] += time.perf_counter() - t0
            if keep_instances:
                kept.append(result)
            if progress is not None:
                origin = "cached" if inst.key in cached else "computed"
                progress(
                    f"[{n_cached + n_computed}/{len(instances)}] "
                    f"{result.key} ({origin})"
                )
    finally:
        if sink is not None:
            sink.close()

    final = {
        g: {
            metric: {alg: s.as_tuple() for alg, s in cells.items()}
            for metric, cells in per_metric.items()
        }
        for g, per_metric in aggregates.items()
    }
    return PipelineResult(
        spec=spec,
        aggregates=final,
        computed=n_computed,
        cached=n_cached,
        wall_time_s=time.perf_counter() - started,
        cache_path=str(cache_file) if cache_file is not None else None,
        instances=tuple(kept) if keep_instances else None,
        timings=timings,
    )
