"""Experiment subsystem: declarative scenarios over a shared pipeline.

Regenerates every table and figure of the paper's Section 7 — and any
registered scenario beyond them — through one engine:

* :mod:`repro.experiments.spec` — frozen :class:`ScenarioSpec` value
  objects (content-hashable, picklable, instance-enumerating);
* :mod:`repro.experiments.registry` — pluggable scenario families,
  algorithm portfolios and named scenarios;
* :mod:`repro.experiments.pipeline` — the parallel / cached / resumable
  execution engine (``run_pipeline``);
* :mod:`repro.experiments.harness`, :mod:`~repro.experiments.tables`,
  :mod:`~repro.experiments.figures`, :mod:`~repro.experiments.reporting`
  — the paper-protocol consumers layered on top.
"""

from .figures import (
    FIGURE10_PAPER_SHAPE,
    Figure2Numbers,
    figure2_numbers,
    figure2_schedule,
    figure7_numbers,
    figure10,
)
from .harness import (
    DEFAULT_SCALES,
    ExperimentConfig,
    ExperimentResult,
    InstanceResult,
    default_algorithms,
    run_experiment,
    run_instance,
    sample_instance,
)
from .pipeline import (
    PipelineInstanceResult,
    PipelineResult,
    StreamingStats,
    run_instance_spec,
    run_pipeline,
)
from .registry import (
    FAMILIES,
    PORTFOLIO_SPECS,
    PORTFOLIOS,
    SCENARIOS,
    Scenario,
    get_scenario,
    list_scenarios,
    register_family,
    register_portfolio,
    register_portfolio_specs,
    register_scenario,
    scenario_spec,
)
from .reporting import format_cell, render_pipeline, render_series, render_table
from .spec import InstanceSpec, ScenarioSpec
from .tables import TABLE1_PAPER, TABLE2_PAPER, table1, table2

__all__ = [
    "DEFAULT_SCALES",
    "ExperimentConfig",
    "ExperimentResult",
    "FAMILIES",
    "FIGURE10_PAPER_SHAPE",
    "Figure2Numbers",
    "InstanceResult",
    "InstanceSpec",
    "PORTFOLIOS",
    "PORTFOLIO_SPECS",
    "PipelineInstanceResult",
    "PipelineResult",
    "SCENARIOS",
    "Scenario",
    "ScenarioSpec",
    "StreamingStats",
    "TABLE1_PAPER",
    "TABLE2_PAPER",
    "default_algorithms",
    "figure10",
    "figure2_numbers",
    "figure2_schedule",
    "figure7_numbers",
    "format_cell",
    "get_scenario",
    "list_scenarios",
    "register_family",
    "register_portfolio",
    "register_portfolio_specs",
    "register_scenario",
    "render_pipeline",
    "render_series",
    "render_table",
    "run_experiment",
    "run_instance",
    "run_instance_spec",
    "run_pipeline",
    "sample_instance",
    "scenario_spec",
    "table1",
    "table2",
]
