"""Experiment harness regenerating every table and figure of Section 7."""

from .figures import (
    FIGURE10_PAPER_SHAPE,
    Figure2Numbers,
    figure2_numbers,
    figure2_schedule,
    figure7_numbers,
    figure10,
)
from .harness import (
    DEFAULT_SCALES,
    ExperimentConfig,
    ExperimentResult,
    InstanceResult,
    default_algorithms,
    run_experiment,
    run_instance,
    sample_instance,
)
from .reporting import format_cell, render_series, render_table
from .tables import TABLE1_PAPER, TABLE2_PAPER, table1, table2

__all__ = [
    "DEFAULT_SCALES",
    "ExperimentConfig",
    "ExperimentResult",
    "FIGURE10_PAPER_SHAPE",
    "Figure2Numbers",
    "InstanceResult",
    "TABLE1_PAPER",
    "TABLE2_PAPER",
    "default_algorithms",
    "figure10",
    "figure2_numbers",
    "figure2_schedule",
    "figure7_numbers",
    "format_cell",
    "render_series",
    "render_table",
    "run_experiment",
    "run_instance",
    "sample_instance",
    "table1",
    "table2",
]
