"""Pluggable registries: scenario families, algorithm portfolios, scenarios.

Three small name->object maps decouple *what* an experiment is (a frozen
:class:`~repro.experiments.spec.ScenarioSpec`) from *how* it runs:

* **families** — instance builders ``(spec, instance) -> (workload,
  algorithm_seed)``.  A family owns its RNG-derivation scheme (documented
  per builder, pinned in DESIGN.md §3) so that every instance is
  independently computable on any worker process;
* **portfolios** — named algorithm row sets ``(horizon, seed) ->
  [Scheduler]``.  Specs reference portfolios by name so they stay
  hashable/picklable.  Built-ins are declared as
  :class:`~repro.policies.PolicySpec` rows
  (:func:`register_portfolio_specs`, inspectable via
  :data:`PORTFOLIO_SPECS`) and constructed through the global policy
  registry — no algorithm constructors are named here;
* **scenarios** — named, ready-to-run specs with a one-line description
  (what ``repro scenarios`` lists and ``repro run NAME`` executes).

Built-ins registered at import time:

=============  ========================================================
family         instances it builds
=============  ========================================================
``synthetic``  the paper's Tables 1-2 protocol on the four archive
               stand-ins (bit-compatible with the legacy serial loop)
``swf``        the same protocol over a *real* SWF file
               (``spec.swf_path``), closing the DESIGN.md §1.5 gap
``federated``  federated-cloud providers with staggered correlated
               bursts offloading onto each other's idle machines
``churn``      org-count x Zipf-exponent heterogeneity sweeps with
               common-random-number windows (generalizes Figure 10)
``scale``      high-``k`` federations (25-200 orgs) past REF's exact
               ceiling, scored against an approximate reference
               (DESIGN.md §12; ``spec.reference``)
=============  ========================================================

Register your own with :func:`register_family` / :func:`register_portfolio`
/ :func:`register_scenario`; parallel runs require registration to happen
at import time of your module (worker processes re-import, they do not
inherit runtime state).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Callable

from ..algorithms import Scheduler
from ..core.workload import Workload
from ..policies import PolicySpec, build_scheduler
from ..workloads.federated import FederatedSpec, federated_records
from ..workloads.swf import load_swf
from ..workloads.traces import PAPER_TRACES
from ..workloads.transforms import (
    assign_users_to_orgs,
    build_swf_instance,
    build_workload,
    machine_split,
)
from .spec import InstanceSpec, ScenarioSpec, derive_rng

__all__ = [
    "Scenario",
    "FAMILIES",
    "PORTFOLIOS",
    "PORTFOLIO_SPECS",
    "SCENARIOS",
    "register_family",
    "register_portfolio",
    "register_portfolio_specs",
    "register_scenario",
    "get_family",
    "get_portfolio",
    "get_scenario",
    "list_scenarios",
    "scenario_spec",
]

#: An instance builder: (spec, instance) -> (workload, algorithm seed).
InstanceBuilder = Callable[[ScenarioSpec, InstanceSpec], "tuple[Workload, int]"]

#: A portfolio factory: (horizon, seed) -> fresh scheduler objects.
PortfolioFactory = Callable[[int, int], "list[Scheduler]"]

FAMILIES: dict[str, InstanceBuilder] = {}
PORTFOLIOS: dict[str, PortfolioFactory] = {}

#: Declarative row sets: portfolio name -> :class:`PolicySpec` rows.
#: Populated by :func:`register_portfolio_specs`; a portfolio registered
#: through a bare callable (:func:`register_portfolio`) has no entry
#: here.  Policy *construction* always happens in
#: :data:`repro.policies.POLICY_REGISTRY`.
PORTFOLIO_SPECS: dict[str, tuple[PolicySpec, ...]] = {}


@dataclass(frozen=True)
class Scenario:
    """A named, documented, ready-to-run experiment spec."""

    name: str
    description: str
    spec: ScenarioSpec


SCENARIOS: dict[str, Scenario] = {}


def register_family(
    name: str, builder: InstanceBuilder, *, overwrite: bool = False
) -> InstanceBuilder:
    if name in FAMILIES and not overwrite:
        raise ValueError(f"family {name!r} already registered")
    FAMILIES[name] = builder
    return builder


def register_portfolio(
    name: str, factory: PortfolioFactory, *, overwrite: bool = False
) -> PortfolioFactory:
    if name in PORTFOLIOS and not overwrite:
        raise ValueError(f"portfolio {name!r} already registered")
    PORTFOLIOS[name] = factory
    return factory


def register_portfolio_specs(
    name: str,
    specs: "tuple[PolicySpec | str, ...]",
    *,
    overwrite: bool = False,
) -> PortfolioFactory:
    """Register a portfolio declaratively: :class:`PolicySpec` rows (or
    names / ``name:k=v`` strings) built through the policy registry.

    The resulting factory constructs each row with the run's
    ``(horizon, seed)``; the normalized specs are kept in
    :data:`PORTFOLIO_SPECS` so tooling (and tests) can inspect a
    portfolio without constructing it.
    """
    rows = tuple(
        s if isinstance(s, PolicySpec) else PolicySpec.parse(s) for s in specs
    )

    def factory(horizon: int, seed: int) -> list[Scheduler]:
        return [build_scheduler(s, seed=seed, horizon=horizon) for s in rows]

    factory.__name__ = f"{name}_portfolio"
    factory.__doc__ = f"Rows: {', '.join(str(s) for s in rows)}."
    # register the factory first: on a name collision it raises before
    # PORTFOLIO_SPECS is touched, keeping the two maps consistent
    result = register_portfolio(name, factory, overwrite=overwrite)
    PORTFOLIO_SPECS[name] = rows
    return result


def register_scenario(scenario: Scenario, *, overwrite: bool = False) -> Scenario:
    if scenario.spec.family not in FAMILIES:
        raise KeyError(
            f"scenario {scenario.name!r} uses unknown family "
            f"{scenario.spec.family!r}; register the family first"
        )
    if scenario.name in SCENARIOS and not overwrite:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_family(name: str) -> InstanceBuilder:
    try:
        return FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario family {name!r}; available: {sorted(FAMILIES)}"
        ) from None


def get_portfolio(name: str) -> PortfolioFactory:
    try:
        return PORTFOLIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown portfolio {name!r}; available: {sorted(PORTFOLIOS)}"
        ) from None


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None


def list_scenarios() -> list[Scenario]:
    """Registered scenarios in registration order."""
    return list(SCENARIOS.values())


def scenario_spec(name: str, **overrides) -> ScenarioSpec:
    """The registered spec with any non-``None`` keyword overrides applied
    (the CLI's flag -> spec plumbing)."""
    spec = get_scenario(name).spec
    clean = {k: v for k, v in overrides.items() if v is not None}
    return replace(spec, **clean) if clean else spec


# ----------------------------------------------------------------------
# built-in portfolios (rows are PolicySpecs; construction lives in the
# policy registry)
# ----------------------------------------------------------------------
def paper_portfolio(horizon: int, seed: int) -> list[Scheduler]:
    """The paper's Table 1/2 row set (Section 7.1)."""
    return get_portfolio("paper")(horizon, seed)


def fast_portfolio(horizon: int, seed: int) -> list[Scheduler]:
    """Cheap subset for smoke runs: no sampled-Shapley algorithms."""
    return get_portfolio("fast")(horizon, seed)


def contribution_portfolio(horizon: int, seed: int) -> list[Scheduler]:
    """Only the contribution-tracking algorithms (RAND, DIRECTCONTR)."""
    return get_portfolio("contribution")(horizon, seed)


# ----------------------------------------------------------------------
# built-in families
# ----------------------------------------------------------------------
def synthetic_instance(
    spec: ScenarioSpec, inst: InstanceSpec
) -> tuple[Workload, int]:
    """Tables 1-2 protocol on an archive stand-in.

    Seed scheme (unchanged from the pre-pipeline harness, so serial,
    parallel and legacy runs are bit-identical):
    ``crc32(f"{trace}/{repeat}/{seed}")`` drives trace generation, window
    position, user assignment and finally the algorithm seed, in that
    order.
    """
    from .harness import ExperimentConfig, sample_instance

    rng = derive_rng(f"{inst.trace}/{inst.repeat}/{spec.seed}")
    config = ExperimentConfig(
        traces=(inst.trace,),
        n_orgs=int(inst.param("n_orgs", spec.n_orgs)),
        duration=spec.duration,
        n_repeats=spec.n_repeats,
        scale=spec.scale,
        machine_dist=spec.machine_dist,
        seed=spec.seed,
        pool_factor=spec.pool_factor,
    )
    workload = sample_instance(inst.trace, config, rng)
    return workload, int(rng.integers(0, 2**31 - 1))


def churn_instance(
    spec: ScenarioSpec, inst: InstanceSpec
) -> tuple[Workload, int]:
    """Org-churn / heterogeneity sweep cell (generalizes Figure 10).

    Common-random-numbers design: the window RNG key
    ``f"{trace}/window/{repeat}/{seed}"`` is independent of the sweep
    variant, so every (org count, Zipf exponent) cell of one repeat reuses
    the same trace window and the sweep trend is not swamped by
    window-to-window load variance.  The assignment RNG key matches the
    legacy ``figure10`` scheme exactly when ``zipf_exponent == 1.0`` under
    the Zipf split, so the figure reproduces bit-for-bit through the
    pipeline.
    """
    from .harness import ExperimentConfig, sample_window

    k = int(inst.param("n_orgs", spec.n_orgs))
    z = float(inst.param("zipf_exponent", spec.zipf_exponent))
    window_rng = derive_rng(f"{inst.trace}/window/{inst.repeat}/{spec.seed}")
    config = ExperimentConfig(
        traces=(inst.trace,),
        n_orgs=k,
        duration=spec.duration,
        n_repeats=spec.n_repeats,
        scale=spec.scale,
        machine_dist=spec.machine_dist,
        seed=spec.seed,
        pool_factor=spec.pool_factor,
    )
    records, gen_spec, t_start = sample_window(inst.trace, config, window_rng)
    legacy = spec.machine_dist == "zipf" and z == 1.0
    akey = (
        f"{inst.trace}/{k}/{inst.repeat}/{spec.seed}"
        if legacy
        else f"{inst.trace}/{k}/{spec.machine_dist}{z:g}/{inst.repeat}/{spec.seed}"
    )
    assign_rng = derive_rng(akey)
    user_map = assign_users_to_orgs([r.user for r in records], k, assign_rng)
    machines = machine_split(gen_spec.n_machines, k, spec.machine_dist, z)
    full = build_workload(records, machines, user_map)
    workload = full.window(t_start, t_start + spec.duration)
    return workload, int(assign_rng.integers(0, 2**31 - 1))


@lru_cache(maxsize=8)
def _cached_swf(path: str):
    """Parse an SWF file once per process (instances share the trace)."""
    return load_swf(path)


def swf_instance(
    spec: ScenarioSpec, inst: InstanceSpec
) -> tuple[Workload, int]:
    """Tables 1-2 protocol over a real SWF archive file (``spec.swf_path``).

    Seed scheme: ``crc32(f"{trace}/{repeat}/{seed}")`` drives the window
    position, the user assignment and the algorithm seed, in that order
    (the trace itself is data, not randomness).
    """
    if not spec.swf_path:
        raise ValueError(
            "the 'swf' family needs swf_path (CLI: repro run swf --swf FILE)"
        )
    trace = _cached_swf(spec.swf_path)
    rng = derive_rng(f"{inst.trace}/{inst.repeat}/{spec.seed}")
    workload = build_swf_instance(
        trace,
        spec.duration,
        int(inst.param("n_orgs", spec.n_orgs)),
        rng,
        machine_dist=spec.machine_dist,
        zipf_exponent=float(inst.param("zipf_exponent", spec.zipf_exponent)),
        scale=spec.scale,
    )
    return workload, int(rng.integers(0, 2**31 - 1))


def federated_instance(
    spec: ScenarioSpec, inst: InstanceSpec
) -> tuple[Workload, int]:
    """Federated-offload cell: staggered provider bursts over a pooled
    cluster (see :mod:`repro.workloads.federated`).

    Seed scheme: ``crc32(f"{trace}/{repeat}/{seed}")`` drives federation
    generation, window position and the algorithm seed, in that order.
    """
    k = int(inst.param("n_orgs", spec.n_orgs))
    rng = derive_rng(f"{inst.trace}/{inst.repeat}/{spec.seed}")
    horizon = spec.duration * spec.pool_factor
    fspec = FederatedSpec(
        n_orgs=k,
        horizon=horizon,
        machines_per_org=int(spec.param("machines_per_org", 5)),
        users_per_org=int(spec.param("users_per_org", 8)),
        load=float(spec.param("load", 0.8)),
        peak_amplitude=float(spec.param("peak_amplitude", 0.9)),
        day_length=int(spec.param("day_length", spec.duration)),
    )
    records, user_map = federated_records(fspec, rng)
    t_start = int(rng.integers(0, max(1, horizon - spec.duration)))
    machines = machine_split(
        k * fspec.machines_per_org, k, spec.machine_dist, spec.zipf_exponent
    )
    full = build_workload(records, machines, user_map)
    workload = full.window(t_start, t_start + spec.duration)
    return workload, int(rng.integers(0, 2**31 - 1))


def scale_instance(
    spec: ScenarioSpec, inst: InstanceSpec
) -> tuple[Workload, int]:
    """High-``k`` federation cell: the federated burst generator pushed
    past REF's exact ceiling (org counts swept via ``spec.org_counts``,
    typically 25-200).

    Seed scheme: ``crc32(f"{trace}/scale/{k}/{repeat}/{seed}")`` drives
    federation generation, window position and the algorithm seed, in
    that order -- the org count is part of the key, so sweep cells are
    independent draws (no CRN across ``k``; at this scale the trend
    dwarfs window noise).  Sample budgets are swept through the
    portfolio rows (e.g. the ``approx`` portfolio), not the instance.
    """
    k = int(inst.param("n_orgs", spec.n_orgs))
    rng = derive_rng(f"{inst.trace}/scale/{k}/{inst.repeat}/{spec.seed}")
    horizon = spec.duration * spec.pool_factor
    fspec = FederatedSpec(
        n_orgs=k,
        horizon=horizon,
        machines_per_org=int(spec.param("machines_per_org", 2)),
        users_per_org=int(spec.param("users_per_org", 3)),
        load=float(spec.param("load", 0.7)),
        peak_amplitude=float(spec.param("peak_amplitude", 0.5)),
        day_length=int(spec.param("day_length", spec.duration)),
    )
    records, user_map = federated_records(fspec, rng)
    t_start = int(rng.integers(0, max(1, horizon - spec.duration)))
    machines = machine_split(
        k * fspec.machines_per_org, k, spec.machine_dist, spec.zipf_exponent
    )
    full = build_workload(records, machines, user_map)
    workload = full.window(t_start, t_start + spec.duration)
    return workload, int(rng.integers(0, 2**31 - 1))


# ----------------------------------------------------------------------
# built-in registrations
# ----------------------------------------------------------------------
register_portfolio_specs(
    "paper",
    (
        PolicySpec("roundrobin"),
        PolicySpec.make("rand", n_orderings=15),
        PolicySpec("directcontr"),
        PolicySpec("fairshare"),
        PolicySpec("utfairshare"),
        PolicySpec("currfairshare"),
    ),
)
register_portfolio_specs(
    "fast",
    (
        PolicySpec("roundrobin"),
        PolicySpec("fairshare"),
        PolicySpec("currfairshare"),
    ),
)
register_portfolio_specs(
    "contribution",
    (PolicySpec.make("rand", n_orderings=15), PolicySpec("directcontr")),
)
register_portfolio_specs(
    "approx",
    # fairness-vs-budget ladder: uniform RAND vs the variance-reduced and
    # certified samplers at a low and a moderate ordering budget
    (
        PolicySpec.make("rand", n_orderings=5),
        PolicySpec.make("rand", n_orderings=15),
        PolicySpec.make("ref_stratified", n_orderings=5),
        PolicySpec.make("ref_stratified", n_orderings=15),
        PolicySpec.make("ref_adaptive", n_max=64),
    ),
)

register_family("synthetic", synthetic_instance)
register_family("churn", churn_instance)
register_family("swf", swf_instance)
register_family("federated", federated_instance)
register_family("scale", scale_instance)

register_scenario(
    Scenario(
        "table1",
        "Paper Table 1 (scaled): 6 algorithms x 4 trace stand-ins, D=5e3",
        ScenarioSpec(
            family="synthetic", traces=PAPER_TRACES, duration=5_000,
            n_repeats=3, seed=0,
        ),
    )
)
register_scenario(
    Scenario(
        "table2",
        "Paper Table 2 (scaled): the Table 1 protocol, 4x longer windows",
        ScenarioSpec(
            family="synthetic", traces=PAPER_TRACES, duration=20_000,
            n_repeats=2, seed=1,
        ),
    )
)
register_scenario(
    Scenario(
        "figure10",
        "Paper Fig. 10: avg delay vs organization count (LPC-EGEE, CRN windows)",
        ScenarioSpec(
            family="churn", traces=("LPC-EGEE",), duration=4_000,
            n_repeats=2, seed=0, org_counts=(2, 3, 4, 5, 6),
        ),
    )
)
register_scenario(
    Scenario(
        "churn",
        "Heterogeneity sweep: org counts x Zipf machine-split exponents",
        ScenarioSpec(
            family="churn", traces=("LPC-EGEE",), duration=3_000,
            n_repeats=2, seed=0, org_counts=(2, 3, 4, 5),
            zipf_exponents=(0.5, 1.0, 2.0),
        ),
    )
)
register_scenario(
    Scenario(
        "federated",
        "Federated clouds: staggered provider bursts offloading onto idle peers",
        ScenarioSpec(
            family="federated", traces=("FED",), n_orgs=4, duration=2_500,
            n_repeats=3, seed=0, machine_dist="uniform",
            metrics=("avg_delay", "unfairness"),
        ),
    )
)
register_scenario(
    Scenario(
        "scale",
        "Certified approximation at scale: 25-100 orgs, budget ladder vs ref_hier",
        ScenarioSpec(
            family="scale", traces=("SCALE",), duration=400, n_repeats=2,
            seed=0, machine_dist="uniform", org_counts=(25, 50, 100),
            portfolio="approx", metrics=("avg_delay", "unfairness"),
            reference="ref_hier:block_size=5",
            params=(("load", 1.2), ("peak_amplitude", 0.9)),
        ),
    )
)
register_scenario(
    Scenario(
        "swf",
        "Tables protocol over a real SWF archive file (pass --swf FILE)",
        ScenarioSpec(
            family="swf", traces=("SWF",), duration=2_000, n_repeats=3,
            seed=0,
        ),
    )
)
