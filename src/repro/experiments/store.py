"""Content-addressed cross-spec result store (DESIGN.md §10.3).

The JSONL resume cache keys whole *spec runs* by spec content hash, so two
specs that share instances (e.g. portfolio variants over the same trace and
seed) recompute every shared ``(workload, policy)`` pair from scratch.
:class:`ResultStore` keys each **scored portfolio row** by what actually
determines it -- a hash of the concrete workload, the policy's own content
hash, the derived algorithm seed, the evaluation horizon, and the metric
tuple -- so any spec whose row resolves to the same key replays the stored
float scores bit-identically (JSON round-trips float64 exactly, the same
property the JSONL cache already relies on) and multi-spec sweeps become
resumable at per-instance, per-policy granularity.

The store is deliberately dumb and concurrency-tolerant: one append-only
``results.jsonl`` per store directory, each row written with a single
buffered write.  Parallel shard workers may race; the worst case is a
duplicate line with identical content, which the last-wins index load
makes harmless (the same torn/junk-line tolerance as the pipeline cache).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from ..core.workload import Workload
from ..policies import PolicySpec

__all__ = ["ResultStore", "workload_fingerprint"]


def workload_fingerprint(workload: Workload) -> str:
    """A stable digest of the concrete workload: org machine endowments
    plus every job's ``(release, org, index, size)`` in canonical order.
    Job ids are excluded -- they are assignment-order bookkeeping, not
    schedule-relevant content."""
    payload = json.dumps(
        [
            workload.n_orgs,
            list(workload.machine_counts()),
            [[j.release, j.org, j.index, j.size] for j in sorted(workload.jobs)],
        ],
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultStore:
    """Append-only content-addressed store of scored portfolio rows.

    Rows are ``{"algorithm": name, "metrics": {metric: float}}`` keyed by
    :meth:`key_for`.  ``hits``/``misses`` count :meth:`get` outcomes so
    tests (and the CI smoke) can assert zero-recompute resumes.
    """

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)
        self.path = self.root / "results.jsonl"
        self.hits = 0
        self.misses = 0
        self._index: dict[str, dict] = {}
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                key = row.pop("key")
                row["metrics"] = {
                    m: float(v) for m, v in row["metrics"].items()
                }
            except (ValueError, KeyError, TypeError):
                continue
            self._index[key] = row

    def __len__(self) -> int:
        return len(self._index)

    @staticmethod
    def key_for(
        workload: Workload,
        policy: "PolicySpec | str",
        seed: int,
        horizon: int,
        metrics: "tuple[str, ...]",
    ) -> str:
        """The content address of one scored row: everything that
        determines its floats and nothing else."""
        payload = json.dumps(
            [
                workload_fingerprint(workload),
                PolicySpec.parse(policy).content_hash(),
                int(seed),
                int(horizon),
                list(metrics),
            ],
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]

    def get(self, key: str) -> "dict | None":
        row = self._index.get(key)
        if row is None:
            self.misses += 1
        else:
            self.hits += 1
        return row

    def contains(self, key: str) -> bool:
        return key in self._index

    def put(self, key: str, algorithm: str, metrics: dict[str, float]) -> None:
        if key in self._index:
            return
        row = {"algorithm": algorithm, "metrics": dict(metrics)}
        self._index[key] = row
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps({"key": key, **row}, separators=(",", ":")) + "\n"
        with open(self.path, "a", encoding="utf-8") as f:
            f.write(line)
