"""The Section 7.2 experimental protocol.

One *instance* of the paper's experiment:

1. generate (or load) a long trace;
2. pick a random sub-trace window ``[t_start, t_start + D)``;
3. distribute user identifiers uniformly among ``k`` organizations;
4. distribute the processors among organizations (Zipf or uniform counts);
5. run every algorithm plus the exact REF reference;
6. score each algorithm with :math:`\\Delta\\psi / p_{tot}` at ``t_end = D``.

Repeated ``n_repeats`` times with fresh seeds; Tables 1-2 report the mean
and standard deviation per (algorithm, trace).

**Scaling** -- the paper's full-size configuration (e.g. RICC: 8192
processors, horizon 5*10^5, 100 repetitions) needs hours of CPU.  The
``scale`` knob shrinks machines/users/job-lengths proportionally (see
:meth:`repro.workloads.traces.TraceProfile.spec`) while preserving load
factors and therefore the paper's qualitative comparisons; EXPERIMENTS.md
records both the paper's numbers and ours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..algorithms import Scheduler
from ..core.workload import Workload
from ..policies import build_scheduler
from ..sim.runner import evaluate_portfolio
from ..workloads.traces import make_trace
from ..workloads.transforms import (
    assign_users_to_orgs,
    build_workload,
    machine_split,
)
from .registry import paper_portfolio

__all__ = [
    "ExperimentConfig",
    "InstanceResult",
    "ExperimentResult",
    "assign_instance",
    "default_algorithms",
    "run_experiment",
    "run_instance",
    "sample_instance",
    "sample_window",
]

#: Factory signature: given the horizon, build fresh scheduler objects.
AlgorithmFactory = Callable[[int, int], list[Scheduler]]

#: The paper's Table 1/2 row set (Section 7.1) — canonical definition now
#: lives in the portfolio registry as ``"paper"``.
default_algorithms = paper_portfolio


#: Default per-trace shrink factors chosen so a scaled instance keeps
#: 14-35 machines and a realistic queueing regime (see DESIGN.md §3).
DEFAULT_SCALES: dict[str, float] = {
    "LPC-EGEE": 0.2,
    "PIK-IPLEX": 0.012,
    "SHARCNET-Whale": 0.008,
    "RICC": 0.004,
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of one Tables-1/2-style experiment."""

    traces: tuple[str, ...] = ("LPC-EGEE",)
    n_orgs: int = 5
    duration: int = 5_000  #: the paper's D (5*10^4 / 5*10^5 full-size)
    n_repeats: int = 5  #: the paper uses 100
    scale: "float | None" = None  #: trace shrink; None = DEFAULT_SCALES
    machine_dist: str = "zipf"  #: "zipf" or "uniform" (the paper runs both)
    seed: int = 0
    pool_factor: int = 4  #: long-trace length = pool_factor * duration
    algorithms: AlgorithmFactory = field(default=default_algorithms)

    def __post_init__(self) -> None:
        if self.machine_dist not in ("zipf", "uniform"):
            raise ValueError("machine_dist must be 'zipf' or 'uniform'")
        if self.n_orgs < 1 or self.duration < 1 or self.n_repeats < 1:
            raise ValueError("n_orgs, duration, n_repeats must be >= 1")

    def scale_for(self, trace: str) -> float:
        """The shrink factor for ``trace`` (explicit, or the tuned default)."""
        if self.scale is not None:
            return self.scale
        return DEFAULT_SCALES.get(trace, 0.05)


@dataclass(frozen=True)
class InstanceResult:
    """Per-algorithm avg delay on one sampled window."""

    trace: str
    repeat: int
    avg_delays: dict[str, float]
    n_jobs: int
    n_machines: int


@dataclass(frozen=True)
class ExperimentResult:
    """Aggregated experiment outcome: (trace, algorithm) -> mean/std."""

    config: ExperimentConfig
    instances: tuple[InstanceResult, ...]

    def algorithms(self) -> list[str]:
        names: list[str] = []
        for inst in self.instances:
            for name in inst.avg_delays:
                if name not in names:
                    names.append(name)
        return names

    def mean_std(self, trace: str, algorithm: str) -> tuple[float, float]:
        vals = [
            inst.avg_delays[algorithm]
            for inst in self.instances
            if inst.trace == trace and algorithm in inst.avg_delays
        ]
        if not vals:
            raise KeyError((trace, algorithm))
        arr = np.asarray(vals)
        return float(arr.mean()), float(arr.std())


def sample_window(
    trace: str, config: ExperimentConfig, rng: np.random.Generator
):
    """Steps 1-2 of the protocol: generate the long trace and pick the
    sub-trace window.  Split out so sweeps (e.g. Figure 10's organization-
    count sweep) can hold the window fixed while varying the assignment --
    common-random-numbers variance reduction."""
    long_horizon = config.duration * config.pool_factor
    records, spec = make_trace(
        trace, long_horizon, seed=rng, scale=config.scale_for(trace)
    )
    t_start = int(rng.integers(0, max(1, long_horizon - config.duration)))
    return records, spec, t_start


def assign_instance(
    records,
    spec,
    t_start: int,
    config: ExperimentConfig,
    rng: np.random.Generator,
) -> Workload:
    """Steps 3-4 of the protocol: user->org and machine->org assignment."""
    users = [r.user for r in records]
    user_map = assign_users_to_orgs(users, config.n_orgs, rng)
    machines = machine_split(
        spec.n_machines, config.n_orgs, config.machine_dist
    )
    full = build_workload(records, machines, user_map)
    return full.window(t_start, t_start + config.duration)


def sample_instance(
    trace: str, config: ExperimentConfig, rng: np.random.Generator
) -> Workload:
    """Steps 1-4 of the protocol: one concrete fair-scheduling instance."""
    records, spec, t_start = sample_window(trace, config, rng)
    return assign_instance(records, spec, t_start, config, rng)


def run_instance(
    workload: Workload,
    duration: int,
    algorithms: Sequence[Scheduler],
    reference: Scheduler | None = None,
) -> dict[str, float]:
    """Steps 5-6: every algorithm's Delta-psi / p_tot against REF."""
    ref = reference or build_scheduler("ref", horizon=duration)
    return evaluate_portfolio(workload, duration, algorithms, ref)["avg_delay"]


def run_experiment(
    config: ExperimentConfig,
    *,
    workers: int = 1,
    cache_dir: "str | None" = None,
    resume: bool = True,
) -> ExperimentResult:
    """The full protocol over every trace and repeat in ``config``.

    Thin consumer of :mod:`repro.experiments.pipeline`: the config maps to
    a ``synthetic``-family :class:`~repro.experiments.spec.ScenarioSpec`
    and runs through the shared engine — which is what provides the
    ``workers`` fan-out and the ``cache_dir`` resume checkpoint.  Seed
    derivation is unchanged (``crc32(f"{trace}/{rep}/{seed}")`` per
    instance), so results are bit-identical with the historical serial
    loop at any worker count.

    A custom ``config.algorithms`` factory is forwarded as a portfolio
    override (it must be picklable for ``workers > 1``; caching is
    disabled for overrides because callables have no content hash).
    """
    from .pipeline import run_pipeline
    from .spec import ScenarioSpec

    spec = ScenarioSpec(
        family="synthetic",
        traces=config.traces,
        n_orgs=config.n_orgs,
        duration=config.duration,
        n_repeats=config.n_repeats,
        scale=config.scale,
        machine_dist=config.machine_dist,
        seed=config.seed,
        pool_factor=config.pool_factor,
        portfolio="paper",
    )
    override = (
        None if config.algorithms is default_algorithms else config.algorithms
    )
    outcome = run_pipeline(
        spec,
        workers=workers,
        cache_dir=cache_dir,
        resume=resume,
        keep_instances=True,
        algorithms=override,
    )
    instances = tuple(
        InstanceResult(
            trace=r.trace,
            repeat=r.repeat,
            avg_delays=dict(r.metrics["avg_delay"]),
            n_jobs=r.n_jobs,
            n_machines=r.n_machines,
        )
        for r in outcome.instances
    )
    return ExperimentResult(config=config, instances=instances)
