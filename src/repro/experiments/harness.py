"""The Section 7.2 experimental protocol.

One *instance* of the paper's experiment:

1. generate (or load) a long trace;
2. pick a random sub-trace window ``[t_start, t_start + D)``;
3. distribute user identifiers uniformly among ``k`` organizations;
4. distribute the processors among organizations (Zipf or uniform counts);
5. run every algorithm plus the exact REF reference;
6. score each algorithm with :math:`\\Delta\\psi / p_{tot}` at ``t_end = D``.

Repeated ``n_repeats`` times with fresh seeds; Tables 1-2 report the mean
and standard deviation per (algorithm, trace).

**Scaling** -- the paper's full-size configuration (e.g. RICC: 8192
processors, horizon 5*10^5, 100 repetitions) needs hours of CPU.  The
``scale`` knob shrinks machines/users/job-lengths proportionally (see
:meth:`repro.workloads.traces.TraceProfile.spec`) while preserving load
factors and therefore the paper's qualitative comparisons; EXPERIMENTS.md
records both the paper's numbers and ours.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..algorithms import (
    CurrFairShareScheduler,
    DirectContributionScheduler,
    FairShareScheduler,
    RandScheduler,
    RefScheduler,
    RoundRobinScheduler,
    Scheduler,
    UtFairShareScheduler,
)
from ..core.workload import Workload
from ..sim.metrics import avg_delay
from ..workloads.traces import make_trace
from ..workloads.transforms import (
    assign_users_to_orgs,
    build_workload,
    uniform_machine_split,
    zipf_machine_split,
)

__all__ = [
    "ExperimentConfig",
    "InstanceResult",
    "ExperimentResult",
    "assign_instance",
    "default_algorithms",
    "run_experiment",
    "run_instance",
    "sample_instance",
    "sample_window",
]

#: Factory signature: given the horizon, build fresh scheduler objects.
AlgorithmFactory = Callable[[int, int], list[Scheduler]]


def default_algorithms(horizon: int, seed: int) -> list[Scheduler]:
    """The paper's Table 1/2 row set (Section 7.1)."""
    return [
        RoundRobinScheduler(horizon=horizon),
        RandScheduler(n_orderings=15, seed=seed, horizon=horizon),
        DirectContributionScheduler(seed=seed, horizon=horizon),
        FairShareScheduler(horizon=horizon),
        UtFairShareScheduler(horizon=horizon),
        CurrFairShareScheduler(horizon=horizon),
    ]


#: Default per-trace shrink factors chosen so a scaled instance keeps
#: 14-35 machines and a realistic queueing regime (see DESIGN.md §3).
DEFAULT_SCALES: dict[str, float] = {
    "LPC-EGEE": 0.2,
    "PIK-IPLEX": 0.012,
    "SHARCNET-Whale": 0.008,
    "RICC": 0.004,
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of one Tables-1/2-style experiment."""

    traces: tuple[str, ...] = ("LPC-EGEE",)
    n_orgs: int = 5
    duration: int = 5_000  #: the paper's D (5*10^4 / 5*10^5 full-size)
    n_repeats: int = 5  #: the paper uses 100
    scale: "float | None" = None  #: trace shrink; None = DEFAULT_SCALES
    machine_dist: str = "zipf"  #: "zipf" or "uniform" (the paper runs both)
    seed: int = 0
    pool_factor: int = 4  #: long-trace length = pool_factor * duration
    algorithms: AlgorithmFactory = field(default=default_algorithms)

    def __post_init__(self) -> None:
        if self.machine_dist not in ("zipf", "uniform"):
            raise ValueError("machine_dist must be 'zipf' or 'uniform'")
        if self.n_orgs < 1 or self.duration < 1 or self.n_repeats < 1:
            raise ValueError("n_orgs, duration, n_repeats must be >= 1")

    def scale_for(self, trace: str) -> float:
        """The shrink factor for ``trace`` (explicit, or the tuned default)."""
        if self.scale is not None:
            return self.scale
        return DEFAULT_SCALES.get(trace, 0.05)


@dataclass(frozen=True)
class InstanceResult:
    """Per-algorithm avg delay on one sampled window."""

    trace: str
    repeat: int
    avg_delays: dict[str, float]
    n_jobs: int
    n_machines: int


@dataclass(frozen=True)
class ExperimentResult:
    """Aggregated experiment outcome: (trace, algorithm) -> mean/std."""

    config: ExperimentConfig
    instances: tuple[InstanceResult, ...]

    def algorithms(self) -> list[str]:
        names: list[str] = []
        for inst in self.instances:
            for name in inst.avg_delays:
                if name not in names:
                    names.append(name)
        return names

    def mean_std(self, trace: str, algorithm: str) -> tuple[float, float]:
        vals = [
            inst.avg_delays[algorithm]
            for inst in self.instances
            if inst.trace == trace and algorithm in inst.avg_delays
        ]
        if not vals:
            raise KeyError((trace, algorithm))
        arr = np.asarray(vals)
        return float(arr.mean()), float(arr.std())


def sample_window(
    trace: str, config: ExperimentConfig, rng: np.random.Generator
):
    """Steps 1-2 of the protocol: generate the long trace and pick the
    sub-trace window.  Split out so sweeps (e.g. Figure 10's organization-
    count sweep) can hold the window fixed while varying the assignment --
    common-random-numbers variance reduction."""
    long_horizon = config.duration * config.pool_factor
    records, spec = make_trace(
        trace, long_horizon, seed=rng, scale=config.scale_for(trace)
    )
    t_start = int(rng.integers(0, max(1, long_horizon - config.duration)))
    return records, spec, t_start


def assign_instance(
    records,
    spec,
    t_start: int,
    config: ExperimentConfig,
    rng: np.random.Generator,
) -> Workload:
    """Steps 3-4 of the protocol: user->org and machine->org assignment."""
    users = [r.user for r in records]
    user_map = assign_users_to_orgs(users, config.n_orgs, rng)
    if config.machine_dist == "zipf":
        machines = zipf_machine_split(spec.n_machines, config.n_orgs)
    else:
        machines = uniform_machine_split(spec.n_machines, config.n_orgs)
    full = build_workload(records, machines, user_map)
    return full.window(t_start, t_start + config.duration)


def sample_instance(
    trace: str, config: ExperimentConfig, rng: np.random.Generator
) -> Workload:
    """Steps 1-4 of the protocol: one concrete fair-scheduling instance."""
    records, spec, t_start = sample_window(trace, config, rng)
    return assign_instance(records, spec, t_start, config, rng)


def run_instance(
    workload: Workload,
    duration: int,
    algorithms: Sequence[Scheduler],
    reference: Scheduler | None = None,
) -> dict[str, float]:
    """Steps 5-6: every algorithm's Delta-psi / p_tot against REF."""
    ref = reference or RefScheduler(horizon=duration)
    ref_result = ref.run(workload)
    out: dict[str, float] = {}
    for alg in algorithms:
        result = alg.run(workload)
        out[alg.name] = avg_delay(result, ref_result, duration)
    return out


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """The full protocol over every trace and repeat in ``config``."""
    instances: list[InstanceResult] = []
    for trace in config.traces:
        for rep in range(config.n_repeats):
            # zlib.crc32 (unlike hash()) is stable across processes, so
            # experiments are reproducible bit-for-bit
            rng = np.random.default_rng(
                zlib.crc32(f"{trace}/{rep}/{config.seed}".encode())
            )
            workload = sample_instance(trace, config, rng)
            algorithms = config.algorithms(
                config.duration, int(rng.integers(0, 2**31 - 1))
            )
            delays = run_instance(workload, config.duration, algorithms)
            instances.append(
                InstanceResult(
                    trace=trace,
                    repeat=rep,
                    avg_delays=delays,
                    n_jobs=len(workload.jobs),
                    n_machines=workload.n_machines,
                )
            )
    return ExperimentResult(config=config, instances=tuple(instances))
