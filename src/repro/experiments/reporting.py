"""Paper-style ASCII rendering of experiment results."""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

from .harness import ExperimentResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pipeline -> registry)
    from .pipeline import PipelineResult

__all__ = ["render_table", "render_series", "format_cell", "render_pipeline"]


def format_cell(mean: float, std: float) -> str:
    """Render one (mean, std) cell the way the paper's tables read."""

    def fmt(x: float) -> str:
        if x == 0:
            return "0"
        if x < 0.1:
            return f"{x:.3f}"
        if x < 10:
            return f"{x:.2f}"
        return f"{x:.0f}"

    return f"{fmt(mean)} ±{fmt(std)}"


def render_table(
    result: ExperimentResult, title: str = "avg delay (dpsi/p_tot)"
) -> str:
    """Render an :class:`ExperimentResult` as a Tables-1/2-style grid:
    rows = algorithms, column pairs = traces (avg, std)."""
    traces = list(result.config.traces)
    algorithms = result.algorithms()
    width = max([len(a) for a in algorithms] + [12])
    cwidth = max(max(len(t) for t in traces) + 2, 16)
    lines = [title]
    header = " " * width + "".join(t.rjust(cwidth) for t in traces)
    lines.append(header)
    for alg in algorithms:
        cells = []
        for trace in traces:
            mean, std = result.mean_std(trace, alg)
            cells.append(format_cell(mean, std).rjust(cwidth))
        lines.append(alg.ljust(width) + "".join(cells))
    return "\n".join(lines)


def _group_label(trace: str, variant) -> str:
    if not variant:
        return trace
    inner = ",".join(
        f"{name}={value:g}" if isinstance(value, float) else f"{name}={value}"
        for name, value in variant
    )
    return f"{trace}[{inner}]"


def render_pipeline(result: "PipelineResult", title: "str | None" = None) -> str:
    """Render a :class:`~repro.experiments.pipeline.PipelineResult` as one
    Tables-1/2-style grid per metric: rows = algorithms, columns = (trace,
    sweep-variant) groups, cells = ``mean ±std`` over repeats."""
    spec = result.spec
    heading = title or (
        f"scenario family={spec.family} "
        f"(hash {spec.content_hash()}, {result.computed} computed / "
        f"{result.cached} cached, {result.wall_time_s:.1f}s)"
    )
    groups = result.groups()
    algorithms = result.algorithms()
    labels = [_group_label(trace, variant) for trace, variant in groups]
    width = max([len(a) for a in algorithms] + [12])
    cwidth = max(max((len(c) for c in labels), default=0) + 2, 16)
    lines = [heading]
    for metric in spec.metrics:
        lines.append(metric)
        lines.append(" " * width + "".join(c.rjust(cwidth) for c in labels))
        for alg in algorithms:
            cells = []
            for group in groups:
                per_alg = result.aggregates[group].get(metric, {})
                if alg in per_alg:
                    _, mean, std = per_alg[alg]
                    cells.append(format_cell(mean, std).rjust(cwidth))
                else:
                    cells.append("-".rjust(cwidth))
            lines.append(alg.ljust(width) + "".join(cells))
    return "\n".join(lines)


def render_series(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    x_label: str,
    title: str,
) -> str:
    """Render a Figure-10-style family of curves as an aligned text table."""
    width = max([len(name) for name in series] + [len(x_label), 12])
    cwidth = 12
    lines = [title]
    lines.append(
        x_label.ljust(width) + "".join(f"{x:>{cwidth}g}" for x in xs)
    )
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length mismatch")
        lines.append(
            name.ljust(width) + "".join(f"{y:>{cwidth}.3f}" for y in ys)
        )
    return "\n".join(lines)
