"""The paper's figures: the worked examples (Figs. 2 and 7) and the
organization-count sweep (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.utilization import figure7_ratios, figure7_workload
from ..core.job import Job
from ..core.organization import Organization
from ..core.schedule import Schedule, ScheduledJob
from ..core.workload import Workload
from ..utility.classic import flow_time
from ..utility.strategyproof import psi_sp
from .pipeline import run_pipeline
from .spec import ScenarioSpec

__all__ = [
    "Figure2Numbers",
    "figure2_schedule",
    "figure2_numbers",
    "figure7_numbers",
    "figure10",
    "FIGURE10_PAPER_SHAPE",
]


# ----------------------------------------------------------------------
# Figure 2: the worked psi_sp example
# ----------------------------------------------------------------------
def figure2_workload() -> Workload:
    """Fig. 2's instance: nine jobs of O(1), one job of O(2), three
    machines (2 owned by O(1), 1 by O(2) -- ownership is irrelevant to the
    utilities), all released at time 0."""
    orgs = [Organization(0, 2), Organization(1, 1)]
    sizes_o1 = [3, 4, 3, 6, 3, 6, 3, 3, 4]  # J1..J9 of the figure
    jobs = [Job(0, 0, i, p) for i, p in enumerate(sizes_o1)]
    jobs.append(Job(0, 1, 0, 5))  # J^(2)_1
    return Workload(orgs, jobs)


def figure2_schedule() -> Schedule:
    """The exact Fig. 2 schedule (reconstructed to match every number in
    the caption; verified in tests):

    =========  ==========================================
    machine 0  J1 [0,3), J4 [3,9),  J8 [9,12)
    machine 1  J2 [0,4), J6 [4,10), J9 [10,14)
    machine 2  J3 [0,3), J5 [3,6),  J7 [6,9), J(2)1 [9,14)
    =========  ==========================================

    J7 and J8 both have size 3, so their label assignment is cosmetic; we
    order them so FIFO indices follow start order (required for schedule
    feasibility in the model).  Every caption quantity is unaffected.
    """
    wl = figure2_workload()
    by_label = {f"J{i+1}": j for i, j in enumerate(wl.jobs_of(0))}
    j2 = wl.jobs_of(1)[0]
    placements = [
        ("J1", 0, 0),
        ("J2", 0, 1),
        ("J3", 0, 2),
        ("J4", 3, 0),
        ("J5", 3, 2),
        ("J6", 4, 1),
        ("J7", 6, 2),
        ("J8", 9, 0),
        ("J9", 10, 1),
    ]
    entries = [
        ScheduledJob(start, machine, by_label[label])
        for label, start, machine in placements
    ]
    entries.append(ScheduledJob(9, 2, j2))
    return Schedule(entries)


@dataclass(frozen=True)
class Figure2Numbers:
    """Every quantity the Fig. 2 caption reports."""

    psi_o1_t13: int  #: 262 in the paper
    psi_o1_t14: int  #: 297
    flow_time_o1: int  #: 70
    gain_without_j2: int  #: +4 when J9 starts at 9 instead of 10
    loss_j6_late: int  #: -6 when J6 starts one unit later
    loss_drop_j9: int  #: -10 when J9 is not scheduled at all


def figure2_numbers() -> Figure2Numbers:
    """Recompute the Fig. 2 caption quantities from the schedule."""
    sched = figure2_schedule()
    pairs_o1 = sched.org_pairs(0)
    psi13 = psi_sp(pairs_o1, 13)
    psi14 = psi_sp(pairs_o1, 14)
    flow = flow_time(pairs_o1, [0] * len(pairs_o1), 14)

    def replace(pairs, old, new):
        out = list(pairs)
        out[out.index(old)] = new
        return out

    # without J^(2)_1, J9 starts at 9 instead of 10
    gain = psi_sp(replace(pairs_o1, (10, 4), (9, 4)), 14) - psi14
    # J6 (start 4, size 6) started one unit later
    loss_j6 = psi_sp(replace(pairs_o1, (4, 6), (5, 6)), 14) - psi14
    # J9 not scheduled at all
    dropped = [p for p in pairs_o1 if p != (10, 4)]
    loss_j9 = psi_sp(dropped, 14) - psi14
    return Figure2Numbers(
        psi_o1_t13=psi13,
        psi_o1_t14=psi14,
        flow_time_o1=flow,
        gain_without_j2=gain,
        loss_j6_late=loss_j6,
        loss_drop_j9=loss_j9,
    )


# ----------------------------------------------------------------------
# Figure 7: greedy utilization worked example
# ----------------------------------------------------------------------
def figure7_numbers() -> tuple[float, float]:
    """(best, worst) greedy utilization at T=6 on the Fig. 7 instance:
    (1.0, 0.75)."""
    return figure7_ratios()


# ----------------------------------------------------------------------
# Figure 10: unfairness vs number of organizations
# ----------------------------------------------------------------------
#: Qualitative shape of the paper's Fig. 10 (LPC-EGEE): unfairness grows
#: with the number of organizations for every algorithm, and the ordering
#: RoundRobin > CurrFairShare > FairShare > DirectContr > Rand holds.
FIGURE10_PAPER_SHAPE: tuple[str, ...] = (
    "RoundRobin",
    "CurrFairShare",
    "FairShare",
    "DirectContr",
    "Rand(N=15)",
)


def figure10(
    org_counts: tuple[int, ...] = (2, 3, 4, 5, 6),
    *,
    trace: str = "LPC-EGEE",
    duration: int = 4_000,
    n_repeats: int = 2,
    scale: "float | None" = None,
    seed: int = 0,
    workers: int = 1,
    cache_dir: "str | None" = None,
    resume: bool = True,
) -> tuple[list[int], dict[str, list[float]]]:
    """Regenerate Fig. 10: avg delay vs number of organizations.

    Thin consumer of the ``churn`` scenario family: an organization-count
    sweep with common-random-numbers windows (each repeat fixes one trace
    window and reuses it for every organization count, so the k-trend is
    not swamped by window-to-window load variance; the paper instead
    averages 100 windows per point).  ``workers``/``cache_dir`` forward to
    the pipeline for parallel and resumable sweeps.

    REF's cost is Theta(3^k) per event, so the default sweep stops at 6
    organizations; pass ``org_counts=(2,...,10)`` (and patience) for the
    paper's full range.

    Returns ``(xs, {algorithm: [avg delay per x]})``.
    """
    spec = ScenarioSpec(
        family="churn",
        traces=(trace,),
        duration=duration,
        n_repeats=n_repeats,
        scale=scale,
        seed=seed,
        org_counts=tuple(org_counts),
    )
    result = run_pipeline(
        spec, workers=workers, cache_dir=cache_dir, resume=resume
    )
    xs: list[int] = list(org_counts)
    series: dict[str, list[float]] = {}
    for alg in result.algorithms():
        series[alg] = [
            result.mean_std(
                trace, alg, variant=(("n_orgs", int(k)),)
            )[0]
            for k in org_counts
        ]
    return xs, series
