"""The policy registry: one first-class API for every fairness mechanism.

The paper contributes a *family* of mechanisms (REF, RAND, DIRECTCONTR,
plus the distributive baselines), and this repository runs them through
three consumer layers: the batch runners (:mod:`repro.sim.runner`), the
experiment pipeline (:mod:`repro.experiments`), and the online service
(:mod:`repro.service`).  Before this module each layer hand-rolled its
own name -> constructor table; now there is exactly one dispatch point:

* :class:`PolicySpec` — a frozen, content-hashed value object naming a
  policy and its typed parameters (serializable exactly like
  :class:`~repro.experiments.spec.ScenarioSpec`, parseable from CLI
  strings such as ``"rand:n_orderings=30"``);
* :class:`PolicyEntry` — a registry row: summary, paper section, typed
  parameter schema, **capabilities**, and factory hooks for both the
  batch :class:`~repro.algorithms.base.Scheduler` and the online
  :class:`~repro.service.service.OnlinePolicy` adapter;
* :class:`PolicyCapabilities` — what a consumer may ask of a policy:
  ``batch`` (frozen-workload runs), ``step`` (event-granular online
  stepping), ``dynamic_membership`` (orgs may join/leave a live
  service), ``max_orgs`` (active-organization cap, e.g. REF's
  2^k-engine recursion), ``needs_seed`` (consumes the run seed) and
  ``exact`` (exact vs sampled value oracle).  Consumers validate
  capabilities *at ingest* and raise typed errors
  (:class:`CapabilityError`) instead of failing deep inside a policy;
* :data:`POLICY_REGISTRY` + :func:`register_policy` — the global table,
  extended at import time by builtins and lazily by third-party
  packages through the ``repro.policies`` entry-point group
  (:func:`discover_policies`), so new mechanisms (e.g. federated-cloud
  variants per Pacholczyk & Rzadca 2018) plug in without editing this
  package.

Resolution helpers: :func:`get_policy` (name -> entry),
:func:`resolve_policy` (str | PolicySpec -> normalized PolicySpec),
:func:`build_scheduler` (spec -> batch scheduler) and
:func:`build_online_policy` (spec + service -> online adapter).  The
blessed import surface is re-exported by :mod:`repro.api`; see
DESIGN.md §7 for the capability model.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass, field
from importlib.metadata import entry_points
from typing import TYPE_CHECKING, Callable, Mapping

from .algorithms import (
    CurrFairShareScheduler,
    DirectContributionScheduler,
    FairShareScheduler,
    GeneralRefScheduler,
    GreedyFifoScheduler,
    RandScheduler,
    RefScheduler,
    RoundRobinScheduler,
    Scheduler,
    UtFairShareScheduler,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (service -> here)
    from .service.service import ClusterService, OnlinePolicy

__all__ = [
    "CapabilityError",
    "ENTRY_POINT_GROUP",
    "POLICY_REGISTRY",
    "ParamSpec",
    "PolicyCapabilities",
    "PolicyEntry",
    "PolicyParamError",
    "PolicySpec",
    "REF_MAX_ORGS",
    "UnknownPolicyError",
    "build_online_policy",
    "build_scheduler",
    "discover_policies",
    "get_policy",
    "list_policies",
    "policy_names",
    "register_policy",
    "resolve_policy",
]

#: Entry-point group third-party packages register policies under::
#:
#:     [project.entry-points."repro.policies"]
#:     mypolicy = "mypkg.policies:register"
#:
#: The target may be a :class:`PolicyEntry` or a zero-argument callable
#: returning one (or ``None`` after calling :func:`register_policy`
#: itself).
ENTRY_POINT_GROUP = "repro.policies"

#: REF (online) keeps one engine per nonempty subcoalition (2^k - 1);
#: past this many *active* members a join is refused rather than letting
#: the recursion explode silently.  Canonical home of the cap the
#: ``ref`` registry entry declares as ``max_orgs``.
REF_MAX_ORGS = 10


# ----------------------------------------------------------------------
# typed errors
# ----------------------------------------------------------------------
class UnknownPolicyError(KeyError):
    """No registered policy has this name (subclasses ``KeyError`` so
    legacy ``except KeyError`` call sites keep working)."""

    def __init__(self, name: str, available: "list[str]"):
        super().__init__(
            f"unknown policy {name!r}; available: {sorted(available)}"
        )
        self.name = name
        self.available = sorted(available)

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return self.args[0]


class PolicyParamError(ValueError):
    """A :class:`PolicySpec` carries a parameter the policy does not
    declare, or a value of the wrong type."""


class CapabilityError(ValueError):
    """A consumer asked a policy for a capability it does not declare
    (e.g. online stepping from a batch-only policy, or an org count
    beyond ``max_orgs``)."""


# ----------------------------------------------------------------------
# the spec
# ----------------------------------------------------------------------
ParamValue = "int | float | str | bool"


def _parse_value(text: str) -> "int | float | str | bool":
    """CLI value parsing: int, then float, then bool literals, else str."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


@dataclass(frozen=True)
class PolicySpec:
    """A policy identity: name + typed parameters (frozen value object).

    Like :class:`~repro.experiments.spec.ScenarioSpec` it is plain data:
    content-hashable (:meth:`content_hash`), JSON-serializable
    (:meth:`to_json` / :meth:`from_json`), picklable, and usable as a
    dict key.  ``params`` is a sorted tuple of ``(name, value)`` pairs;
    construct via keyword arguments with :meth:`make` or from a CLI
    string with :meth:`parse`::

        PolicySpec.make("rand", n_orderings=30)
        PolicySpec.parse("rand:n_orderings=30")

    Validation against the policy's declared parameter schema happens at
    resolution time (:meth:`PolicyEntry.resolve_params`), not at
    construction: a spec may name a policy registered later.
    """

    name: str
    params: tuple[tuple[str, ParamValue], ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("policy name must be a non-empty string")
        pairs = (
            tuple(self.params.items())
            if isinstance(self.params, Mapping)
            else tuple(tuple(p) for p in self.params)
        )
        names = [k for k, _ in pairs]
        if len(names) != len(set(names)):
            raise PolicyParamError(
                f"policy {self.name!r}: duplicate parameters in {names}"
            )
        object.__setattr__(self, "params", tuple(sorted(pairs)))

    @classmethod
    def make(cls, name: str, **params: ParamValue) -> "PolicySpec":
        """Keyword-argument constructor: ``PolicySpec.make("rand", n_orderings=30)``."""
        return cls(name, tuple(params.items()))

    @classmethod
    def parse(cls, text: "str | PolicySpec") -> "PolicySpec":
        """Parse ``"name"`` or ``"name:k=v,k=v"`` (the CLI ``--policy`` syntax)."""
        if isinstance(text, PolicySpec):
            return text
        name, _, rest = text.partition(":")
        params: list[tuple[str, ParamValue]] = []
        if rest:
            for chunk in rest.split(","):
                key, sep, value = chunk.partition("=")
                if not sep or not key:
                    raise PolicyParamError(
                        f"bad policy parameter {chunk!r} in {text!r} "
                        f"(expected NAME:key=value[,key=value...])"
                    )
                params.append((key.strip(), _parse_value(value.strip())))
        return cls(name.strip(), tuple(params))

    def with_params(self, **params: ParamValue) -> "PolicySpec":
        """A copy with ``params`` merged over the existing pairs."""
        merged = dict(self.params)
        merged.update(params)
        return PolicySpec(self.name, tuple(merged.items()))

    def param(self, name: str, default=None):
        """One parameter's value (``default`` when absent)."""
        for k, v in self.params:
            if k == name:
                return v
        return default

    def as_dict(self) -> dict:
        """The parameters as a plain dict."""
        return dict(self.params)

    # -- identity / serialization --------------------------------------
    def to_json(self) -> dict:
        """Canonical JSON form (inverse of :meth:`from_json`)."""
        return {"name": self.name, "params": [list(p) for p in self.params]}

    @classmethod
    def from_json(cls, d: "dict | str") -> "PolicySpec":
        """Rebuild from :meth:`to_json` output (a bare string is a name)."""
        if isinstance(d, str):
            return cls.parse(d)
        return cls(d["name"], tuple((k, v) for k, v in d.get("params", ())))

    def content_hash(self) -> str:
        """Stable hex digest of name + params (16 hex chars), computed
        the same way :meth:`ScenarioSpec.content_hash` is."""
        payload = json.dumps(
            self.to_json(), sort_keys=True, separators=(",", ":"), default=str
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def __str__(self) -> str:
        if not self.params:
            return self.name
        rest = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.name}:{rest}"


# ----------------------------------------------------------------------
# capabilities and registry rows
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PolicyCapabilities:
    """What consumers may ask of a policy (validated at ingest).

    ``exact`` distinguishes exact value oracles (REF's full recursion,
    DIRECTCONTR's ledger) from sampled ones (RAND's prefix estimates);
    ``max_orgs`` caps *active* organizations (``None``: unbounded) —
    the online service refuses a join beyond it with a typed
    :class:`CapabilityError` instead of a deep assertion.
    """

    batch: bool = True
    step: bool = True
    dynamic_membership: bool = True
    max_orgs: "int | None" = None
    needs_seed: bool = False
    exact: bool = True

    def summary(self) -> str:
        """Compact rendering for tables (``repro policies``)."""
        flags = [
            name
            for name, on in (
                ("batch", self.batch),
                ("step", self.step),
                ("dynamic", self.dynamic_membership),
                ("seeded", self.needs_seed),
            )
            if on
        ]
        flags.append("exact" if self.exact else "sampled")
        if self.max_orgs is not None:
            flags.append(f"max_orgs={self.max_orgs}")
        return ",".join(flags)


@dataclass(frozen=True)
class ParamSpec:
    """One declared policy parameter: name, type, default, one-line doc."""

    name: str
    type: type
    default: ParamValue
    doc: str = ""

    def coerce(self, value, policy: str):
        """Validate/convert one supplied value (typed error on mismatch)."""
        if isinstance(value, self.type) and not (
            self.type is int and isinstance(value, bool)
        ):
            return value
        if self.type is float and isinstance(value, int):
            return float(value)
        if self.type is int and isinstance(value, float) and value.is_integer():
            return int(value)
        raise PolicyParamError(
            f"policy {policy!r}: parameter {self.name!r} expects "
            f"{self.type.__name__}, got {value!r}"
        )


#: Batch factory hook: ``(params, seed, horizon) -> Scheduler`` where
#: ``params`` is the fully-defaulted parameter dict.
BatchFactory = Callable[[dict, int, "int | None"], Scheduler]

#: Online factory hook: ``(service, params) -> OnlinePolicy``.
OnlineFactory = Callable[["ClusterService", dict], "OnlinePolicy"]


@dataclass(frozen=True)
class PolicyEntry:
    """One registry row: identity, docs, capabilities, factory hooks."""

    name: str
    summary: str
    capabilities: PolicyCapabilities = field(default_factory=PolicyCapabilities)
    batch_factory: "BatchFactory | None" = None
    online_factory: "OnlineFactory | None" = None
    params: tuple[ParamSpec, ...] = ()
    paper_section: str = ""

    def __post_init__(self) -> None:
        if self.capabilities.batch and self.batch_factory is None:
            raise ValueError(
                f"policy {self.name!r} declares the batch capability but "
                f"has no batch_factory"
            )
        if self.capabilities.step and self.online_factory is None:
            raise ValueError(
                f"policy {self.name!r} declares the step capability but "
                f"has no online_factory"
            )

    # -- params --------------------------------------------------------
    def resolve_params(self, spec: "PolicySpec | None" = None) -> dict:
        """The fully-defaulted parameter dict for ``spec`` (typed errors
        on unknown names / wrong types)."""
        declared = {p.name: p for p in self.params}
        out = {p.name: p.default for p in self.params}
        for key, value in (spec.params if spec is not None else ()):
            if key not in declared:
                raise PolicyParamError(
                    f"policy {self.name!r} has no parameter {key!r}; "
                    f"declared: {sorted(declared) or 'none'}"
                )
            out[key] = declared[key].coerce(value, self.name)
        return out

    def spec(self, **params: ParamValue) -> PolicySpec:
        """A validated :class:`PolicySpec` for this entry."""
        s = PolicySpec.make(self.name, **params)
        self.resolve_params(s)
        return s

    # -- factories -----------------------------------------------------
    def build(
        self,
        spec: "PolicySpec | None" = None,
        *,
        seed: int = 0,
        horizon: "int | None" = None,
    ) -> Scheduler:
        """Construct the batch scheduler (requires the ``batch`` capability)."""
        if not self.capabilities.batch or self.batch_factory is None:
            raise CapabilityError(
                f"policy {self.name!r} has no batch capability"
            )
        return self.batch_factory(self.resolve_params(spec), seed, horizon)

    def build_online(
        self, service: "ClusterService", spec: "PolicySpec | None" = None
    ) -> "OnlinePolicy":
        """Construct the online adapter (requires the ``step`` capability)."""
        if not self.capabilities.step or self.online_factory is None:
            raise CapabilityError(
                f"policy {self.name!r} has no step capability: it cannot "
                f"drive the online service (batch-only)"
            )
        return self.online_factory(service, self.resolve_params(spec))


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
#: The global policy table.  Mutate only through :func:`register_policy`.
POLICY_REGISTRY: dict[str, PolicyEntry] = {}

_discovered = False


def register_policy(entry: PolicyEntry, *, overwrite: bool = False) -> PolicyEntry:
    """Add one policy to :data:`POLICY_REGISTRY` (error on collisions
    unless ``overwrite``); returns the entry for chaining."""
    if entry.name in POLICY_REGISTRY and not overwrite:
        raise ValueError(f"policy {entry.name!r} already registered")
    POLICY_REGISTRY[entry.name] = entry
    return entry


def discover_policies(*, force: bool = False) -> list[str]:
    """Load third-party policies from the ``repro.policies`` entry-point
    group (idempotent; ``force`` re-scans).  Returns newly added names.

    A broken entry point is reported as a :class:`RuntimeWarning`, never
    an import failure: one bad plugin must not take down the registry.
    """
    global _discovered
    if _discovered and not force:
        return []
    _discovered = True
    added: list[str] = []
    try:
        eps = tuple(entry_points(group=ENTRY_POINT_GROUP))
    except Exception:  # pragma: no cover - metadata backend quirks
        return added
    for ep in eps:
        try:
            obj = ep.load()
            if callable(obj) and not isinstance(obj, PolicyEntry):
                obj = obj()
            if isinstance(obj, PolicyEntry):
                if obj.name in POLICY_REGISTRY:
                    warnings.warn(
                        f"repro policy entry point {ep.name!r} skipped: "
                        f"policy {obj.name!r} is already registered",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                else:
                    register_policy(obj)
                    added.append(obj.name)
        except Exception as exc:
            warnings.warn(
                f"repro policy entry point {ep.name!r} failed to load: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
    return added


def get_policy(name: str) -> PolicyEntry:
    """The registry row for ``name`` (typed error listing alternatives)."""
    discover_policies()
    try:
        return POLICY_REGISTRY[name]
    except KeyError:
        raise UnknownPolicyError(name, list(POLICY_REGISTRY)) from None


def list_policies() -> list[PolicyEntry]:
    """Every registered policy, in registration order (builtins first)."""
    discover_policies()
    return list(POLICY_REGISTRY.values())


def policy_names(capability: "str | None" = None) -> list[str]:
    """Registered names, optionally filtered by a truthy capability
    field (``"step"``, ``"batch"``, ``"dynamic_membership"``, ...)."""
    return [
        e.name
        for e in list_policies()
        if capability is None or getattr(e.capabilities, capability)
    ]


def resolve_policy(policy: "str | PolicySpec") -> PolicySpec:
    """Normalize a name / CLI string / spec to a validated
    :class:`PolicySpec` (the policy must be registered)."""
    spec = PolicySpec.parse(policy)
    get_policy(spec.name).resolve_params(spec)
    return spec


def build_scheduler(
    policy: "str | PolicySpec",
    *,
    seed: int = 0,
    horizon: "int | None" = None,
) -> Scheduler:
    """One-call batch construction: resolve ``policy`` through the
    registry and build its :class:`~repro.algorithms.base.Scheduler`."""
    spec = PolicySpec.parse(policy)
    return get_policy(spec.name).build(spec, seed=seed, horizon=horizon)


def build_online_policy(
    service: "ClusterService", policy: "str | PolicySpec"
) -> "OnlinePolicy":
    """One-call online construction: resolve ``policy`` and build its
    :class:`~repro.service.service.OnlinePolicy` adapter for ``service``."""
    spec = PolicySpec.parse(policy)
    return get_policy(spec.name).build_online(service, spec)


# ----------------------------------------------------------------------
# builtin policies
# ----------------------------------------------------------------------
def _ref_online(service: "ClusterService", params: dict) -> "OnlinePolicy":
    from .service.service import _RefPolicy

    return _RefPolicy(service)


def _rand_online(service: "ClusterService", params: dict) -> "OnlinePolicy":
    from .service.service import _RandPolicy

    return _RandPolicy(
        service,
        int(params["n_orderings"]),
        epsilon=float(params["epsilon"]),
        delta=float(params["delta"]),
        n_samples=int(params["n_samples"]),
    )


def _stratified_online(
    service: "ClusterService", params: dict
) -> "OnlinePolicy":
    from .service.service import _RandPolicy

    sampler = (
        "stratified_antithetic" if params["antithetic"] else "stratified"
    )
    return _RandPolicy(
        service,
        int(params["n_orderings"]),
        epsilon=float(params["epsilon"]),
        delta=float(params["delta"]),
        n_samples=int(params["n_samples"]),
        sampler=sampler,
        name="RefStrat(online)",
    )


def _adaptive_online(
    service: "ClusterService", params: dict
) -> "OnlinePolicy":
    from .approx.online import _AdaptivePolicy

    return _AdaptivePolicy(
        service,
        epsilon=float(params["epsilon"]),
        delta=float(params["delta"]),
        n_min=int(params["n_min"]),
        n_max=int(params["n_max"]),
        sampler=str(params["sampler"]),
    )


def _single_online(batch_factory: BatchFactory) -> OnlineFactory:
    """Online adapter for any :class:`~repro.algorithms.base.
    PolicyScheduler`-style policy: wrap the *same* batch factory in a
    :class:`~repro.service.service._SingleEnginePolicy`, so the batch
    and online paths cannot drift."""

    def make(service: "ClusterService", params: dict) -> "OnlinePolicy":
        from .service.service import _SingleEnginePolicy

        return _SingleEnginePolicy(
            service, batch_factory(params, service.seed, service.horizon)
        )

    return make


def _register_builtin(
    name: str,
    summary: str,
    batch_factory: BatchFactory,
    *,
    paper_section: str,
    capabilities: "PolicyCapabilities | None" = None,
    params: tuple[ParamSpec, ...] = (),
    online_factory: "OnlineFactory | str" = "single",
) -> None:
    caps = capabilities or PolicyCapabilities()
    factory: "OnlineFactory | None"
    if not caps.step:
        factory = None
    elif online_factory == "single":
        factory = _single_online(batch_factory)
    else:
        factory = online_factory  # type: ignore[assignment]
    register_policy(
        PolicyEntry(
            name=name,
            summary=summary,
            capabilities=caps,
            batch_factory=batch_factory,
            online_factory=factory,
            params=params,
            paper_section=paper_section,
        )
    )


_register_builtin(
    "ref",
    "exact exponential Shapley-fair benchmark (REF)",
    lambda params, seed, horizon: RefScheduler(horizon=horizon),
    paper_section="§3, Figs. 1/3",
    capabilities=PolicyCapabilities(max_orgs=REF_MAX_ORGS),
    online_factory=_ref_online,
)
_register_builtin(
    "ref-general",
    "REF for arbitrary anonymous utility functions (batch only)",
    lambda params, seed, horizon: GeneralRefScheduler(horizon=horizon),
    paper_section="§4, Fig. 1",
    capabilities=PolicyCapabilities(
        step=False, dynamic_membership=False, max_orgs=REF_MAX_ORGS
    ),
)
#: Budget knobs shared by the sampled policies (``rand`` and the
#: approximation ladder): explicit ``n_samples`` beats the Theorem 5.6
#: ``epsilon``/``delta`` Hoeffding choice beats fixed ``n_orderings``.
_BUDGET_PARAMS = (
    ParamSpec("n_orderings", int, 15, "sampled joining orders per estimate"),
    ParamSpec(
        "epsilon", float, 0.0,
        "Theorem 5.6 accuracy target (0: use n_orderings)",
    ),
    ParamSpec(
        "delta", float, 0.05, "failure probability for the epsilon budget"
    ),
    ParamSpec(
        "n_samples", int, 0, "explicit budget override (beats epsilon)"
    ),
)


def _build_stratified(params: dict, seed: int, horizon: "int | None"):
    from .approx import StratifiedScheduler

    return StratifiedScheduler(
        n_orderings=int(params["n_orderings"]),
        seed=seed,
        horizon=horizon,
        epsilon=float(params["epsilon"]),
        delta=float(params["delta"]),
        n_samples=int(params["n_samples"]),
        antithetic=bool(params["antithetic"]),
    )


def _build_adaptive(params: dict, seed: int, horizon: "int | None"):
    from .approx import AdaptiveScheduler

    return AdaptiveScheduler(
        seed=seed,
        horizon=horizon,
        epsilon=float(params["epsilon"]),
        delta=float(params["delta"]),
        n_min=int(params["n_min"]),
        n_max=int(params["n_max"]),
        sampler=str(params["sampler"]),
    )


def _build_hier(params: dict, seed: int, horizon: "int | None"):
    from .approx import HierScheduler

    return HierScheduler(
        block_size=int(params["block_size"]),
        n_orderings=int(params["n_orderings"]),
        seed=seed,
        horizon=horizon,
        max_exact_blocks=int(params["max_exact_blocks"]),
    )


_register_builtin(
    "rand",
    "randomized sampled-coalition fair scheduler (FPRAS for unit jobs)",
    lambda params, seed, horizon: RandScheduler(
        n_orderings=int(params["n_orderings"]),
        seed=seed,
        horizon=horizon,
        epsilon=float(params["epsilon"]),
        delta=float(params["delta"]),
        n_samples=int(params["n_samples"]),
    ),
    paper_section="§5.2, Fig. 6",
    capabilities=PolicyCapabilities(needs_seed=True, exact=False),
    params=_BUDGET_PARAMS,
    online_factory=_rand_online,
)
_register_builtin(
    "ref_stratified",
    "RAND on variance-reduced (stratified/antithetic) joining orders",
    _build_stratified,
    paper_section="§5.2 + DESIGN.md §12",
    capabilities=PolicyCapabilities(needs_seed=True, exact=False),
    params=_BUDGET_PARAMS
    + (
        ParamSpec(
            "antithetic", bool, True,
            "pair every stratified rotation with its reverse",
        ),
    ),
    online_factory=_stratified_online,
)
_register_builtin(
    "ref_adaptive",
    "certified adaptive-N sampled Shapley (per-decision certificates)",
    _build_adaptive,
    paper_section="§5.2, Thm. 5.6 + DESIGN.md §12",
    capabilities=PolicyCapabilities(needs_seed=True, exact=False),
    params=(
        ParamSpec(
            "epsilon", float, 0.1,
            "accuracy target for the auto (n_max=0) budget",
        ),
        ParamSpec(
            "delta", float, 0.05,
            "per-decision certificate failure probability",
        ),
        ParamSpec("n_min", int, 8, "first escalation wave size"),
        ParamSpec(
            "n_max", int, 1024,
            "escalation budget cap (0: Theorem 5.6 worst case)",
        ),
        ParamSpec(
            "sampler", str, "antithetic",
            "ordering sampler (see ORDERING_SAMPLERS)",
        ),
    ),
    online_factory=_adaptive_online,
)
_register_builtin(
    "ref_hier",
    "hierarchical block-decomposed Shapley (exact within <=10-org blocks)",
    _build_hier,
    paper_section="§3 + DESIGN.md §12",
    capabilities=PolicyCapabilities(
        step=False, dynamic_membership=False, needs_seed=True, exact=False
    ),
    params=(
        ParamSpec(
            "block_size", int, 10, "organizations per exact block (<= 10)"
        ),
        ParamSpec(
            "n_orderings", int, 15,
            "sampled block-joining orders past max_exact_blocks",
        ),
        ParamSpec(
            "max_exact_blocks", int, 10,
            "block count up to which the across game is exact",
        ),
    ),
)
_register_builtin(
    "directcontr",
    "direct-contribution heuristic (the paper's practical mechanism)",
    lambda params, seed, horizon: DirectContributionScheduler(
        seed=seed, mode=str(params["mode"]), horizon=horizon
    ),
    paper_section="§6, Fig. 9",
    capabilities=PolicyCapabilities(needs_seed=True),
    params=(
        ParamSpec(
            "mode", str, "exact",
            "'exact' (intent of Fig. 9) or 'faithful' (literal pseudo-code)",
        ),
    ),
)
_register_builtin(
    "fifo",
    "greedy FIFO control (no fairness objective)",
    lambda params, seed, horizon: GreedyFifoScheduler(horizon=horizon),
    paper_section="§6, Thm. 6.2",
)
_register_builtin(
    "roundrobin",
    "cycle through organizations (distributive control)",
    lambda params, seed, horizon: RoundRobinScheduler(horizon=horizon),
    paper_section="§7.1",
)
_register_builtin(
    "fairshare",
    "machine-endowment proportional share (distributive baseline)",
    lambda params, seed, horizon: FairShareScheduler(horizon=horizon),
    paper_section="§7.1",
)
_register_builtin(
    "utfairshare",
    "utilization-weighted fair share (distributive baseline)",
    lambda params, seed, horizon: UtFairShareScheduler(horizon=horizon),
    paper_section="§7.1",
)
_register_builtin(
    "currfairshare",
    "current-usage fair share (distributive baseline)",
    lambda params, seed, horizon: CurrFairShareScheduler(horizon=horizon),
    paper_section="§7.1",
)
