"""RAND: the randomized sampled-coalition fair scheduler (paper Fig. 6).

RAND replaces REF's exhaustive subcoalition recursion with Monte-Carlo
sampling of joining orders: ``N`` random permutations of the organizations
are drawn up-front (``Prepare``); for each permutation and each organization
``u`` the pair of prefix coalitions ``(pred(u), pred(u) + {u})`` is recorded,
and ``u``'s contribution is estimated as the average value difference over
its ``N`` sampled pairs.  Scheduling then follows the same
``argmax(phi - psi)`` rule as REF (Fig. 3).

For **unit-size jobs** this is an FPRAS (Theorems 5.6-5.7): coalition values
are independent of the scheduling policy (Prop. 5.4), so tracking each
sampled coalition with *any* greedy schedule is exact, and with

``N = ceil(k^2 / eps^2 * ln(k / (1 - lambda)))``

samples the utility vector is, with probability ``lambda``, within
``eps * v*`` of the truly fair one in the Manhattan norm.  For general job
sizes the same machinery is the paper's strong heuristic (Tables 1-2 run it
with N = 15 and N = 75).

Implementation notes: the sampled prefix coalitions
(:class:`~repro.shapley.sampling.SampledPrefixes`, de-duplicated) live in a
:class:`~repro.core.fleet.CoalitionFleet` serving as a pure value oracle --
each engine runs its own greedy FIFO schedule, driven lazily to the grand
coalition's decision times, and values are read batched from the fleet's
vectorized ψ_sp ledger.  A second fleet-of-one carries the actual RAND
schedule through the shared decision loop.  Contribution estimates are
compared as exact integers scaled by ``N``
(``sum of sampled marginals - N * psi``).
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from ..core.fleet import CoalitionFleet
from ..core.workload import Workload
from ..shapley.sampling import (
    ORDERING_SAMPLERS,
    SampledPrefixes,
    hoeffding_samples,
    sample_member_orderings,
)
from .base import (
    Scheduler,
    SchedulerResult,
    drive_fleet,
    fill_capacity,
    members_mask,
)
from .greedy import fifo_select

__all__ = ["RandScheduler", "RandRun"]


class RandRun:
    """One RAND run's state plus its per-event body (paper Fig. 6).

    ``Prepare`` happens at construction: ``N`` joining orders are drawn
    from ``rng`` and the de-duplicated prefix coalitions become the value
    *oracle* fleet (each engine driven by its own greedy FIFO schedule).
    The actual RAND schedule lives on the *carrier* fleet's grand engine.

    Like :class:`~repro.algorithms.ref.RefRun`, construction runs nothing:
    the batch path calls :meth:`drive`, the online service calls
    :meth:`step` per decision time.  ``oracle_factory`` / ``fleet`` let the
    online service own the fleets: the factory receives the sampled masks
    (known only once the orderings are drawn) and must return a fleet
    containing exactly those coalitions, built from dynamic cluster state.
    """

    def __init__(
        self,
        workload: Workload,
        members_t: tuple[int, ...],
        grand_mask: int,
        n_orderings: int,
        rng: np.random.Generator,
        horizon: int | None,
        *,
        oracle_factory: "Callable[[list[int]], CoalitionFleet] | None" = None,
        fleet: CoalitionFleet | None = None,
        sampler: "str | Callable | None" = None,
    ) -> None:
        self.members_t = members_t
        self.grand_mask = grand_mask
        self.n_orderings = n_orderings
        member_arr = np.array(members_t, dtype=np.int64)
        # the default draw stays the historical one-permutation-per-row
        # stream (bit-compatible with every pinned transcript); named
        # samplers (see ORDERING_SAMPLERS) plug in variance-reduced draws
        draw = (
            ORDERING_SAMPLERS[sampler]
            if isinstance(sampler, str)
            else (sampler or sample_member_orderings)
        )
        orderings = draw(member_arr, n_orderings, rng)
        self.prefixes = SampledPrefixes(workload.n_orgs, orderings)
        self.sampled = sorted(m for m in self.prefixes.masks if m)
        self._sampled_t = tuple(self.sampled)
        self.oracle = (
            oracle_factory(self.sampled)
            if oracle_factory is not None
            else CoalitionFleet(
                workload, self.sampled, horizon=horizon, track_events=False
            )
        )
        self.fleet = (
            fleet
            if fleet is not None
            else CoalitionFleet(workload, (grand_mask,), horizon=horizon)
        )
        self.grand = self.fleet.engine(grand_mask)

    def drive(self) -> int:
        """Run the carrier's decision loop to exhaustion / the horizon."""
        return drive_fleet(self.fleet, self._on_event)

    def step(self, t: int) -> None:
        """Process one decision time (the online service's entry point)."""
        self._on_event(self.fleet, t)

    def _on_event(self, fleet: CoalitionFleet, t: int) -> None:
        fleet.advance_all(t)
        grand = self.grand
        if grand.free_count == 0 or not grand.has_waiting():
            # keep the oracle engines lazily behind; they are only
            # needed at decision times
            return
        # contribution estimate scaled by N (exact integers); with the
        # batched oracle the whole estimate is one int64 matrix-vector
        # product over the coalition value vector, guarded like every other
        # vectorized path (None -> exact big-int dict fallback)
        phi_scaled = None
        arr = self.oracle.values_array(t, select=fifo_select)
        if arr is not None and self.oracle.masks == self._sampled_t:
            max_abs = int(np.abs(arr).max()) if len(arr) else 0
            phi_scaled = self.prefixes.estimate_scaled_array(
                self._sampled_t, arr, max_abs
            )
        if phi_scaled is None:
            values = self.oracle.values_at(t, select=fifo_select)
            phi_scaled = self.prefixes.estimate_scaled(values)
        psis = grand.psis(t)
        keys = {
            u: phi_scaled[u] - self.n_orderings * psis[u]
            for u in self.members_t
        }
        fill_capacity(fleet, self.grand_mask, keys)


class RandScheduler(Scheduler):
    """Algorithm RAND (Fig. 6) with ``N`` sampled joining orders.

    Parameters
    ----------
    n_orderings:
        The paper's N; Tables 1-2 use 15 (and 75 in Section 7.1's setup).
    seed:
        Seed (or :class:`numpy.random.Generator`) for the permutation draws;
        runs are deterministic given a seed.
    horizon:
        Optional stop time.
    epsilon, delta:
        When ``epsilon > 0`` the budget is the Theorem 5.6 Hoeffding
        choice ``N = ceil(k^2/eps^2 * ln(k/delta))`` resolved at run time
        from the *actual* member count (``delta`` is the failure
        probability, the paper's ``1 - lambda``); ``n_orderings`` is then
        ignored.  No silent cap is applied -- small ``epsilon`` at large
        ``k`` asks for exactly what the theorem demands.
    n_samples:
        Explicit budget override; beats both ``epsilon`` and
        ``n_orderings`` when positive.
    sampler:
        Ordering sampler name (:data:`~repro.shapley.sampling.
        ORDERING_SAMPLERS`) or callable; ``None`` keeps the historical
        uniform draw stream.
    """

    name = "Rand"

    def __init__(
        self,
        n_orderings: int = 15,
        seed: "int | np.random.Generator | None" = 0,
        horizon: int | None = None,
        *,
        epsilon: float = 0.0,
        delta: float = 0.05,
        n_samples: int = 0,
        sampler: "str | Callable | None" = None,
        name: "str | None" = None,
    ):
        if n_orderings < 1:
            raise ValueError("need at least one sampled ordering")
        if epsilon < 0 or n_samples < 0:
            raise ValueError("epsilon and n_samples must be >= 0")
        if epsilon and not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        self.n_orderings = n_orderings
        self.horizon = horizon
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.n_samples = int(n_samples)
        self.sampler = sampler
        self._seed = seed
        if name is not None:
            self.name = name
        elif self.n_samples:
            self.name = f"Rand(N={self.n_samples})"
        elif self.epsilon:
            self.name = f"Rand(eps={self.epsilon:g},delta={self.delta:g})"
        else:
            self.name = f"Rand(N={n_orderings})"

    @classmethod
    def from_bounds(
        cls,
        k: int,
        epsilon: float,
        lam: float,
        seed: "int | np.random.Generator | None" = 0,
        horizon: int | None = None,
    ) -> "RandScheduler":
        """FPRAS constructor: choose N from the Theorem 5.6 Hoeffding bound."""
        return cls(hoeffding_samples(k, epsilon, lam), seed, horizon)

    def resolve_budget(self, k: int) -> int:
        """The actual N for a ``k``-member run: explicit ``n_samples``,
        else the Theorem 5.6 choice when ``epsilon`` is set, else the
        fixed ``n_orderings``."""
        if self.n_samples:
            return self.n_samples
        if self.epsilon:
            return hoeffding_samples(k, self.epsilon, 1.0 - self.delta)
        return self.n_orderings

    def run(
        self, workload: Workload, members: Iterable[int] | None = None
    ) -> SchedulerResult:
        """Build the sampled-contribution fair schedule for ``members``."""
        members_t, grand_mask = members_mask(workload, members)
        rng = (
            self._seed
            if isinstance(self._seed, np.random.Generator)
            else np.random.default_rng(self._seed)
        )
        n = self.resolve_budget(len(members_t))
        run = RandRun(
            workload,
            members_t,
            grand_mask,
            n,
            rng,
            self.horizon,
            sampler=self.sampler,
        )
        run.drive()
        return SchedulerResult(
            algorithm=self.name,
            workload=workload,
            members=members_t,
            schedule=run.grand.schedule(),
            horizon=self.horizon,
            meta={
                "n_orderings": n,
                "n_coalitions": len(run.sampled),
            },
        )
