"""RAND: the randomized sampled-coalition fair scheduler (paper Fig. 6).

RAND replaces REF's exhaustive subcoalition recursion with Monte-Carlo
sampling of joining orders: ``N`` random permutations of the organizations
are drawn up-front (``Prepare``); for each permutation and each organization
``u`` the pair of prefix coalitions ``(pred(u), pred(u) + {u})`` is recorded,
and ``u``'s contribution is estimated as the average value difference over
its ``N`` sampled pairs.  Scheduling then follows the same
``argmax(phi - psi)`` rule as REF (Fig. 3).

For **unit-size jobs** this is an FPRAS (Theorems 5.6-5.7): coalition values
are independent of the scheduling policy (Prop. 5.4), so tracking each
sampled coalition with *any* greedy schedule is exact, and with

``N = ceil(k^2 / eps^2 * ln(k / (1 - lambda)))``

samples the utility vector is, with probability ``lambda``, within
``eps * v*`` of the truly fair one in the Manhattan norm.  For general job
sizes the same machinery is the paper's strong heuristic (Tables 1-2 run it
with N = 15 and N = 75).

Implementation notes: sampled coalitions are de-duplicated; each gets one
:class:`~repro.core.engine.ClusterEngine` advanced lazily (its own greedy
FIFO schedule) to the grand coalition's decision times.  Contribution
estimates are compared as exact integers scaled by ``N``
(``sum of sampled marginals - N * psi``).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..core.coalition import iter_members
from ..core.engine import ClusterEngine
from ..core.events import EventQueue
from ..core.workload import Workload
from ..shapley.sampling import hoeffding_samples
from .base import Scheduler, SchedulerResult
from .greedy import fifo_select

__all__ = ["RandScheduler"]


class RandScheduler(Scheduler):
    """Algorithm RAND (Fig. 6) with ``N`` sampled joining orders.

    Parameters
    ----------
    n_orderings:
        The paper's N; Tables 1-2 use 15 (and 75 in Section 7.1's setup).
    seed:
        Seed (or :class:`numpy.random.Generator`) for the permutation draws;
        runs are deterministic given a seed.
    horizon:
        Optional stop time.
    """

    name = "Rand"

    def __init__(
        self,
        n_orderings: int = 15,
        seed: "int | np.random.Generator | None" = 0,
        horizon: int | None = None,
    ):
        if n_orderings < 1:
            raise ValueError("need at least one sampled ordering")
        self.n_orderings = n_orderings
        self.horizon = horizon
        self._seed = seed
        self.name = f"Rand(N={n_orderings})"

    @classmethod
    def from_bounds(
        cls,
        k: int,
        epsilon: float,
        lam: float,
        seed: "int | np.random.Generator | None" = 0,
        horizon: int | None = None,
    ) -> "RandScheduler":
        """FPRAS constructor: choose N from the Theorem 5.6 Hoeffding bound."""
        return cls(hoeffding_samples(k, epsilon, lam), seed, horizon)

    def run(
        self, workload: Workload, members: Iterable[int] | None = None
    ) -> SchedulerResult:
        """Build the sampled-contribution fair schedule for ``members``."""
        members_t = (
            tuple(sorted(set(members)))
            if members is not None
            else tuple(range(workload.n_orgs))
        )
        if not members_t:
            raise ValueError("RAND needs at least one organization")
        rng = (
            self._seed
            if isinstance(self._seed, np.random.Generator)
            else np.random.default_rng(self._seed)
        )
        member_arr = np.array(members_t, dtype=np.int64)

        # Prepare (Fig. 6): sample N orderings, collect prefix-coalition
        # pairs per organization, de-duplicate coalition masks.
        pairs: dict[int, list[tuple[int, int]]] = {u: [] for u in members_t}
        masks: set[int] = set()
        for _ in range(self.n_orderings):
            order = rng.permutation(member_arr)
            mask = 0
            for u in map(int, order):
                with_u = mask | (1 << u)
                pairs[u].append((mask, with_u))
                if mask:
                    masks.add(mask)
                masks.add(with_u)
                mask = with_u

        engines = {
            m: ClusterEngine(
                workload, list(iter_members(m)), horizon=self.horizon
            )
            for m in masks
        }
        grand = ClusterEngine(workload, members_t, horizon=self.horizon)

        events = EventQueue(
            j.release for j in workload.jobs if j.org in set(members_t)
        )
        while True:
            t = events.pop()
            if t is None or (self.horizon is not None and t >= self.horizon):
                break
            grand.advance_to(t)
            if grand.free_count == 0 or not grand.has_waiting():
                # keep sampled engines lazily behind; they are only needed
                # at decision times
                continue
            values = {0: 0}
            for m, eng in engines.items():
                eng.drive(fifo_select, until=t)
                if eng.t < t:
                    eng.advance_to(t)
                values[m] = eng.value(t)
            # contribution estimate scaled by N (exact integers)
            phi_scaled = {
                u: sum(values[w] - values[p] for p, w in pairs[u])
                for u in members_t
            }
            psis = grand.psis(t)
            keys = {
                u: phi_scaled[u] - self.n_orderings * psis[u]
                for u in members_t
            }
            while grand.free_count > 0 and grand.has_waiting():
                u = max(grand.waiting_orgs(), key=lambda w: (keys[w], -w))
                entry = grand.start_next(u)
                events.push(entry.end)

        return SchedulerResult(
            algorithm=self.name,
            workload=workload,
            members=members_t,
            schedule=grand.schedule(),
            horizon=self.horizon,
            meta={"n_orderings": self.n_orderings, "n_coalitions": len(masks)},
        )
