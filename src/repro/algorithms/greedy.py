"""Plain greedy FIFO: start the longest-waiting released job first.

The representative of "any greedy algorithm" used throughout the paper:

* Prop. 5.4 -- with unit-size jobs every greedy algorithm yields the same
  coalition value at every time, so RAND uses an arbitrary greedy policy for
  its sampled coalitions; this is that policy.
* Theorem 6.2 -- the 3/4 utilization bound holds for *every* greedy
  algorithm; tests exercise this one among others.
"""

from __future__ import annotations

from ..core.engine import ClusterEngine
from .base import PolicyScheduler

__all__ = ["GreedyFifoScheduler", "fifo_select"]


def fifo_select(engine: ClusterEngine) -> int:
    """Pick the organization whose head job was released earliest
    (ties: lowest organization id) -- a deterministic global FIFO."""
    return min(
        engine.waiting_orgs(), key=lambda u: (engine.head_release(u), u)
    )


#: Marks the selector as natively understood by the batched
#: :class:`~repro.core.kernel.FleetKernel`: a fleet driven with it advances
#: every coalition in one vectorized lockstep sweep instead of per-engine
#: Python loops (bit-identical schedules; see DESIGN.md §8).
fifo_select.kernel_policy = "fifo"


class GreedyFifoScheduler(PolicyScheduler):
    """Global first-come-first-served over all organizations."""

    name = "GreedyFIFO"

    def select(self, engine: ClusterEngine) -> int:
        return fifo_select(engine)
