"""DIRECTCONTR: the direct-contribution heuristic (paper Fig. 9).

The practical polynomial-time algorithm: instead of Shapley sums over
subcoalitions, an organization's contribution is estimated *directly* as the
utility produced on its own machines -- the CPU-time units its processors
execute (for anyone's jobs), weighted exactly like ψ_sp weights job units.
The scheduler then mirrors REF's rule: the waiting organization with the
largest (contribution − utility) difference starts its FIFO-head job, on a
machine chosen in random order (so ownership attribution is unbiased).

Two accounting modes:

* ``mode="exact"`` (default) -- contributions and utilities are the exact
  ψ_sp aggregates maintained by the engine (by machine owner / job owner
  respectively).  This is the evident intent of Fig. 9.
* ``mode="faithful"`` -- a literal transcription of the Fig. 9 pseudo-code,
  including its two quirks (documented in DESIGN.md §5): the swapped
  ``phi[own(J)] / psi[own(m)]`` updates in the running-job loop, and the
  double-count of a started job's first unit (counted at start *and* in the
  next event's elapsed term).  One necessary repair is applied: jobs that
  *completed* between two events are accounted like running ones (the
  pseudo-code's ``not FreeMachine`` guard would silently drop their last
  chunk of work, which cannot be intended -- completed work would otherwise
  never enter the counters).

Tables 1-2 of the paper (and our benchmarks) show DIRECTCONTR beats the fair
share family on Shapley-fairness while staying equally cheap.

Like every policy scheduler, DIRECTCONTR runs on a
:class:`~repro.core.fleet.CoalitionFleet` of one coalition (see
:class:`~repro.algorithms.base.PolicyScheduler`); its random explicit
machine choice is O(1) thanks to the engine's lazy-deletion free set
(DESIGN.md §2.2).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..core.engine import ClusterEngine
from ..core.workload import Workload
from .base import PolicyScheduler, SchedulerResult

__all__ = ["DirectContributionScheduler"]


class DirectContributionScheduler(PolicyScheduler):
    """Algorithm DIRECTCONTR (Fig. 9).

    Parameters
    ----------
    seed:
        Seed (or generator) for the random machine iteration order.
    mode:
        ``"exact"`` or ``"faithful"`` (see module docstring).
    horizon:
        Optional stop time.
    """

    name = "DirectContr"

    def __init__(
        self,
        seed: "int | np.random.Generator | None" = 0,
        mode: str = "exact",
        horizon: int | None = None,
    ):
        super().__init__(horizon)
        if mode not in ("exact", "faithful"):
            raise ValueError("mode must be 'exact' or 'faithful'")
        self.mode = mode
        self._seed = seed
        self._rng: np.random.Generator = np.random.default_rng(0)
        # faithful-mode counters (paper Fig. 9 notation)
        self._fin_ut: list[int] = []
        self._fin_con: list[int] = []
        self._phi: list[int] = []
        self._psi: list[int] = []
        self._tprev: int = 0
        self._completed_seen: int = 0

    def on_run_start(self, engine: ClusterEngine) -> None:
        self._rng = (
            self._seed
            if isinstance(self._seed, np.random.Generator)
            else np.random.default_rng(self._seed)
        )
        k = engine.n_orgs
        self._fin_ut = [0] * k
        self._fin_con = [0] * k
        self._phi = [0] * k
        self._psi = [0] * k
        self._tprev = 0
        self._completed_seen = 0

    def on_cluster_change(self, engine: ClusterEngine) -> None:
        # online org admission can grow the org-id range; the faithful-mode
        # counters must cover it (newcomers start at zero, history kept)
        grow = engine.n_orgs - len(self._phi)
        if grow > 0:
            for counters in (self._fin_ut, self._fin_con, self._phi, self._psi):
                counters.extend([0] * grow)

    # the select() hook is unused: scheduling is machine-driven
    def select(self, engine: ClusterEngine) -> int:  # pragma: no cover
        raise RuntimeError("DirectContr schedules per machine")

    def schedule_event(self, engine: ClusterEngine) -> None:
        t = engine.t
        if self.mode == "faithful":
            self._accumulate_faithful(engine, t)
            keys = [
                self._phi[u] - self._psi[u] for u in range(engine.n_orgs)
            ]
        else:
            phi = engine.psis_by_machine_owner(t)
            psi = engine.psis(t)
            keys = [phi[u] - psi[u] for u in range(engine.n_orgs)]

        machines = engine.free_machines()
        self._rng.shuffle(machines)
        for machine in machines:
            if not engine.has_waiting():
                break
            u = max(engine.waiting_orgs(), key=lambda w: (keys[w], -w))
            engine.start_next(u, machine=machine)
            if self.mode == "faithful":
                # Fig. 9: startJob is followed by finUt[org] += 1 and
                # finCon[own(m)] += 1 (the first unit counted at start)
                self._fin_ut[u] += 1
                self._fin_con[engine.machine_owner[machine]] += 1

    def _accumulate_faithful(self, engine: ClusterEngine, t: int) -> None:
        """Literal Fig. 9 ``Schedule(tprev, t)`` accounting."""
        dt = t - self._tprev
        if dt > 0:
            for u in range(engine.n_orgs):
                self._phi[u] += dt * self._fin_con[u]
                self._psi[u] += dt * self._fin_ut[u]
            tri = dt * (dt + 1) // 2
            # running jobs: the pseudo-code's (swapped) updates
            for machine, owner in engine.machine_owner.items():
                run = engine.running_on(machine)
                if run is None:
                    continue
                self._fin_ut[run.org] += dt
                self._fin_con[owner] += dt
                self._phi[run.org] += tri  # paper writes phi[own(J)]
                self._psi[owner] += tri  # paper writes psi[own(m)]
            # repair: jobs completed in (tprev, t] would otherwise lose
            # their final chunk entirely
            completed = engine.completed_log
            for entry in completed[self._completed_seen:]:
                finish = entry.end
                span = finish - max(self._tprev, entry.start)
                if span <= 0:
                    continue
                part = (dt * (dt + 1) - (t - finish) * (t - finish + 1)) // 2
                owner = engine.machine_owner[entry.machine]
                self._fin_ut[entry.job.org] += span
                self._fin_con[owner] += span
                self._phi[entry.job.org] += part
                self._psi[owner] += part
            self._completed_seen = len(completed)
        self._tprev = t

    def run(
        self, workload: Workload, members: Iterable[int] | None = None
    ) -> SchedulerResult:
        result = super().run(workload, members)
        return SchedulerResult(
            algorithm=self.name,
            workload=result.workload,
            members=result.members,
            schedule=result.schedule,
            horizon=result.horizon,
            meta={"mode": self.mode},
        )
