"""Batched REF: many independent instances through one fused kernel.

The pipeline's dominant cost is the REF reference run of every instance
(each one a full 2^k-subcoalition simulation).  This module drives a
:class:`~repro.core.multikernel.MultiInstanceKernel` whose rows are the
subcoalition fleets of *many* grand-coalition REF runs at once, replaying
the fused event body of ``RefRun._on_event_kernel`` with per-row instance
clocks: one psi-ledger evaluation, one matmul per subset-size group
(broadcast over instances), one batched ``fill_rows`` round -- per *sweep*,
not per instance-event.

Bit-identity contract: for every admitted instance the returned schedule is
exactly ``RefScheduler(horizon).run(workload).schedule``.  Instances that
are not admitted (small ``k`` below the vectorization threshold, or failing
the per-instance int64 certification / static coefficient guard) come back
as ``None`` and the caller falls back to the stock per-instance path, which
carries its own exact fallbacks -- one oversized instance never evicts or
perturbs its batch siblings.
"""

from __future__ import annotations

from functools import lru_cache
from math import factorial
from typing import Sequence

import numpy as np

from ..core.coalition import subsets_by_size
from ..core.multikernel import MultiInstanceKernel, instance_bound
from ..core.kernel import _QUERY_CAP
from ..core.schedule import Schedule
from ..core.workload import Workload
from .base import SchedulerResult, members_mask
from . import ref as ref_mod
from .ref import _solver_for

__all__ = ["ref_results_batched", "batchable"]

_PHI_CAP = 1 << 62
_KEY_CAP = 1 << 63


@lru_cache(maxsize=8)
def _layout_for(k: int):
    """Shared per-k REF layout: subcoalition masks (size-ascending, grand
    coalition last -- the exact row order of the per-instance path), the
    cached solver plans per size group, per-row |C|! factors, and the
    static guard coefficients."""
    grand = (1 << k) - 1
    nonempty = [m for group in subsets_by_size(grand)[1:] for m in group]
    solver = _solver_for(tuple(nonempty))
    index = {m: i for i, m in enumerate(nonempty)}
    plans = []
    max_rw = 1
    for group in subsets_by_size(grand)[1:]:
        coef, vrows, cols, rw = solver.matrix_plan(tuple(group))
        krows = np.array([index[m] for m in group], dtype=np.intp)
        plans.append((coef, vrows, krows, cols))
        max_rw = max(max_rw, rw)
    facts = np.array(
        [factorial(bin(m).count("1")) for m in nonempty], dtype=np.int64
    )[:, None]
    return nonempty, plans, facts, max_rw, factorial(k)


def batchable(workload: Workload, horizon: "int | None") -> bool:
    """Whether this instance is admitted to a fused batch: vectorizable
    ``k``, per-instance int64 certification, and the REF coefficient guard
    satisfied *statically* with the certified bound in place of runtime
    maxima (strictly stronger than the per-event runtime guard, so admitted
    instances never trip it)."""
    k = workload.n_orgs
    if k < ref_mod.VECTORIZE_MIN_K:
        return False
    bound = instance_bound(workload, horizon)
    if bound >= _QUERY_CAP:
        return False
    max_rw = _layout_for(k)[3]
    if max_rw * bound >= _PHI_CAP:
        return False
    return max_rw * bound + factorial(k) * bound < _KEY_CAP


def ref_results_batched(
    items: Sequence["tuple[Workload, int | None]"],
) -> "list[SchedulerResult | None]":
    """Run REF over many ``(workload, horizon)`` instances in fused batches
    (grouped by ``k``; same-k instances share one coefficient layout).
    Returns one :class:`SchedulerResult` per item, aligned with ``items``;
    ``None`` marks an instance that must run on the per-instance path."""
    out: "list[SchedulerResult | None]" = [None] * len(items)
    by_k: dict[int, list[int]] = {}
    for i, (wl, horizon) in enumerate(items):
        if batchable(wl, horizon):
            by_k.setdefault(wl.n_orgs, []).append(i)
    for k, idxs in by_k.items():
        nonempty, plans, facts_rel, _, _ = _layout_for(k)
        kern = MultiInstanceKernel(
            [(items[i][0], nonempty, items[i][1]) for i in idxs]
        )
        n_rows = len(nonempty)
        facts = np.tile(facts_rel, (len(idxs), 1))
        # per-instance row offsets lift the shared relative gather/scatter
        # indices into the stacked row space
        plans_b = []
        for coef, vrows, krows, cols in plans:
            vrows_b = vrows[None, :, :] + kern.row0[:, None, None]
            krows_b = krows[None, :] + kern.row0[:, None]
            plans_b.append((coef, vrows_b, krows_b, cols))
        while True:
            act = kern.sweep()
            if act is None:
                break
            capable = kern.capable_rows(act)
            if not capable.any():
                continue
            psis = kern.psis_rows()
            vals = psis.sum(axis=1)
            phi_full = np.zeros((kern.n, k), dtype=np.int64)
            for coef, vrows_b, krows_b, cols in plans_b:
                v = vals[vrows_b]  # (B, groups, subsets)
                phi = np.matmul(coef[None], v[:, :, :, None])[:, :, :, 0]
                phi_full[krows_b[:, :, None], cols[None, :, :]] = phi
            keys = phi_full - facts * psis
            rows = np.flatnonzero(capable)
            kern.fill_rows(rows, keys[rows])
        for b, i in enumerate(idxs):
            wl, horizon = items[i]
            grand_row = int(kern.row0[b]) + n_rows - 1
            members_t, _ = members_mask(wl, None)
            out[i] = SchedulerResult(
                algorithm="REF",
                workload=wl,
                members=members_t,
                schedule=Schedule(kern.row_entries(grand_row)),
                horizon=horizon,
                meta={},
            )
    return out
