"""Scheduling algorithms (paper Sections 3, 5 and 7.1).

* :class:`RefScheduler` -- the exact exponential Shapley-fair benchmark.
* :class:`GeneralRefScheduler` -- REF for arbitrary utility functions.
* :class:`RandScheduler` -- the randomized sampled-coalition scheduler
  (FPRAS for unit jobs, heuristic otherwise).
* :class:`DirectContributionScheduler` -- the practical heuristic.
* :class:`FairShareScheduler`, :class:`UtFairShareScheduler`,
  :class:`CurrFairShareScheduler` -- distributive-fairness baselines.
* :class:`RoundRobinScheduler`, :class:`GreedyFifoScheduler` -- controls.
"""

from .base import PolicyScheduler, Scheduler, SchedulerResult
from .direct import DirectContributionScheduler
from .fairshare import (
    CurrFairShareScheduler,
    FairShareScheduler,
    UtFairShareScheduler,
)
from .greedy import GreedyFifoScheduler, fifo_select
from .rand import RandScheduler
from .ref import GeneralRefScheduler, RefScheduler, update_vals_scaled
from .round_robin import RoundRobinScheduler

__all__ = [
    "CurrFairShareScheduler",
    "DirectContributionScheduler",
    "FairShareScheduler",
    "GeneralRefScheduler",
    "GreedyFifoScheduler",
    "PolicyScheduler",
    "RandScheduler",
    "RefScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "SchedulerResult",
    "UtFairShareScheduler",
    "fifo_select",
    "update_vals_scaled",
]
