"""Scheduler interface and the shared event-loop driver.

Every algorithm of the paper (Section 7.1) is a :class:`Scheduler`:
``run(workload) -> SchedulerResult``.  Simple algorithms (round robin, the
fair share family, plain greedy FIFO) only choose *which organization's* job
to start next and subclass :class:`PolicyScheduler`, which owns the
event loop; REF / RAND / DIRECTCONTR override more of the machinery.

All schedulers obey the paper's constraints by construction: greedy
(never idle a machine while a job waits), non-preemptive, non-clairvoyant,
FIFO within each organization.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..core.engine import ClusterEngine
from ..core.schedule import Schedule
from ..core.workload import Workload
from ..utility.strategyproof import psi_sp

__all__ = ["Scheduler", "PolicyScheduler", "SchedulerResult"]


@dataclass(frozen=True)
class SchedulerResult:
    """The outcome of one scheduler run.

    Utilities are re-derivable at *any* evaluation time from the start log
    (``schedule``), because :math:`\\psi_{sp}` depends only on the
    ``(start, size)`` pairs -- this is how the harness evaluates a single
    run at several horizons.
    """

    algorithm: str
    workload: Workload
    members: tuple[int, ...]
    schedule: Schedule
    horizon: int | None = None
    meta: dict = field(default_factory=dict)

    def utilities(self, t: int) -> list[int]:
        """Per-organization :math:`\\psi_{sp}` at time ``t`` (length k)."""
        pairs_per_org: list[list[tuple[int, int]]] = [
            [] for _ in range(self.workload.n_orgs)
        ]
        for e in self.schedule:
            pairs_per_org[e.job.org].append(e.pair())
        return [psi_sp(pairs, t) for pairs in pairs_per_org]

    def utility_vector(self, t: int) -> np.ndarray:
        return np.array(self.utilities(t), dtype=np.int64)

    def value(self, t: int) -> int:
        """Coalition value ``v`` at ``t`` (sum of utilities)."""
        return sum(self.utilities(t))

    def completed_units(self, t: int) -> int:
        """Unit-size job parts executed before ``t`` (the paper's p_tot when
        evaluated on the reference schedule)."""
        return self.schedule.busy_units(t)

    def utilization(self, t: int) -> float:
        m = sum(
            self.workload.machines_of(u) for u in self.members
        )
        if m == 0 or t <= 0:
            return 0.0
        return self.schedule.busy_units(t) / (m * t)


class Scheduler(ABC):
    """A fair-scheduling algorithm (paper Section 7.1)."""

    #: Display name used in tables (matches the paper's algorithm names).
    name: str = "scheduler"

    @abstractmethod
    def run(
        self, workload: Workload, members: Iterable[int] | None = None
    ) -> SchedulerResult:
        """Schedule the coalition ``members`` (default: all organizations)
        of ``workload`` and return the resulting schedule and metadata."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class PolicyScheduler(Scheduler):
    """Event-loop driver for selection-policy algorithms.

    Subclasses implement :meth:`select` (and may override
    :meth:`schedule_event` for machine-level control, e.g. DIRECTCONTR).

    Parameters
    ----------
    horizon:
        Stop processing events at/after this time.  Utilities evaluated at
        the horizon are unaffected by the cut (a job started at ``t``
        contributes nothing to :math:`\\psi_{sp}(t)`).
    """

    def __init__(self, horizon: int | None = None):
        self.horizon = horizon

    # -- hooks ---------------------------------------------------------------
    def on_run_start(self, engine: ClusterEngine) -> None:
        """Per-run initialization hook (reset mutable policy state)."""

    @abstractmethod
    def select(self, engine: ClusterEngine) -> int:
        """Choose the organization whose FIFO-head job starts now."""

    def schedule_event(self, engine: ClusterEngine) -> None:
        """Start jobs at the current event time while capacity remains."""
        while engine.free_count > 0 and engine.has_waiting():
            engine.start_next(self.select(engine))

    # -- driver ----------------------------------------------------------------
    def run(
        self, workload: Workload, members: Iterable[int] | None = None
    ) -> SchedulerResult:
        engine = ClusterEngine(workload, members, horizon=self.horizon)
        self.on_run_start(engine)
        while True:
            t = engine.next_event_time()
            if t is None:
                break
            engine.advance_to(t)
            self.schedule_event(engine)
        return SchedulerResult(
            algorithm=self.name,
            workload=workload,
            members=engine.members,
            schedule=engine.schedule(),
            horizon=self.horizon,
        )
