"""Scheduler interface and the shared event-loop drivers.

Every algorithm of the paper (Section 7.1) is a :class:`Scheduler`:
``run(workload) -> SchedulerResult``.  Simple algorithms (round robin, the
fair share family, plain greedy FIFO) only choose *which organization's* job
to start next and subclass :class:`PolicyScheduler`, which owns the
per-engine event loop.  The contribution-driven algorithms (REF, its
general-utility variant, RAND, DIRECTCONTR) are thin policies over a shared
:class:`~repro.core.fleet.CoalitionFleet`: this module also hosts their
common machinery -- the :func:`drive_fleet` EventQueue decision loop, the
Fig. 3 ``argmax(phi - psi)`` selection rule (:func:`fair_select`), and the
:func:`fill_capacity` start loop.

All schedulers obey the paper's constraints by construction: greedy
(never idle a machine while a job waits), non-preemptive, non-clairvoyant,
FIFO within each organization.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..core.engine import ClusterEngine
from ..core.fleet import CoalitionFleet
from ..core.schedule import Schedule, ScheduledJob
from ..core.workload import Workload
from ..utility.strategyproof import psi_sp

__all__ = [
    "Scheduler",
    "PolicyScheduler",
    "SchedulerResult",
    "members_mask",
    "fair_select",
    "fill_capacity",
    "drive_fleet",
]


def members_mask(
    workload: Workload, members: Iterable[int] | None
) -> tuple[tuple[int, ...], int]:
    """Normalize a coalition spec to ``(sorted member tuple, bitmask)``.

    ``None`` means the grand coalition; an empty coalition raises (no
    contribution-driven scheduler can divide value among zero players).
    """
    members_t = (
        tuple(sorted(set(members)))
        if members is not None
        else tuple(range(workload.n_orgs))
    )
    mask = 0
    for u in members_t:
        if not 0 <= u < workload.n_orgs:
            raise ValueError(f"unknown organization {u}")
        mask |= 1 << u
    if mask == 0:
        raise ValueError("need at least one organization")
    return members_t, mask


def fair_select(waiting: Sequence[int], keys: Mapping[int, int]) -> int:
    """Fig. 3's ``SelectAndSchedule`` rule: the waiting organization
    maximizing ``phi - psi`` (``keys``), ties broken by lowest org id."""
    return max(waiting, key=lambda u: (keys[u], -u))


def fill_capacity(
    fleet: CoalitionFleet, mask: int, keys: Mapping[int, int]
) -> list[ScheduledJob]:
    """Start jobs on coalition ``mask`` while a machine is free and jobs
    wait, always picking :func:`fair_select`'s winner; completion times are
    pushed into the fleet's shared event queue."""
    eng = fleet.engine(mask)
    started: list[ScheduledJob] = []
    while eng.free_count > 0 and eng.has_waiting():
        u = fair_select(eng.waiting_orgs(), keys)
        started.append(fleet.start_next(mask, u))
    return started


def drive_fleet(
    fleet: CoalitionFleet, on_event: Callable[[CoalitionFleet, int], None]
) -> int:
    """The shared EventQueue-driven decision loop (paper Figs. 1/3/6).

    Pops decision times (job releases seeded at fleet construction, plus
    completion times pushed by every ``fleet.start_next``) until exhausted
    or at/after the fleet's horizon, invoking ``on_event(fleet, t)`` at
    each.  Returns the last processed event time (0 if none).
    """
    last = 0
    while True:
        t = fleet.next_decision()
        if t is None:
            return last
        last = t
        on_event(fleet, t)


@dataclass(frozen=True)
class SchedulerResult:
    """The outcome of one scheduler run.

    Utilities are re-derivable at *any* evaluation time from the start log
    (``schedule``), because :math:`\\psi_{sp}` depends only on the
    ``(start, size)`` pairs -- this is how the harness evaluates a single
    run at several horizons.
    """

    algorithm: str
    workload: Workload
    members: tuple[int, ...]
    schedule: Schedule
    horizon: int | None = None
    meta: dict = field(default_factory=dict)

    def utilities(self, t: int) -> list[int]:
        """Per-organization :math:`\\psi_{sp}` at time ``t`` (length k)."""
        pairs_per_org: list[list[tuple[int, int]]] = [
            [] for _ in range(self.workload.n_orgs)
        ]
        for e in self.schedule:
            pairs_per_org[e.job.org].append(e.pair())
        return [psi_sp(pairs, t) for pairs in pairs_per_org]

    def utility_vector(self, t: int) -> np.ndarray:
        return np.array(self.utilities(t), dtype=np.int64)

    def value(self, t: int) -> int:
        """Coalition value ``v`` at ``t`` (sum of utilities)."""
        return sum(self.utilities(t))

    def completed_units(self, t: int) -> int:
        """Unit-size job parts executed before ``t`` (the paper's p_tot when
        evaluated on the reference schedule)."""
        return self.schedule.busy_units(t)

    def utilization(self, t: int) -> float:
        m = sum(
            self.workload.machines_of(u) for u in self.members
        )
        if m == 0 or t <= 0:
            return 0.0
        return self.schedule.busy_units(t) / (m * t)


class Scheduler(ABC):
    """A fair-scheduling algorithm (paper Section 7.1)."""

    #: Display name used in tables (matches the paper's algorithm names).
    name: str = "scheduler"

    @abstractmethod
    def run(
        self, workload: Workload, members: Iterable[int] | None = None
    ) -> SchedulerResult:
        """Schedule the coalition ``members`` (default: all organizations)
        of ``workload`` and return the resulting schedule and metadata."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class PolicyScheduler(Scheduler):
    """Event-loop driver for selection-policy algorithms.

    Subclasses implement :meth:`select` (and may override
    :meth:`schedule_event` for machine-level control, e.g. DIRECTCONTR).

    Parameters
    ----------
    horizon:
        Stop processing events at/after this time.  Utilities evaluated at
        the horizon are unaffected by the cut (a job started at ``t``
        contributes nothing to :math:`\\psi_{sp}(t)`).
    """

    def __init__(self, horizon: int | None = None):
        self.horizon = horizon

    # -- hooks ---------------------------------------------------------------
    def on_run_start(self, engine: ClusterEngine) -> None:
        """Per-run initialization hook (reset mutable policy state)."""

    def on_cluster_change(self, engine: ClusterEngine) -> None:
        """Refresh state derived from the pool or member set.

        The online service calls this after dynamic membership / machine
        mutations (the batch path never does: its cluster is frozen).
        Unlike :meth:`on_run_start` this must *not* reset decision history
        -- only re-derive quantities such as target shares.
        """

    @abstractmethod
    def select(self, engine: ClusterEngine) -> int:
        """Choose the organization whose FIFO-head job starts now."""

    def schedule_event(self, engine: ClusterEngine) -> None:
        """Start jobs at the current event time while capacity remains."""
        while engine.free_count > 0 and engine.has_waiting():
            engine.start_next(self.select(engine))

    # -- driver ----------------------------------------------------------------
    def run(
        self, workload: Workload, members: Iterable[int] | None = None
    ) -> SchedulerResult:
        if members is not None:
            members = tuple(members)  # may be a one-shot iterator
            if not members:
                # degenerate empty coalition: nothing to schedule
                return SchedulerResult(
                    algorithm=self.name,
                    workload=workload,
                    members=(),
                    schedule=Schedule(()),
                    horizon=self.horizon,
                )
        members_t, mask = members_mask(workload, members)
        # a fleet of one coalition; the event loop talks to its engine
        # directly (no shared decision queue to pop, no sibling engines to
        # sync), so track_events is off and no per-event cost is added
        fleet = CoalitionFleet(
            workload, (mask,), horizon=self.horizon, track_events=False
        )
        engine = fleet.engine(mask)
        self.on_run_start(engine)
        while True:
            t = engine.next_event_time()
            if t is None:
                break
            engine.advance_to(t)
            self.schedule_event(engine)
        return SchedulerResult(
            algorithm=self.name,
            workload=workload,
            members=engine.members,
            schedule=engine.schedule(),
            horizon=self.horizon,
        )
