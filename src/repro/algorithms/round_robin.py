"""ROUNDROBIN (paper Section 7.1): cycle through the organizations.

The paper's unfairness baseline: an arbitrary scheduling policy with no
notion of contribution.  It cycles over the organization list; at each start
opportunity the next organization (in cyclic order) with a waiting job gets
to run its FIFO-head job.
"""

from __future__ import annotations

from ..core.engine import ClusterEngine
from .base import PolicyScheduler

__all__ = ["RoundRobinScheduler"]


class RoundRobinScheduler(PolicyScheduler):
    """Cyclic selection over organizations (skipping empty queues)."""

    name = "RoundRobin"

    def __init__(self, horizon: int | None = None):
        super().__init__(horizon)
        self._pointer = 0

    def on_run_start(self, engine: ClusterEngine) -> None:
        self._pointer = 0

    def select(self, engine: ClusterEngine) -> int:
        members = engine.members
        n = len(members)
        for off in range(n):
            u = members[(self._pointer + off) % n]
            if engine.waiting_count(u) > 0:
                self._pointer = (self._pointer + off + 1) % n
                return u
        raise RuntimeError("select called with no waiting jobs")
