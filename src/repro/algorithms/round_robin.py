"""ROUNDROBIN (paper Section 7.1): cycle through the organizations.

The paper's unfairness baseline: an arbitrary scheduling policy with no
notion of contribution.  It cycles over the organization list; at each start
opportunity the next organization (in cyclic order) with a waiting job gets
to run its FIFO-head job.
"""

from __future__ import annotations

from ..core.engine import ClusterEngine
from .base import PolicyScheduler

__all__ = ["RoundRobinScheduler"]


class RoundRobinScheduler(PolicyScheduler):
    """Cyclic selection over organizations (skipping empty queues).

    The cursor is the *organization id* last served, not a position in
    the member tuple: under online membership changes a positional
    pointer would silently re-aim at a different organization when the
    tuple shifts, whereas "first waiting member cyclically after org u"
    stays well-defined even if u itself has left.  On a fixed member set
    the two formulations are identical (the member tuple is ascending).
    """

    name = "RoundRobin"

    def __init__(self, horizon: int | None = None):
        super().__init__(horizon)
        self._last_served = -1

    def on_run_start(self, engine: ClusterEngine) -> None:
        self._last_served = -1

    def select(self, engine: ClusterEngine) -> int:
        members = engine.members
        ordered = [u for u in members if u > self._last_served] + [
            u for u in members if u <= self._last_served
        ]
        for u in ordered:
            if engine.waiting_count(u) > 0:
                self._last_served = u
                return u
        raise RuntimeError("select called with no waiting jobs")
