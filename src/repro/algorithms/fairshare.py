"""The fair share family (paper Section 7.1): distributive fairness.

Three variants, all balancing some per-organization quantity against a
*target share* (set, as in the paper, to the fraction of processors the
organization contributes to the pool):

* **FAIRSHARE** (Kay & Lauder 1988) -- balances consumed CPU time: whenever
  a machine frees up, the waiting organization with the lowest ratio
  ``consumed_cpu / share`` starts its head job.
* **UTFAIRSHARE** -- same mechanism on the strategy-proof utility:
  lowest ``psi_sp / share`` first (the paper added it to isolate the effect
  of the balanced quantity from the allocation mechanism).
* **CURRFAIRSHARE** -- memoryless: balances the number of *currently
  running* jobs against shares; history does not influence decisions.

The paper's experimental finding (Tables 1-2): distributive fairness is
better than arbitrary policies but consistently less fair (in the Shapley
sense) than contribution-tracking algorithms, because static target shares
ignore *when* resources were needed and provided.
"""

from __future__ import annotations

import math

from ..core.engine import ClusterEngine
from .base import PolicyScheduler

__all__ = [
    "FairShareScheduler",
    "UtFairShareScheduler",
    "CurrFairShareScheduler",
]


class _ShareBased(PolicyScheduler):
    """Common machinery: pick the waiting org minimizing ratio/share."""

    def __init__(self, horizon: int | None = None):
        super().__init__(horizon)
        self._shares: tuple[float, ...] = ()

    def on_run_start(self, engine: ClusterEngine) -> None:
        # Shares are the fraction of the *coalition's* pool each member
        # contributes (paper Section 7.1).
        total = engine.n_machines
        counts = [0] * engine.n_orgs
        for org in engine.workload.organizations:
            if org.id in engine.members:
                counts[org.id] = org.machines
        self._shares = tuple(
            (c / total) if total else 0.0 for c in counts
        )

    def on_cluster_change(self, engine: ClusterEngine) -> None:
        # Online membership / pool mutations move the target shares; derive
        # them from the engine's *live* machine census (the workload only
        # describes the genesis endowments).
        counts = engine.machine_counts()
        total = sum(counts[u] for u in engine.members)
        self._shares = tuple(
            (counts[u] / total) if total and u in engine.members else 0.0
            for u in range(engine.n_orgs)
        )

    def _measure(self, engine: ClusterEngine, org: int) -> float:
        raise NotImplementedError

    def select(self, engine: ClusterEngine) -> int:
        def ratio(u: int) -> float:
            share = self._shares[u]
            if share == 0.0:
                return math.inf
            return self._measure(engine, u) / share

        return min(engine.waiting_orgs(), key=lambda u: (ratio(u), u))


class FairShareScheduler(_ShareBased):
    """Classic fair share: balance consumed CPU time against shares.

    "Consumed CPU time" is non-clairvoyant: completed work plus the elapsed
    running time of unfinished jobs, both known at decision time.
    """

    name = "FairShare"

    def _measure(self, engine: ClusterEngine, org: int) -> float:
        return float(engine.consumed_cpu(org))


class UtFairShareScheduler(_ShareBased):
    """Fair share on the strategy-proof utility instead of CPU time."""

    name = "UtFairShare"

    def _measure(self, engine: ClusterEngine, org: int) -> float:
        return float(engine.psi(org))


class CurrFairShareScheduler(_ShareBased):
    """Memoryless fair share: balance currently-running job counts.

    Note the measure *changes within one event* as jobs start, so selection
    re-evaluates after every start (the paper highlights that this variant
    keeps no history at all).
    """

    name = "CurrFairShare"

    def _measure(self, engine: ClusterEngine, org: int) -> float:
        return float(engine.running_count(org))
