"""REF: the exact (exponential) Shapley-fair scheduling algorithm.

This implements the paper's Algorithm REF (Fig. 1) with the ψ_sp fast path
of Fig. 3.  REF is the *referral* fair algorithm of Definition 3.2: at every
time moment, for every subcoalition (recursively), it schedules the job of
the organization minimizing the distance between the utility vector and the
Shapley contribution vector.

Mechanics (per event time ``t``, matching Fig. 1):

1. every subcoalition's engine is advanced to ``t`` (releases/completions);
2. coalition values ``v[C'] = sum_u psi_sp`` are computed at ``t`` -- note a
   job started *at* ``t`` has zero executed parts, so time-``t`` decisions
   cannot change time-``t`` values and the size-ordered processing of
   Fig. 1 is well-defined;
3. for each coalition with a free machine and waiting jobs, ``UpdateVals``
   computes every member's Shapley contribution from the subcoalition
   values (the Eq. 1 subset sum with factorial weights);
4. while capacity remains, the member maximizing ``phi - psi`` starts its
   FIFO-head job (Fig. 3's ``SelectAndSchedule``; ties broken by the lowest
   organization id).

Exactness: contributions are held as integers scaled by ``|C|!``
(:func:`repro.core.coalition.scaled_shapley_weights`), and ψ_sp values are
integers, so the comparison ``phi - psi`` is exact -- no floating-point tie
ambiguity can flip a fairness decision.

Complexity per event: ``O(k·3^k)`` for contributions plus ``O(2^k)`` engine
advances -- Prop. 3.4's FPT bound (Cor. 3.5).  Use for small k (the paper
runs k <= 10; REF is the fairness *benchmark* other algorithms are measured
against).  Both costs run vectorized: subcoalition simulation and batched
values live in :class:`repro.core.fleet.CoalitionFleet`, and ``UpdateVals``
is a cached coefficient-matrix product
(:class:`repro.shapley.vectorized.ScaledShapleySolver`) with
:func:`update_vals_scaled` as the exact big-int fallback and reference.

The general-utility variant of Fig. 1 (arbitrary ψ, explicit ``Distance``)
is :class:`GeneralRefScheduler`.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from math import factorial
from typing import Iterable

import numpy as np

from ..core.coalition import (
    iter_members,
    iter_subsets,
    popcount,
    scaled_shapley_weights,
    subsets_by_size,
)
from ..core.engine import ClusterEngine
from ..core.fleet import CoalitionFleet
from ..core.workload import Workload
from ..shapley.vectorized import ScaledShapleySolver
from ..utility.base import UtilityFunction
from ..utility.strategyproof import StrategyProofUtility
from .base import (
    Scheduler,
    SchedulerResult,
    drive_fleet,
    fill_capacity,
    members_mask,
)

__all__ = ["RefScheduler", "GeneralRefScheduler", "RefRun", "update_vals_scaled"]

#: Coalition size from which REF uses the numpy value/contribution path;
#: below it the per-event array overhead exceeds the Python loops it
#: replaces (crossover measured in BENCH_fleet.json's instances; the
#: dispatch itself is guarded by ``benchmarks/bench_smallk.py`` and the
#: ``speedup_ref_k4`` field of BENCH_fleet.json).
VECTORIZE_MIN_K = 5

#: Largest coalition whose ``UpdateVals`` subset decomposition is cached.
#: A mask of size s has 3^s (weight, subset, member) terms, so both the
#: size cap and the LRU bound below matter: the small-k exact dispatch
#: only ever sees masks of size < VECTORIZE_MIN_K, but the vectorized
#: path's overflow fallback can route size<=cap subcoalitions of an
#: arbitrarily large grand coalition through here, and without eviction
#: those would accumulate for the process lifetime.  512 size-6 masks
#: bound the cache at ~512 * 3^6 small tuples (a few tens of MB worst
#: case); bigger masks use the uncached loop.
_TERMS_MAX_K = 6


@lru_cache(maxsize=512)
def _update_terms(
    mask: int,
) -> tuple[tuple[int, int, tuple[tuple[int, int], ...]], ...]:
    """The Eq. 1 subset sum of ``mask``, flattened and cached: one
    ``(weight, sub, ((member, sub_without_member), ...))`` entry per
    nonempty subcoalition.  Pure combinatorics — independent of any
    workload — so the cache is shared by every run in the process."""
    weights = scaled_shapley_weights(popcount(mask))
    terms = []
    for sub in iter_subsets(mask):
        if sub == 0:
            continue
        terms.append(
            (
                weights[popcount(sub)],
                sub,
                tuple((u, sub ^ (1 << u)) for u in iter_members(sub)),
            )
        )
    return tuple(terms)


@lru_cache(maxsize=4)
def _solver_for(masks: "tuple[int, ...]") -> ScaledShapleySolver:
    """One :class:`ScaledShapleySolver` per coalition layout, shared across
    runs (its cached coefficient plans depend only on the mask order)."""
    return ScaledShapleySolver({m: i for i, m in enumerate(masks)})


def update_vals_scaled(mask: int, values: dict[int, int]) -> dict[int, int]:
    """Shapley contributions of the members of ``mask``, scaled by ``|mask|!``.

    The paper's ``UpdateVals`` (Fig. 1): for every subcoalition ``Csub`` of
    ``mask`` and member ``u`` of ``Csub``, add
    ``(|Csub|-1)! (|mask|-|Csub|)! * (v[Csub] - v[Csub \\ {u}])``.

    ``values`` must contain every submask of ``mask`` (and 0).

    This is REF's small-k hot path (below :data:`VECTORIZE_MIN_K` the
    numpy batch costs more than it saves), so for ``|mask| <=``
    :data:`_TERMS_MAX_K` the subset/weight/member decomposition comes from
    the :func:`_update_terms` cache instead of being re-derived per event.
    """
    phi = {u: 0 for u in iter_members(mask)}
    if popcount(mask) <= _TERMS_MAX_K:
        for w, sub, members in _update_terms(mask):
            v_sub = values[sub]
            for u, without in members:
                phi[u] += w * (v_sub - values[without])
        return phi
    weights = scaled_shapley_weights(popcount(mask))
    for sub in iter_subsets(mask):
        if sub == 0:
            continue
        w = weights[popcount(sub)]
        v_sub = values[sub]
        for u in iter_members(sub):
            phi[u] += w * (v_sub - values[sub ^ (1 << u)])
    return phi


class RefRun:
    """One REF recursion: a :class:`CoalitionFleet` of engines for every
    nonempty subcoalition plus the per-event Fig. 1 body.  Exposes the
    grand engine and contribution state.

    Construction no longer runs anything: the batch path calls
    :meth:`drive` (run to the horizon through the shared decision loop),
    while the online service steps the same per-event body one decision
    time at a time (:meth:`step`) as events stream in.  ``fleet`` injects
    an externally owned fleet (the service builds engines from dynamic
    cluster state); it must cover every nonempty submask of
    ``grand_mask``.
    """

    def __init__(
        self,
        workload: Workload,
        members_t: tuple[int, ...],
        grand_mask: int,
        horizon: int | None,
        *,
        fleet: CoalitionFleet | None = None,
    ) -> None:
        self.workload = workload
        self.members_t = members_t
        self.grand_mask = grand_mask
        self.horizon = horizon
        self.size_groups = subsets_by_size(grand_mask)
        self.nonempty = [m for group in self.size_groups[1:] for m in group]
        self.fleet = (
            fleet
            if fleet is not None
            else CoalitionFleet(workload, self.nonempty, horizon=horizon)
        )
        self._vectorize = popcount(grand_mask) >= VECTORIZE_MIN_K
        # the coefficient-matrix solver only serves the numpy path; below
        # the dispatch threshold its construction would be pure overhead.
        # Coefficients are pure combinatorics (independent of the workload),
        # so solvers are shared across runs with the same coalition layout.
        self.solver = (
            _solver_for(tuple(self.fleet.masks)) if self._vectorize else None
        )
        # per size group: (row range in fleet.masks order, masks tuple) --
        # the kernel fast path addresses whole groups as contiguous rows
        self._group_rows: list[tuple[int, int, tuple[int, ...]]] = []
        row = 0
        for group in self.size_groups[1:]:
            self._group_rows.append((row, row + len(group), tuple(group)))
            row += len(group)
        self.last_phi_scaled: dict[int, int] = {}
        self.last_event: int = 0

    def drive(self) -> int:
        """Run the shared decision loop to exhaustion / the horizon and
        return the last processed event time (the batch entry point)."""
        self.last_event = drive_fleet(self.fleet, self._on_event)
        return self.last_event

    def step(self, t: int) -> None:
        """Process one decision time (the online service's entry point):
        advance every subcoalition, recompute contributions, schedule."""
        self.last_event = t
        self._on_event(self.fleet, t)

    def _on_event(self, fleet: CoalitionFleet, t: int) -> None:
        """Fig. 1's per-event body: batched values, then size-ordered
        ``UpdateVals`` + Fig. 3 scheduling for every capable coalition."""
        if self._vectorize and fleet.kernel is not None:
            self._on_event_kernel(fleet, t)
            return
        vals = None
        max_abs = 0
        if self._vectorize:
            vals = fleet.values_array(t)
            if vals is not None and len(vals):
                max_abs = int(np.abs(vals).max())
        else:
            fleet.advance_all(t)
        # exact values are computed lazily, once, at the first capable
        # coalition: a decision time with no free-machine/waiting-job pair
        # anywhere (a pure release or completion) costs no value query
        values_dict: dict[int, int] | None = None
        for group in self.size_groups[1:]:
            # a coalition's starts at t touch only its own engine and cannot
            # change any value at t (a job started at t has executed no
            # parts), so capability and contributions for the whole size
            # group are fixed before any of its coalitions schedules
            capable = [
                m
                for m in group
                if (eng := fleet.engine(m)).free_count > 0
                and eng.has_waiting()
            ]
            if not capable:
                continue
            if vals is None and values_dict is None:
                values_dict = fleet.values_exact(t)
            phis = (
                self.solver.phi_scaled_batch(tuple(group), vals, max_abs)
                if vals is not None
                else None
            )
            for m in capable:
                phi_scaled = phis[m] if phis is not None else None
                if phi_scaled is None:  # int64 guard tripped: exact path
                    if values_dict is None:
                        # the batch guard tripped but the (exact) values are
                        # already in hand -- no need to re-query the fleet
                        values_dict = {0: 0}
                        values_dict.update(zip(fleet.masks, vals.tolist()))
                    phi_scaled = update_vals_scaled(m, values_dict)
                if m == self.grand_mask:
                    self.last_phi_scaled = dict(phi_scaled)
                eng = fleet.engine(m)
                fact = factorial(popcount(m))
                psis = eng.psis(t)
                keys = {
                    u: phi_scaled[u] - fact * psis[u]
                    for u in iter_members(m)
                }
                fill_capacity(fleet, m, keys)

    def _kernel_rows(self, kern) -> "list[tuple[np.ndarray, tuple[int, ...]]]":
        """Per size group, the kernel row indices of the group's masks
        (cached per kernel object; an injected fleet may order rows
        differently from ``self.nonempty``)."""
        cached = getattr(self, "_kernel_rows_cache", None)
        if cached is not None and cached[0] is kern:
            return cached[1]
        groups = [
            (
                np.array([kern._row[m] for m in group], dtype=np.intp),
                group,
            )
            for _, _, group in self._group_rows
        ]
        self._kernel_rows_cache = (kern, groups)
        return groups

    def _kernel_plan(self, kern):
        """The fused per-event plan over *all* size groups (cached per
        kernel object): each group's stacked ``UpdateVals`` coefficients,
        value-row gather, kernel row indices and phi scatter columns, plus
        the per-row ``|C|!`` column and the global overflow weights."""
        cached = getattr(self, "_kernel_plan_cache", None)
        if cached is not None and cached[0] is kern:
            return cached[1]
        groups = []
        facts = np.zeros((kern.n, 1), dtype=np.int64)
        max_rw = 0
        max_fact = 1
        for _, _, group in self._group_rows:
            coef, vrows, cols, rw = self.solver.matrix_plan(group)
            krows = np.array([kern._row[m] for m in group], dtype=np.intp)
            fact = factorial(popcount(group[0]))
            facts[krows, 0] = fact
            groups.append((coef, vrows, krows, cols))
            max_rw = max(max_rw, rw)
            max_fact = max(max_fact, fact)
        plan = (
            groups,
            facts,
            max_rw,
            max_fact,
            kern._row.get(self.grand_mask),
        )
        self._kernel_plan_cache = (kern, plan)
        return plan

    def _on_event_kernel(self, fleet: CoalitionFleet, t: int) -> None:
        """Fig. 1's per-event body fused over the structure-of-arrays
        kernel: one lockstep advance, one psi-ledger evaluation (coalition
        values are its row sums), one dense ``UpdateVals`` matmul per size
        group scattered into a single ``(rows, orgs)`` phi matrix, one
        global int64 guard, and one batched scheduling pass -- bit-identical
        decisions to the per-engine body (the guard only picks *which*
        exact-equivalent path computes them)."""
        kern = fleet.kernel
        if kern is None:  # materialized (unknown drive policy elsewhere)
            self._on_event(fleet, t)
            return
        if t < kern.t:  # retrospective step: rare, take the grouped path
            self._on_event_kernel_groups(fleet, t)
            return
        kern.advance(t)
        if not kern._query_safe(t):
            self._on_event_exact(fleet, t, None)
            return
        capable = kern.capable_rows()
        if not capable.any():
            return
        plan_groups, facts, max_rw, max_fact, grand_row = self._kernel_plan(
            kern
        )
        psis = kern.psis_matrix(t)
        # per-cell psi numerators are even (s·(s-2t-1) is always even), so
        # the cellwise //2 loses nothing and row sums are exactly the
        # coalition values of values_i64
        vals = psis.sum(axis=1)
        max_abs = int(np.abs(vals).max()) if len(vals) else 0
        psis_absmax = int(np.abs(psis).max()) if psis.size else 0
        # one conservative guard for every group's |phi| + |C|!·|psi|; on a
        # trip the grouped path re-checks per size group and falls back to
        # exact big-int arithmetic only where needed
        if (
            max_rw * max_abs >= 1 << 62
            or max_rw * max_abs + max_fact * psis_absmax >= 1 << 63
        ):
            self._on_event_kernel_groups(fleet, t)
            return
        phi_full = np.zeros((kern.n, self.workload.n_orgs), dtype=np.int64)
        for coef, vrows, krows, cols in plan_groups:
            phi = np.matmul(coef, vals[vrows][:, :, None])[:, :, 0]
            phi_full[krows[:, None], cols] = phi
        if grand_row is not None and capable[grand_row]:
            row = phi_full[grand_row]
            self.last_phi_scaled = {
                u: int(row[u]) for u in iter_members(self.grand_mask)
            }
        keys = phi_full - facts * psis
        rows = np.flatnonzero(capable)
        fleet.fill_rows(rows, keys[rows], t)

    def _on_event_kernel_groups(self, fleet: CoalitionFleet, t: int) -> None:
        """The per-size-group kernel event body (the fused path's fallback
        for retrospective steps and near-overflow states): one value/psi
        query, one ``UpdateVals`` matmul per size group with a per-group
        int64 guard, exact big-int fallback per group."""
        vals = fleet.values_array(t)  # advances the kernel to t
        kern = fleet.kernel
        if kern is None:  # materialized mid-query (unknown drive policy)
            self._on_event(fleet, t)
            return
        if vals is None:
            self._on_event_exact(fleet, t, None)
            return
        capable = kern.capable_rows()
        if not capable.any():
            return
        max_abs = int(np.abs(vals).max()) if len(vals) else 0
        psis = kern.psis_matrix(t)
        if psis is None:
            self._on_event_exact(fleet, t, vals)
            return
        psis_absmax = int(np.abs(psis).max()) if psis.size else 0
        values_dict: dict[int, int] | None = None
        all_rows: list[np.ndarray] = []
        all_keys: list[np.ndarray] = []
        for rows_arr, group in self._kernel_rows(kern):
            sel = np.flatnonzero(capable[rows_arr])
            if not sel.size:
                continue
            grp_rows = rows_arr[sel]
            fact = factorial(popcount(group[0]))
            dense = self.solver.phi_scaled_matrix(
                group, vals, max_abs, self.workload.n_orgs
            )
            # int64 keys need |phi| + |C|!·|psi| certified below 2^63
            if dense is None or dense[1] + fact * psis_absmax >= 1 << 63:
                if values_dict is None:
                    values_dict = {0: 0}
                    values_dict.update(zip(fleet.masks, vals.tolist()))
                self._schedule_group_exact(fleet, t, group, values_dict)
                continue
            phi_full, _ = dense
            if self.grand_mask in group:
                g = group.index(self.grand_mask)
                if capable[rows_arr[g]]:
                    self.last_phi_scaled = {
                        u: int(phi_full[g, u])
                        for u in iter_members(self.grand_mask)
                    }
            all_rows.append(grp_rows)
            all_keys.append(phi_full[sel] - fact * psis[grp_rows])
        if all_rows:
            # coalitions only ever start jobs on their own engine, so the
            # whole capable set fills in one batched round sequence
            fleet.fill_rows(
                np.concatenate(all_rows), np.concatenate(all_keys), t
            )

    def _schedule_group_exact(
        self,
        fleet: CoalitionFleet,
        t: int,
        group: "tuple[int, ...]",
        values_dict: dict[int, int],
    ) -> None:
        """Exact big-int ``UpdateVals`` + Fig. 3 scheduling for one size
        group (the kernel path's overflow fallback; engine views keep the
        selection loop identical to the per-engine body)."""
        fact = factorial(popcount(group[0]))
        for m in group:
            eng = fleet.engine(m)
            if eng.free_count <= 0 or not eng.has_waiting():
                continue
            phi_scaled = update_vals_scaled(m, values_dict)
            if m == self.grand_mask:
                self.last_phi_scaled = dict(phi_scaled)
            psis = eng.psis(t)
            keys = {
                u: phi_scaled[u] - fact * psis[u] for u in iter_members(m)
            }
            fill_capacity(fleet, m, keys)

    def _on_event_exact(
        self, fleet: CoalitionFleet, t: int, vals: "np.ndarray | None"
    ) -> None:
        """Kernel-mode overflow fallback: the whole Fig. 1 body in exact
        big-int arithmetic (values from the certified ledgers, selection
        through engine views)."""
        values_dict: dict[int, int] = {0: 0}
        if vals is not None:
            values_dict.update(zip(fleet.masks, vals.tolist()))
        else:
            values_dict = fleet.values_at(t)
        for group in self.size_groups[1:]:
            self._schedule_group_exact(fleet, t, group, values_dict)

    def values_at(self, t: int) -> dict[int, int]:
        """Coalition values at ``t`` (all engines advanced at least to ``t``)."""
        return self.fleet.values_at(t)

    def engine(self, mask: int):
        return self.fleet.engine(mask)

    def contributions_at(self, t: int) -> list[Fraction]:
        """Exact Shapley contributions φ(u) of the grand coalition at ``t``."""
        phi_scaled = update_vals_scaled(self.grand_mask, self.values_at(t))
        denom = factorial(popcount(self.grand_mask))
        out = [Fraction(0)] * self.workload.n_orgs
        for u, val in phi_scaled.items():
            out[u] = Fraction(val, denom)
        return out


class RefScheduler(Scheduler):
    """Algorithm REF with the strategy-proof utility (Figs. 1 + 3).

    Parameters
    ----------
    horizon:
        Optional stop time (events at/after it are not processed; utilities
        evaluated at the horizon are unaffected).
    collect_contributions:
        When True, ``result.meta["contributions"]`` holds the exact
        grand-coalition Shapley contribution vector (Fractions) at the
        horizon (or at the last event when no horizon was given).
    """

    name = "REF"

    def __init__(
        self, horizon: int | None = None, *, collect_contributions: bool = False
    ):
        self.horizon = horizon
        self.collect_contributions = collect_contributions

    def run(
        self, workload: Workload, members: Iterable[int] | None = None
    ) -> SchedulerResult:
        """Build the exact fair schedule for the coalition ``members``."""
        members_t, grand_mask = members_mask(workload, members)
        run = RefRun(workload, members_t, grand_mask, self.horizon)
        run.drive()
        meta: dict = {}
        if self.collect_contributions:
            t_eval = (
                self.horizon
                if self.horizon is not None
                else max(run.last_event, run.engine(grand_mask).t)
            )
            meta["contributions"] = run.contributions_at(t_eval)
            meta["contributions_time"] = t_eval
        return SchedulerResult(
            algorithm=self.name,
            workload=workload,
            members=members_t,
            schedule=run.engine(grand_mask).schedule(),
            horizon=self.horizon,
            meta=meta,
        )

    def contributions_at(
        self,
        workload: Workload,
        t: int,
        members: Iterable[int] | None = None,
    ) -> list[Fraction]:
        """Exact grand-coalition Shapley contributions φ(u) at time ``t``.

        Runs the full REF recursion to ``t`` and applies Eq. 1 to the
        resulting coalition values -- the "ideally fair" division of
        ``v(C, t)`` that the REF schedule chases (Definition 3.1).
        """
        members_t, grand_mask = members_mask(workload, members)
        run = RefRun(workload, members_t, grand_mask, horizon=t)
        run.drive()
        return run.contributions_at(t)


class GeneralRefScheduler(Scheduler):
    """Algorithm REF for an *arbitrary* utility function (Fig. 1).

    Uses the explicit ``Distance`` selection rule.  Because every utility in
    this model is non-clairvoyant, a job started at ``t`` has executed no
    parts at ``t`` and the literal pseudo-code's
    ``Delta-psi = psi(new, t) - psi(old, t)`` is identically zero; we
    therefore evaluate the tentative insertion one step ahead (at ``t+1``,
    when exactly one unit of the new job -- the only part knowable without
    clairvoyance -- has executed).  With ψ_sp this reduces to Fig. 3's
    argmax(φ−ψ) rule up to plateau ties, which we break by argmax(φ−ψ) and
    then the organization id, keeping the two variants consistent (verified
    in tests).
    """

    name = "REF-general"

    def __init__(
        self,
        utility: UtilityFunction | None = None,
        horizon: int | None = None,
    ):
        self.utility = utility or StrategyProofUtility()
        self.horizon = horizon

    def run(
        self, workload: Workload, members: Iterable[int] | None = None
    ) -> SchedulerResult:
        members_t, grand_mask = members_mask(workload, members)
        util = self.utility
        size_groups = subsets_by_size(grand_mask)
        nonempty = [m for group in size_groups[1:] for m in group]
        fleet = CoalitionFleet(workload, nonempty, horizon=self.horizon)
        # per-coalition per-org started-job (start, size) pairs; the fleet's
        # psi_sp ledger cannot serve an arbitrary utility, so values come
        # from ``util`` over these pairs (exact Fractions)
        pairs: dict[int, dict[int, list[tuple[int, int]]]] = {
            m: {u: [] for u in iter_members(m)} for m in nonempty
        }

        def on_event(fleet: CoalitionFleet, t: int) -> None:
            fleet.advance_all(t)
            psi_tab = {
                m: {
                    u: Fraction(util.value(pairs[m][u], t))
                    for u in iter_members(m)
                }
                for m in nonempty
            }
            values: dict[int, Fraction] = {0: Fraction(0)}
            for m in nonempty:
                values[m] = sum(psi_tab[m].values(), Fraction(0))
            for group in size_groups[1:]:
                for m in group:
                    eng = fleet.engine(m)
                    if eng.free_count == 0 or not eng.has_waiting():
                        continue
                    size = popcount(m)
                    weights = scaled_shapley_weights(size)
                    denom = factorial(size)
                    phi = {u: Fraction(0) for u in iter_members(m)}
                    for sub in iter_subsets(m):
                        if sub == 0:
                            continue
                        w = weights[popcount(sub)]
                        v_sub = values[sub]
                        for u in iter_members(sub):
                            phi[u] += w * (v_sub - values[sub ^ (1 << u)])
                    for u in phi:
                        phi[u] /= denom
                    while eng.free_count > 0 and eng.has_waiting():
                        u = self._select_distance(
                            eng, util, pairs[m], phi, psi_tab[m], t, size
                        )
                        entry = fleet.start_next(m, u)
                        pairs[m][u].append(entry.pair())

        drive_fleet(fleet, on_event)
        return SchedulerResult(
            algorithm=self.name,
            workload=workload,
            members=members_t,
            schedule=fleet.engine(grand_mask).schedule(),
            horizon=self.horizon,
            meta={"utility": util.name},
        )

    @staticmethod
    def _select_distance(
        eng: ClusterEngine,
        util: UtilityFunction,
        org_pairs: dict[int, list[tuple[int, int]]],
        phi: dict[int, Fraction],
        psi: dict[int, Fraction],
        t: int,
        size: int,
    ) -> int:
        """Fig. 1's ``Distance``: tentatively schedule each candidate's head
        job and pick the one minimizing the Manhattan distance between the
        updated contribution and utility vectors."""
        waiting = eng.waiting_orgs()
        best_u = waiting[0]
        best_key: tuple[Fraction, Fraction, int] | None = None
        for u in waiting:
            # one knowable unit of the tentative job, evaluated at t+1
            tentative = [*org_pairs[u], (t, 1)]
            delta = Fraction(util.value(tentative, t + 1)) - Fraction(
                util.value(org_pairs[u], t + 1)
            )
            share = delta / size
            dist = abs(phi[u] + share - psi[u] - delta)
            for w in phi:
                if w != u:
                    dist += abs(phi[w] + share - psi[w])
            key = (dist, -(phi[u] - psi[u]), u)
            if best_key is None or key < best_key:
                best_key = key
                best_u = u
        return best_u
