"""Tests for classic utilities and their axiom violations (Section 4's
motivation for the strategy-proof utility)."""

import pytest

from repro.utility.classic import (
    CompletedCountUtility,
    CompletedWorkUtility,
    FlowTimeUtility,
    MakespanUtility,
    flow_time,
    turnaround_times,
)
from repro.utility.strategyproof import psi_sp


class TestMetrics:
    def test_completed_count(self):
        util = CompletedCountUtility()
        assert util.value([(0, 3), (1, 5)], 4) == 1
        assert util.value([(0, 3), (1, 5)], 6) == 2
        assert util.value([], 6) == 0

    def test_completed_work(self):
        util = CompletedWorkUtility()
        assert util.value([(0, 3), (2, 4)], 4) == 3 + 2

    def test_makespan(self):
        util = MakespanUtility()
        assert util.value([(0, 3), (1, 5)], 10) == -6
        assert util.value([(0, 3), (1, 5)], 4) == -3

    def test_flow_time_utility_default_releases(self):
        util = FlowTimeUtility()
        # completions 3 and 6, releases assumed 0
        assert util.value([(0, 3), (1, 5)], 10) == -9

    def test_flow_time_fn(self):
        pairs = [(0, 3), (4, 2)]
        assert flow_time(pairs, [0, 1]) == 3 + 5
        assert flow_time(pairs, [0, 1], t=3) == 3
        with pytest.raises(ValueError):
            flow_time(pairs, [0])

    def test_turnaround_times(self):
        assert turnaround_times([(0, 3), (4, 2)], [0, 1]) == [3, 5]
        with pytest.raises(ValueError):
            turnaround_times([(0, 1)], [])


class TestAxiomViolations:
    """Concrete counterexamples: why the classic metrics are manipulable."""

    def test_flow_time_is_not_merge_split_invariant(self):
        """Flow time changes when a job is split into back-to-back pieces
        (merged: completion 4 -> flow 4; split: completions 2,4 -> flow 6),
        so organizations can manipulate how a flow-time-fair scheduler
        perceives their satisfaction -- the violation psi_sp removes."""
        merged_flow = flow_time([(0, 4)], [0])
        split_flow = flow_time([(0, 2), (2, 2)], [0, 0])
        assert merged_flow == 4
        assert split_flow == 6
        assert merged_flow != split_flow
        # psi_sp is invariant on the same manipulation:
        assert psi_sp([(0, 4)], 9) == psi_sp([(0, 2), (2, 2)], 9)

    def test_flow_time_improves_by_not_scheduling(self):
        """An empty schedule has optimal (zero) flow time -- violating task
        count anonymity (more completed work must be better)."""
        assert flow_time([], []) == 0
        assert flow_time([(0, 3)], [0]) > 0
        # psi_sp orders these correctly:
        assert psi_sp([(0, 3)], 5) > psi_sp([], 5)

    def test_completed_count_rewards_splitting(self):
        util = CompletedCountUtility()
        merged = util.value([(0, 4)], 3)  # not yet complete -> 0
        split = util.value([(0, 1), (1, 1), (2, 1), (3, 1)], 3)  # 3 done
        assert split > merged

    def test_completed_count_ignores_delay(self):
        util = CompletedCountUtility()
        assert util.value([(0, 2)], 10) == util.value([(5, 2)], 10)
        # psi_sp penalizes the delay:
        assert psi_sp([(0, 2)], 10) > psi_sp([(5, 2)], 10)

    def test_makespan_ignores_all_but_last(self):
        util = MakespanUtility()
        assert util.value([(0, 1), (4, 2)], 10) == util.value([(5, 1), (4, 2)], 10)

    def test_completed_work_is_merge_split_invariant_but_not_delay_aware(self):
        util = CompletedWorkUtility()
        # merge/split invariant (like psi_sp):
        assert util.value([(0, 2), (2, 3)], 10) == util.value([(0, 5)], 10)
        # ... but delaying costs nothing once work completes (axiom 1 fails)
        assert util.value([(0, 2)], 10) == util.value([(6, 2)], 10)
