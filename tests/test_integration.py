"""Cross-module integration tests: the whole pipeline, end to end."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    CurrFairShareScheduler,
    DirectContributionScheduler,
    FairShareScheduler,
    GreedyFifoScheduler,
    RandScheduler,
    RefScheduler,
    RoundRobinScheduler,
    UtFairShareScheduler,
)
from repro.algorithms.base import members_mask
from repro.algorithms.ref import RefRun
from repro.core.engine import ClusterEngine
from repro.sim.metrics import avg_delay, unfairness

from .conftest import make_workload, random_workload


def portfolio(horizon):
    return [
        RefScheduler(horizon),
        RandScheduler(10, seed=1, horizon=horizon),
        DirectContributionScheduler(seed=1, horizon=horizon),
        FairShareScheduler(horizon),
        UtFairShareScheduler(horizon),
        CurrFairShareScheduler(horizon),
        RoundRobinScheduler(horizon),
        GreedyFifoScheduler(horizon),
    ]


class TestRefSelfConsistency:
    """Definition 3.1 is recursive: the schedule REF builds for a
    subcoalition *inside* a larger run must equal a standalone REF run on
    that subcoalition's restricted workload.  This is the strongest internal
    consistency check of the whole fair-scheduling recursion."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2_000))
    def test_subcoalition_schedules_match_standalone_runs(self, seed):
        rng = np.random.default_rng(seed)
        wl = random_workload(rng, n_orgs=3, n_jobs=12, max_release=10)
        members, grand = members_mask(wl, None)
        run = RefRun(wl, members, grand, horizon=None)
        run.drive()
        for mask in run.fleet.masks:
            if mask == grand:
                continue
            sub_members = [u for u in members if mask >> u & 1]
            standalone = RefScheduler().run(wl, members=sub_members)
            assert run.fleet.engine(mask).schedule() == standalone.schedule, (
                seed,
                mask,
            )


class TestPortfolioInvariants:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1_000))
    def test_all_algorithms_feasible_and_complete(self, seed):
        """Every scheduler produces a feasible greedy schedule that starts
        every job (no horizon), and all schedules execute the same total
        work by completion."""
        rng = np.random.default_rng(seed)
        wl = random_workload(rng, n_orgs=3, n_jobs=18, max_release=12)
        total_work = sum(j.size for j in wl.jobs)
        for sched in portfolio(None):
            result = sched.run(wl)
            result.schedule.validate(wl)
            assert len(result.schedule) == len(wl.jobs), sched.name
            end = result.schedule.makespan()
            assert result.schedule.busy_units(end) == total_work, sched.name

    def test_ref_is_perfectly_fair_against_itself(self):
        rng = np.random.default_rng(3)
        wl = random_workload(rng, n_orgs=3, n_jobs=20)
        t = 30
        a = RefScheduler(horizon=t).run(wl)
        b = RefScheduler(horizon=t).run(wl)
        assert unfairness(a, b, t) == 0.0

    def test_unfairness_ranking_on_contended_instance(self):
        """On a deliberately contended instance, the Shapley-tracking
        algorithms must not be beaten by RoundRobin."""
        wl = make_workload(
            [2, 1, 0],
            [(0, 0, 4)] * 4
            + [(0, 1, 4)] * 6
            + [(0, 2, 4)] * 6
            + [(12, 0, 3)] * 4,
        )
        t = 40
        ref = RefScheduler(horizon=t).run(wl)
        rand_delay = avg_delay(
            RandScheduler(20, seed=0, horizon=t).run(wl), ref, t
        )
        rr_delay = avg_delay(RoundRobinScheduler(t).run(wl), ref, t)
        assert rand_delay <= rr_delay

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_utilities_sum_matches_engine_value(self, seed):
        """SchedulerResult.utilities (log-derived) agrees with the engine's
        incremental value accounting at any evaluation time."""
        rng = np.random.default_rng(seed)
        wl = random_workload(rng, n_orgs=2, n_jobs=15)
        from repro.algorithms.greedy import fifo_select

        engine = ClusterEngine(wl)
        engine.drive(fifo_select)
        result = GreedyFifoScheduler().run(wl)
        for t in (0, 7, 19, 50):
            assert result.utilities(t) == engine.psis(t)


class TestTraceToFairnessPipeline:
    """Workload generation -> transforms -> scheduling -> metrics."""

    def test_full_pipeline_on_synthetic_trace(self):
        from repro.experiments.harness import (
            ExperimentConfig,
            sample_instance,
        )

        cfg = ExperimentConfig(
            traces=("LPC-EGEE",), n_orgs=4, duration=1_500, scale=0.1, seed=5
        )
        wl = sample_instance("LPC-EGEE", cfg, np.random.default_rng(5))
        assert wl.n_orgs == 4
        t = 1_500
        ref = RefScheduler(horizon=t).run(wl)
        fs = FairShareScheduler(horizon=t).run(wl)
        ref.schedule.validate(wl, horizon=t)
        fs.schedule.validate(wl, horizon=t)
        assert avg_delay(fs, ref, t) >= 0.0
        assert avg_delay(ref, ref, t) == 0.0

    def test_swf_round_trip_through_scheduling(self, tmp_path):
        """Generate a trace, write SWF, reload, build, schedule."""
        from repro.workloads.swf import load_swf, write_swf
        from repro.workloads.synthetic import SyntheticSpec, generate_jobs
        from repro.workloads.transforms import (
            assign_users_to_orgs,
            build_workload,
            uniform_machine_split,
        )

        rng = np.random.default_rng(0)
        spec = SyntheticSpec(
            n_machines=4, n_users=5, horizon=300, load=0.6,
            size_mu=2.0, size_sigma=0.8, max_size=30,
            session_jobs_mean=3.0, session_gap_mean=5.0,
        )
        jobs = generate_jobs(spec, rng)
        path = tmp_path / "synthetic.swf"
        write_swf(jobs, path)
        reloaded = load_swf(path)
        assert list(reloaded.jobs) == jobs

        user_map = assign_users_to_orgs(
            [j.user for j in reloaded.jobs], 2, rng
        )
        wl = build_workload(
            reloaded.jobs, uniform_machine_split(4, 2), user_map
        )
        result = GreedyFifoScheduler(horizon=300).run(wl)
        result.schedule.validate(wl, horizon=300)


class TestUnitJobTheoryChain:
    """Prop 5.4 -> Lindley values -> RAND FPRAS -> REF, chained."""

    def test_chain(self):
        from repro.shapley.exact import shapley_exact
        from repro.shapley.games import SchedulingGame

        rng = np.random.default_rng(11)
        wl = random_workload(
            rng, n_orgs=3, n_jobs=36, max_release=20, sizes=(1,),
            machine_counts=[1, 1, 1],
        )
        t = 30
        # (1) game values via Lindley == via fair recursion (Prop 5.4)
        fifo_game = SchedulingGame(wl, t, policy="fifo")
        fair_game = SchedulingGame(wl, t, policy="fair")
        for mask in range(8):
            assert fifo_game(mask) == fair_game(mask)
        # (2) REF utilities track the exact Shapley contributions
        phi = shapley_exact(fair_game, 3)
        ref = RefScheduler(horizon=t).run(wl)
        psi = ref.utilities(t)
        assert sum(psi) == fair_game(7)
        gap_ref = sum(abs(float(p) - u) for p, u in zip(phi, psi))
        # (3) ... and any single-org starvation would show a larger gap:
        rr = RoundRobinScheduler(horizon=t).run(wl)
        gap_rr = sum(
            abs(float(p) - u) for p, u in zip(phi, rr.utilities(t))
        )
        assert gap_ref <= gap_rr + 1e-9
