"""Tests for the strategy-proof utility (Theorem 4.1 / Eq. 3), including the
paper's Fig. 2 worked example verified digit-for-digit."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utility.strategyproof import (
    GeneralAnonymousUtility,
    StrategyProofUtility,
    psi_sp,
    psi_sp_vector,
    unit_value,
)

pairs_strategy = st.lists(
    st.tuples(st.integers(0, 50), st.integers(1, 20)), max_size=8
)


class TestPsiSpBasics:
    def test_empty_schedule_is_zero(self):
        assert psi_sp([], 10) == 0

    def test_unit_job_value(self):
        # a unit run in slot s is worth t - s
        assert psi_sp([(3, 1)], 10) == 7
        assert unit_value(3, 10) == 7
        assert unit_value(10, 10) == 0

    def test_job_not_started_yet(self):
        assert psi_sp([(5, 3)], 5) == 0
        assert psi_sp([(5, 3)], 3) == 0

    def test_completed_job_closed_form(self):
        # units at slots 2,3,4 evaluated at 10: 8 + 7 + 6
        assert psi_sp([(2, 3)], 10) == 21

    def test_partial_job(self):
        # size 5 started at 0, evaluated at 3: units at 0,1,2 -> 3+2+1
        assert psi_sp([(0, 5)], 3) == 6

    def test_additive_over_jobs(self):
        assert psi_sp([(0, 2), (4, 3)], 9) == psi_sp([(0, 2)], 9) + psi_sp(
            [(4, 3)], 9
        )

    def test_class_interface(self):
        util = StrategyProofUtility()
        assert util.value([(0, 2)], 5) == psi_sp([(0, 2)], 5)
        assert util.job_value(0, 2, 5) == psi_sp([(0, 2)], 5)
        assert util.maximize

    @given(pairs=pairs_strategy, t=st.integers(0, 100))
    def test_vectorized_matches_scalar(self, pairs, t):
        starts = np.array([s for s, _ in pairs])
        sizes = np.array([p for _, p in pairs])
        assert psi_sp_vector(starts, sizes, t) == psi_sp(pairs, t)

    @given(pairs=pairs_strategy, t=st.integers(0, 100))
    def test_equals_unit_decomposition(self, pairs, t):
        """Eq. 3's interpretation: a job is its unit-size parts."""
        expected = sum(
            unit_value(s + i, t)
            for s, p in pairs
            for i in range(min(p, max(0, t - s)))
        )
        assert psi_sp(pairs, t) == expected


class TestAxiomsHold:
    """The three Theorem 4.1 axioms, property-tested."""

    @settings(max_examples=60)
    @given(
        base_a=pairs_strategy,
        base_b=pairs_strategy,
        s_a=st.integers(0, 30),
        s_b=st.integers(0, 30),
        p=st.integers(1, 10),
        t=st.integers(42, 90),  # >= 30 + 1 + 10: both placements complete
    )
    def test_start_time_anonymity(self, base_a, base_b, s_a, s_b, p, t):
        """Axiom 1 for placements fully executed by ``t``: the unit-shift
        gain is the constant ``p`` regardless of context and start."""
        gain_a = psi_sp([*base_a, (s_a, p)], t) - psi_sp(
            [*base_a, (s_a + 1, p)], t
        )
        gain_b = psi_sp([*base_b, (s_b, p)], t) - psi_sp(
            [*base_b, (s_b + 1, p)], t
        )
        assert gain_a == gain_b == p > 0

    def test_start_time_anonymity_boundary(self):
        """At the non-clairvoyant boundary (job still running at t) the
        shift gain equals the number of *executed* units, not p: shifting a
        partially executed job right removes its last executed unit.  The
        axiom is therefore about fully executed placements; Theorem 4.1's
        derivation decomposes jobs into executed unit parts accordingly."""
        # (23, 10) at t=32: 9 executed units; shifted: 8 -> gain 9, not 10
        gain = psi_sp([(23, 10)], 32) - psi_sp([(24, 10)], 32)
        assert gain == 9
        # completed placements give the constant gain p
        assert psi_sp([(0, 10)], 32) - psi_sp([(1, 10)], 32) == 10

    @settings(max_examples=60)
    @given(
        base_a=pairs_strategy,
        base_b=pairs_strategy,
        s=st.integers(0, 30),
        p=st.integers(1, 10),
        t=st.integers(41, 90),  # the added task completes by t
    )
    def test_task_count_anonymity(self, base_a, base_b, s, p, t):
        gain_a = psi_sp([*base_a, (s, p)], t) - psi_sp(base_a, t)
        gain_b = psi_sp([*base_b, (s, p)], t) - psi_sp(base_b, t)
        assert gain_a == gain_b > 0

    @settings(max_examples=60)
    @given(
        base=pairs_strategy,
        s=st.integers(0, 30),
        p1=st.integers(1, 10),
        p2=st.integers(1, 10),
        t=st.integers(0, 100),
    )
    def test_strategy_resistance_merge_split(self, base, s, p1, p2, t):
        lhs = (
            psi_sp([*base, (s, p1)], t)
            + psi_sp([*base, (s + p1, p2)], t)
            - psi_sp(base, t)
        )
        rhs = psi_sp([*base, (s, p1 + p2)], t)
        assert lhs == rhs

    @settings(max_examples=40)
    @given(
        s=st.integers(0, 30),
        p=st.integers(1, 10),
        delta=st.integers(1, 10),
        t=st.integers(45, 100),
    )
    def test_delaying_never_profitable(self, s, p, delta, t):
        assert psi_sp([(s + delta, p)], t) <= psi_sp([(s, p)], t)

    @settings(max_examples=40)
    @given(
        s=st.integers(0, 20),
        p=st.integers(1, 10),
        extra=st.integers(1, 10),
        t=st.integers(0, 60),
    )
    def test_inflating_never_reduces(self, s, p, extra, t):
        """Processing a larger job is always worth at least as much --
        the paper's argument that size inflation is not a useful attack
        (the extra units still consume the attacker's own time)."""
        assert psi_sp([(s, p + extra)], t) >= psi_sp([(s, p)], t)


class TestGeneralFamily:
    def test_canonical_member_matches_eq3(self):
        fam = GeneralAnonymousUtility(k1="t", k2=1, k3=0)
        for pairs in ([], [(0, 3)], [(2, 5), (4, 1)]):
            for t in (0, 3, 7, 20):
                assert fam.value(pairs, t) == psi_sp(pairs, t)

    def test_affine_shift(self):
        fam = GeneralAnonymousUtility(k1="t", k2=1, k3=5)
        assert fam.value([], 9) == 5

    def test_invalid_constants_rejected(self):
        with pytest.raises(ValueError):
            GeneralAnonymousUtility(k1=0)
        with pytest.raises(ValueError):
            GeneralAnonymousUtility(k1=1, k2=0)

    def test_rational_constants(self):
        fam = GeneralAnonymousUtility(k1=Fraction(7, 2), k2=Fraction(1, 3))
        v = fam.value([(0, 2)], 4)
        # two units: each worth K1 - K2 * mid, mid = (0 + 1)/2
        assert v == 2 * (Fraction(7, 2) - Fraction(1, 3) * Fraction(1, 2))

    @settings(max_examples=40)
    @given(
        base=pairs_strategy,
        s=st.integers(0, 20),
        p1=st.integers(1, 8),
        p2=st.integers(1, 8),
        t=st.integers(0, 60),
    )
    def test_family_satisfies_strategy_resistance(self, base, s, p1, p2, t):
        fam = GeneralAnonymousUtility(k1=3, k2=Fraction(1, 2), k3=1)
        lhs = (
            fam.value([*base, (s, p1)], t)
            + fam.value([*base, (s + p1, p2)], t)
            - fam.value(base, t)
        )
        assert lhs == fam.value([*base, (s, p1 + p2)], t)

    def test_as_canonical(self):
        assert isinstance(
            GeneralAnonymousUtility().as_canonical(), StrategyProofUtility
        )


class TestFigure2Example:
    """The paper's Fig. 2 caption, digit for digit."""

    def test_all_caption_numbers(self):
        from repro.experiments.figures import figure2_numbers

        n = figure2_numbers()
        assert n.psi_o1_t13 == 262
        assert n.psi_o1_t14 == 297
        assert n.flow_time_o1 == 70
        assert n.gain_without_j2 == 4
        assert n.loss_j6_late == -6
        assert n.loss_drop_j9 == -10

    def test_figure2_schedule_is_feasible(self):
        from repro.experiments.figures import figure2_schedule, figure2_workload

        sched = figure2_schedule()
        sched.validate(figure2_workload())
