"""Certified approximation ladder (DESIGN.md §12): samplers, confidence
intervals, the adaptive certifier's agreement with the exact oracle, the
hierarchical decomposition's invariants, and the ``repro gap --policy`` /
``scale``-family plumbing that exercises them past the exact ceiling."""

from __future__ import annotations

from fractions import Fraction
from math import factorial

import numpy as np
import pytest

from repro.algorithms.base import members_mask
from repro.algorithms.greedy import fifo_select
from repro.algorithms.rand import RandScheduler
from repro.analysis.inapprox import gap_workload, policy_order_gap
from repro.approx import (
    AdaptiveScheduler,
    HierScheduler,
    StratifiedScheduler,
    agreement_report,
    org_blocks,
)
from repro.approx.adaptive import AdaptiveRun, wave_sizes
from repro.approx.validate import ORACLE_MAX_ORGS, ExactDecisionOracle
from repro.core.job import Job
from repro.core.kernel import kernel_certified
from repro.core.organization import Organization
from repro.core.workload import Workload
from repro.experiments.registry import get_family, get_scenario
from repro.experiments.spec import ScenarioSpec
from repro.policies import CapabilityError, PolicySpec, build_scheduler
from repro.service import ClusterService
from repro.shapley.confidence import (
    empirical_bernstein_halfwidth,
    hoeffding_halfwidth,
    interval_halfwidth,
    separates_argmax,
)
from repro.shapley.sampling import (
    ORDERING_SAMPLERS,
    antithetic_orderings,
    hoeffding_samples,
    sample_member_orderings,
    sample_orderings,
    stratified_orderings,
)


def asym_workload(seed: int, k: int = 6) -> Workload:
    """Asymmetric org endowments and job mixes: no two orgs play the same
    role, so fair-select keys genuinely differ and CI separation has
    something to certify (symmetric orgs are exact ties -- never
    separable by sampling)."""
    rng = np.random.default_rng(seed)
    machines = [3, 1, 2, 1, 1, 2, 1, 1][:k]
    orgs = [Organization(u, machines[u]) for u in range(k)]
    jobs = []
    for u in range(k):
        n = int(rng.integers(2, 6))
        rels = sorted(int(r) for r in rng.integers(0, 12, size=n))
        for i, r in enumerate(rels):
            size = int(rng.integers(1, 5)) + u % 3
            jobs.append(Job(org=u, index=i, release=r, size=size))
    return Workload(organizations=orgs, jobs=jobs)


# ----------------------------------------------------------------------
# ordering samplers
# ----------------------------------------------------------------------
class TestSamplers:
    members = np.array([2, 5, 7], dtype=np.int64)

    def test_all_rows_are_member_permutations(self):
        for name, draw in ORDERING_SAMPLERS.items():
            rows = draw(self.members, 7, np.random.default_rng(1))
            assert rows.shape == (7, 3), name
            for row in rows:
                assert sorted(row.tolist()) == [2, 5, 7], name

    def test_antithetic_pairs_are_reverses(self):
        rows = antithetic_orderings(
            self.members, 6, np.random.default_rng(2)
        )
        for i in range(0, 6, 2):
            assert rows[i + 1].tolist() == rows[i][::-1].tolist()

    def test_stratified_block_covers_every_position_once(self):
        k = 5
        members = np.arange(10, 10 + k, dtype=np.int64)
        rows = stratified_orderings(
            members, k, np.random.default_rng(3), antithetic=False
        )
        # one block = k cyclic rotations: each member sits in each
        # position exactly once
        for pos in range(k):
            assert sorted(rows[:, pos].tolist()) == members.tolist()

    def test_stratified_antithetic_block_structure(self):
        k = 4
        members = np.arange(k, dtype=np.int64)
        rows = stratified_orderings(
            members, 2 * k, np.random.default_rng(4), antithetic=True
        )
        for i in range(0, 2 * k, 2):
            assert rows[i + 1].tolist() == rows[i][::-1].tolist()

    def test_seed_stability_pinned_draws(self):
        # the exact historical RAND draw stream -- a sampler refactor
        # that shifts these silently invalidates every seeded golden
        # schedule in the repo
        assert sample_member_orderings(
            self.members, 4, np.random.default_rng(0)
        ).tolist() == [[7, 2, 5], [7, 5, 2], [7, 2, 5], [5, 7, 2]]
        assert sample_orderings(4, 3, np.random.default_rng(0)).tolist() == [
            [2, 0, 1, 3],
            [3, 2, 1, 0],
            [1, 3, 0, 2],
        ]
        assert antithetic_orderings(
            self.members, 4, np.random.default_rng(0)
        ).tolist() == [[7, 2, 5], [5, 2, 7], [7, 5, 2], [2, 5, 7]]
        assert stratified_orderings(
            self.members, 6, np.random.default_rng(0), antithetic=False
        ).tolist() == [
            [7, 2, 5],
            [2, 5, 7],
            [5, 7, 2],
            [7, 5, 2],
            [5, 2, 7],
            [2, 7, 5],
        ]

    def test_rejects_empty_budget(self):
        with pytest.raises(ValueError):
            sample_member_orderings(self.members, 0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            stratified_orderings(self.members, 0, np.random.default_rng(0))


# ----------------------------------------------------------------------
# Theorem 5.6 budgets on RAND (satellite: tunable PolicySpec params)
# ----------------------------------------------------------------------
class TestHoeffdingBudget:
    def test_resolve_budget_precedence(self):
        s = RandScheduler(n_orderings=15)
        assert s.resolve_budget(5) == 15
        s = RandScheduler(n_orderings=15, epsilon=0.5, delta=0.05)
        assert s.resolve_budget(5) == hoeffding_samples(5, 0.5, 0.95)
        # explicit n_samples beats both
        s = RandScheduler(n_orderings=15, epsilon=0.5, n_samples=7)
        assert s.resolve_budget(5) == 7

    def test_budget_resolved_from_actual_member_count(self):
        wl = asym_workload(0, k=4)
        sched = build_scheduler("rand:epsilon=0.8,delta=0.1", seed=0, horizon=40)
        res = sched.run(wl)
        assert res.algorithm == "Rand(eps=0.8,delta=0.1)"
        assert sched.resolve_budget(4) == hoeffding_samples(4, 0.8, 0.9)

    def test_policy_spec_content_hash_covers_budget_params(self):
        base = PolicySpec.make("rand", n_orderings=15)
        hashes = {
            base.content_hash(),
            PolicySpec.make("rand", n_orderings=15, epsilon=0.5).content_hash(),
            PolicySpec.make("rand", n_orderings=15, n_samples=7).content_hash(),
            PolicySpec.make(
                "rand", n_orderings=15, epsilon=0.5, delta=0.1
            ).content_hash(),
        }
        assert len(hashes) == 4

    def test_scenario_reference_hash_migration(self):
        base = ScenarioSpec(family="synthetic")
        explicit = ScenarioSpec(family="synthetic", reference="ref")
        custom = ScenarioSpec(
            family="synthetic", reference="ref_hier:block_size=5"
        )
        # the default reference must hash like the pre-field spec (cache
        # keys of every committed run survive the migration)
        assert base.content_hash() == explicit.content_hash()
        assert base.content_hash() != custom.content_hash()


# ----------------------------------------------------------------------
# confidence intervals
# ----------------------------------------------------------------------
class TestConfidence:
    def test_hoeffding_shrinks_with_n(self):
        widths = [hoeffding_halfwidth(n, 10.0, 0.05) for n in (1, 4, 16, 64)]
        assert widths == sorted(widths, reverse=True)
        assert hoeffding_halfwidth(5, 0.0, 0.05) == 0.0

    def test_bernstein_beats_hoeffding_at_low_variance(self):
        # near-deterministic marginals: the variance term vanishes and
        # the range term decays as 1/n
        n, rng_bound = 512, 100.0
        eb = empirical_bernstein_halfwidth(n, 1e-6, rng_bound, 0.05)
        hoef = hoeffding_halfwidth(n, rng_bound, 0.05)
        assert eb < hoef
        assert interval_halfwidth(n, 1e-6, rng_bound, 0.05) == eb

    def test_interval_is_min_of_both(self):
        args = (8, 50.0, 10.0, 0.05)
        assert interval_halfwidth(*args) == min(
            hoeffding_halfwidth(8, 10.0, 0.05),
            empirical_bernstein_halfwidth(*args),
        )

    def test_separates_argmax(self):
        means = {0: 10.0, 1: 5.0, 2: 4.0}
        tight = {0: 1.0, 1: 1.0, 2: 1.0}
        wide = {0: 3.0, 1: 3.0, 2: 3.0}
        assert separates_argmax(0, [0, 1, 2], means, tight)
        assert not separates_argmax(0, [0, 1, 2], means, wide)
        # an exact tie never separates, however tight the intervals
        means_tie = {0: 5.0, 1: 5.0}
        assert not separates_argmax(0, [0, 1], means_tie, {0: 0.0, 1: 0.0})

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            hoeffding_halfwidth(0, 1.0, 0.05)
        with pytest.raises(ValueError):
            hoeffding_halfwidth(1, 1.0, 1.5)
        with pytest.raises(ValueError):
            empirical_bernstein_halfwidth(1, -1.0, 1.0, 0.05)


# ----------------------------------------------------------------------
# wave plan
# ----------------------------------------------------------------------
class TestWavePlan:
    def test_geometric_doubling_lands_on_budget(self):
        assert wave_sizes(8, 1024) == [8, 8, 16, 32, 64, 128, 256, 512]
        assert sum(wave_sizes(8, 1024)) == 1024
        assert wave_sizes(4, 10) == [4, 4, 2]
        assert wave_sizes(5, 5) == [5]

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            wave_sizes(0, 8)
        with pytest.raises(ValueError):
            wave_sizes(8, 4)


# ----------------------------------------------------------------------
# agreement with the exact oracle (the acceptance criterion)
# ----------------------------------------------------------------------
GOLDEN_CELLS = [
    (
        "churn",
        dict(
            family="churn",
            traces=("LPC-EGEE",),
            duration=600,
            n_repeats=1,
            scale=0.08,
            seed=7,
            org_counts=(2, 3, 4, 5),
        ),
    ),
    (
        "federated",
        dict(
            family="federated",
            traces=("FED",),
            duration=300,
            n_repeats=1,
            seed=3,
            n_orgs=4,
            machine_dist="uniform",
        ),
    ),
    (
        "synthetic",
        dict(
            family="synthetic",
            traces=("LPC-EGEE",),
            duration=600,
            n_repeats=1,
            scale=0.08,
            seed=7,
            n_orgs=5,
        ),
    ),
]


class TestAgreement:
    @pytest.mark.parametrize("family,kwargs", GOLDEN_CELLS)
    def test_certified_decisions_match_exact_argmax(self, family, kwargs):
        """Every *certified* adaptive decision at k <= 10 must equal the
        full-lattice exact argmax, and the default budget must certify
        >= 95% of decisions on the golden scenario cells."""
        spec = ScenarioSpec(**kwargs)
        build = get_family(family)
        for inst in spec.instances():
            workload, alg_seed = build(spec, inst)
            res = AdaptiveScheduler(
                seed=alg_seed, horizon=spec.duration
            ).run(workload)
            report = agreement_report(
                workload, res.meta["certificates"], horizon=spec.duration
            )
            assert report["mismatches"] == [], (family, inst.key)
            assert res.meta["certified_rate"] >= 0.95, (family, inst.key)

    def test_sampled_regime_certified_agreement(self):
        # force the sampled regime (k! > n_max) -- certified decisions
        # must still agree; uncertified ones are allowed to exist
        spec = ScenarioSpec(
            family="federated",
            traces=("FED",),
            duration=300,
            n_repeats=1,
            seed=3,
            n_orgs=5,
            machine_dist="uniform",
        )
        inst = spec.instances()[0]
        workload, alg_seed = get_family("federated")(spec, inst)
        res = AdaptiveScheduler(
            seed=alg_seed, horizon=300, n_max=64, n_min=4
        ).run(workload)
        report = agreement_report(
            workload, res.meta["certificates"], horizon=300
        )
        assert report["mismatches"] == []
        kinds = {c.kind for c in res.meta["certificates"]}
        assert "budget_exhausted" in kinds  # honest about the tail

    def test_separated_certificates_fire_and_agree(self):
        # asymmetric orgs + a large pre-drawn budget: the CI race must
        # actually separate contested argmaxes, not just fall back on
        # structural certificates
        workload = asym_workload(6, k=8)
        res = AdaptiveScheduler(
            seed=0, horizon=60, n_max=8192, n_min=8
        ).run(workload)
        kinds = [c.kind for c in res.meta["certificates"]]
        assert kinds.count("separated") >= 3
        report = agreement_report(workload, res.meta["certificates"], horizon=60)
        assert report["mismatches"] == []
        for cert in res.meta["certificates"]:
            if cert.kind == "separated":
                assert cert.margin > 0.0
                assert cert.n_used <= 8192

    def test_exact_rung_matches_ref_and_certifies_everything(self):
        # k! <= n_max: the bottom rung builds the full lattice outright,
        # so the schedule is bit-identical to exact REF and every
        # decision is certified
        workload = asym_workload(2, k=6)
        ref = build_scheduler("ref", seed=0, horizon=60).run(workload)
        res = AdaptiveScheduler(seed=0, horizon=60).run(workload)
        assert factorial(6) <= 1024
        assert res.schedule == ref.schedule
        assert res.meta["certified_rate"] == 1.0
        assert {c.kind for c in res.meta["certificates"]} <= {
            "exact",
            "singleton",
            "degenerate",
        }

    def test_adaptive_run_is_deterministic(self):
        workload = asym_workload(1, k=7)
        a = AdaptiveScheduler(seed=5, horizon=60, n_max=128, n_min=4).run(
            workload
        )
        b = AdaptiveScheduler(seed=5, horizon=60, n_max=128, n_min=4).run(
            workload
        )
        assert a.schedule == b.schedule
        assert a.meta["certificates"] == b.meta["certificates"]

    def test_oracle_rejects_oversized_lattices(self):
        workload = asym_workload(0, k=8)
        members_t, _ = members_mask(workload, None)
        assert len(members_t) <= ORACLE_MAX_ORGS
        big = Workload(
            organizations=[
                Organization(u, 1) for u in range(ORACLE_MAX_ORGS + 1)
            ],
            jobs=[],
        )
        with pytest.raises(ValueError):
            ExactDecisionOracle(big)


# ----------------------------------------------------------------------
# hierarchical block mode
# ----------------------------------------------------------------------
class TestHier:
    def test_org_blocks_partition(self):
        assert org_blocks((0, 1, 2, 3, 4), 2) == ((0, 1), (2, 3), (4,))
        assert org_blocks((3, 7), 10) == ((3, 7),)
        with pytest.raises(ValueError):
            org_blocks((0, 1), 0)

    def test_single_block_reduces_to_ref(self):
        workload = asym_workload(2, k=6)
        ref = build_scheduler("ref", seed=0, horizon=60).run(workload)
        hier = HierScheduler(block_size=6, seed=0, horizon=60).run(workload)
        assert hier.schedule == ref.schedule
        assert hier.meta["n_blocks"] == 1
        assert hier.meta["exact_across"]

    def test_two_level_decomposition_is_efficient(self):
        # exact-across regime: sum_u phi_u == v(grand) at any decision
        # time (both Shapley levels are efficient), in exact rationals
        from repro.approx.hier import HierRun

        workload = asym_workload(2, k=6)
        members_t, grand = members_mask(workload, None)
        run = HierRun(
            workload,
            members_t,
            grand,
            np.random.default_rng(0),
            60,
            block_size=2,
        )
        run.drive()
        for t in (10, 20, 40):
            keys = run.keys_at(t)
            psis = run.grand.psis(t)
            total = sum(keys[u] + psis[u] for u in members_t)
            v_grand = run.oracle.values_at(t, select=fifo_select)[grand]
            assert total == Fraction(v_grand), t

    def test_sampled_across_regime_is_deterministic(self):
        workload = asym_workload(3, k=6)
        mk = lambda: HierScheduler(  # noqa: E731
            block_size=2, n_orderings=7, seed=4, horizon=60,
            max_exact_blocks=2,
        ).run(workload)
        a, b = mk(), mk()
        assert not a.meta["exact_across"]
        assert a.schedule == b.schedule

    def test_block_size_bounds(self):
        with pytest.raises(ValueError):
            HierScheduler(block_size=11)
        with pytest.raises(ValueError):
            HierScheduler(block_size=0)


# ----------------------------------------------------------------------
# past the ceiling: kernel gate, gap gadget, scale family
# ----------------------------------------------------------------------
class TestPastTheCeiling:
    def test_kernel_refuses_int64_mask_overflow(self):
        # coalition bitmasks stop fitting in int64 at k > 63; the fleet
        # must fall back to per-engine stepping rather than overflow
        big = Workload(
            organizations=[Organization(u, 1) for u in range(64)], jobs=[]
        )
        assert not kernel_certified(big, 100)
        small = asym_workload(0, k=4)
        assert kernel_certified(small, 100)

    def test_gap_workload_shape(self):
        wl = gap_workload(5, job_size=3)
        assert [o.machines for o in wl.organizations] == [1, 0, 0, 0, 0]
        assert len(wl.jobs) == 5
        assert all(j.size == 3 and j.release == 0 for j in wl.jobs)

    def test_gap_exact_policy_refused_past_cap(self):
        with pytest.raises(CapabilityError):
            policy_order_gap("ref", 16)

    def test_gap_adaptive_runs_past_cap(self):
        from repro.analysis.inapprox import order_reverse_gap

        r = policy_order_gap("ref_adaptive:n_max=16,n_min=4", 12, seed=0)
        assert r["n_orgs"] == 12
        assert r["gap"] == pytest.approx(order_reverse_gap(12, 1).ratio)
        # any real schedule sits between the two extreme orders
        assert 0.0 <= r["ratio_ord"] <= 2.0
        assert 0.0 <= r["ratio_rev"] <= 2.0

    def test_scale_family_builds_high_k_instances(self):
        spec = ScenarioSpec(
            family="scale",
            traces=("SCALE",),
            duration=100,
            n_repeats=1,
            seed=0,
            machine_dist="uniform",
            org_counts=(12,),
        )
        insts = spec.instances()
        assert len(insts) == 1
        workload, alg_seed = get_family("scale")(spec, insts[0])
        assert workload.n_orgs == 12
        assert sum(o.machines for o in workload.organizations) == 24
        assert isinstance(alg_seed, int)

    def test_scale_scenario_registered_with_hier_reference(self):
        scen = get_scenario("scale")
        assert scen.spec.family == "scale"
        assert scen.spec.reference == "ref_hier:block_size=5"
        assert max(scen.spec.org_counts) >= 50


# ----------------------------------------------------------------------
# online serving: certificates across membership epochs
# ----------------------------------------------------------------------
class TestOnlineAdaptive:
    def test_certificates_span_membership_epochs(self):
        svc = ClusterService(
            [1] * 12, "ref_adaptive:n_max=16,n_min=4", seed=0
        )
        for u in range(12):
            svc.submit(u, 1 + u % 3)
        svc.advance(2)
        org = svc.join_org(machines=1)
        svc.submit(org, 2)
        svc.drain()
        policy = svc._policy
        certs = policy.all_certificates()
        # the pre-join epoch's certificates survive the redraw
        assert len(certs) > len(policy.run.certificates)
        assert policy.summary().decisions == len(certs)
        assert all(c.certified in (True, False) for c in certs)

    def test_stratified_online_is_deterministic_past_cap(self):
        # replay == batch equivalence for the new step-capable policies is
        # covered by tests/test_service.py's ALL_POLICIES sweep; here we
        # pin the k > 10 regime the exact policies refuse outright
        def serve():
            svc = ClusterService(
                [1] * 12, "ref_stratified:n_orderings=8", seed=1
            )
            for u in range(12):
                svc.submit(u, 1 + u % 4)
            svc.drain()
            return svc.schedule()

        first = serve()
        assert len(first) == 12
        assert first == serve()
        with pytest.raises(CapabilityError):
            ClusterService([1] * 12, "ref", seed=1)


# ----------------------------------------------------------------------
# bench gate plumbing
# ----------------------------------------------------------------------
class TestApproxGate:
    def test_check_approx_ratios_floors(self, tmp_path):
        import json

        from repro.bench import check_approx_ratios

        committed = {
            "variance_ratio_uniform_over_stratified": 2.0,
            "min_certified_rate": 0.8,
        }
        path = tmp_path / "BENCH_approx.json"
        path.write_text(json.dumps(committed))
        ok = {
            "variance_ratio_uniform_over_stratified": 1.9,
            "min_certified_rate": 0.78,
        }
        assert check_approx_ratios(ok, path, tolerance=0.35) == []
        # quality regression: below the committed floor
        bad = {
            "variance_ratio_uniform_over_stratified": 1.1,
            "min_certified_rate": 0.3,
        }
        problems = check_approx_ratios(bad, path, tolerance=0.35)
        assert len(problems) == 2
        # stratification below parity fails even inside the tolerance
        # band
        path.write_text(
            json.dumps(
                {
                    "variance_ratio_uniform_over_stratified": 1.2,
                    "min_certified_rate": 0.8,
                }
            )
        )
        parity = {
            "variance_ratio_uniform_over_stratified": 0.9,
            "min_certified_rate": 0.8,
        }
        problems = check_approx_ratios(parity, path, tolerance=0.35)
        assert any("pure profit" in p for p in problems)

    def test_stratified_scheduler_registered_capabilities(self):
        from repro.policies import get_policy

        for name in ("ref_stratified", "ref_adaptive", "ref_hier"):
            entry = get_policy(name)
            assert entry.capabilities.max_orgs is None
            assert not entry.capabilities.exact
            assert entry.capabilities.needs_seed
        assert not get_policy("ref_hier").capabilities.step
        assert get_policy("ref_adaptive").capabilities.step

    def test_stratified_beats_nothing_silently(self):
        # StratifiedScheduler is RandScheduler with a variance-reduced
        # sampler: same budget, same oracle shape, different joint draw
        workload = asym_workload(4, k=5)
        strat = StratifiedScheduler(n_orderings=10, seed=2, horizon=40)
        res = strat.run(workload)
        assert res.schedule is not None
        uni = RandScheduler(n_orderings=10, seed=2, horizon=40).run(workload)
        assert {e.job.org for e in res.schedule} == {
            e.job.org for e in uni.schedule
        }
