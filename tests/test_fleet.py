"""CoalitionFleet: value-oracle equivalence, overflow guards, goldens.

Three layers of protection for the fleet refactor:

* **property tests** -- the fleet's vectorized psi_sp ledger returns exactly
  the per-engine ``ClusterEngine.value(t)`` (itself cross-checked against
  the original ``sum(psis(t))`` formulation) on random workloads, including
  workloads engineered to trip the int64 guard into the exact big-int path;
* **solver tests** -- the cached coefficient-matrix ``UpdateVals``
  (:class:`repro.shapley.vectorized.ScaledShapleySolver`) is bit-equal to
  the reference subset-sum ``update_vals_scaled``;
* **golden transcripts** -- the fleet-based REF / GeneralREF / RAND /
  DIRECTCONTR reproduce, job for job, the schedules of the pre-refactor
  per-algorithm implementations (captured from the seed commit).
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.algorithms.direct import DirectContributionScheduler
from repro.algorithms.greedy import fifo_select
from repro.algorithms.rand import RandScheduler
from repro.algorithms.ref import (
    GeneralRefScheduler,
    RefScheduler,
    update_vals_scaled,
)
from repro.core.coalition import iter_members, iter_subsets
from repro.core.engine import ClusterEngine
from repro.core.fleet import CoalitionFleet
from repro.core.job import Job
from repro.core.organization import Organization
from repro.core.workload import Workload
from repro.shapley.vectorized import ScaledShapleySolver

from .conftest import make_workload, random_workload
from .golden_transcripts import GOLDEN


def all_masks(k: int) -> list[int]:
    return [m for m in iter_subsets((1 << k) - 1) if m]


def reference_values(workload, masks, t, horizon):
    """Per-coalition values via independent engines and the original
    O(k + #running) psis() sum -- the pre-fleet formulation."""
    out = {0: 0}
    for m in masks:
        eng = ClusterEngine(
            workload, list(iter_members(m)), horizon=horizon
        )
        eng.drive(fifo_select, until=t)
        if eng.t < t:
            eng.advance_to(t)
        out[m] = sum(eng.psis(t))
    return out


class TestFleetValueEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_values_match_per_engine_values(self, seed):
        rng = np.random.default_rng(seed)
        k = 3 + seed % 2
        wl = random_workload(rng, n_orgs=k, n_jobs=25, max_release=15)
        masks = all_masks(k)
        horizon = 40
        fleet = CoalitionFleet(wl, masks, horizon=horizon)
        for t in (0, 3, 8, 15, 27, 39):
            got = fleet.values_at(t, select=fifo_select)
            want = reference_values(wl, masks, t, horizon)
            assert got == want, t

    @pytest.mark.parametrize("seed", range(4))
    def test_engine_o1_value_matches_psis_sum(self, seed):
        rng = np.random.default_rng(seed + 100)
        wl = random_workload(rng, n_orgs=3, n_jobs=30, max_release=20)
        eng = ClusterEngine(wl)
        while (t := eng.next_event_time()) is not None:
            eng.advance_to(t)
            assert eng.value() == sum(eng.psis(t))  # O(1) vs O(k + running)
            while eng.free_count > 0 and eng.has_waiting():
                eng.start_next(fifo_select(eng))
                assert eng.value() == sum(eng.psis(eng.t))

    def test_values_array_aligned_with_masks(self, rng):
        wl = random_workload(rng, n_orgs=3, n_jobs=12, max_release=6)
        masks = all_masks(3)
        fleet = CoalitionFleet(wl, masks, horizon=None)
        arr = fleet.values_array(9, select=fifo_select)
        assert arr is not None
        by_mask = fleet.values_at(9)
        assert [by_mask[m] for m in fleet.masks] == arr.tolist()

    def test_retrospective_query_uses_exact_path(self, rng):
        wl = random_workload(rng, n_orgs=2, n_jobs=10, max_release=5)
        fleet = CoalitionFleet(wl, all_masks(2))
        late = fleet.values_at(20, select=fifo_select)
        early = fleet.values_at(7, select=fifo_select)  # engines now past 7
        want = reference_values(wl, all_masks(2), 7, None)
        assert early == want
        assert late[3] >= early[3]

    def test_overflow_guard_falls_back_to_exact_ints(self):
        """Huge sizes/releases push psi_sp beyond int64; results must equal
        the engines' unbounded-int arithmetic exactly."""
        big = 1 << 32
        wl = make_workload(
            [1, 1],
            [
                (0, 0, big),
                (big, 0, big),
                (0, 1, 2 * big),
            ],
        )
        t = 3 * big
        masks = all_masks(2)
        fleet = CoalitionFleet(wl, masks)
        got = fleet.values_at(t, select=fifo_select)
        want = reference_values(wl, masks, t, None)
        assert got == want
        assert any(v > (1 << 62) for v in got.values())  # guard really trips
        assert fleet.values_array(t) is None

    def test_policy_scheduler_accepts_one_shot_member_iterators(self):
        """Regression: `members` may be a generator; it must be consumed
        exactly once (the seed passed it straight to ClusterEngine)."""
        from repro.algorithms.greedy import GreedyFifoScheduler

        wl = make_workload([1, 1], [(0, 0, 1), (0, 1, 2)])
        r = GreedyFifoScheduler().run(wl, members=(u for u in [0, 1]))
        assert r.members == (0, 1)
        assert len(r.schedule) == 2
        empty = GreedyFifoScheduler().run(wl, members=iter(()))
        assert empty.members == () and len(empty.schedule) == 0

    def test_huge_times_with_empty_ledger_fall_back_cleanly(self):
        """Regression: t*t+t beyond int64 must trip the guard even when no
        job has ever started (all column maxima still zero), instead of
        raising OverflowError inside the numpy expression."""
        far = 4_000_000_000  # t^2 overflows int64, t itself does not
        wl = make_workload([1, 1, 1, 1, 1], [(far, u, 1) for u in range(5)])
        masks = all_masks(5)
        fleet = CoalitionFleet(wl, masks)
        assert fleet.values_array(far) is None
        vals = fleet.values_at(far, select=fifo_select)
        assert all(vals[m] == 0 for m in masks)  # released at t: psi = 0
        # and the full REF recursion (k >= VECTORIZE_MIN_K) survives it
        result = RefScheduler().run(wl)
        assert len(result.schedule) == 5

    def test_add_mask_is_idempotent_and_lazy(self, rng):
        wl = random_workload(rng, n_orgs=3, n_jobs=9, max_release=5)
        fleet = CoalitionFleet(wl)
        assert len(fleet) == 0
        e1 = fleet.add_mask(0b101)
        assert fleet.add_mask(0b101) is e1
        with pytest.raises(ValueError):
            fleet.add_mask(0)
        fleet.add_mask(0b011)
        assert fleet.masks == (0b101, 0b011)
        vals = fleet.values_at(12, select=fifo_select)
        assert vals == reference_values(wl, [0b101, 0b011], 12, None)


class TestScaledShapleySolver:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_matches_reference_update_vals(self, k):
        rng = np.random.default_rng(k)
        grand = (1 << k) - 1
        masks = all_masks(k)
        index = {m: i for i, m in enumerate(masks)}
        values = {0: 0}
        arr = np.zeros(len(masks), dtype=np.int64)
        for m in masks:
            v = int(rng.integers(0, 10_000))
            values[m] = v
            arr[index[m]] = v
        solver = ScaledShapleySolver(index)
        for m in masks:
            got = solver.phi_scaled(m, arr, 10_000)
            assert got == update_vals_scaled(m, values), m
        by_size: dict[int, list[int]] = {}
        for m in masks:
            by_size.setdefault(m.bit_count(), []).append(m)
        for group in by_size.values():
            batch = solver.phi_scaled_batch(tuple(group), arr, 10_000)
            for m in group:
                assert batch[m] == update_vals_scaled(m, values), m
        with pytest.raises(ValueError):
            solver.phi_scaled_batch((1, 3), arr, 10)

    def test_guard_returns_none_on_possible_overflow(self):
        index = {1: 0, 2: 1, 3: 2}
        solver = ScaledShapleySolver(index)
        arr = np.array([1, 1, 1], dtype=np.int64)
        assert solver.phi_scaled(3, arr, 1 << 63) is None
        assert solver.phi_scaled(3, arr, 100) is not None


class TestEngineFreeSet:
    """The lazy-deletion free-machine set (DIRECTCONTR's O(1) explicit
    machine choice) must stay consistent with the min-heap."""

    def test_explicit_then_default_start_skips_stale_heap_entry(self):
        wl = make_workload([3], [(0, 0, 5), (0, 0, 5), (0, 0, 5)])
        eng = ClusterEngine(wl)
        eng.advance_to(0)
        assert eng.free_machines() == [0, 1, 2]
        eng.start_next(0, machine=1)  # heap entry for 1 goes stale
        assert eng.free_machines() == [0, 2]
        a = eng.start_next(0)  # default: lowest free id
        b = eng.start_next(0)  # must skip the stale 1
        assert (a.machine, b.machine) == (0, 2)
        assert eng.free_count == 0
        with pytest.raises(ValueError):
            eng.start_next(0, machine=1)

    def test_freed_machine_is_reusable_either_way(self):
        wl = make_workload([2], [(0, 0, 2), (0, 0, 4), (2, 0, 1), (2, 0, 1)])
        eng = ClusterEngine(wl)
        eng.advance_to(0)
        eng.start_next(0, machine=0)
        eng.start_next(0, machine=1)
        eng.advance_to(2)  # machine 0 free again
        assert eng.free_machines() == [0]
        e = eng.start_next(0, machine=0)
        assert e.machine == 0
        eng.advance_to(3)
        assert eng.free_machines() == [0]
        assert eng.start_next(0).machine == 0

    @pytest.mark.parametrize("seed", range(5))
    def test_random_machine_choices_keep_invariants(self, seed):
        rng = np.random.default_rng(seed)
        wl = random_workload(rng, n_orgs=2, n_jobs=20, max_release=10,
                             machine_counts=[2, 2])
        eng = ClusterEngine(wl)
        while (t := eng.next_event_time()) is not None:
            eng.advance_to(t)
            while eng.free_count > 0 and eng.has_waiting():
                machine = int(rng.choice(eng.free_machines()))
                eng.start_next(fifo_select(eng), machine=machine)
        assert eng.done()
        eng.schedule().validate(wl)


def _transcript(result):
    return [
        (e.start, e.machine, e.job.org, e.job.index, e.job.size)
        for e in result.schedule
    ]


def _k3_workload(seed: int) -> Workload:
    rng = np.random.default_rng(seed)
    return random_workload(
        rng, n_orgs=3, n_jobs=14, max_release=12,
        sizes=(1, 2, 3), machine_counts=[1, 2, 1],
    )


class TestGoldenTranscripts:
    """The fleet-based algorithms reproduce the seed implementations'
    schedules (and REF's exact contribution fractions) bit for bit."""

    @pytest.mark.parametrize("seed", range(4))
    def test_ref(self, seed):
        wl = _k3_workload(seed)
        g = GOLDEN[f"k3_seed{seed}"]
        assert _transcript(RefScheduler().run(wl)) == g["ref"]
        assert _transcript(RefScheduler(horizon=10).run(wl)) == g["ref_h10"]

    @pytest.mark.parametrize("seed", range(4))
    def test_ref_contributions(self, seed):
        wl = _k3_workload(seed)
        r = RefScheduler(collect_contributions=True).run(wl)
        want = [
            Fraction(n, d)
            for n, d in GOLDEN[f"k3_seed{seed}"]["ref_contrib"]
        ]
        assert r.meta["contributions"] == want

    @pytest.mark.parametrize("seed", range(4))
    def test_general_ref(self, seed):
        wl = _k3_workload(seed)
        got = _transcript(GeneralRefScheduler().run(wl))
        assert got == GOLDEN[f"k3_seed{seed}"]["genref"]

    @pytest.mark.parametrize("seed", range(4))
    def test_rand(self, seed):
        wl = _k3_workload(seed)
        got = _transcript(RandScheduler(n_orderings=5, seed=seed).run(wl))
        assert got == GOLDEN[f"k3_seed{seed}"]["rand"]

    @pytest.mark.parametrize("seed", range(4))
    def test_direct_contr(self, seed):
        wl = _k3_workload(seed)
        g = GOLDEN[f"k3_seed{seed}"]
        exact = DirectContributionScheduler(seed=seed).run(wl)
        faithful = DirectContributionScheduler(
            seed=seed, mode="faithful"
        ).run(wl)
        assert _transcript(exact) == g["direct_exact"]
        assert _transcript(faithful) == g["direct_faithful"]

    def test_k4(self):
        rng = np.random.default_rng(99)
        wl = random_workload(
            rng, n_orgs=4, n_jobs=16, max_release=10,
            sizes=(1, 2, 4), machine_counts=[1, 1, 2, 1],
        )
        g = GOLDEN["k4_seed99"]
        assert _transcript(RefScheduler().run(wl)) == g["ref"]
        got = _transcript(RandScheduler(n_orderings=6, seed=7).run(wl))
        assert got == g["rand"]


class TestRefactoredConsumersUseFleet:
    """Guard the architecture: no algorithm module owns a private
    ``dict[mask, ClusterEngine]`` anymore."""

    def test_no_private_engine_dicts_in_algorithm_modules(self):
        import inspect

        import repro.algorithms.direct as direct
        import repro.algorithms.rand as rand
        import repro.algorithms.ref as ref

        for mod in (ref, rand, direct):
            src = inspect.getsource(mod)
            assert "ClusterEngine(" not in src, mod.__name__

    def test_ref_run_exposes_fleet(self):
        wl = make_workload([1, 1], [(0, 0, 1), (0, 1, 2)])
        from repro.algorithms.base import members_mask
        from repro.algorithms.ref import RefRun

        members, grand = members_mask(wl, None)
        run = RefRun(wl, members, grand, horizon=None)
        run.drive()
        assert isinstance(run.fleet, CoalitionFleet)
        assert set(run.fleet.masks) == {1, 2, 3}
