"""Tests for RAND, the randomized fair scheduler (FPRAS for unit jobs)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.rand import RandScheduler
from repro.algorithms.ref import RefScheduler
from repro.shapley.sampling import hoeffding_samples
from repro.sim.metrics import unfairness

from .conftest import make_workload, random_workload


class TestConstruction:
    def test_name_includes_n(self):
        assert RandScheduler(15).name == "Rand(N=15)"

    def test_rejects_zero_orderings(self):
        with pytest.raises(ValueError):
            RandScheduler(0)

    def test_from_bounds_uses_hoeffding(self):
        s = RandScheduler.from_bounds(k=4, epsilon=0.5, lam=0.5)
        assert s.n_orderings == hoeffding_samples(4, 0.5, 0.5)

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(9)
        wl = random_workload(rng, n_orgs=3, n_jobs=20)
        a = RandScheduler(10, seed=42).run(wl)
        b = RandScheduler(10, seed=42).run(wl)
        assert a.schedule == b.schedule

    def test_meta_reports_coalitions(self):
        wl = make_workload([1, 1], [(0, 0, 1), (0, 1, 1)])
        r = RandScheduler(5, seed=0).run(wl)
        assert r.meta["n_orderings"] == 5
        assert r.meta["n_coalitions"] >= 2


class TestFairness:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2_000))
    def test_schedules_feasible_and_greedy(self, seed):
        rng = np.random.default_rng(seed)
        wl = random_workload(rng, n_orgs=3, n_jobs=18)
        r = RandScheduler(7, seed=seed).run(wl)
        r.schedule.validate(wl)

    def test_unit_jobs_high_n_tracks_ref(self):
        """With unit jobs and many samples, RAND's schedule utilities are
        close to REF's (Theorem 5.6).  Averaged over several instances the
        normalized gap must be small."""
        gaps = []
        for seed in range(5):
            rng = np.random.default_rng(seed)
            wl = random_workload(
                rng, n_orgs=3, n_jobs=40, max_release=25, sizes=(1,),
                machine_counts=[1, 1, 1],
            )
            t_end = 40
            ref = RefScheduler(horizon=t_end).run(wl)
            r = RandScheduler(60, seed=seed, horizon=t_end).run(wl)
            v = max(1, ref.value(t_end))
            gaps.append(unfairness(r, ref, t_end) / v)
        assert float(np.mean(gaps)) < 0.05

    def test_more_samples_not_worse_on_average(self):
        """epsilon decreases with N; check the trend over seeds."""
        def mean_gap(n_orderings: int) -> float:
            out = []
            for seed in range(6):
                rng = np.random.default_rng(100 + seed)
                wl = random_workload(
                    rng, n_orgs=3, n_jobs=30, max_release=20, sizes=(1,),
                    machine_counts=[2, 1, 1],
                )
                t_end = 35
                ref = RefScheduler(horizon=t_end).run(wl)
                r = RandScheduler(n_orderings, seed=seed, horizon=t_end).run(wl)
                v = max(1, ref.value(t_end))
                out.append(unfairness(r, ref, t_end) / v)
            return float(np.mean(out))

        assert mean_gap(40) <= mean_gap(2) + 0.02

    def test_general_sizes_run(self):
        """For non-unit jobs RAND is the paper's heuristic; it must at
        least produce feasible greedy schedules and beat RoundRobin's
        fairness on a contended instance."""
        from repro.algorithms import RoundRobinScheduler

        rng = np.random.default_rng(3)
        wl = random_workload(
            rng, n_orgs=3, n_jobs=40, max_release=10, sizes=(2, 3, 7),
            machine_counts=[2, 1, 1],
        )
        t_end = 60
        ref = RefScheduler(horizon=t_end).run(wl)
        rand_gap = unfairness(
            RandScheduler(15, seed=1, horizon=t_end).run(wl), ref, t_end
        )
        rr_gap = unfairness(
            RoundRobinScheduler(horizon=t_end).run(wl), ref, t_end
        )
        assert rand_gap <= rr_gap
